/**
 * @file
 * tmlint fixture: mutex operations inside an atomic body. A lock
 * acquired speculatively cannot be rolled back, and lock/transaction
 * interleavings deadlock the serial path — the reason the paper's
 * memcached port had to replace every cache lock with a transaction
 * instead of mixing the two.
 */

#include <mutex>

#include "tm/api.h"

namespace
{

std::mutex gate;
std::uint64_t cell;

const tmemc::tm::TxnAttr kAttr{"fixture:tm3-mutex",
                               tmemc::tm::TxnKind::Atomic, false};

void
lockBroken()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        gate.lock(); // tmlint-expect: TM3
        tm::txStore(tx, &cell, tm::txLoad(tx, &cell) + 1);
        gate.unlock(); // tmlint-expect: TM3
    });
}

} // namespace
