/**
 * @file
 * tmlint fixture: rawLoadAcquire inside a checked atomic body. The
 * acquire-flavoured escape hatch exists for the runtime's own
 * fence-free validation idiom (tm/algo_ra.cc) and is waived there; in
 * application code it still bypasses versioning exactly like rawLoad,
 * so a speculative body using it must be flagged.
 */

#include "tm/api.h"
#include "tm/raw.h"

namespace
{

std::uint64_t shadow;

const tmemc::tm::TxnAttr kAttr{"fixture:tm1-raw-acquire",
                               tmemc::tm::TxnKind::Atomic, false};

std::uint64_t
peekBroken()
{
    namespace tm = tmemc::tm;
    return tm::run(kAttr, [&](tm::TxDesc &tx) {
        (void)tx;
        return tm::rawLoadAcquire(&shadow); // tmlint-expect: TM1
    });
}

} // namespace
