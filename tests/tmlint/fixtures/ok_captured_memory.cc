/**
 * @file
 * tmlint fixture (negative): plain initialization of memory the
 * transaction itself just allocated, under a tm-captured waiver. No
 * other thread can reach the block before the instrumented store
 * publishes it, so plain stores are invisible — the captured-memory
 * optimization GCC performs automatically and a library STM must
 * document by hand (slabsCarvePage is the production instance).
 */

#include "tm/api.h"

namespace
{

struct Node
{
    std::uint64_t val;
    Node *next;
};

Node *head;

const tmemc::tm::TxnAttr kAttr{"fixture:ok-captured",
                               tmemc::tm::TxnKind::Atomic, false};

// tmlint-expect: none

void
pushFresh(std::uint64_t v)
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        auto *n = static_cast<Node *>(tm::txMalloc(tx, sizeof(Node)));
        // tm-captured: n is transaction-fresh until the txStore below
        n->val = v;
        n->next = tm::txLoad(tx, &head);
        tm::txStore(tx, &head, n);
    });
}

} // namespace
