/**
 * @file
 * tmlint fixture: an onCommit handler that reaches back into the
 * transactional API. Handlers run in finishCommit, after the
 * descriptor has released its state — txStore there corrupts whatever
 * transaction happens to run next on the thread. Handlers must be
 * TM_PURE-clean: plain code over plain captured values.
 */

#include "tm/api.h"

namespace
{

std::uint64_t cell;
std::uint64_t journal;

const tmemc::tm::TxnAttr kAttr{"fixture:tm4",
                               tmemc::tm::TxnKind::Atomic, false};

void
publishBroken()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        tm::txStore(tx, &cell, std::uint64_t{1});
        tx.onCommit([&] {
            tm::txStore(tx, &journal, std::uint64_t{1}); // tmlint-expect: TM4
        });
    });
}

void
publishCorrect()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        const std::uint64_t v = tm::txLoad(tx, &cell);
        tx.onCommit([v] { journal = v; });
    });
}

} // namespace
