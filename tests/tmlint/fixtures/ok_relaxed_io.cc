/**
 * @file
 * tmlint fixture (negative): I/O inside a *relaxed* transaction is
 * legal — the runtime serializes the transaction (GCC's in-flight
 * switch to serial-irrevocable mode) and the write happens exactly
 * once. This is the paper's answer to memcached's logging and stats
 * paths; tmlint must stay quiet here.
 */

#include <cstdio>

#include "tm/api.h"

namespace
{

std::uint64_t cell;

const tmemc::tm::TxnAttr kAttr{"fixture:ok-relaxed",
                               tmemc::tm::TxnKind::Relaxed, false};

// tmlint-expect: none

void
auditedBump()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        const std::uint64_t v = tm::txLoad(tx, &cell) + 1;
        std::fprintf(stderr, "bump to %llu\n",
                     static_cast<unsigned long long>(v));
        tm::txStore(tx, &cell, v);
    });
}

} // namespace
