/**
 * @file
 * tmlint fixture: a TM_SAFE function whose body launders an unsafe
 * operation through an unannotated helper. The annotation promises
 * static safety; tmlint closes over the helper's visible body the way
 * GCC's inliner-driven checking would and rejects the call.
 */

#include <cstdio>

#include "common/compiler.h"
#include "tm/api.h"

namespace
{

std::uint64_t cell;

std::uint64_t
logAndLoad(tmemc::tm::TxDesc &tx)
{
    std::fprintf(stderr, "loading\n");
    return tmemc::tm::txLoad(tx, &cell);
}

TM_SAFE std::uint64_t
liesAboutSafety(tmemc::tm::TxDesc &tx)
{
    return logAndLoad(tx); // tmlint-expect: TM2
}

} // namespace
