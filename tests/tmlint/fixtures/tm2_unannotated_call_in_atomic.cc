/**
 * @file
 * tmlint fixture: an atomic body calls a function that is neither
 * annotated nor visible for body inference. GCC rejects this at
 * compile time ("unsafe function call within atomic transaction");
 * tmlint reproduces the diagnostic.
 */

#include "tm/api.h"

namespace
{

// Declared, never defined here: nothing to infer safety from.
std::uint64_t opaqueHelper(std::uint64_t v);

std::uint64_t cell;

const tmemc::tm::TxnAttr kAttr{"fixture:tm2",
                               tmemc::tm::TxnKind::Atomic, false};

std::uint64_t
computeBroken()
{
    namespace tm = tmemc::tm;
    return tm::run(kAttr, [&](tm::TxDesc &tx) {
        const std::uint64_t v = tm::txLoad(tx, &cell);
        return opaqueHelper(v); // tmlint-expect: TM2
    });
}

} // namespace
