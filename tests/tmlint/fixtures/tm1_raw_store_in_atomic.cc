/**
 * @file
 * tmlint fixture: a plain store to shared memory inside an atomic
 * transaction body. This is the canonical bug the checker exists for —
 * GCC would have instrumented the store; a library STM silently loses
 * it from the undo/redo log and the transaction is no longer isolated.
 */

#include "tm/api.h"

namespace
{

std::uint64_t counter;
std::uint64_t *cell = &counter;

const tmemc::tm::TxnAttr kAttr{"fixture:tm1", tmemc::tm::TxnKind::Atomic,
                               false};

void
bumpBroken()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        const std::uint64_t v = tm::txLoad(tx, cell);
        *cell = v + 1; // tmlint-expect: TM1
        counter = v + 2; // tmlint-expect: TM1
    });
}

void
bumpCorrect()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        tm::txStore(tx, cell, tm::txLoad(tx, cell) + 1);
    });
}

} // namespace
