/**
 * @file
 * tmlint fixture: a std::atomic RMW inside an atomic transaction
 * body. The fetch_add is immediately visible to other threads and is
 * not undone on abort — it escapes both isolation and rollback. The
 * instrumented equivalent is a txLoad/txStore pair (TmCtx::refIncr).
 */

#include <atomic>

#include "tm/api.h"

namespace
{

std::atomic<std::uint64_t> refs{0};
std::uint64_t cell;

const tmemc::tm::TxnAttr kAttr{"fixture:tm3-rmw",
                               tmemc::tm::TxnKind::Atomic, false};

void
pinBroken()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        refs.fetch_add(1, std::memory_order_relaxed); // tmlint-expect: TM3
        tm::txStore(tx, &cell, tm::txLoad(tx, &cell) + 1);
    });
}

} // namespace
