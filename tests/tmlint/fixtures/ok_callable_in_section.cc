/**
 * @file
 * tmlint fixture (negative): TM_CALLABLE callees invoked from a
 * branch-policy section body. Section kind is a runtime property
 * (SiteAttrRegistry decides atomic vs relaxed per branch config), so
 * tmlint treats the body conservatively but admits callable callees —
 * exactly how cache.h drives slabsAlloc/assocInsert.
 */

#include "mc/slabs.h"
#include "mc/sync_tm.h"

namespace
{

// tmlint-expect: none

template <typename Policy>
void *
carve(Policy &policy, tmemc::mc::SlabState &slabs, std::uint32_t cls)
{
    return policy.slabsSection(tmemc::mc::sites::alloc, [&](auto &c) {
        return tmemc::mc::slabsAlloc(c, slabs, cls);
    });
}

} // namespace
