/**
 * @file
 * tmlint fixture (negative): an irrevocable operation *after* an
 * unsafeOp() in-flight switch in the same block. unsafeOp aborts the
 * speculative attempt and re-executes serially-irrevocably, so by the
 * time control reaches the malloc the transaction cannot abort — the
 * exact shape TmCtx uses for its branch-staged unsafe operations.
 */

#include <cstdlib>

#include "tm/api.h"

namespace
{

void *slot;

// tmlint-expect: none

// The attr arrives at runtime (a SiteAttrRegistry shape), so tmlint
// cannot resolve the kind and checks the body conservatively — the
// unsafeOp() switch is what licenses the allocation that follows.
void
serialAlloc(const tmemc::tm::TxnAttr &attr)
{
    namespace tm = tmemc::tm;
    tm::run(attr, [&](tm::TxDesc &tx) {
        tm::unsafeOp(tx, "fixture serial alloc");
        void *p = std::malloc(64);
        slot = p;
    });
}

} // namespace
