/**
 * @file
 * tmlint fixture: use of the tm/raw.h escape hatches (rawStore) and
 * TmVar::rawGet inside a checked atomic body. The hatches exist for
 * the runtime's own implementation and for code that has proven
 * privatization; inside a speculative body they bypass versioning.
 */

#include "tm/api.h"
#include "tm/raw.h"

namespace
{

tmemc::tm::TmVar<std::uint64_t> hits{0};
std::uint64_t shadow;

const tmemc::tm::TxnAttr kAttr{"fixture:tm1-raw",
                               tmemc::tm::TxnKind::Atomic, false};

std::uint64_t
peekBroken()
{
    namespace tm = tmemc::tm;
    return tm::run(kAttr, [&](tm::TxDesc &tx) {
        tm::rawStore(&shadow, tm::txLoad(tx, &shadow) + 1); // tmlint-expect: TM1
        return hits.rawGet(); // tmlint-expect: TM1
    });
}

} // namespace
