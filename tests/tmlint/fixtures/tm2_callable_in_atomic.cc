/**
 * @file
 * tmlint fixture: a TM_CALLABLE function invoked from an *explicitly*
 * atomic body. Callable code is instrumented but licensed to contain
 * branch-staged unsafe operations, so the specification only admits
 * transaction_safe / transaction_pure callees inside atomic blocks.
 * (From branch-configured section bodies — kind unknown until
 * runtime — tmlint accepts callable callees; see slabsAlloc's users.)
 */

#include "common/compiler.h"
#include "tm/api.h"

namespace
{

std::uint64_t cell;

TM_CALLABLE std::uint64_t
stagedRead(tmemc::tm::TxDesc &tx)
{
    return tmemc::tm::txLoad(tx, &cell);
}

const tmemc::tm::TxnAttr kAttr{"fixture:tm2-callable",
                               tmemc::tm::TxnKind::Atomic, false};

std::uint64_t
readBroken()
{
    namespace tm = tmemc::tm;
    return tm::run(kAttr, [&](tm::TxDesc &tx) {
        return stagedRead(tx); // tmlint-expect: TM2
    });
}

} // namespace
