/**
 * @file
 * tmlint fixture: calling a TM_UNSAFE-annotated function (the
 * net/sys.h syscall wrappers carry the same annotation) from an
 * atomic body. The annotation is the library-STM spelling of
 * "irrevocable-only": the callee performs I/O that can never be
 * rolled back.
 */

#include "common/compiler.h"
#include "tm/api.h"

namespace
{

TM_UNSAFE int
pollDevice(int fd)
{
    return fd; // stand-in for an ioctl
}

std::uint64_t cell;

const tmemc::tm::TxnAttr kAttr{"fixture:tm3-unsafe",
                               tmemc::tm::TxnKind::Atomic, false};

void
pollBroken(int fd)
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        tm::txStore(tx, &cell, tm::txLoad(tx, &cell) + 1);
        pollDevice(fd); // tmlint-expect: TM3
    });
}

} // namespace
