/**
 * @file
 * tmlint fixture: std::memcpy touching shared memory inside an atomic
 * body (flagged) next to the legal marshal pattern — the same call on
 * private stack copies (exempt), which is how the paper routes
 * memcached's library calls through transactions.
 */

#include <cstring>

#include "tm/api.h"

namespace
{

char sharedBuf[64];

const tmemc::tm::TxnAttr kAttr{"fixture:tm1-memcpy",
                               tmemc::tm::TxnKind::Atomic, false};

void
copyBroken(const char *src, std::size_t n)
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        std::memcpy(sharedBuf, src, n); // tmlint-expect: TM1
        tm::txStore(tx, &sharedBuf[0], sharedBuf[0]);
    });
}

void
copyMarshalled(const char *src, std::size_t n)
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        char priv[64];
        char out[64];
        std::memcpy(priv, out, n);
        tm::txStoreBytes(tx, sharedBuf, priv, n);
    });
}

} // namespace
