/**
 * @file
 * tmlint fixture: an onAbort handler that captures and touches the
 * TxDesc. By the time abort handlers run, handleAbort has already
 * rolled the descriptor back — reading through it observes undone
 * state, and registering nested handlers from one is re-entrant.
 */

#include "tm/api.h"

namespace
{

std::uint64_t cell;
std::uint64_t attempts;

const tmemc::tm::TxnAttr kAttr{"fixture:tm4-abort",
                               tmemc::tm::TxnKind::Atomic, false};

void
retryAccounting()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        tx.onAbort([&] {
            attempts = tx.nesting; // tmlint-expect: TM4
        });
        tm::txStore(tx, &cell, tm::txLoad(tx, &cell) + 1);
    });
}

} // namespace
