/**
 * @file
 * tmlint fixture: raw allocation inside an atomic body. malloc/free
 * and operator new are irrevocable — an abort would leak (or worse,
 * double-free on retry). The tmsafe/tm_alloc.h wrappers defer the
 * irrevocable half to commit/abort handlers and are TM_SAFE.
 */

#include <cstdlib>

#include "tm/api.h"

namespace
{

void *slot;

const tmemc::tm::TxnAttr kAttr{"fixture:tm3-alloc",
                               tmemc::tm::TxnKind::Atomic, false};

void
allocBroken()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        void *p = std::malloc(64); // tmlint-expect: TM3
        std::free(p); // tmlint-expect: TM3
        tm::txStore(tx, &slot, p);
    });
}

void
allocCorrect()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        void *p = tm::txMalloc(tx, 64);
        tm::txStore(tx, &slot, p);
    });
}

} // namespace
