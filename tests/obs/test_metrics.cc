/**
 * @file
 * Tests for the MetricsRegistry (source registration, the three
 * render targets, JSON file round-trip) and the flight recorder
 * (arm/record/dump/reset). Both are process-global singletons, so
 * every test restores the state it touched — histograms via
 * resetHistograms(), sources via unregisterSource, the trace rings
 * via disarmTrace()+resetTrace().
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tm/api.h"

namespace tmemc::obs
{
namespace
{

bool
contains(const std::string &hay, const std::string &needle)
{
    return hay.find(needle) != std::string::npos;
}

// Attrs must have static storage duration (the runtime keys per-site
// profiling off their addresses).
const tm::TxnAttr kMetricsAttr{"obs_metrics_test", tm::TxnKind::Relaxed,
                               false};
const tm::TxnAttr kHistAttr{"obs_tx_hist_test", tm::TxnKind::Relaxed,
                            false};
const tm::TxnAttr kTraceAttr{"obs_trace_test", tm::TxnKind::Relaxed,
                             false};

/** Configure the global TM runtime and commit one transaction. */
void
commitOneTxn(const tm::TxnAttr &attr)
{
    tm::RuntimeCfg cfg;
    tm::Runtime::get().configure(cfg);
    static std::uint64_t cell = 0;
    tm::run(attr, [](tm::TxDesc &tx) {
        tm::txStore<std::uint64_t>(tx, &cell, tm::txLoad(tx, &cell) + 1);
    });
}

class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { MetricsRegistry::get().resetHistograms(); }
    void TearDown() override
    {
        MetricsRegistry::get().resetHistograms();
    }
};

TEST_F(MetricsTest, SourcePrefixingAndUnregisterBarrier)
{
    auto &reg = MetricsRegistry::get();
    const std::uint64_t token = reg.registerSource("unit", [] {
        return std::vector<Counter>{{"alpha", 7}, {"beta", 11}};
    });

    MetricsSnapshot snap = reg.snapshot();
    std::uint64_t alpha = 0, beta = 0;
    for (const Counter &c : snap.counters) {
        if (c.name == "unit_alpha")
            alpha = c.value;
        if (c.name == "unit_beta")
            beta = c.value;
    }
    EXPECT_EQ(alpha, 7u);
    EXPECT_EQ(beta, 11u);

    reg.unregisterSource(token);
    for (const Counter &c : reg.snapshot().counters)
        EXPECT_TRUE(c.name.rfind("unit_", 0) != 0) << c.name;
}

TEST_F(MetricsTest, HistogramsAppearInSnapshot)
{
    hist(HistKind::Command).record(5000);   // 5 us
    hist(HistKind::Command).record(5000);
    hist(HistKind::Tx).record(20000);       // 20 us

    const MetricsSnapshot snap = MetricsRegistry::get().snapshot();
    EXPECT_EQ(snap.hists[unsigned(HistKind::Command)].count, 2u);
    EXPECT_EQ(snap.hists[unsigned(HistKind::Tx)].count, 1u);
    EXPECT_NEAR(snap.hists[unsigned(HistKind::Tx)].p50Us, 20.0, 1.0);
    EXPECT_EQ(snap.hists[unsigned(HistKind::CacheOp)].count, 0u);
}

TEST_F(MetricsTest, JsonShapeAndValues)
{
    auto &reg = MetricsRegistry::get();
    const std::uint64_t token = reg.registerSource(
        "unit", [] { return std::vector<Counter>{{"gamma", 42}}; });
    hist(HistKind::CacheOp).record(3000);

    const std::string json = reg.snapshot().toJson();
    reg.unregisterSource(token);

    EXPECT_TRUE(json.rfind("{\"schema\":\"tmemc-metrics-v1\"", 0) == 0)
        << json;
    EXPECT_TRUE(contains(json, "\"unit_gamma\":42")) << json;
    // Every histogram kind gets a latency object, populated or not.
    for (const char *key :
         {"\"cmd\":{", "\"op\":{", "\"tx\":{", "\"tx_serial\":{",
          "\"tx_attempts\":{"})
        EXPECT_TRUE(contains(json, key)) << key << " missing: " << json;
    EXPECT_TRUE(contains(json, "\"op\":{\"count\":1")) << json;
    // Crude structural check: braces balance.
    int depth = 0;
    for (const char ch : json) {
        depth += (ch == '{') - (ch == '}');
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST_F(MetricsTest, WriteJsonFileRoundTrip)
{
    auto &reg = MetricsRegistry::get();
    hist(HistKind::Tx).record(9000);
    const std::string expected = reg.snapshot().toJson();

    const std::string path =
        ::testing::TempDir() + "metrics_roundtrip.json";
    ASSERT_TRUE(reg.writeJsonFile(path));

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string got;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        got.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_EQ(got, expected);
    EXPECT_FALSE(reg.writeJsonFile("/nonexistent-dir/x/y.json"));
}

TEST_F(MetricsTest, AsciiLatencyRowsMatchSnapshot)
{
    hist(HistKind::Command).record(1000);
    hist(HistKind::Command).record(1000);
    hist(HistKind::Command).record(1000);

    const MetricsSnapshot snap = MetricsRegistry::get().snapshot();
    const std::string rows = snap.asciiLatencyRows();

    EXPECT_TRUE(contains(rows, "STAT lat_cmd_count 3\r\n")) << rows;
    for (const char *prefix :
         {"lat_cmd_", "lat_op_", "lat_tx_", "lat_tx_serial_",
          "lat_tx_attempts_"}) {
        EXPECT_TRUE(contains(rows, std::string("STAT ") + prefix +
                                       "p99_us "))
            << prefix << " missing: " << rows;
    }
}

TEST_F(MetricsTest, AsciiTmRowsCarryRuntimeCounters)
{
    // The TM runtime registers its "tm" source at construction; one
    // committed transaction must show up in the stats-tm rows.
    tm::Runtime::get().resetStats();
    commitOneTxn(kMetricsAttr);

    const std::string rows =
        MetricsRegistry::get().snapshot().asciiTmRows();
    EXPECT_TRUE(contains(rows, "STAT tm_commits ")) << rows;
    EXPECT_TRUE(contains(rows, "STAT tm_txns ")) << rows;
    EXPECT_TRUE(contains(rows, "STAT lat_tx_count ")) << rows;
    // Latency rows for non-TM kinds do NOT belong in stats tm.
    EXPECT_FALSE(contains(rows, "lat_cmd_")) << rows;
}

TEST_F(MetricsTest, ClusterRowsRenderOnlyClusterCounters)
{
    // net::Cluster registers a "cluster" source; `stats cluster` is
    // rendered from the prefixed counters by asciiClusterRows(). The
    // render must pick up every cluster_ counter, survive the JSON
    // round trip, and vanish when the source unregisters (cluster
    // torn down).
    auto &reg = MetricsRegistry::get();
    const std::uint64_t token = reg.registerSource("cluster", [] {
        return std::vector<Counter>{{"requests", 100},
                                    {"ejections", 3},
                                    {"read_repairs", 7}};
    });

    const MetricsSnapshot snap = reg.snapshot();
    const std::string rows = snap.asciiClusterRows();
    EXPECT_TRUE(contains(rows, "STAT cluster_requests 100\r\n")) << rows;
    EXPECT_TRUE(contains(rows, "STAT cluster_ejections 3\r\n")) << rows;
    EXPECT_TRUE(contains(rows, "STAT cluster_read_repairs 7\r\n"))
        << rows;
    // Non-cluster counters (tm_, net_, unit_...) stay out.
    for (const Counter &c : snap.counters) {
        if (c.name.rfind("cluster_", 0) != 0)
            EXPECT_FALSE(contains(rows, "STAT " + c.name + " "))
                << c.name << " leaked into: " << rows;
    }
    EXPECT_TRUE(contains(snap.toJson(), "\"cluster_ejections\":3"));

    reg.unregisterSource(token);
    EXPECT_EQ(reg.snapshot().asciiClusterRows(), "");
}

TEST_F(MetricsTest, TxHistogramRecordsCommits)
{
    commitOneTxn(kHistAttr);
    MetricsRegistry::get().resetHistograms();
    for (int i = 0; i < 10; ++i)
        commitOneTxn(kHistAttr);

    const MetricsSnapshot snap = MetricsRegistry::get().snapshot();
    EXPECT_EQ(snap.hists[unsigned(HistKind::Tx)].count, 10u);
    // Uncontended single-thread commits: exactly one attempt each,
    // recorded as attempts*1000 so p50 reads as the attempt count.
    EXPECT_EQ(snap.hists[unsigned(HistKind::TxAttempts)].count, 10u);
    EXPECT_NEAR(snap.hists[unsigned(HistKind::TxAttempts)].p50Us, 1.0,
                0.05);
    EXPECT_EQ(snap.hists[unsigned(HistKind::TxSerial)].count, 0u);
}

class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        disarmTrace();
        resetTrace();
    }
    void TearDown() override
    {
        disarmTrace();
        resetTrace();
    }
};

TEST_F(TraceTest, DisarmedRecordsNothing)
{
    EXPECT_FALSE(traceArmed());
    traceRecord(TraceEvent::TxBegin, "site_a");
    EXPECT_EQ(traceRecordCount(), 0u);
}

TEST_F(TraceTest, ArmedRecordsAndDumps)
{
    armTrace();
    EXPECT_TRUE(traceArmed());
    traceRecord(TraceEvent::TxBegin, "site_a");
    traceRecord(TraceEvent::TxSerialSwitch, "site_b", 3);
    traceRecord(TraceEvent::TxCommit, "site_a");
    EXPECT_EQ(traceRecordCount(), 3u);

    const std::string dump = dumpTrace();
    EXPECT_TRUE(contains(dump, traceEventName(TraceEvent::TxBegin)))
        << dump;
    EXPECT_TRUE(contains(dump, "site=site_b")) << dump;
    EXPECT_TRUE(contains(dump, "shard=3")) << dump;

    // Disarm keeps contents for a post-mortem dump; reset drops them.
    disarmTrace();
    traceRecord(TraceEvent::TxAbort, "site_c");
    EXPECT_EQ(traceRecordCount(), 3u);
    resetTrace();
    EXPECT_EQ(traceRecordCount(), 0u);
}

TEST_F(TraceTest, RingWrapsAtCapacity)
{
    armTrace();
    for (std::size_t i = 0; i < kTraceCapacity + 100; ++i)
        traceRecord(TraceEvent::TxCommit, "wrap");
    EXPECT_EQ(traceRecordCount(), kTraceCapacity);
}

TEST_F(TraceTest, RuntimeEmitsTraceEventsWhenArmed)
{
    armTrace();
    commitOneTxn(kTraceAttr);

    const std::string dump = dumpTrace();
    EXPECT_TRUE(contains(dump, "site=obs_trace_test")) << dump;
    EXPECT_TRUE(contains(dump, traceEventName(TraceEvent::TxCommit)))
        << dump;
}

} // namespace
} // namespace tmemc::obs
