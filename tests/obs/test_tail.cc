/**
 * @file
 * Tail tracer tests: reservoir invariants with fabricated traces
 * (top-K under serial and concurrent insert, eviction floor,
 * arm/disarm toggling), span-chain recording through the real TM
 * runtime (serial-switch attribution), and an end-to-end server
 * round trip where a fault-injected slow shard must surface in
 * `stats tail` with its complete parse→flush chain.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "mc/cache_iface.h"
#include "mc/hash.h"
#include "mc/sharded_cache.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/hist.h"
#include "obs/tail.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using obs::tail::PendingTrace;
using obs::tail::RequestTrace;
using obs::tail::Span;
using obs::tail::SpanKind;
using obs::tail::TxOutcome;

/** A finished trace with the given id and total latency. */
PendingTrace
fabricate(std::uint64_t id, std::uint64_t total_ns)
{
    auto t = std::make_shared<RequestTrace>();
    t->id = id;
    t->startNs = 1000;
    t->endNs = 1000 + total_ns;
    Span s;
    s.kind = SpanKind::Parse;
    s.t0 = t->startNs;
    s.t1 = t->endNs;
    t->spans.push_back(s);
    return t;
}

std::vector<std::uint64_t>
totalsOf(const std::vector<std::shared_ptr<const RequestTrace>> &v)
{
    std::vector<std::uint64_t> out;
    for (const auto &t : v)
        out.push_back(t->totalNs());
    return out;
}

class TailReservoirTest : public ::testing::Test
{
  protected:
    void SetUp() override { obs::tail::resetTail(); }
    void
    TearDown() override
    {
        obs::tail::disarmTail();
        obs::tail::resetTail();
    }
};

TEST_F(TailReservoirTest, KeepsExactlyTheKSlowest)
{
    obs::tail::armTail(4);
    // Offer 20 traces in an order that exercises both heap growth and
    // eviction: ascending then interleaved.
    for (std::uint64_t i = 1; i <= 10; ++i)
        obs::tail::detail::offerTrace(fabricate(i, i * 1000));
    for (std::uint64_t i = 20; i > 10; --i)
        obs::tail::detail::offerTrace(fabricate(i, i * 1000));
    const auto snap = obs::tail::snapshotTail();
    EXPECT_EQ(totalsOf(snap),
              (std::vector<std::uint64_t>{20000, 19000, 18000, 17000}));
}

TEST_F(TailReservoirTest, FloorRejectsFastEvictsSlow)
{
    obs::tail::armTail(3);
    obs::tail::detail::offerTrace(fabricate(1, 10000));
    obs::tail::detail::offerTrace(fabricate(2, 20000));
    obs::tail::detail::offerTrace(fabricate(3, 30000));
    // Full at {30,20,10}us: a faster trace must bounce off the floor…
    obs::tail::detail::offerTrace(fabricate(4, 5000));
    EXPECT_EQ(totalsOf(obs::tail::snapshotTail()),
              (std::vector<std::uint64_t>{30000, 20000, 10000}));
    // …and a slower one must evict the current minimum.
    obs::tail::detail::offerTrace(fabricate(5, 40000));
    EXPECT_EQ(totalsOf(obs::tail::snapshotTail()),
              (std::vector<std::uint64_t>{40000, 30000, 20000}));
}

TEST_F(TailReservoirTest, ConcurrentInsertAndMergeKeepTopK)
{
    constexpr std::uint64_t kThreads = 4;
    constexpr std::uint64_t kPerThread = 200;
    obs::tail::armTail(8);
    // Distinct totals 1..800; each thread fills its own reservoir
    // while the main thread keeps merging snapshots.
    std::vector<std::thread> workers;
    for (std::uint64_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const std::uint64_t total = (i * kThreads + t + 1);
                obs::tail::detail::offerTrace(
                    fabricate(total, total * 100));
            }
        });
    }
    for (int i = 0; i < 50; ++i) {
        const auto snap = obs::tail::snapshotTail();
        EXPECT_LE(snap.size(), 8u);
        for (std::size_t j = 1; j < snap.size(); ++j)
            EXPECT_GE(snap[j - 1]->totalNs(), snap[j]->totalNs());
    }
    for (auto &w : workers)
        w.join();
    // Final merge: exactly the 8 slowest of the 800 offered.
    std::vector<std::uint64_t> want;
    for (std::uint64_t total = 800; total > 792; --total)
        want.push_back(total * 100);
    EXPECT_EQ(totalsOf(obs::tail::snapshotTail()), want);
}

TEST_F(TailReservoirTest, ArmDisarmToggle)
{
    // Disarmed: every hook is a no-op that returns "not traced".
    EXPECT_FALSE(obs::tail::tailArmed());
    EXPECT_EQ(obs::tail::beginRequest(0, false, obs::nowNanos()), 0u);
    EXPECT_EQ(obs::tail::endRequest(), nullptr);
    EXPECT_EQ(obs::tail::tailConsidered(), 0u);

    obs::tail::armTail(2);
    EXPECT_TRUE(obs::tail::tailArmed());
    EXPECT_EQ(obs::tail::tailK(), 2u);
    EXPECT_NE(obs::tail::beginRequest(0, false, obs::nowNanos()), 0u);
    PendingTrace p = obs::tail::endRequest();
    ASSERT_NE(p, nullptr);
    obs::tail::finishRequest(std::move(p), obs::nowNanos());
    EXPECT_EQ(obs::tail::tailConsidered(), 1u);
    EXPECT_EQ(obs::tail::snapshotTail().size(), 1u);

    // Disarm: tracing stops, but the reservoir keeps its contents so
    // a post-mortem `stats tail` still works.
    obs::tail::disarmTail();
    EXPECT_EQ(obs::tail::beginRequest(0, false, obs::nowNanos()), 0u);
    EXPECT_EQ(obs::tail::endRequest(), nullptr);
    EXPECT_EQ(obs::tail::tailConsidered(), 1u);
    EXPECT_EQ(obs::tail::snapshotTail().size(), 1u);

    // Re-arming starts a fresh window.
    obs::tail::armTail(2);
    EXPECT_EQ(obs::tail::tailConsidered(), 0u);
    EXPECT_TRUE(obs::tail::snapshotTail().empty());
}

TEST_F(TailReservoirTest, SerialSwitchAttributionThroughRuntime)
{
    tm::Runtime::get().configure(tm::RuntimeCfg{});
    obs::tail::armTail(8);
    ASSERT_NE(obs::tail::beginRequest(7, true, obs::nowNanos()), 0u);
    obs::tail::noteShard(3);

    // A relaxed transaction that hits an unsafe op: attempt 1 must
    // record a serial-switch with the unsafeOp site as its cause,
    // attempt 2 a serial commit.
    static const tm::TxnAttr attr{"tail-test-unsafe",
                                  tm::TxnKind::Relaxed};
    tm::run(attr, [](tm::TxDesc &d) { tm::unsafeOp(d, "test-unsafe"); });

    PendingTrace p = obs::tail::endRequest();
    ASSERT_NE(p, nullptr);
    obs::tail::finishRequest(std::move(p), obs::nowNanos());

    const auto snap = obs::tail::snapshotTail();
    ASSERT_EQ(snap.size(), 1u);
    const RequestTrace &t = *snap[0];
    EXPECT_EQ(t.worker, 7u);
    EXPECT_EQ(t.shard, 3u);
    EXPECT_TRUE(t.binary);
    ASSERT_EQ(t.spans.size(), 5u);

    EXPECT_EQ(t.spans[0].kind, SpanKind::Parse);
    EXPECT_EQ(t.spans[1].kind, SpanKind::Exec);
    EXPECT_GE(t.spans[1].t1, t.spans[1].t0);

    EXPECT_EQ(t.spans[2].kind, SpanKind::Tx);
    EXPECT_EQ(t.spans[2].attempt, 1u);
    EXPECT_EQ(t.spans[2].outcome, TxOutcome::Switch);
    EXPECT_FALSE(t.spans[2].serial);
    EXPECT_STREQ(t.spans[2].site, "tail-test-unsafe");
    EXPECT_STREQ(t.spans[2].cause, "test-unsafe");

    EXPECT_EQ(t.spans[3].kind, SpanKind::Tx);
    EXPECT_EQ(t.spans[3].attempt, 2u);
    EXPECT_EQ(t.spans[3].outcome, TxOutcome::Commit);
    EXPECT_TRUE(t.spans[3].serial);

    EXPECT_EQ(t.spans[4].kind, SpanKind::Flush);
    EXPECT_GE(t.spans[4].t1, t.spans[4].t0);
    EXPECT_GT(t.totalNs(), 0u);
}

TEST_F(TailReservoirTest, RenderersAgreeWithSnapshot)
{
    obs::tail::armTail(4);
    obs::tail::setTailLabel("IT-test", "gcc-eager");
    obs::tail::detail::offerTrace(fabricate(42, 5000));
    const std::string ascii = obs::tail::tailAsciiRows();
    EXPECT_NE(ascii.find("STAT tail_armed 1"), std::string::npos);
    EXPECT_NE(ascii.find("STAT tail_kept 1"), std::string::npos);
    EXPECT_NE(ascii.find("STAT tail0 id=42"), std::string::npos);
    const std::string json = obs::tail::tailToJson();
    EXPECT_NE(json.find("\"schema\":\"tmemc-tail-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"branch\":\"IT-test\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":42"), std::string::npos);
}

// ----------------------------------------------------------------------
// End to end: a fault-injected slow shard surfaces in `stats tail`.
// ----------------------------------------------------------------------

TEST(TailServerRoundTrip, SlowShardSurfacesWithFullSpanChain)
{
    constexpr std::uint32_t kShards = 4;
    tm::Runtime::get().configure(tm::RuntimeCfg{});
    obs::tail::resetTail();
    obs::tail::armTail(16);

    mc::Settings settings;
    settings.maxBytes = 16 * 1024 * 1024;
    // The IT branch switches serial on unsafe ops mid-flight, so the
    // traced requests carry deterministic serial-switch attribution.
    auto cache = mc::makeShardedCache("IT", settings, 2, kShards);
    ASSERT_NE(cache, nullptr);

    // Make the hot key's shard slow: every op entering it stalls.
    const std::uint32_t shard =
        mc::shardOfHash(mc::hashKey("hot", 3), kShards);
    fault::Policy policy;
    policy.trigger = fault::Trigger::EveryNth;
    policy.n = 1;
    policy.delayUs = 3000;
    fault::ScopedFault slow(mc::shardFaultSite(shard), policy);

    net::ServerCfg cfg;
    cfg.port = 0;
    cfg.workers = 2;
    net::Server server(*cache, cfg);
    ASSERT_TRUE(server.start());
    net::Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", server.port()));

    // Sequential round trips: each reply is flushed (and its trace
    // offered) before the next request, so `stats tail` sees them.
    EXPECT_EQ(c.roundTripAscii("set hot 0 0 5\r\nhello\r\n"),
              "STORED\r\n");
    EXPECT_EQ(c.roundTripAscii("get hot\r\n"),
              "VALUE hot 0 5\r\nhello\r\nEND\r\n");
    const std::string stats = c.roundTripAscii("stats tail\r\n");
    server.stop();

    EXPECT_NE(stats.find("STAT tail_armed 1"), std::string::npos);
    ASSERT_NE(stats.find("STAT tail0 "), std::string::npos)
        << "no kept requests in:\n"
        << stats;

    // The slowest request must be one of the two stalled commands,
    // attributed to the slow shard, with its whole chain present.
    const std::size_t row0 = stats.find("STAT tail0 ");
    const std::string row =
        stats.substr(row0, stats.find("\r\n", row0) - row0);
    EXPECT_NE(row.find("shard=" + std::to_string(shard)),
              std::string::npos)
        << row;
    EXPECT_NE(row.find("spans=parse:"), std::string::npos) << row;
    EXPECT_NE(row.find(";exec:"), std::string::npos) << row;
    EXPECT_NE(row.find("tx1:"), std::string::npos) << row;
    EXPECT_NE(row.find(";flush:"), std::string::npos) << row;
    // Abort attribution over the wire: the IT branch's in-flight
    // switch shows up as a serial-switch span with its unsafe-op
    // cause, somewhere in the kept set.
    EXPECT_NE(stats.find(":serial-switch:"), std::string::npos)
        << stats;

    obs::tail::disarmTail();
    obs::tail::resetTail();
}

} // namespace
