/**
 * @file
 * Unit tests for the log-bucketed latency histogram (obs/hist.h):
 * bucket-mapping boundaries and monotonicity, the ~3% relative-error
 * bound that justifies reporting quantiles from bucket midpoints,
 * merge associativity/commutativity (the property that makes
 * per-thread / per-shard / per-process views interchangeable), and
 * concurrent record() vs snapshot() (run under TSan in CI).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/hist.h"

namespace tmemc::obs
{
namespace
{

TEST(HistBuckets, ExactBelowOneOctave)
{
    // Values below kSubBuckets get their own bucket: zero error.
    for (std::uint64_t v = 0; v < kSubBuckets; ++v) {
        EXPECT_EQ(bucketOf(v), v);
        EXPECT_EQ(bucketLow(static_cast<unsigned>(v)), v);
        EXPECT_EQ(bucketMid(static_cast<unsigned>(v)), v);
    }
}

TEST(HistBuckets, MonotonicOverPowersOfTwo)
{
    std::vector<std::uint64_t> probes;
    for (unsigned bit = 0; bit <= 37; ++bit) {
        const std::uint64_t p = std::uint64_t{1} << bit;
        probes.insert(probes.end(), {p - 1, p, p + 1});
    }
    std::sort(probes.begin(), probes.end());

    unsigned prev = 0;
    for (const std::uint64_t v : probes) {
        const unsigned idx = bucketOf(v);
        EXPECT_GE(idx, prev) << "value " << v;
        EXPECT_LT(idx, kNumBuckets) << "value " << v;
        prev = idx;
    }
}

TEST(HistBuckets, LowIsInverseOfBucketOf)
{
    // bucketLow(i) must be the smallest value mapping to bucket i:
    // itself maps there, its predecessor maps strictly lower.
    for (unsigned i = 0; i < kNumBuckets; ++i) {
        const std::uint64_t low = bucketLow(i);
        if (low > kMaxTrackable)
            break;  // Clamp region: several indexes share the top.
        EXPECT_EQ(bucketOf(low), i);
        if (low > 0) {
            EXPECT_EQ(bucketOf(low - 1), i - 1);
        }
    }
}

TEST(HistBuckets, ClampAtMaxTrackable)
{
    const unsigned top = bucketOf(kMaxTrackable);
    EXPECT_EQ(bucketOf(kMaxTrackable + 1), top);
    EXPECT_EQ(bucketOf(~std::uint64_t{0}), top);
    EXPECT_LT(top, kNumBuckets);
}

TEST(HistBuckets, RelativeErrorBound)
{
    // The midpoint of any bucket is within one sub-bucket width of
    // every value in the bucket: relative error <= 1/(2*kSubBuckets)
    // of the bucket's low bound, i.e. ~1.6% for kSubBits=5.
    for (std::uint64_t v = 1; v <= kMaxTrackable;
         v += 1 + v / 7 /* coarse sweep, hits every octave */) {
        const unsigned idx = bucketOf(v);
        const double mid = static_cast<double>(bucketMid(idx));
        const double err =
            std::abs(mid - static_cast<double>(v)) /
            static_cast<double>(v);
        EXPECT_LE(err, 1.0 / kSubBuckets) << "value " << v;
    }
}

HistCounts
countsOf(std::initializer_list<std::uint64_t> values)
{
    Histogram h;
    for (const std::uint64_t v : values)
        h.record(v);
    return h.snapshot();
}

TEST(HistMerge, AssociativeAndCommutative)
{
    const HistCounts a = countsOf({1, 5, 900});
    const HistCounts b = countsOf({64, 64, 1u << 20});
    const HistCounts c = countsOf({kMaxTrackable, 0, 33});

    HistCounts ab = a;
    ab.add(b);
    HistCounts ab_c = ab;
    ab_c.add(c);

    HistCounts bc = b;
    bc.add(c);
    HistCounts a_bc = a;
    a_bc.add(bc);

    HistCounts ba = b;
    ba.add(a);

    EXPECT_EQ(ab_c.buckets, a_bc.buckets);
    EXPECT_EQ(ab_c.count, a_bc.count);
    EXPECT_EQ(ab.buckets, ba.buckets);
    EXPECT_EQ(ab_c.count, 9u);
}

TEST(HistCountsTest, QuantileAndMax)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v * 1000);  // 1us .. 1000us, uniform.
    const HistCounts counts = h.snapshot();
    EXPECT_EQ(counts.count, 1000u);

    // Bucketing error is ~3%; allow 10% slack on the quantiles.
    EXPECT_NEAR(static_cast<double>(counts.quantile(0.50)), 500e3,
                50e3);
    EXPECT_NEAR(static_cast<double>(counts.quantile(0.99)), 990e3,
                99e3);
    EXPECT_NEAR(static_cast<double>(counts.maxValue()), 1000e3, 100e3);

    const HistSummary s = counts.summary();
    EXPECT_EQ(s.count, 1000u);
    EXPECT_NEAR(s.p50Us, 500.0, 50.0);
    EXPECT_NEAR(s.p99Us, 990.0, 99.0);
    EXPECT_GE(s.p999Us, s.p99Us);
    EXPECT_GE(s.maxUs, s.p999Us);
}

TEST(HistCountsTest, EmptyIsZero)
{
    const HistCounts counts = Histogram{}.snapshot();
    EXPECT_EQ(counts.count, 0u);
    EXPECT_EQ(counts.quantile(0.99), 0u);
    EXPECT_EQ(counts.maxValue(), 0u);
    EXPECT_EQ(counts.summary().maxUs, 0.0);
}

TEST(HistConcurrent, RecordVsSnapshot)
{
    // N writers hammer record() while a reader snapshots; afterwards
    // the fold must account for every sample exactly once. TSan (CI's
    // sanitize job) checks the relaxed-atomics discipline.
    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 50000;

    Histogram h;
    std::atomic<bool> stop{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const HistCounts c = h.snapshot();
            EXPECT_LE(c.count, kThreads * kPerThread);
        }
    });

    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t) {
        writers.emplace_back([&h, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                h.record((t + 1) * 100 + (i & 1023));
        });
    }
    for (auto &w : writers)
        w.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(h.snapshot().count, kThreads * kPerThread);

    h.reset();
    EXPECT_EQ(h.snapshot().count, 0u);
}

} // namespace
} // namespace tmemc::obs
