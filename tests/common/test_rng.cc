/**
 * @file
 * Unit tests for the deterministic RNG and Zipf sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace
{

using tmemc::XorShift128;
using tmemc::ZipfSampler;

TEST(XorShift128, DeterministicForSameSeed)
{
    XorShift128 a(42);
    XorShift128 b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(XorShift128, DifferentSeedsDiverge)
{
    XorShift128 a(1);
    XorShift128 b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(XorShift128, ZeroSeedIsRemapped)
{
    XorShift128 a(0);
    // Must not be a constant stream.
    const std::uint64_t x = a.next();
    const std::uint64_t y = a.next();
    EXPECT_NE(x, y);
}

TEST(XorShift128, BoundedStaysInRange)
{
    XorShift128 a(7);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = a.nextBounded(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(XorShift128, DoubleStaysInUnitInterval)
{
    XorShift128 a(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = a.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(XorShift128, BoundedIsRoughlyUniform)
{
    XorShift128 a(1234);
    constexpr int buckets = 10;
    constexpr int samples = 100000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < samples; ++i)
        counts[a.nextBounded(buckets)]++;
    for (int c : counts) {
        EXPECT_GT(c, samples / buckets * 0.9);
        EXPECT_LT(c, samples / buckets * 1.1);
    }
}

TEST(ZipfSampler, RanksWithinUniverse)
{
    XorShift128 rng(5);
    ZipfSampler zipf(100, 0.99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 100u);
}

TEST(ZipfSampler, SkewPrefersLowRanks)
{
    XorShift128 rng(6);
    ZipfSampler zipf(1000, 0.99);
    int low = 0;
    constexpr int samples = 20000;
    for (int i = 0; i < samples; ++i)
        low += (zipf.sample(rng) < 10);
    // With theta=0.99 over 1000 keys, the top-10 keys should soak up
    // a large share (analytically ~39%); uniform would give 1%.
    EXPECT_GT(low, samples / 5);
}

TEST(ZipfSampler, ZeroThetaIsUniform)
{
    XorShift128 rng(8);
    ZipfSampler zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    constexpr int samples = 100000;
    for (int i = 0; i < samples; ++i)
        counts[zipf.sample(rng)]++;
    for (int c : counts) {
        EXPECT_GT(c, samples / 10 * 0.9);
        EXPECT_LT(c, samples / 10 * 1.1);
    }
}

} // namespace
