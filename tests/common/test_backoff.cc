/**
 * @file
 * Unit tests for backoff and padding utilities.
 */

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "common/padded.h"

namespace
{

using tmemc::ExpBackoff;
using tmemc::Padded;

TEST(ExpBackoff, PauseTerminates)
{
    ExpBackoff b(4, 64);
    for (int i = 0; i < 100; ++i)
        b.pause();  // Window saturates; must not hang.
    SUCCEED();
}

TEST(ExpBackoff, ResetRestoresWindow)
{
    ExpBackoff b(4, 1 << 20);
    for (int i = 0; i < 10; ++i)
        b.pause();
    b.reset();
    b.pause();
    SUCCEED();
}

TEST(Padded, OccupiesFullCacheLine)
{
    static_assert(sizeof(Padded<int>) >= tmemc::cachelineBytes);
    static_assert(alignof(Padded<int>) == tmemc::cachelineBytes);
    Padded<int> p;
    *p = 41;
    EXPECT_EQ(*p + 1, 42);
}

TEST(Padded, ArrayElementsDoNotShareLines)
{
    Padded<int> arr[2];
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[0]);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[1]);
    EXPECT_GE(b - a, tmemc::cachelineBytes);
}

} // namespace
