/**
 * @file
 * Fault-injection framework unit tests: trigger policies, action
 * payloads, counters, determinism, and the disarmed fast path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <vector>

#include "common/fault.h"

namespace
{

using namespace tmemc;

class FaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::disarmAll(); }
};

TEST_F(FaultTest, DisabledByDefault)
{
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::shouldFail("nothing.armed"));
    EXPECT_FALSE(fault::consult("nothing.armed").fire);
    EXPECT_EQ(fault::hits("nothing.armed"), 0u);
}

TEST_F(FaultTest, ArmDisarmTogglesEnabled)
{
    fault::arm("site.a", fault::Policy{});
    EXPECT_TRUE(fault::enabled());
    fault::arm("site.b", fault::Policy{});
    fault::disarm("site.a");
    EXPECT_TRUE(fault::enabled());  // b still armed.
    fault::disarm("site.b");
    EXPECT_FALSE(fault::enabled());
}

TEST_F(FaultTest, UnarmedSiteNeverFiresEvenWhileOthersAre)
{
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    fault::arm("site.armed", p);
    // enabled() is global, so other sites reach consultSlow — they
    // must still stay quiet.
    EXPECT_FALSE(fault::shouldFail("site.other"));
    EXPECT_TRUE(fault::shouldFail("site.armed"));
}

TEST_F(FaultTest, EveryNthFiresOnSchedule)
{
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 3;
    fault::arm("site.nth", p);
    std::vector<bool> fired;
    for (int i = 0; i < 9; ++i)
        fired.push_back(fault::shouldFail("site.nth"));
    // Fires on hits 3, 6, 9 (every n-th).
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));
    EXPECT_EQ(fault::hits("site.nth"), 9u);
    EXPECT_EQ(fault::fires("site.nth"), 3u);
}

TEST_F(FaultTest, EveryNthWithSkipFirstDelaysTheSchedule)
{
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 2;
    p.skipFirst = 3;
    fault::arm("site.skip", p);
    std::vector<bool> fired;
    for (int i = 0; i < 8; ++i)
        fired.push_back(fault::shouldFail("site.skip"));
    // Hits 1..3 pass, then every 2nd post-skip hit fires (5, 7, ...).
    EXPECT_EQ(fired, (std::vector<bool>{false, false, false, false, true,
                                        false, true, false}));
}

TEST_F(FaultTest, OneShotFiresExactlyOnce)
{
    fault::Policy p;
    p.trigger = fault::Trigger::OneShot;
    p.skipFirst = 2;
    fault::arm("site.once", p);
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i)
        fired.push_back(fault::shouldFail("site.once"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                        false}));
    EXPECT_EQ(fault::fires("site.once"), 1u);
}

TEST_F(FaultTest, ProbabilityIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        fault::Policy p;
        p.trigger = fault::Trigger::Probability;
        p.probability = 0.5;
        p.seed = seed;
        fault::arm("site.prob", p);
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i)
            fired.push_back(fault::shouldFail("site.prob"));
        fault::disarm("site.prob");
        return fired;
    };
    const auto a = run(42);
    const auto b = run(42);
    const auto c = run(43);
    EXPECT_EQ(a, b);  // Same seed: identical schedule.
    EXPECT_NE(a, c);  // Different seed: different schedule.
    // p=0.5 over 64 draws: both outcomes must appear.
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
}

TEST_F(FaultTest, ProbabilityExtremes)
{
    fault::Policy p;
    p.trigger = fault::Trigger::Probability;
    p.probability = 0.0;
    fault::arm("site.never", p);
    p.probability = 1.0;
    fault::arm("site.always", p);
    for (int i = 0; i < 16; ++i) {
        EXPECT_FALSE(fault::shouldFail("site.never"));
        EXPECT_TRUE(fault::shouldFail("site.always"));
    }
}

TEST_F(FaultTest, ActionCarriesErrnoAndByteCap)
{
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.errnoValue = EMFILE;
    p.byteCap = 7;
    fault::arm("site.payload", p);
    const fault::Action a = fault::consult("site.payload");
    EXPECT_TRUE(a.fire);
    EXPECT_EQ(a.errnoValue, EMFILE);
    EXPECT_EQ(a.byteCap, 7u);
}

TEST_F(FaultTest, ActionCarriesDelayPayload)
{
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.delayUs = 1234;
    fault::arm("site.delay", p);
    const fault::Action a = fault::consult("site.delay");
    EXPECT_TRUE(a.fire);
    EXPECT_EQ(a.delayUs, 1234u);
    EXPECT_EQ(a.errnoValue, 0);  // Delay-only schedules carry no errno.
}

TEST_F(FaultTest, MaybeDelayStallsOnlyFiredActionsWithDelay)
{
    // A fired action with a delay must actually stall the caller.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.delayUs = 20000;  // 20ms: far above scheduler noise.
    fault::arm("site.stall", p);
    const auto t0 = std::chrono::steady_clock::now();
    fault::maybeDelay(fault::consult("site.stall"));
    const auto stalled =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(stalled, 20000);

    // Quiet actions and zero-delay fires return immediately (bounded
    // generously — this only guards against sleeping).
    fault::Action quiet{};
    quiet.delayUs = 1000000;
    const auto t1 = std::chrono::steady_clock::now();
    fault::maybeDelay(quiet);  // fire == false: no stall.
    fault::maybeDelay(fault::Action{true, 0, 0, 0});
    const auto fast =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t1)
            .count();
    EXPECT_LT(fast, 500);
}

TEST_F(FaultTest, ConnectSiteFailsTheClientDial)
{
    // net.sys.connect makes a dial fail with the policy errno before
    // the kernel is asked — the hook the cluster's partition
    // schedules use. Dial a plainly invalid endpoint so a bug that
    // skips the site still fails fast rather than passing falsely.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.errnoValue = EHOSTUNREACH;
    fault::arm("net.sys.connect", p);
    const fault::Action a = fault::consult("net.sys.connect");
    EXPECT_TRUE(a.fire);
    EXPECT_EQ(a.errnoValue, EHOSTUNREACH);
    EXPECT_EQ(fault::fires("net.sys.connect"), 1u);
}

TEST_F(FaultTest, RearmResetsCounters)
{
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    fault::arm("site.rearm", p);
    (void)fault::shouldFail("site.rearm");
    (void)fault::shouldFail("site.rearm");
    EXPECT_EQ(fault::hits("site.rearm"), 2u);
    fault::arm("site.rearm", p);
    EXPECT_EQ(fault::hits("site.rearm"), 0u);
}

TEST_F(FaultTest, ScopedFaultDisarmsOnExit)
{
    {
        fault::Policy p;
        p.trigger = fault::Trigger::EveryNth;
        p.n = 1;
        fault::ScopedFault sf("site.scoped", p);
        EXPECT_TRUE(fault::enabled());
        EXPECT_TRUE(fault::shouldFail("site.scoped"));
        EXPECT_EQ(sf.firedCount(), 1u);
        EXPECT_EQ(sf.hitCount(), 1u);
    }
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::shouldFail("site.scoped"));
}

} // namespace
