/**
 * @file
 * Tests for the memslap-like workload driver: determinism, mix
 * accounting, and hit-rate behaviour.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mc/cache_iface.h"
#include "tm/api.h"
#include "workload/memslap.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;
using namespace tmemc::workload;

std::unique_ptr<CacheIface>
freshCache(const char *branch = "Baseline", std::uint32_t threads = 4)
{
    tm::Runtime::get().configure(tm::RuntimeCfg{});
    Settings s;
    s.maxBytes = 64 * 1024 * 1024;
    return makeCache(branch, s, threads);
}

TEST(Memslap, KeyFormattingIsFixedWidthAndUnique)
{
    char a[64];
    char b[64];
    formatKey(a, 23, 0, 1);
    formatKey(b, 23, 0, 2);
    EXPECT_EQ(std::strlen(a), 23u);
    EXPECT_EQ(std::strlen(b), 23u);
    EXPECT_STRNE(a, b);
    formatKey(b, 23, 1, 1);  // Different thread, same index.
    EXPECT_STRNE(a, b);
    formatKey(b, 23, 0, 1);
    EXPECT_STREQ(a, b);  // Deterministic.
}

TEST(Memslap, ExecutesExactOpBudget)
{
    auto cache = freshCache();
    MemslapCfg cfg;
    cfg.concurrency = 3;
    cfg.executeNumber = 1000;
    cfg.windowSize = 500;
    const auto result = runMemslap(*cache, cfg);
    EXPECT_EQ(result.ops, 3000u);
    // gets + sets == measured ops + the warm phase's window stores
    // (default mix has no arith/delete traffic).
    const auto ts = cache->threadStats();
    EXPECT_EQ(ts.cmdGet + ts.cmdSet, 3000u + 3 * 500u);
    EXPECT_GE(ts.cmdSet, 3 * 500u);
}

TEST(Memslap, WarmWindowMakesGetsHit)
{
    auto cache = freshCache();
    MemslapCfg cfg;
    cfg.concurrency = 2;
    cfg.executeNumber = 2000;
    cfg.windowSize = 1000;
    const auto result = runMemslap(*cache, cfg);
    // Every key was preloaded and the cache is big enough: ~no misses.
    EXPECT_EQ(result.misses, 0u);
    EXPECT_GT(result.hits, 0u);
    EXPECT_EQ(result.failures, 0u);
}

TEST(Memslap, MixFractionsRoughlyHonoured)
{
    auto cache = freshCache();
    MemslapCfg cfg;
    cfg.concurrency = 2;
    cfg.executeNumber = 10000;
    cfg.windowSize = 1000;
    cfg.setFraction = 0.3;
    runMemslap(*cache, cfg);
    const auto ts = cache->threadStats();
    const double sets =
        static_cast<double>(ts.cmdSet) - 2 * 1000;  // minus warm phase
    EXPECT_NEAR(sets / 20000.0, 0.3, 0.02);
}

TEST(Memslap, ArithAndDeleteMixesExercised)
{
    auto cache = freshCache();
    MemslapCfg cfg;
    cfg.concurrency = 2;
    cfg.executeNumber = 5000;
    cfg.windowSize = 500;
    cfg.setFraction = 0.2;
    cfg.arithFraction = 0.1;
    cfg.deleteFraction = 0.1;
    runMemslap(*cache, cfg);
    const auto ts = cache->threadStats();
    EXPECT_GT(ts.incrHits + ts.incrMisses, 0u);
    EXPECT_GT(ts.deleteHits + ts.deleteMisses, 0u);
}

TEST(Memslap, DeterministicAcrossRuns)
{
    // Same seed, same branch => identical hit/miss accounting.
    MemslapCfg cfg;
    cfg.concurrency = 2;
    cfg.executeNumber = 3000;
    cfg.windowSize = 400;
    cfg.setFraction = 0.2;
    cfg.seed = 777;

    auto c1 = freshCache();
    const auto r1 = runMemslap(*c1, cfg);
    c1.reset();
    auto c2 = freshCache();
    const auto r2 = runMemslap(*c2, cfg);
    EXPECT_EQ(r1.hits, r2.hits);
    EXPECT_EQ(r1.misses, r2.misses);
}

TEST(Memslap, ZipfSkewsTowardsHotKeys)
{
    auto cache = freshCache();
    MemslapCfg cfg;
    cfg.concurrency = 1;
    cfg.executeNumber = 5000;
    cfg.windowSize = 1000;
    cfg.zipfTheta = 0.99;
    const auto r = runMemslap(*cache, cfg);
    EXPECT_EQ(r.misses, 0u);  // Still all preloaded.
}

} // namespace
