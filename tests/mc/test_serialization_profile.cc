/**
 * @file
 * The paper's Tables 1-4 as executable assertions: driving the same
 * workload through the branch ladder must reproduce the serialization
 * taxonomy's shape —
 *
 *  - stage 3 (IP/IT/Callable): transactions start serial (volatile
 *    probes, refcount RMW) and switch in flight (library calls), with
 *    IT serializing a larger fraction than IP;
 *  - Max: the start-serial causes tied to volatiles/refcounts vanish,
 *    total transaction count grows (refcount and volatile transaction
 *    expressions), library-driven switches remain;
 *  - Lib: library-driven serialization disappears;
 *  - onCommit: no transaction starts serial or switches in flight,
 *    and the branch runs in the NoLock runtime (Figure 10).
 */

#include <gtest/gtest.h>

#include <string>

#include "mc/cache_iface.h"
#include "tm/api.h"
#include "workload/memslap.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

/** Run a small fixed workload on a branch; return TM stats. */
tm::StatsSnapshot
profileBranch(const std::string &branch, bool use_serial_lock = true)
{
    tm::RuntimeCfg rcfg;
    rcfg.useSerialLock = use_serial_lock;
    if (!use_serial_lock)
        rcfg.cm = tm::CmKind::NoCM;
    tm::Runtime::get().configure(rcfg);
    tm::Runtime::get().resetStats();

    Settings s;
    s.maxBytes = 16 * 1024 * 1024;
    s.hashPowerInit = 10;
    auto cache = makeCache(branch, s, 2);
    EXPECT_NE(cache, nullptr);

    workload::MemslapCfg w;
    w.concurrency = 2;
    w.executeNumber = 2000;
    w.windowSize = 1000;
    workload::runMemslap(*cache, w);
    cache.reset();  // Join maintenance threads before snapshotting.
    return tm::Runtime::get().snapshot();
}

TEST(SerializationProfile, LockBranchesRunNoTransactions)
{
    const auto snap = profileBranch("Baseline");
    EXPECT_EQ(snap.total.txns, 0u);
    const auto snap2 = profileBranch("Semaphore");
    EXPECT_EQ(snap2.total.txns, 0u);
}

TEST(SerializationProfile, Stage3SerializesHeavily)
{
    const auto ip = profileBranch("IP");
    const auto it = profileBranch("IT");
    // Both branches run plenty of transactions.
    EXPECT_GT(ip.total.txns, 10000u);
    EXPECT_GT(it.total.txns, 10000u);
    // Start-serial and in-flight switches are both present (Table 1).
    EXPECT_GT(ip.total.startSerial, 0u);
    EXPECT_GT(it.total.startSerial, 0u);
    EXPECT_GT(ip.total.inflightSwitch, 0u);
    // IT wraps item critical sections in transactions, so a larger
    // fraction of its transactions begins serial (36% vs 5.6% in the
    // paper's Table 1).
    const double ip_frac = static_cast<double>(ip.total.startSerial) /
                           static_cast<double>(ip.total.txns);
    const double it_frac = static_cast<double>(it.total.startSerial) /
                           static_cast<double>(it.total.txns);
    EXPECT_GT(it_frac, ip_frac);
    // IP issues more transactions (boolean item locks are two
    // mini-transactions per critical section).
    EXPECT_GT(ip.total.txns, it.total.txns);
}

TEST(SerializationProfile, CallableAnnotationChangesNothing)
{
    // GCC infers safety of visible bodies, so callable annotations do
    // not change serialization (the paper's Table 1 finding).
    const auto ip = profileBranch("IP");
    const auto ipc = profileBranch("IP-Callable");
    // Compare absolute serialization events: they are per-operation
    // and near-deterministic, unlike the total transaction count,
    // which trylock spin retries inflate noisily.
    const double e1 = static_cast<double>(ip.total.startSerial +
                                          ip.total.inflightSwitch);
    const double e2 = static_cast<double>(ipc.total.startSerial +
                                          ipc.total.inflightSwitch);
    EXPECT_GT(e1, 0.0);
    EXPECT_NEAR(e1 / e2, 1.0, 0.15);
}

/** Transactions from the refcount/volatile transaction expressions. */
std::uint64_t
miniTxnCount(const tm::StatsSnapshot &snap)
{
    std::uint64_t n = 0;
    for (const auto &[attr, block] : snap.perSite) {
        const std::string name = attr->name;
        if (name.find("-expr") != std::string::npos)
            n += block.txns;
    }
    return n;
}

TEST(SerializationProfile, MaxStageRemovesVolatileAndRmwSerialization)
{
    const auto cal = profileBranch("IP-Callable");
    const auto max = profileBranch("IP-Max");
    // Transaction expressions for refcounts/volatiles appear at Max
    // and inflate the transaction count (Table 2: 10.5M -> 24.1M).
    EXPECT_EQ(miniTxnCount(cal), 0u);
    EXPECT_GT(miniTxnCount(max), 1000u);
    // Start-serial causes drop dramatically (Table 2: IP-Max has 0).
    const double cal_start = static_cast<double>(cal.total.startSerial) /
                             static_cast<double>(cal.total.txns);
    const double max_start = static_cast<double>(max.total.startSerial) /
                             static_cast<double>(max.total.txns);
    EXPECT_LT(max_start, cal_start / 4);
    // Library calls still switch transactions in flight.
    EXPECT_GT(max.total.inflightSwitch, 0u);
}

TEST(SerializationProfile, LibStageRemovesLibrarySerialization)
{
    const auto max = profileBranch("IT-Max");
    const auto lib = profileBranch("IT-Lib");
    const double max_ser =
        static_cast<double>(max.total.startSerial +
                            max.total.inflightSwitch) /
        static_cast<double>(max.total.txns);
    const double lib_ser =
        static_cast<double>(lib.total.startSerial +
                            lib.total.inflightSwitch) /
        static_cast<double>(lib.total.txns);
    EXPECT_LT(lib_ser, max_ser / 4);
}

TEST(SerializationProfile, OnCommitStageEliminatesSerialization)
{
    for (const char *branch : {"IP-onCommit", "IT-onCommit"}) {
        const auto snap = profileBranch(branch);
        EXPECT_EQ(snap.total.startSerial, 0u) << branch;
        EXPECT_EQ(snap.total.inflightSwitch, 0u) << branch;
        EXPECT_EQ(snap.total.serialCommits, snap.total.abortSerial)
            << branch;  // Only progress serialization remains.
    }
}

TEST(SerializationProfile, OnCommitBranchesRunInNoLockRuntime)
{
    // Figure 10: once no transaction can serialize, the global
    // readers/writer lock can be removed entirely.
    for (const char *branch : {"IP-onCommit", "IT-onCommit"}) {
        const auto snap = profileBranch(branch, /*use_serial_lock=*/false);
        EXPECT_GT(snap.total.commits, 10000u) << branch;
        EXPECT_EQ(snap.total.startSerial, 0u) << branch;
        EXPECT_EQ(snap.total.inflightSwitch, 0u) << branch;
        EXPECT_EQ(snap.total.serialCommits, 0u) << branch;
    }
}

TEST(SerializationProfile, BlameReportNamesTheUnsafeOps)
{
    // The tool the paper's authors wished for: at stage 3, in-flight
    // switches must be attributed to the concrete unsafe operations
    // (memcmp / lock_incr / ...) at their sites.
    const auto snap = profileBranch("IT");
    std::uint64_t blamed = 0;
    bool saw_lib_or_rmw = false;
    for (const auto &[attr, causes] : snap.switchBlame) {
        for (const auto &[what, count] : causes) {
            blamed += count;
            const std::string op = what;
            if (op == "memcmp" || op == "memcpy" || op == "lock_incr" ||
                op == "volatile-read")
                saw_lib_or_rmw = true;
        }
    }
    EXPECT_EQ(blamed, snap.total.inflightSwitch);
    EXPECT_TRUE(saw_lib_or_rmw);
    const std::string report = snap.formatBlame();
    EXPECT_NE(report.find("mc:"), std::string::npos);

    // And after onCommit, the report is empty.
    const auto clean = profileBranch("IT-onCommit");
    EXPECT_NE(clean.formatBlame().find("no in-flight switches"),
              std::string::npos);
}

TEST(SerializationProfile, PerSiteProfileIdentifiesCauses)
{
    const auto snap = profileBranch("IT-Callable");
    // The execinfo-substitute must attribute serialization to sites.
    bool found_serializing_site = false;
    for (const auto &[attr, block] : snap.perSite) {
        if (block.startSerial > 0 || block.inflightSwitch > 0) {
            found_serializing_site = true;
            EXPECT_EQ(attr->kind, tm::TxnKind::Relaxed)
                << attr->name << " serialized but is atomic";
        }
    }
    EXPECT_TRUE(found_serializing_site);
    const std::string report = snap.formatProfile();
    EXPECT_NE(report.find("mc:"), std::string::npos);
}

} // namespace
