/**
 * @file
 * Robustness fuzzing of both protocol layers: random and mutated
 * inputs must never crash or corrupt the cache, only produce error
 * replies.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "mc/binary_protocol.h"
#include "mc/cache_iface.h"
#include "mc/protocol.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

std::unique_ptr<CacheIface>
freshCache()
{
    tm::Runtime::get().configure(tm::RuntimeCfg{});
    Settings s;
    s.maxBytes = 8 * 1024 * 1024;
    return makeCache("IT-onCommit", s, 1);
}

TEST(ProtocolFuzz, RandomBytesNeverCrashTextParser)
{
    auto cache = freshCache();
    XorShift128 rng(0xf022);
    for (int i = 0; i < 3000; ++i) {
        const std::size_t len = rng.nextBounded(64);
        std::string req;
        for (std::size_t j = 0; j < len; ++j)
            req.push_back(static_cast<char>(rng.nextBounded(256)));
        const std::string reply = protocolExecute(*cache, 0, req);
        EXPECT_FALSE(reply.empty());
    }
    SUCCEED();
}

TEST(ProtocolFuzz, MutatedValidCommandsNeverCrashTextParser)
{
    auto cache = freshCache();
    XorShift128 rng(0xf023);
    const std::string seeds[] = {
        "set key 0 0 5\r\nhello\r\n", "get key\r\n",
        "incr key 10\r\n",           "delete key\r\n",
        "cas key 0 0 3 42\r\nabc\r\n", "stats\r\n",
    };
    for (int i = 0; i < 3000; ++i) {
        std::string req = seeds[rng.nextBounded(std::size(seeds))];
        const int mutations = 1 + static_cast<int>(rng.nextBounded(4));
        for (int m = 0; m < mutations; ++m) {
            const std::size_t pos = rng.nextBounded(req.size());
            switch (rng.nextBounded(3)) {
              case 0:
                req[pos] = static_cast<char>(rng.nextBounded(256));
                break;
              case 1:
                req.erase(pos, 1);
                break;
              default:
                req.insert(pos, 1,
                           static_cast<char>(rng.nextBounded(256)));
                break;
            }
            if (req.empty())
                req = "x";
        }
        (void)protocolExecute(*cache, 0, req);
    }
    // The cache must still work afterwards.
    EXPECT_EQ(protocolExecute(*cache, 0, "set ok 0 0 2\r\nhi\r\n"),
              "STORED\r\n");
    EXPECT_EQ(protocolExecute(*cache, 0, "get ok\r\n"),
              "VALUE ok 0 2\r\nhi\r\nEND\r\n");
}

TEST(ProtocolFuzz, RandomFramesNeverCrashBinaryParser)
{
    auto cache = freshCache();
    XorShift128 rng(0xb17a);
    for (int i = 0; i < 3000; ++i) {
        const std::size_t len = rng.nextBounded(80);
        std::string req;
        for (std::size_t j = 0; j < len; ++j)
            req.push_back(static_cast<char>(rng.nextBounded(256)));
        (void)binaryExecute(*cache, 0, req);
    }
    SUCCEED();
}

TEST(ProtocolFuzz, MutatedValidFramesNeverCrashBinaryParser)
{
    auto cache = freshCache();
    XorShift128 rng(0xb17b);
    for (int i = 0; i < 3000; ++i) {
        std::string req = binSetRequest(
            "k" + std::to_string(rng.nextBounded(10)), "some-value");
        // Flip header and body bytes; mutated length fields that claim
        // more bytes than the buffer holds are exactly what the parser
        // must reject safely.
        const int flips = 1 + static_cast<int>(rng.nextBounded(6));
        for (int f = 0; f < flips; ++f) {
            const std::size_t pos = rng.nextBounded(req.size());
            req[pos] = static_cast<char>(rng.nextBounded(256));
        }
        (void)binaryExecute(*cache, 0, req);
    }
    // Still functional.
    BinResponse r;
    const std::string wire =
        binaryExecute(*cache, 0, binSetRequest("fine", "v"));
    ASSERT_GT(binParseResponse(wire, r), 0u);
    EXPECT_EQ(r.status, BinStatus::Ok);
}

TEST(ProtocolFuzz, HeaderLengthFieldLiesAreRejected)
{
    auto cache = freshCache();
    // keyLength > bodyLength: extras/key/value arithmetic must not
    // underflow.
    BinHeader h;
    h.magic = static_cast<std::uint8_t>(BinMagic::Request);
    h.opcode = static_cast<std::uint8_t>(BinOp::Get);
    h.keyLength = 100;
    h.extrasLength = 0;
    h.bodyLength = 4;  // Less than keyLength!
    std::string req(kBinHeaderSize + 4, '\0');
    binEncodeHeader(h, reinterpret_cast<std::uint8_t *>(req.data()));
    (void)binaryExecute(*cache, 0, req);  // Must not crash.
    SUCCEED();
}

} // namespace
