/**
 * @file
 * Tests for the memcached binary protocol (the memslap --binary path).
 */

#include <gtest/gtest.h>

#include <string>

#include "mc/binary_protocol.h"
#include "mc/cache_iface.h"
#include "tm/api.h"
#include "workload/memslap.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

class BinaryProtocolTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        Settings s;
        s.maxBytes = 8 * 1024 * 1024;
        cache_ = makeCache(GetParam(), s, 2);
        ASSERT_NE(cache_, nullptr);
    }

    BinResponse
    exec(const std::string &req)
    {
        const std::string wire = binaryExecute(*cache_, 0, req);
        BinResponse r;
        EXPECT_GT(binParseResponse(wire, r), 0u);
        return r;
    }

    std::unique_ptr<CacheIface> cache_;
};

TEST_P(BinaryProtocolTest, HeaderRoundTrips)
{
    BinHeader h;
    h.magic = static_cast<std::uint8_t>(BinMagic::Request);
    h.opcode = static_cast<std::uint8_t>(BinOp::Set);
    h.keyLength = 0x1234;
    h.extrasLength = 8;
    h.status = 0x0005;
    h.bodyLength = 0xdeadbeef;
    h.opaque = 0xcafebabe;
    h.cas = 0x0123456789abcdefull;
    std::uint8_t wire[kBinHeaderSize];
    binEncodeHeader(h, wire);
    // Spot-check network byte order.
    EXPECT_EQ(wire[2], 0x12);
    EXPECT_EQ(wire[3], 0x34);
    BinHeader back;
    ASSERT_TRUE(binDecodeHeader(wire, back));
    EXPECT_EQ(back.keyLength, h.keyLength);
    EXPECT_EQ(back.bodyLength, h.bodyLength);
    EXPECT_EQ(back.opaque, h.opaque);
    EXPECT_EQ(back.cas, h.cas);
}

TEST_P(BinaryProtocolTest, BadMagicRejected)
{
    std::uint8_t wire[kBinHeaderSize] = {0x42};
    BinHeader h;
    EXPECT_FALSE(binDecodeHeader(wire, h));
}

TEST_P(BinaryProtocolTest, SetThenGet)
{
    const auto set = exec(binSetRequest("bkey", "bvalue"));
    EXPECT_EQ(set.status, BinStatus::Ok);
    EXPECT_NE(set.cas, 0u);

    const auto get = exec(binRequest(BinOp::Get, "bkey"));
    EXPECT_EQ(get.status, BinStatus::Ok);
    EXPECT_EQ(get.value, "bvalue");
    EXPECT_EQ(get.extras.size(), 4u);  // flags
    EXPECT_TRUE(get.key.empty());      // GET omits the key.

    const auto getk = exec(binRequest(BinOp::GetK, "bkey"));
    EXPECT_EQ(getk.key, "bkey");
    EXPECT_EQ(getk.value, "bvalue");
}

TEST_P(BinaryProtocolTest, GetMiss)
{
    const auto r = exec(binRequest(BinOp::Get, "absent"));
    EXPECT_EQ(r.status, BinStatus::KeyNotFound);
}

TEST_P(BinaryProtocolTest, AddAndReplaceSemantics)
{
    EXPECT_EQ(exec(binSetRequest("a", "1", 0, 0, BinOp::Add)).status,
              BinStatus::Ok);
    EXPECT_EQ(exec(binSetRequest("a", "2", 0, 0, BinOp::Add)).status,
              BinStatus::NotStored);
    EXPECT_EQ(exec(binSetRequest("a", "3", 0, 0, BinOp::Replace)).status,
              BinStatus::Ok);
    EXPECT_EQ(exec(binSetRequest("zz", "4", 0, 0, BinOp::Replace)).status,
              BinStatus::NotStored);
}

TEST_P(BinaryProtocolTest, CasViaSetHeader)
{
    const auto set = exec(binSetRequest("c", "v1"));
    const auto good =
        exec(binSetRequest("c", "v2", 0, 0, BinOp::Set, set.cas));
    EXPECT_EQ(good.status, BinStatus::Ok);
    const auto stale =
        exec(binSetRequest("c", "v3", 0, 0, BinOp::Set, set.cas));
    EXPECT_EQ(stale.status, BinStatus::KeyExists);
}

TEST_P(BinaryProtocolTest, DeleteAndNoop)
{
    exec(binSetRequest("d", "x"));
    EXPECT_EQ(exec(binRequest(BinOp::Delete, "d")).status, BinStatus::Ok);
    EXPECT_EQ(exec(binRequest(BinOp::Delete, "d")).status,
              BinStatus::KeyNotFound);
    EXPECT_EQ(exec(binRequest(BinOp::Noop, "")).status, BinStatus::Ok);
}

TEST_P(BinaryProtocolTest, IncrDecrBinaryValues)
{
    exec(binSetRequest("n", "100"));
    const auto up = exec(binArithRequest(BinOp::Increment, "n", 23));
    EXPECT_EQ(up.status, BinStatus::Ok);
    ASSERT_EQ(up.value.size(), 8u);
    // 64-bit big-endian result.
    std::uint64_t v = 0;
    for (unsigned char c : up.value)
        v = (v << 8) | c;
    EXPECT_EQ(v, 123u);
    const auto down = exec(binArithRequest(BinOp::Decrement, "n", 23));
    std::uint64_t w = 0;
    for (unsigned char c : down.value)
        w = (w << 8) | c;
    EXPECT_EQ(w, 100u);
}

TEST_P(BinaryProtocolTest, VersionAndFlush)
{
    const auto v = exec(binRequest(BinOp::Version, ""));
    EXPECT_EQ(v.status, BinStatus::Ok);
    EXPECT_NE(v.value.find("tmemc"), std::string::npos);
    exec(binSetRequest("f", "x"));
    EXPECT_EQ(exec(binRequest(BinOp::Flush, "")).status, BinStatus::Ok);
    EXPECT_EQ(exec(binRequest(BinOp::Get, "f")).status,
              BinStatus::KeyNotFound);
}

TEST_P(BinaryProtocolTest, StatStreamTerminated)
{
    exec(binSetRequest("s", "x"));
    const std::string wire =
        binaryExecute(*cache_, 0, binRequest(BinOp::Stat, ""));
    // Parse all frames; the last must have an empty key and value.
    std::size_t pos = 0;
    int frames = 0;
    BinResponse last;
    while (pos < wire.size()) {
        BinResponse r;
        const std::size_t used = binParseResponse(wire.substr(pos), r);
        ASSERT_GT(used, 0u);
        pos += used;
        last = r;
        ++frames;
    }
    EXPECT_GT(frames, 3);
    EXPECT_TRUE(last.key.empty());
    EXPECT_TRUE(last.value.empty());
}

TEST_P(BinaryProtocolTest, QuietGetRunAnswersHitsOnly)
{
    exec(binSetRequest("q1", "alpha"));
    exec(binSetRequest("q3", "gamma"));

    // A memslap-style pipeline: GetQ hit, GetKQ miss, GetKQ hit. The
    // whole run executes as one multi-get; only the hits answer, in
    // request order, each under its own opaque.
    std::string run;
    run += binRequest(BinOp::GetQ, "q1", "", "", 0, 11);
    run += binRequest(BinOp::GetKQ, "q2", "", "", 0, 22);
    run += binRequest(BinOp::GetKQ, "q3", "", "", 0, 33);
    ASSERT_TRUE(binIsQuietGet(run.data(), run.size()));

    const std::string wire = binaryExecute(*cache_, 0, run);
    BinResponse first;
    const std::size_t used = binParseResponse(wire, first);
    ASSERT_GT(used, 0u);
    EXPECT_EQ(first.status, BinStatus::Ok);
    EXPECT_EQ(first.value, "alpha");
    EXPECT_TRUE(first.key.empty());  // GetQ omits the key...
    EXPECT_EQ(first.opaque, 11u);

    BinResponse second;
    ASSERT_GT(binParseResponse(wire.substr(used), second), 0u);
    EXPECT_EQ(second.status, BinStatus::Ok);
    EXPECT_EQ(second.key, "q3");  // ...GetKQ echoes it.
    EXPECT_EQ(second.value, "gamma");
    EXPECT_EQ(second.opaque, 33u);

    // The q2 miss contributed no frame at all.
    EXPECT_EQ(used + binParseResponse(wire.substr(used), second),
              wire.size());
}

TEST_P(BinaryProtocolTest, QuietGetAllMissesSaysNothing)
{
    std::string run;
    run += binRequest(BinOp::GetQ, "ghost1");
    run += binRequest(BinOp::GetKQ, "ghost2");
    EXPECT_EQ(binaryExecute(*cache_, 0, run), "");

    // A loud opcode is not a quiet get.
    const std::string loud = binRequest(BinOp::Get, "ghost1");
    EXPECT_FALSE(binIsQuietGet(loud.data(), loud.size()));
}

TEST_P(BinaryProtocolTest, TruncatedFrameReturnsNothing)
{
    const std::string req = binSetRequest("k", "value");
    EXPECT_EQ(binaryExecute(*cache_, 0, req.substr(0, 10)), "");
    EXPECT_EQ(binaryExecute(*cache_, 0, req.substr(0, req.size() - 2)),
              "");
}

INSTANTIATE_TEST_SUITE_P(SomeBranches, BinaryProtocolTest,
                         ::testing::Values("Baseline", "IT-onCommit"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(BinaryWorkload, MemslapBinaryModeRuns)
{
    tm::Runtime::get().configure(tm::RuntimeCfg{});
    Settings s;
    s.maxBytes = 32 * 1024 * 1024;
    auto cache = makeCache("IT-onCommit", s, 2);
    workload::MemslapCfg cfg;
    cfg.concurrency = 2;
    cfg.executeNumber = 2000;
    cfg.windowSize = 500;
    cfg.binaryProtocol = true;
    const auto r = runMemslap(*cache, cfg);
    EXPECT_EQ(r.ops, 4000u);
    EXPECT_GT(r.hits, 0u);
    EXPECT_EQ(r.misses, 0u);
    EXPECT_EQ(r.failures, 0u);
}

} // namespace
