/**
 * @file
 * Unit tests for the cache building blocks (assoc, lru, slabs) using
 * the uninstrumented context.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "mc/assoc.h"
#include "mc/ctx.h"
#include "mc/lru.h"
#include "mc/slabs.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

using Ctx = PlainCtx<kBaseline>;

Item *
makeItem(const std::string &key, std::uint32_t nbytes = 8)
{
    const std::size_t sz = Item::totalSize(key.size(), nbytes);
    auto *it = static_cast<Item *>(std::calloc(1, sz));
    it->nkey = static_cast<std::uint16_t>(key.size());
    it->nbytes = nbytes;
    std::memcpy(it->key(), key.data(), key.size());
    return it;
}

TEST(Assoc, InsertFindUnlink)
{
    AssocState s;
    assocInit(s, 4);
    Ctx c;
    Item *a = makeItem("alpha");
    Item *b = makeItem("beta");
    const std::uint32_t ha = hashKey("alpha", 5);
    const std::uint32_t hb = hashKey("beta", 4);
    assocInsert(c, s, a, ha);
    assocInsert(c, s, b, hb);
    EXPECT_EQ(s.itemCount, 2u);
    EXPECT_EQ(assocFind(c, s, "alpha", 5, ha), a);
    EXPECT_EQ(assocFind(c, s, "beta", 4, hb), b);
    EXPECT_EQ(assocFind(c, s, "gamma", 5, hashKey("gamma", 5)), nullptr);
    EXPECT_TRUE(assocUnlink(c, s, a, ha));
    EXPECT_EQ(assocFind(c, s, "alpha", 5, ha), nullptr);
    EXPECT_EQ(s.itemCount, 1u);
    EXPECT_FALSE(assocUnlink(c, s, a, ha));  // Already gone.
    std::free(a);
    std::free(b);
    std::free(s.primary);
}

TEST(Assoc, CollidingKeysShareBucket)
{
    AssocState s;
    assocInit(s, 1);  // Two buckets: collisions guaranteed.
    Ctx c;
    std::vector<Item *> items;
    for (int i = 0; i < 16; ++i) {
        const std::string key = "key" + std::to_string(i);
        Item *it = makeItem(key);
        items.push_back(it);
        assocInsert(c, s, it, hashKey(key.data(), key.size()));
    }
    for (int i = 0; i < 16; ++i) {
        const std::string key = "key" + std::to_string(i);
        EXPECT_EQ(assocFind(c, s, key.data(), key.size(),
                            hashKey(key.data(), key.size())),
                  items[i]);
    }
    for (auto *it : items)
        std::free(it);
    std::free(s.primary);
}

TEST(Assoc, ExpansionPreservesAllItems)
{
    AssocState s;
    assocInit(s, 3);  // 8 buckets.
    Ctx c;
    std::vector<Item *> items;
    for (int i = 0; i < 64; ++i) {
        const std::string key = "expand" + std::to_string(i);
        Item *it = makeItem(key);
        items.push_back(it);
        assocInsert(c, s, it, hashKey(key.data(), key.size()));
    }
    assocStartExpand(c, s);
    EXPECT_EQ(s.hashPower, 4u);
    EXPECT_NE(s.expanding, 0u);
    // Items must be findable at every point during the migration.
    int steps = 0;
    while (s.expanding != 0) {
        for (int i = 0; i < 64; i += 7) {
            const std::string key = "expand" + std::to_string(i);
            ASSERT_EQ(assocFind(c, s, key.data(), key.size(),
                                hashKey(key.data(), key.size())),
                      items[i])
                << "step " << steps;
        }
        assocExpandBucket(c, s);
        ++steps;
    }
    EXPECT_EQ(steps, 8);  // One per old bucket.
    for (int i = 0; i < 64; ++i) {
        const std::string key = "expand" + std::to_string(i);
        EXPECT_EQ(assocFind(c, s, key.data(), key.size(),
                            hashKey(key.data(), key.size())),
                  items[i]);
    }
    EXPECT_EQ(s.itemCount, 64u);
    for (auto *it : items)
        std::free(it);
    std::free(s.primary);
}

TEST(Lru, LinkUnlinkBumpMaintainOrder)
{
    LruState s;
    Ctx c;
    Item *a = makeItem("a");
    Item *b = makeItem("b");
    Item *d = makeItem("d");
    lruLink(c, s, a, 0);
    lruLink(c, s, b, 0);
    lruLink(c, s, d, 0);
    // Head = most recent: d, b, a; tail = a.
    EXPECT_EQ(s.heads[0], d);
    EXPECT_EQ(s.tails[0], a);
    EXPECT_EQ(s.sizes[0], 3u);

    lruBump(c, s, a, 0);
    EXPECT_EQ(s.heads[0], a);
    EXPECT_EQ(s.tails[0], b);

    lruUnlink(c, s, d, 0);
    EXPECT_EQ(s.sizes[0], 2u);
    EXPECT_EQ(s.heads[0], a);
    EXPECT_EQ(a->next, b);
    EXPECT_EQ(b->prev, a);

    lruUnlink(c, s, a, 0);
    lruUnlink(c, s, b, 0);
    EXPECT_EQ(s.heads[0], nullptr);
    EXPECT_EQ(s.tails[0], nullptr);
    EXPECT_EQ(s.sizes[0], 0u);
    std::free(a);
    std::free(b);
    std::free(d);
}

TEST(Slabs, GeometryGrowsByFactor)
{
    SlabState s;
    Settings cfg;
    cfg.slabChunkMin = 96;
    cfg.slabGrowthFactor = 1.25;
    cfg.itemSizeMax = 16 * 1024;
    slabsInit(s, cfg);
    ASSERT_GT(s.numClasses, 4u);
    for (std::uint32_t i = 1; i < s.numClasses - 1; ++i) {
        EXPECT_GT(s.classes[i].chunkSize, s.classes[i - 1].chunkSize);
        EXPECT_LE(static_cast<double>(s.classes[i].chunkSize),
                  s.classes[i - 1].chunkSize * 1.25 + 8);
    }
    EXPECT_EQ(s.classes[s.numClasses - 1].chunkSize, cfg.itemSizeMax);
    for (std::uint32_t i = 0; i < s.numClasses; ++i)
        std::free(s.classes[i].pages);
}

TEST(Slabs, ClsidPicksSmallestFit)
{
    SlabState s;
    Settings cfg;
    slabsInit(s, cfg);
    const std::uint32_t c0 = slabClsid(s, 1);
    EXPECT_EQ(c0, 0u);
    const std::uint32_t ci = slabClsid(s, s.classes[2].chunkSize);
    EXPECT_EQ(ci, 2u);
    const std::uint32_t cj = slabClsid(s, s.classes[2].chunkSize + 1);
    EXPECT_EQ(cj, 3u);
    EXPECT_EQ(slabClsid(s, cfg.itemSizeMax + 1), kMaxSlabClasses);
    for (std::uint32_t i = 0; i < s.numClasses; ++i)
        std::free(s.classes[i].pages);
}

TEST(Slabs, AllocFreeRecyclesChunks)
{
    SlabState s;
    Settings cfg;
    cfg.maxBytes = 1024 * 1024;
    cfg.slabPageSize = 16 * 1024;
    slabsInit(s, cfg);
    Ctx c;
    Item *a = slabsAlloc(c, s, 0);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(s.classes[0].usedChunks, 1u);
    EXPECT_EQ(s.classes[0].pageCount, 1u);
    const std::uint64_t free_after_first = s.classes[0].freeCount;
    EXPECT_EQ(free_after_first, s.classes[0].perPage - 1u);

    slabsFree(c, s, a, 0);
    EXPECT_EQ(s.classes[0].usedChunks, 0u);
    Item *b = slabsAlloc(c, s, 0);
    EXPECT_EQ(b, a);  // LIFO free list recycles.

    // Drain the page completely; the next alloc carves a second page.
    std::vector<Item *> all;
    while (s.classes[0].freeCount > 0)
        all.push_back(slabsAlloc(c, s, 0));
    EXPECT_EQ(s.classes[0].pageCount, 1u);
    Item *extra = slabsAlloc(c, s, 0);
    ASSERT_NE(extra, nullptr);
    EXPECT_EQ(s.classes[0].pageCount, 2u);

    for (std::uint32_t i = 0; i < s.numClasses; ++i) {
        for (std::uint64_t p = 0; p < s.classes[i].pageCount; ++p)
            std::free(s.classes[i].pages[p]);
        std::free(s.classes[i].pages);
    }
}

TEST(Slabs, BudgetExhaustionReturnsNull)
{
    SlabState s;
    Settings cfg;
    cfg.maxBytes = 32 * 1024;  // Two 16 KiB pages.
    cfg.slabPageSize = 16 * 1024;
    slabsInit(s, cfg);
    Ctx c;
    std::vector<Item *> held;
    for (;;) {
        Item *it = slabsAlloc(c, s, 0);
        if (it == nullptr)
            break;
        held.push_back(it);
    }
    EXPECT_EQ(held.size(),
              static_cast<std::size_t>(2 * s.classes[0].perPage));
    EXPECT_LE(s.memAllocated, cfg.maxBytes);
    for (std::uint32_t i = 0; i < s.numClasses; ++i) {
        for (std::uint64_t p = 0; p < s.classes[i].pageCount; ++p)
            std::free(s.classes[i].pages[p]);
        std::free(s.classes[i].pages);
    }
}

TEST(Item, LayoutAndSizing)
{
    EXPECT_EQ(Item::totalSize(0, 0), sizeof(Item));
    EXPECT_EQ(Item::totalSize(1, 0), sizeof(Item) + 8);
    EXPECT_EQ(Item::totalSize(8, 4), sizeof(Item) + 8 + 4);
    Item *it = makeItem("12345678", 16);
    // Value starts 8-aligned right after the padded key.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(it->value()) % 8, 0u);
    EXPECT_EQ(it->value(), it->key() + 8);
    std::free(it);
}

} // namespace
