/**
 * @file
 * Soak test: every branch under simultaneous pressure from all the
 * machinery at once — mixed gets/sets/deletes/incrs/appends, forced
 * evictions (tiny memory budget), hash expansions (tiny initial
 * table), and slab rebalances (bimodal value sizes) — followed by full
 * invariant checks.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "mc/cache_iface.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

class SoakTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SoakTest, EverythingAtOnce)
{
    tm::Runtime::get().configure(runtimeCfgFor(GetParam()));
    tm::Runtime::get().resetStats();

    Settings s;
    s.maxBytes = 256 * 1024;   // Tiny: constant eviction pressure.
    s.slabPageSize = 32 * 1024;
    s.hashPowerInit = 5;       // 32 buckets: expansions guaranteed.
    s.evictionSearchDepth = 5;
    auto cache = makeCache(GetParam(), s, 4);
    ASSERT_NE(cache, nullptr);

    constexpr int threads = 4;
    constexpr int ops = 6000;
    std::atomic<bool> corrupt{false};

    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(2026 + t);
            std::vector<char> buf(8192);
            for (int i = 0; i < ops && !corrupt.load(); ++i) {
                const std::string key =
                    "soak" + std::to_string(rng.nextBounded(400));
                const double roll = rng.nextDouble();
                if (roll < 0.30) {
                    // Bimodal sizes force cross-class slab pressure.
                    const std::size_t len =
                        rng.nextDouble() < 0.8 ? 24 : 3000;
                    const std::string val(len, 'v');
                    cache->store(t, key.data(), key.size(), val.data(),
                                 val.size());
                } else if (roll < 0.35) {
                    cache->del(t, key.data(), key.size());
                } else if (roll < 0.42) {
                    std::uint64_t v = 0;
                    cache->arith(t, key.data(), key.size(), 1, true, v);
                } else if (roll < 0.48) {
                    cache->concat(t, key.data(), key.size(), "+", 1,
                                  rng.nextDouble() < 0.5);
                } else if (roll < 0.50) {
                    cache->touch(t, key.data(), key.size(), 0);
                } else {
                    const auto r = cache->get(t, key.data(), key.size(),
                                              buf.data(), buf.size());
                    if (r.status == OpStatus::Ok && r.vlen > buf.size())
                        corrupt.store(true);
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_FALSE(corrupt.load());

    cache->quiesceMaintenance();
    const GlobalStats gs = cache->globalStats();
    // Pressure did what it should.
    EXPECT_GT(gs.evictions, 0u) << "no eviction pressure";
    EXPECT_GT(cache->hashPowerNow(), 5u) << "no expansion happened";
    // Accounting invariants at quiescence.
    EXPECT_EQ(gs.currItems, cache->linkedItemCount());
    // And the cache still works.
    ASSERT_EQ(cache->store(0, "final", 5, "check", 5), OpStatus::Ok);
    char out[16];
    const auto r = cache->get(0, "final", 5, out, sizeof(out));
    ASSERT_EQ(r.status, OpStatus::Ok);
    EXPECT_EQ(std::string(out, r.vlen), "check");
}

TEST_P(SoakTest, CrossShardEverythingAtOnce)
{
    // The sharded variant of the soak: same machinery (evictions,
    // expansions, rebalances) running independently in 4 shards, plus
    // cross-shard multi-get batches racing the churn, plus injected
    // allocation failures on the PR-2 fault sites. More distinct keys
    // than the unsharded soak so each shard's private budget still
    // overflows into eviction.
    tm::Runtime::get().configure(runtimeCfgFor(GetParam()));
    tm::Runtime::get().resetStats();

    Settings s;
    s.maxBytes = 256 * 1024;
    s.slabPageSize = 32 * 1024;
    s.hashPowerInit = 5;
    s.evictionSearchDepth = 5;
    auto cache = makeShardedCache(GetParam(), s, 4, 4);
    ASSERT_NE(cache, nullptr);

    constexpr int threads = 4;
    constexpr int ops = 5000;
    constexpr int key_space = 1600;
    std::atomic<bool> corrupt{false};

    // Armed only for the churn phase: the final sanity store below
    // must not eat an injected allocation failure.
    fault::Policy p;
    p.trigger = fault::Trigger::Probability;
    p.probability = 0.005;
    p.seed = 2026;
    auto alloc_faults = std::make_unique<fault::ScopedFault>(
        "mc.slabs.alloc", p);

    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(8806 + t);
            std::vector<char> buf(8192);
            std::vector<std::vector<char>> mbufs(
                8, std::vector<char>(8192));
            for (int i = 0; i < ops && !corrupt.load(); ++i) {
                const std::string key =
                    "shsoak" + std::to_string(rng.nextBounded(key_space));
                const double roll = rng.nextDouble();
                if (roll < 0.30) {
                    const std::size_t len =
                        rng.nextDouble() < 0.7 ? 24 : 3000;
                    const std::string val(len, 'v');
                    cache->store(t, key.data(), key.size(), val.data(),
                                 val.size());
                } else if (roll < 0.35) {
                    cache->del(t, key.data(), key.size());
                } else if (roll < 0.42) {
                    std::uint64_t v = 0;
                    cache->arith(t, key.data(), key.size(), 1, true, v);
                } else if (roll < 0.48) {
                    cache->concat(t, key.data(), key.size(), "+", 1,
                                  rng.nextDouble() < 0.5);
                } else if (roll < 0.58) {
                    // Multi-get batch spanning shards.
                    std::vector<std::string> mk;
                    std::vector<CacheIface::MultiGetReq> reqs(8);
                    for (int j = 0; j < 8; ++j) {
                        mk.push_back("shsoak" +
                                     std::to_string(
                                         rng.nextBounded(key_space)));
                    }
                    for (int j = 0; j < 8; ++j) {
                        reqs[j].key = mk[j].data();
                        reqs[j].nkey = mk[j].size();
                        reqs[j].out = mbufs[j].data();
                        reqs[j].outCap = mbufs[j].size();
                    }
                    cache->getMulti(t, reqs.data(), reqs.size());
                    for (int j = 0; j < 8; ++j) {
                        if (reqs[j].result.status == OpStatus::Ok &&
                            reqs[j].result.vlen > mbufs[j].size())
                            corrupt.store(true);
                    }
                } else {
                    const auto r = cache->get(t, key.data(), key.size(),
                                              buf.data(), buf.size());
                    if (r.status == OpStatus::Ok && r.vlen > buf.size())
                        corrupt.store(true);
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    alloc_faults.reset();
    EXPECT_FALSE(corrupt.load());

    cache->quiesceMaintenance();
    const GlobalStats gs = cache->globalStats();
    EXPECT_GT(gs.evictions, 0u) << "no eviction pressure";
    EXPECT_GT(cache->hashPowerNow(), 5u) << "no expansion happened";
    EXPECT_EQ(gs.currItems, cache->linkedItemCount());
    ASSERT_EQ(cache->store(0, "final", 5, "check", 5), OpStatus::Ok);
    char out[16];
    const auto r = cache->get(0, "final", 5, out, sizeof(out));
    ASSERT_EQ(r.status, OpStatus::Ok);
    EXPECT_EQ(std::string(out, r.vlen), "check");
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, SoakTest, ::testing::ValuesIn(allBranchNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
