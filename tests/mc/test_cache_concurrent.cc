/**
 * @file
 * Concurrency tests of the cache, over every branch: mixed workloads
 * under contention must preserve value integrity and the accounting
 * invariants, through hash expansions, evictions, and slab rebalances.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "mc/cache_iface.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

class ConcurrentBranchTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        tm::Runtime::get().configure(runtimeCfgFor(GetParam()));
        tm::Runtime::get().resetStats();
    }
};

/** Deterministic value derived from the key, so readers can verify. */
std::string
valueFor(const std::string &key, int version)
{
    std::string v = key + ":" + std::to_string(version) + ":";
    while (v.size() < 64)
        v.push_back(static_cast<char>('a' + v.size() % 26));
    return v;
}

TEST_P(ConcurrentBranchTest, MixedOpsPreserveValueIntegrity)
{
    Settings s;
    s.maxBytes = 16 * 1024 * 1024;
    s.slabPageSize = 32 * 1024;
    s.hashPowerInit = 7;  // Low: forces expansion mid-test.
    auto cache = makeCache(GetParam(), s, 4);
    ASSERT_NE(cache, nullptr);

    constexpr int threads = 4;
    constexpr int keys = 200;
    constexpr int ops = 4000;
    std::atomic<bool> corrupt{false};

    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(77 + t);
            char buf[512];
            for (int i = 0; i < ops && !corrupt.load(); ++i) {
                const int k = static_cast<int>(rng.nextBounded(keys));
                const std::string key = "ck" + std::to_string(k);
                const double roll = rng.nextDouble();
                if (roll < 0.25) {
                    const std::string val =
                        valueFor(key, static_cast<int>(rng.nextBounded(8)));
                    cache->store(t, key.data(), key.size(), val.data(),
                                 val.size());
                } else if (roll < 0.30) {
                    cache->del(t, key.data(), key.size());
                } else {
                    const auto r = cache->get(t, key.data(), key.size(),
                                              buf, sizeof(buf));
                    if (r.status == OpStatus::Ok) {
                        // Value must be one of the versions of THIS key
                        // — a torn or crossed value fails the prefix.
                        const std::string got(buf, r.vlen);
                        if (got.rfind(key + ":", 0) != 0 ||
                            got.size() != 64)
                            corrupt.store(true);
                    }
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_FALSE(corrupt.load());

    cache->quiesceMaintenance();
    // Accounting invariant: global counter equals hash occupancy.
    EXPECT_EQ(cache->globalStats().currItems, cache->linkedItemCount());
}

TEST_P(ConcurrentBranchTest, ExpansionUnderLoadLosesNothing)
{
    Settings s;
    s.maxBytes = 32 * 1024 * 1024;
    s.slabPageSize = 64 * 1024;
    s.hashPowerInit = 6;  // 64 buckets; expansion guaranteed.
    auto cache = makeCache(GetParam(), s, 4);
    ASSERT_NE(cache, nullptr);

    constexpr int threads = 4;
    constexpr int per_thread = 1200;
    std::vector<std::thread> writers;
    for (int t = 0; t < threads; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < per_thread; ++i) {
                const std::string key =
                    "w" + std::to_string(t) + "-" + std::to_string(i);
                const std::string val = valueFor(key, 0);
                ASSERT_EQ(cache->store(t, key.data(), key.size(),
                                       val.data(), val.size()),
                          OpStatus::Ok);
            }
        });
    }
    for (auto &w : writers)
        w.join();
    cache->quiesceMaintenance();

    EXPECT_GT(cache->hashPowerNow(), 6u);
    // Every key must still be reachable with its exact value.
    char buf[512];
    for (int t = 0; t < threads; ++t) {
        for (int i = 0; i < per_thread; ++i) {
            const std::string key =
                "w" + std::to_string(t) + "-" + std::to_string(i);
            const auto r =
                cache->get(0, key.data(), key.size(), buf, sizeof(buf));
            ASSERT_EQ(r.status, OpStatus::Ok) << key;
            ASSERT_EQ(std::string(buf, r.vlen), valueFor(key, 0)) << key;
        }
    }
    EXPECT_EQ(cache->globalStats().currItems,
              static_cast<std::uint64_t>(threads * per_thread));
}

TEST_P(ConcurrentBranchTest, ConcurrentArithNeverLosesIncrements)
{
    Settings s;
    s.maxBytes = 4 * 1024 * 1024;
    auto cache = makeCache(GetParam(), s, 4);
    ASSERT_NE(cache, nullptr);
    ASSERT_EQ(cache->store(0, "ctr", 3, "0", 1), OpStatus::Ok);

    constexpr int threads = 4;
    constexpr int per_thread = 1000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            std::uint64_t v = 0;
            for (int i = 0; i < per_thread; ++i)
                ASSERT_EQ(cache->arith(t, "ctr", 3, 1, true, v),
                          OpStatus::Ok);
        });
    }
    for (auto &w : workers)
        w.join();
    char buf[64];
    const auto r = cache->get(0, "ctr", 3, buf, sizeof(buf));
    ASSERT_EQ(r.status, OpStatus::Ok);
    EXPECT_EQ(std::string(buf, r.vlen),
              std::to_string(threads * per_thread));
}

TEST_P(ConcurrentBranchTest, SlabRebalanceUnderLoad)
{
    Settings s;
    s.maxBytes = 256 * 1024;
    s.slabPageSize = 32 * 1024;
    auto cache = makeCache(GetParam(), s, 2);
    ASSERT_NE(cache, nullptr);

    // Fill with small values (class A), then switch the workload to
    // large values (class B): the allocator runs dry for B and asks
    // the rebalancer to strip pages from A.
    std::string small_val(16, 's');
    for (int i = 0; i < 2000; ++i) {
        const std::string key = "small" + std::to_string(i);
        cache->store(0, key.data(), key.size(), small_val.data(),
                     small_val.size());
    }
    std::string big_val(4000, 'B');
    int stored = 0;
    for (int i = 0; i < 200; ++i) {
        const std::string key = "big" + std::to_string(i);
        if (cache->store(1, key.data(), key.size(), big_val.data(),
                         big_val.size()) == OpStatus::Ok)
            ++stored;
    }
    // Large stores must eventually succeed (eviction or page moves).
    EXPECT_GT(stored, 50);
    cache->quiesceMaintenance();
    EXPECT_EQ(cache->globalStats().currItems, cache->linkedItemCount());
}

TEST_P(ConcurrentBranchTest, ReadersDuringFlushSeeNoGarbage)
{
    Settings s;
    s.maxBytes = 8 * 1024 * 1024;
    auto cache = makeCache(GetParam(), s, 3);
    ASSERT_NE(cache, nullptr);
    for (int i = 0; i < 500; ++i) {
        const std::string key = "f" + std::to_string(i);
        const std::string val = valueFor(key, 1);
        cache->store(0, key.data(), key.size(), val.data(), val.size());
    }
    std::atomic<bool> stop{false};
    std::atomic<bool> corrupt{false};
    std::thread reader([&] {
        XorShift128 rng(5);
        char buf[256];
        while (!stop.load()) {
            const std::string key =
                "f" + std::to_string(rng.nextBounded(500));
            const auto r = cache->get(1, key.data(), key.size(), buf,
                                      sizeof(buf));
            if (r.status == OpStatus::Ok) {
                const std::string got(buf, r.vlen);
                if (got.rfind(key + ":", 0) != 0)
                    corrupt.store(true);
            }
        }
    });
    cache->flushAll(2);
    stop.store(true);
    reader.join();
    EXPECT_FALSE(corrupt.load());
    // A concurrent flush may skip items whose reference or item lock a
    // reader held at that instant (the save-for-later path); a second,
    // quiescent flush must leave the cache empty.
    cache->flushAll(2);
    EXPECT_EQ(cache->globalStats().currItems, 0u);
}

/** Collect @p count keys that the cache maps to shard @p shard. */
std::vector<std::string>
keysOnShard(const CacheIface &cache, std::uint32_t shard, int count,
            const std::string &prefix)
{
    std::vector<std::string> out;
    for (int i = 0; out.size() < static_cast<std::size_t>(count); ++i) {
        const std::string k = prefix + std::to_string(i);
        if (cache.shardOf(k.data(), k.size()) == shard)
            out.push_back(k);
    }
    return out;
}

TEST_P(ConcurrentBranchTest, CrossShardCollidingVsSpreadTorture)
{
    // Two key families on a 4-shard cache: "colliding" keys that all
    // land on shard 0 (maximum intra-shard contention) and "spread"
    // keys covering every shard (maximum cross-shard traffic). Both
    // families hammered at once must preserve value integrity — a
    // routing bug that sent a key to two different shards would show
    // up as a phantom miss or a stale value after a delete.
    Settings s;
    s.maxBytes = 16 * 1024 * 1024;
    s.slabPageSize = 32 * 1024;
    s.hashPowerInit = 7;
    auto cache = makeShardedCache(GetParam(), s, 4, 4);
    ASSERT_NE(cache, nullptr);
    ASSERT_EQ(cache->shardCount(), 4u);

    std::vector<std::string> keys =
        keysOnShard(*cache, 0, 12, "collide");
    for (std::uint32_t sh = 0; sh < 4; ++sh) {
        for (const std::string &k : keysOnShard(*cache, sh, 3, "spread"))
            keys.push_back(k);
    }

    constexpr int threads = 4;
    constexpr int ops = 3000;
    std::atomic<bool> corrupt{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(911 + t);
            char buf[512];
            for (int i = 0; i < ops && !corrupt.load(); ++i) {
                const std::string &key =
                    keys[rng.nextBounded(keys.size())];
                const double roll = rng.nextDouble();
                if (roll < 0.30) {
                    const std::string val =
                        valueFor(key, static_cast<int>(rng.nextBounded(8)));
                    cache->store(t, key.data(), key.size(), val.data(),
                                 val.size());
                } else if (roll < 0.38) {
                    cache->del(t, key.data(), key.size());
                } else {
                    const auto r = cache->get(t, key.data(), key.size(),
                                              buf, sizeof(buf));
                    if (r.status == OpStatus::Ok) {
                        const std::string got(buf, r.vlen);
                        if (got.rfind(key + ":", 0) != 0 ||
                            got.size() != 64)
                            corrupt.store(true);
                    }
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_FALSE(corrupt.load());

    cache->quiesceMaintenance();
    // Aggregated accounting must hold across the shard set.
    EXPECT_EQ(cache->globalStats().currItems, cache->linkedItemCount());
}

TEST_P(ConcurrentBranchTest, MultiGetSpanningShardsRacesDeletes)
{
    // Readers batch multi-gets that span all four shards while
    // writers churn the same keys with sets and deletes under
    // eviction pressure (tiny budget) and injected allocation
    // failures (the PR-2 fault sites). Every returned hit must carry
    // the right key's value — a batch that crossed results between
    // slots, or read an item a delete/eviction had already unlinked,
    // fails the prefix check.
    Settings s;
    s.maxBytes = 1024 * 1024;
    s.slabPageSize = 32 * 1024;
    s.hashPowerInit = 6;
    s.evictionSearchDepth = 5;
    auto cache = makeShardedCache(GetParam(), s, 4, 4);
    ASSERT_NE(cache, nullptr);

    fault::Policy p;
    p.trigger = fault::Trigger::Probability;
    p.probability = 0.01;
    p.seed = 404;
    fault::ScopedFault alloc_faults("mc.slabs.alloc", p);

    std::vector<std::string> keys;
    for (std::uint32_t sh = 0; sh < 4; ++sh) {
        for (const std::string &k : keysOnShard(*cache, sh, 8, "span"))
            keys.push_back(k);
    }

    std::atomic<bool> stop{false};
    std::atomic<bool> corrupt{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 2; ++t) {
        writers.emplace_back([&, t] {
            XorShift128 rng(31 + t);
            while (!stop.load()) {
                const std::string &key =
                    keys[rng.nextBounded(keys.size())];
                if (rng.nextDouble() < 0.7) {
                    const std::string val =
                        valueFor(key, static_cast<int>(rng.nextBounded(4)));
                    cache->store(t, key.data(), key.size(), val.data(),
                                 val.size());
                } else {
                    cache->del(t, key.data(), key.size());
                }
            }
        });
    }

    std::vector<std::thread> readers;
    for (int t = 2; t < 4; ++t) {
        readers.emplace_back([&, t] {
            XorShift128 rng(77 + t);
            std::vector<std::vector<char>> bufs(16,
                                                std::vector<char>(512));
            for (int round = 0; round < 600 && !corrupt.load();
                 ++round) {
                // Batch spans the shards in shuffled order.
                std::vector<CacheIface::MultiGetReq> reqs(16);
                std::vector<const std::string *> picked(16);
                for (int i = 0; i < 16; ++i) {
                    picked[i] = &keys[rng.nextBounded(keys.size())];
                    reqs[i].key = picked[i]->data();
                    reqs[i].nkey = picked[i]->size();
                    reqs[i].out = bufs[i].data();
                    reqs[i].outCap = bufs[i].size();
                }
                cache->getMulti(static_cast<std::uint32_t>(t),
                                reqs.data(), reqs.size());
                for (int i = 0; i < 16; ++i) {
                    if (reqs[i].result.status != OpStatus::Ok)
                        continue;
                    const std::string got(bufs[i].data(),
                                          reqs[i].result.vlen);
                    if (got.rfind(*picked[i] + ":", 0) != 0 ||
                        got.size() != 64)
                        corrupt.store(true);
                }
            }
        });
    }
    for (auto &r : readers)
        r.join();
    stop.store(true);
    for (auto &w : writers)
        w.join();
    EXPECT_FALSE(corrupt.load());

    cache->quiesceMaintenance();
    EXPECT_EQ(cache->globalStats().currItems, cache->linkedItemCount());
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, ConcurrentBranchTest,
    ::testing::ValuesIn(allBranchNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
