/**
 * @file
 * Shared Wing & Gong linearizability checker for recorded cache and
 * cluster histories (used by tests/mc/test_linearizability.cc and
 * tests/net/test_cluster.cc).
 *
 * A history is a set of completed operations, each stamped with invoke
 * and response timestamps from one global atomic counter. The checker
 * searches for a linearization: a total order that (a) respects real
 * time — an operation that returned before another was invoked must
 * come first — and (b) replays correctly against a trivially-correct
 * sequential model of a single key. Linearizability is a local
 * (per-object) property [Herlihy & Wing 1990, Thm. 1] and every
 * operation here touches exactly one key, so the search decomposes by
 * key and stays small enough for an exhaustive DFS with memoization on
 * (done-set, model state).
 *
 * Cluster histories add one wrinkle: an operation whose reply was lost
 * (connection cut mid-request, node killed) may or may not have taken
 * effect. Such ops are recorded with `indeterminate = true` and
 * `ret = kNeverReturned`; the checker may linearize them at any point
 * after their invoke, or never — exactly the two possibilities the
 * real system allows. Only set/del may be indeterminate (a lost get
 * has no effect and should simply not be recorded).
 */

#ifndef TMEMC_TESTS_MC_LIN_CHECKER_H
#define TMEMC_TESTS_MC_LIN_CHECKER_H

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "mc/cache.h"

namespace tmemc::lintest
{

enum class OpKind : std::uint8_t
{
    Get,
    Set,
    Del,
    Incr,
};

/** Response stamp for operations that never returned. */
constexpr std::uint64_t kNeverReturned = ~0ull;

/** One completed (or lost) operation in the recorded history. */
struct Op
{
    OpKind kind = OpKind::Get;
    std::string key;
    std::uint64_t arg = 0;       //!< Set value / incr delta.
    std::uint64_t invoke = 0;    //!< Timestamp before the call.
    std::uint64_t ret = 0;       //!< Timestamp after the call.
    mc::OpStatus status = mc::OpStatus::Miss;  //!< Observed status.
    std::string out;             //!< Observed value (get hit).
    std::uint64_t outNum = 0;    //!< Observed counter (incr hit).
    /** Reply lost: the op may have applied or not (set/del only).
     *  Must be recorded with ret == kNeverReturned. */
    bool indeterminate = false;
};

/**
 * Stamps operations with a globally ordered invoke/response pair.
 * fetch_add on one counter is enough: if op A returned before op B
 * was invoked in real time, A's response stamp is smaller than B's
 * invoke stamp, which is exactly the precedence the checker enforces.
 */
class HistoryRecorder
{
  public:
    std::uint64_t
    stamp()
    {
        return clock_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> clock_{0};
};

/** Sequential single-key model: absent, or holding a counter value.
 *  (Workers only ever store decimal values, matching incr's domain.) */
using KeyState = std::optional<std::uint64_t>;

/**
 * Replay @p op against @p st. @return false if the observed result is
 * impossible from this state (the candidate linearization dies).
 */
inline bool
applyOp(const Op &op, KeyState &st)
{
    if (op.indeterminate) {
        // No observed result to validate — the op either applied its
        // effect or (handled by the caller skipping it) never ran.
        switch (op.kind) {
          case OpKind::Set:
            st = op.arg;
            return true;
          case OpKind::Del:
            st.reset();
            return true;
          default:
            return false;  // Lost gets/incrs must not be recorded.
        }
    }
    switch (op.kind) {
      case OpKind::Get:
        if (!st.has_value())
            return op.status == mc::OpStatus::Miss;
        return op.status == mc::OpStatus::Ok &&
               op.out == std::to_string(*st);
      case OpKind::Set:
        if (op.status != mc::OpStatus::Ok)
            return false;  // Plain set must succeed.
        st = op.arg;
        return true;
      case OpKind::Del:
        if (!st.has_value())
            return op.status == mc::OpStatus::Miss;
        if (op.status != mc::OpStatus::Ok)
            return false;
        st.reset();
        return true;
      case OpKind::Incr:
        if (!st.has_value())
            return op.status == mc::OpStatus::Miss;
        if (op.status != mc::OpStatus::Ok ||
            op.outNum != *st + op.arg)
            return false;
        st = *st + op.arg;
        return true;
    }
    return false;
}

/**
 * Wing & Gong search over one key's subhistory: repeatedly pick a
 * *minimal* pending operation (one invoked before every pending
 * response, so no real-time edge forces anything ahead of it), replay
 * it, recurse. Memoizes (done-set, state) — reaching the same set of
 * completed operations with the same model value again can never
 * succeed where it previously failed. Indeterminate ops never bound
 * min_ret (ret == kNeverReturned) and are optional: the search
 * succeeds once every determinate op is linearized.
 */
inline bool
linearizableKey(const std::vector<const Op *> &ops)
{
    const std::size_t n = ops.size();
    if (n == 0)
        return true;
    if (n > 64) {
        ADD_FAILURE() << "per-key history too large for the checker ("
                      << n << " ops); lower the op count";
        return false;
    }
    std::uint64_t det_mask = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!ops[i]->indeterminate)
            det_mask |= 1ull << i;
    }
    std::unordered_set<std::string> visited;

    struct DfsFn
    {
        const std::vector<const Op *> &ops;
        std::unordered_set<std::string> &visited;
        std::uint64_t detMask;

        bool
        operator()(std::uint64_t done, const KeyState &st) const
        {
            const std::size_t n = ops.size();
            if ((done & detMask) == detMask)
                return true;
            std::string memo = std::to_string(done) + "|" +
                               (st ? std::to_string(*st) : "~");
            if (!visited.insert(std::move(memo)).second)
                return false;
            // An op may linearize next only if it was invoked before
            // every pending op's response.
            std::uint64_t min_ret = ~0ull;
            for (std::size_t i = 0; i < n; ++i) {
                if ((done & (1ull << i)) == 0)
                    min_ret = std::min(min_ret, ops[i]->ret);
            }
            for (std::size_t i = 0; i < n; ++i) {
                if ((done & (1ull << i)) != 0)
                    continue;
                if (ops[i]->invoke > min_ret)
                    continue;
                KeyState next = st;
                if (!applyOp(*ops[i], next))
                    continue;
                if ((*this)(done | (1ull << i), next))
                    return true;
            }
            return false;
        }
    };
    return DfsFn{ops, visited, det_mask}(0, std::nullopt);
}

/** Split by key and check every subhistory; empty-cache initial state.
 *  On failure, dumps the offending subhistory to stderr so a CI
 *  failure is actionable (the workflow uploads it as an artifact). */
inline bool
linearizable(const std::vector<Op> &history)
{
    std::vector<std::string> keys;
    for (const Op &op : history) {
        if (std::find(keys.begin(), keys.end(), op.key) == keys.end())
            keys.push_back(op.key);
    }
    for (const std::string &k : keys) {
        std::vector<const Op *> sub;
        for (const Op &op : history) {
            if (op.key == k)
                sub.push_back(&op);
        }
        if (!linearizableKey(sub)) {
            std::fprintf(stderr,
                         "non-linearizable subhistory for key '%s':\n",
                         k.c_str());
            for (const Op *op : sub) {
                const char *kind =
                    op->kind == OpKind::Get   ? "get"
                    : op->kind == OpKind::Set ? "set"
                    : op->kind == OpKind::Del ? "del"
                                              : "incr";
                std::fprintf(
                    stderr,
                    "  [%llu,%llu] %s %s arg=%llu -> status=%d out=%s "
                    "outNum=%llu%s\n",
                    static_cast<unsigned long long>(op->invoke),
                    static_cast<unsigned long long>(op->ret), kind,
                    op->key.c_str(),
                    static_cast<unsigned long long>(op->arg),
                    static_cast<int>(op->status), op->out.c_str(),
                    static_cast<unsigned long long>(op->outNum),
                    op->indeterminate ? " (indeterminate)" : "");
            }
            return false;
        }
    }
    return true;
}

} // namespace tmemc::lintest

#endif // TMEMC_TESTS_MC_LIN_CHECKER_H
