/**
 * @file
 * Linearizability harness for the cache, across every branch and
 * shard count.
 *
 * Worker threads run a random get/set/delete/incr mix against the
 * cache while a history recorder stamps each operation with invoke
 * and response timestamps from one global atomic counter. A
 * Wing & Gong style checker then searches for a linearization: a
 * total order of the operations that (a) respects real time — an
 * operation that returned before another was invoked must come first
 * — and (b) replays correctly against a trivially-correct sequential
 * model of a single key.
 *
 * Linearizability is a local (per-object) property [Herlihy & Wing
 * 1990, Thm. 1], and every recorded operation touches exactly one
 * key, so the checker decomposes the history by key and checks each
 * subhistory independently — which also keeps the search small
 * enough for an exhaustive DFS with memoization on (done-set, model
 * state).
 *
 * The suite runs every branch at shards 1, 4 and 16: the sharded
 * cache must be indistinguishable from the unsharded one for
 * single-key operations, whatever the branch's synchronization
 * (per-shard pthread locks or per-shard TM domains). A self-test
 * feeds the checker deliberately non-linearizable histories and
 * expects rejection, so a vacuously-accepting checker cannot pass.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "mc/cache_iface.h"
#include "tm/api.h"

#include "lin_checker.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

// The history recorder and Wing & Gong checker live in lin_checker.h,
// shared with the cluster suite (tests/net/test_cluster.cc), which
// runs the same checker over histories recorded against a replicated
// node fleet instead of one in-process cache.
using namespace tmemc::lintest;

// ------------------------------------------------------------ self-tests

Op
mkOp(OpKind kind, std::uint64_t invoke, std::uint64_t ret,
     OpStatus status, std::uint64_t arg = 0, const std::string &out = "",
     std::uint64_t out_num = 0)
{
    Op op;
    op.kind = kind;
    op.key = "k";
    op.arg = arg;
    op.invoke = invoke;
    op.ret = ret;
    op.status = status;
    op.out = out;
    op.outNum = out_num;
    return op;
}

TEST(LinearizabilityChecker, AcceptsSequentialHistory)
{
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 7));
    h.push_back(mkOp(OpKind::Get, 2, 3, OpStatus::Ok, 0, "7"));
    h.push_back(mkOp(OpKind::Incr, 4, 5, OpStatus::Ok, 3, "", 10));
    h.push_back(mkOp(OpKind::Del, 6, 7, OpStatus::Ok));
    h.push_back(mkOp(OpKind::Get, 8, 9, OpStatus::Miss));
    EXPECT_TRUE(linearizable(h));
}

TEST(LinearizabilityChecker, AcceptsConcurrentReorder)
{
    // The get overlaps the set and already observes its value: legal,
    // the set linearizes inside its window before the get.
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 5, OpStatus::Ok, 42));
    h.push_back(mkOp(OpKind::Get, 1, 2, OpStatus::Ok, 0, "42"));
    EXPECT_TRUE(linearizable(h));
}

TEST(LinearizabilityChecker, RejectsPhantomRead)
{
    // Nothing ever wrote 9: no linearization can explain the get.
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 7));
    h.push_back(mkOp(OpKind::Get, 2, 3, OpStatus::Ok, 0, "9"));
    EXPECT_FALSE(linearizable(h));
}

TEST(LinearizabilityChecker, RejectsStaleRead)
{
    // The second set completed before the get was invoked; real time
    // forbids linearizing the get before it.
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 1));
    h.push_back(mkOp(OpKind::Set, 2, 3, OpStatus::Ok, 2));
    h.push_back(mkOp(OpKind::Get, 4, 5, OpStatus::Ok, 0, "1"));
    EXPECT_FALSE(linearizable(h));
}

TEST(LinearizabilityChecker, RejectsLostUpdate)
{
    // Two concurrent incrs both observed 0 -> 5: one update vanished.
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 0));
    h.push_back(mkOp(OpKind::Incr, 2, 6, OpStatus::Ok, 5, "", 5));
    h.push_back(mkOp(OpKind::Incr, 3, 7, OpStatus::Ok, 5, "", 5));
    EXPECT_FALSE(linearizable(h));
}

TEST(LinearizabilityChecker, IndeterminateSetExplainsEitherOutcome)
{
    // A set whose reply was lost (node killed mid-request) may have
    // applied or not: a later get observing its value is legal, and
    // so is a later get observing the prior value.
    Op lost = mkOp(OpKind::Set, 2, lintest::kNeverReturned,
                   OpStatus::Miss, 9);
    lost.indeterminate = true;

    std::vector<Op> saw;
    saw.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 7));
    saw.push_back(lost);
    saw.push_back(mkOp(OpKind::Get, 3, 4, OpStatus::Ok, 0, "9"));
    EXPECT_TRUE(linearizable(saw));

    std::vector<Op> missed;
    missed.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 7));
    missed.push_back(lost);
    missed.push_back(mkOp(OpKind::Get, 3, 4, OpStatus::Ok, 0, "7"));
    EXPECT_TRUE(linearizable(missed));
}

TEST(LinearizabilityChecker, IndeterminateSetDoesNotExcusePhantoms)
{
    // The lost set wrote 9; a get observing 8 is still impossible.
    Op lost = mkOp(OpKind::Set, 2, lintest::kNeverReturned,
                   OpStatus::Miss, 9);
    lost.indeterminate = true;
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 7));
    h.push_back(lost);
    h.push_back(mkOp(OpKind::Get, 3, 4, OpStatus::Ok, 0, "8"));
    EXPECT_FALSE(linearizable(h));
}

TEST(LinearizabilityChecker, IndeterminateSetCannotApplyBeforeInvoke)
{
    // The lost set was invoked after the get returned; real time
    // forbids explaining the get with it.
    Op lost = mkOp(OpKind::Set, 5, lintest::kNeverReturned,
                   OpStatus::Miss, 9);
    lost.indeterminate = true;
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 7));
    h.push_back(mkOp(OpKind::Get, 2, 3, OpStatus::Ok, 0, "9"));
    h.push_back(lost);
    EXPECT_FALSE(linearizable(h));
}

// ------------------------------------------------------- cache harness

class LinearizabilityTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        // Each branch runs on the runtime configuration it selects
        // (IT-RA: the fence-free RA algorithm).
        tm::Runtime::get().configure(runtimeCfgFor(GetParam()));
        tm::Runtime::get().resetStats();
    }
};

/**
 * Drive @p threads workers through a random single-key op mix and
 * return the merged history.
 */
std::vector<Op>
recordHistory(CacheIface &cache, int threads, int ops_per_thread,
              int keys, std::uint64_t seed)
{
    HistoryRecorder rec;
    std::vector<std::vector<Op>> perThread(threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t]() {
            XorShift128 rng(seed + static_cast<std::uint64_t>(t));
            auto &hist = perThread[t];
            hist.reserve(static_cast<std::size_t>(ops_per_thread));
            char buf[256];
            for (int i = 0; i < ops_per_thread; ++i) {
                Op op;
                op.key =
                    "lin" + std::to_string(rng.nextBounded(
                                static_cast<std::uint64_t>(keys)));
                const std::uint64_t dice = rng.nextBounded(100);
                const auto tid = static_cast<std::uint32_t>(t);
                if (dice < 45) {
                    op.kind = OpKind::Get;
                    op.invoke = rec.stamp();
                    const auto r =
                        cache.get(tid, op.key.data(), op.key.size(),
                                  buf, sizeof(buf));
                    op.ret = rec.stamp();
                    op.status = r.status;
                    if (r.status == OpStatus::Ok)
                        op.out.assign(buf,
                                      std::min(r.vlen, sizeof(buf)));
                } else if (dice < 70) {
                    op.kind = OpKind::Set;
                    op.arg = rng.nextBounded(1000);
                    const std::string val = std::to_string(op.arg);
                    op.invoke = rec.stamp();
                    op.status = cache.store(tid, op.key.data(),
                                            op.key.size(), val.data(),
                                            val.size());
                    op.ret = rec.stamp();
                } else if (dice < 85) {
                    op.kind = OpKind::Incr;
                    op.arg = 1 + rng.nextBounded(9);
                    std::uint64_t out = 0;
                    op.invoke = rec.stamp();
                    op.status =
                        cache.arith(tid, op.key.data(), op.key.size(),
                                    op.arg, true, out);
                    op.ret = rec.stamp();
                    op.outNum = out;
                } else {
                    op.kind = OpKind::Del;
                    op.invoke = rec.stamp();
                    op.status =
                        cache.del(tid, op.key.data(), op.key.size());
                    op.ret = rec.stamp();
                }
                hist.push_back(std::move(op));
            }
        });
    }
    for (auto &th : pool)
        th.join();
    std::vector<Op> history;
    for (auto &v : perThread) {
        for (auto &op : v)
            history.push_back(std::move(op));
    }
    return history;
}

/** Shard counts to sweep: all of {1,4,16} by default; a single count
 *  when TMEMC_LIN_SHARDS is set (the CI shard-matrix legs use this to
 *  pin one configuration per sanitizer run). */
std::vector<std::uint32_t>
shardSweep()
{
    if (const char *env = std::getenv("TMEMC_LIN_SHARDS")) {
        const unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0)
            return {static_cast<std::uint32_t>(v)};
    }
    return {1u, 4u, 16u};
}

TEST_P(LinearizabilityTest, ConcurrentHistoryIsLinearizable)
{
    // Plenty of memory and few small keys: no eviction and no expiry,
    // so the sequential model above is the complete specification.
    for (const std::uint32_t shards : shardSweep()) {
        Settings s;
        s.maxBytes = 64 * 1024 * 1024;
        auto cache = makeShardedCache(GetParam(), s, 4, shards);
        ASSERT_NE(cache, nullptr);
        ASSERT_EQ(cache->shardCount(), shards);

        const std::vector<Op> history = recordHistory(
            *cache, /*threads=*/4, /*ops_per_thread=*/40, /*keys=*/8,
            /*seed=*/20260806 + shards);
        EXPECT_TRUE(linearizable(history))
            << GetParam() << " with shards=" << shards;
    }
}

TEST_P(LinearizabilityTest, InvisibleReaderFastPathPreservesLinearizability)
{
    // The GET path's read-only sites (mc:get-copy, mc:refcount-expr)
    // run as invisible readers when RuntimeCfg::roFastPath is on:
    // sequence-validated loads, no read set, O(1) commit. Opacity of
    // that path is exactly single-key linearizability of get against
    // concurrent set/incr/del — record the same mixed history with
    // the fast path on and off and demand both check out, plus proof
    // that the "on" leg actually carried fast-path commits (on the
    // branches whose get-copy is speculative) so the pass is not
    // vacuous.
    const std::string &branch = GetParam();
    const bool hintedBranch =
        branch.find("Lib") != std::string::npos ||
        branch.find("onCommit") != std::string::npos;
    for (const bool fast : {true, false}) {
        for (const std::uint32_t shards : {1u, 4u}) {
            tm::RuntimeCfg cfg = runtimeCfgFor(branch);
            cfg.roFastPath = fast;
            tm::Runtime::get().configure(cfg);
            tm::Runtime::get().resetStats();

            Settings s;
            s.maxBytes = 64 * 1024 * 1024;
            auto cache = makeShardedCache(branch, s, 4, shards);
            ASSERT_NE(cache, nullptr);
            const std::vector<Op> history = recordHistory(
                *cache, /*threads=*/4, /*ops_per_thread=*/40,
                /*keys=*/8, /*seed=*/20260808 + shards + (fast ? 1 : 0));
            EXPECT_TRUE(linearizable(history))
                << branch << " roFastPath=" << fast
                << " shards=" << shards;

            const auto snap = tm::Runtime::get().snapshot();
            if (fast && hintedBranch) {
                EXPECT_GT(snap.total.roFastCommits, 0u)
                    << branch << ": fast path never engaged";
            }
            if (!fast) {
                EXPECT_EQ(snap.total.roFastCommits, 0u)
                    << branch << ": ablation knob ignored";
            }
            // The cache (and its maintenance thread) must be gone
            // before the next configure(), which refuses while any
            // transaction is in flight.
            cache.reset();
        }
    }
    tm::Runtime::get().configure(tm::RuntimeCfg{});
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, LinearizabilityTest,
    ::testing::ValuesIn(allBranchNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

} // namespace
