/**
 * @file
 * Linearizability harness for the cache, across every branch and
 * shard count.
 *
 * Worker threads run a random get/set/delete/incr mix against the
 * cache while a history recorder stamps each operation with invoke
 * and response timestamps from one global atomic counter. A
 * Wing & Gong style checker then searches for a linearization: a
 * total order of the operations that (a) respects real time — an
 * operation that returned before another was invoked must come first
 * — and (b) replays correctly against a trivially-correct sequential
 * model of a single key.
 *
 * Linearizability is a local (per-object) property [Herlihy & Wing
 * 1990, Thm. 1], and every recorded operation touches exactly one
 * key, so the checker decomposes the history by key and checks each
 * subhistory independently — which also keeps the search small
 * enough for an exhaustive DFS with memoization on (done-set, model
 * state).
 *
 * The suite runs every branch at shards 1, 4 and 16: the sharded
 * cache must be indistinguishable from the unsharded one for
 * single-key operations, whatever the branch's synchronization
 * (per-shard pthread locks or per-shard TM domains). A self-test
 * feeds the checker deliberately non-linearizable histories and
 * expects rejection, so a vacuously-accepting checker cannot pass.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "mc/cache_iface.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

// ---------------------------------------------------------------- history

enum class OpKind : std::uint8_t
{
    Get,
    Set,
    Del,
    Incr,
};

/** One completed operation in the recorded history. */
struct Op
{
    OpKind kind = OpKind::Get;
    std::string key;
    std::uint64_t arg = 0;       //!< Set value / incr delta.
    std::uint64_t invoke = 0;    //!< Timestamp before the call.
    std::uint64_t ret = 0;       //!< Timestamp after the call.
    OpStatus status = OpStatus::Miss;  //!< Observed status.
    std::string out;             //!< Observed value (get hit).
    std::uint64_t outNum = 0;    //!< Observed counter (incr hit).
};

/**
 * Stamps operations with a globally ordered invoke/response pair.
 * fetch_add on one counter is enough: if op A returned before op B
 * was invoked in real time, A's response stamp is smaller than B's
 * invoke stamp, which is exactly the precedence the checker enforces.
 */
class HistoryRecorder
{
  public:
    std::uint64_t
    stamp()
    {
        return clock_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> clock_{0};
};

// ---------------------------------------------------------------- checker

/** Sequential single-key model: absent, or holding a counter value.
 *  (Workers only ever store decimal values, matching incr's domain.) */
using KeyState = std::optional<std::uint64_t>;

/**
 * Replay @p op against @p st. @return false if the observed result is
 * impossible from this state (the candidate linearization dies).
 */
bool
applyOp(const Op &op, KeyState &st)
{
    switch (op.kind) {
      case OpKind::Get:
        if (!st.has_value())
            return op.status == OpStatus::Miss;
        return op.status == OpStatus::Ok &&
               op.out == std::to_string(*st);
      case OpKind::Set:
        if (op.status != OpStatus::Ok)
            return false;  // Plain set must succeed.
        st = op.arg;
        return true;
      case OpKind::Del:
        if (!st.has_value())
            return op.status == OpStatus::Miss;
        if (op.status != OpStatus::Ok)
            return false;
        st.reset();
        return true;
      case OpKind::Incr:
        if (!st.has_value())
            return op.status == OpStatus::Miss;
        if (op.status != OpStatus::Ok ||
            op.outNum != *st + op.arg)
            return false;
        st = *st + op.arg;
        return true;
    }
    return false;
}

/**
 * Wing & Gong search over one key's subhistory: repeatedly pick a
 * *minimal* pending operation (one invoked before every pending
 * response, so no real-time edge forces anything ahead of it), replay
 * it, recurse. Memoizes (done-set, state) — reaching the same set of
 * completed operations with the same model value again can never
 * succeed where it previously failed.
 */
bool
linearizableKey(const std::vector<const Op *> &ops)
{
    const std::size_t n = ops.size();
    if (n == 0)
        return true;
    if (n > 64) {
        ADD_FAILURE() << "per-key history too large for the checker ("
                      << n << " ops); lower the op count";
        return false;
    }
    std::unordered_set<std::string> visited;

    struct DfsFn
    {
        const std::vector<const Op *> &ops;
        std::unordered_set<std::string> &visited;

        bool
        operator()(std::uint64_t done, const KeyState &st) const
        {
            const std::size_t n = ops.size();
            if (done == (n == 64 ? ~0ull : (1ull << n) - 1))
                return true;
            std::string memo = std::to_string(done) + "|" +
                               (st ? std::to_string(*st) : "~");
            if (!visited.insert(std::move(memo)).second)
                return false;
            // An op may linearize next only if it was invoked before
            // every pending op's response.
            std::uint64_t min_ret = ~0ull;
            for (std::size_t i = 0; i < n; ++i) {
                if ((done & (1ull << i)) == 0)
                    min_ret = std::min(min_ret, ops[i]->ret);
            }
            for (std::size_t i = 0; i < n; ++i) {
                if ((done & (1ull << i)) != 0)
                    continue;
                if (ops[i]->invoke > min_ret)
                    continue;
                KeyState next = st;
                if (!applyOp(*ops[i], next))
                    continue;
                if ((*this)(done | (1ull << i), next))
                    return true;
            }
            return false;
        }
    };
    return DfsFn{ops, visited}(0, std::nullopt);
}

/** Split by key and check every subhistory; empty-cache initial state. */
bool
linearizable(const std::vector<Op> &history)
{
    std::vector<std::string> keys;
    for (const Op &op : history) {
        if (std::find(keys.begin(), keys.end(), op.key) == keys.end())
            keys.push_back(op.key);
    }
    for (const std::string &k : keys) {
        std::vector<const Op *> sub;
        for (const Op &op : history) {
            if (op.key == k)
                sub.push_back(&op);
        }
        if (!linearizableKey(sub)) {
            // Dump the offending subhistory so a CI failure is
            // actionable (the workflow uploads this as an artifact).
            std::fprintf(stderr,
                         "non-linearizable subhistory for key '%s':\n",
                         k.c_str());
            for (const Op *op : sub) {
                const char *kind =
                    op->kind == OpKind::Get   ? "get"
                    : op->kind == OpKind::Set ? "set"
                    : op->kind == OpKind::Del ? "del"
                                              : "incr";
                std::fprintf(
                    stderr,
                    "  [%llu,%llu] %s %s arg=%llu -> status=%d out=%s "
                    "outNum=%llu\n",
                    static_cast<unsigned long long>(op->invoke),
                    static_cast<unsigned long long>(op->ret), kind,
                    op->key.c_str(),
                    static_cast<unsigned long long>(op->arg),
                    static_cast<int>(op->status), op->out.c_str(),
                    static_cast<unsigned long long>(op->outNum));
            }
            return false;
        }
    }
    return true;
}

// ------------------------------------------------------------ self-tests

Op
mkOp(OpKind kind, std::uint64_t invoke, std::uint64_t ret,
     OpStatus status, std::uint64_t arg = 0, const std::string &out = "",
     std::uint64_t out_num = 0)
{
    Op op;
    op.kind = kind;
    op.key = "k";
    op.arg = arg;
    op.invoke = invoke;
    op.ret = ret;
    op.status = status;
    op.out = out;
    op.outNum = out_num;
    return op;
}

TEST(LinearizabilityChecker, AcceptsSequentialHistory)
{
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 7));
    h.push_back(mkOp(OpKind::Get, 2, 3, OpStatus::Ok, 0, "7"));
    h.push_back(mkOp(OpKind::Incr, 4, 5, OpStatus::Ok, 3, "", 10));
    h.push_back(mkOp(OpKind::Del, 6, 7, OpStatus::Ok));
    h.push_back(mkOp(OpKind::Get, 8, 9, OpStatus::Miss));
    EXPECT_TRUE(linearizable(h));
}

TEST(LinearizabilityChecker, AcceptsConcurrentReorder)
{
    // The get overlaps the set and already observes its value: legal,
    // the set linearizes inside its window before the get.
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 5, OpStatus::Ok, 42));
    h.push_back(mkOp(OpKind::Get, 1, 2, OpStatus::Ok, 0, "42"));
    EXPECT_TRUE(linearizable(h));
}

TEST(LinearizabilityChecker, RejectsPhantomRead)
{
    // Nothing ever wrote 9: no linearization can explain the get.
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 7));
    h.push_back(mkOp(OpKind::Get, 2, 3, OpStatus::Ok, 0, "9"));
    EXPECT_FALSE(linearizable(h));
}

TEST(LinearizabilityChecker, RejectsStaleRead)
{
    // The second set completed before the get was invoked; real time
    // forbids linearizing the get before it.
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 1));
    h.push_back(mkOp(OpKind::Set, 2, 3, OpStatus::Ok, 2));
    h.push_back(mkOp(OpKind::Get, 4, 5, OpStatus::Ok, 0, "1"));
    EXPECT_FALSE(linearizable(h));
}

TEST(LinearizabilityChecker, RejectsLostUpdate)
{
    // Two concurrent incrs both observed 0 -> 5: one update vanished.
    std::vector<Op> h;
    h.push_back(mkOp(OpKind::Set, 0, 1, OpStatus::Ok, 0));
    h.push_back(mkOp(OpKind::Incr, 2, 6, OpStatus::Ok, 5, "", 5));
    h.push_back(mkOp(OpKind::Incr, 3, 7, OpStatus::Ok, 5, "", 5));
    EXPECT_FALSE(linearizable(h));
}

// ------------------------------------------------------- cache harness

class LinearizabilityTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        tm::Runtime::get().resetStats();
    }
};

/**
 * Drive @p threads workers through a random single-key op mix and
 * return the merged history.
 */
std::vector<Op>
recordHistory(CacheIface &cache, int threads, int ops_per_thread,
              int keys, std::uint64_t seed)
{
    HistoryRecorder rec;
    std::vector<std::vector<Op>> perThread(threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&, t]() {
            XorShift128 rng(seed + static_cast<std::uint64_t>(t));
            auto &hist = perThread[t];
            hist.reserve(static_cast<std::size_t>(ops_per_thread));
            char buf[256];
            for (int i = 0; i < ops_per_thread; ++i) {
                Op op;
                op.key =
                    "lin" + std::to_string(rng.nextBounded(
                                static_cast<std::uint64_t>(keys)));
                const std::uint64_t dice = rng.nextBounded(100);
                const auto tid = static_cast<std::uint32_t>(t);
                if (dice < 45) {
                    op.kind = OpKind::Get;
                    op.invoke = rec.stamp();
                    const auto r =
                        cache.get(tid, op.key.data(), op.key.size(),
                                  buf, sizeof(buf));
                    op.ret = rec.stamp();
                    op.status = r.status;
                    if (r.status == OpStatus::Ok)
                        op.out.assign(buf,
                                      std::min(r.vlen, sizeof(buf)));
                } else if (dice < 70) {
                    op.kind = OpKind::Set;
                    op.arg = rng.nextBounded(1000);
                    const std::string val = std::to_string(op.arg);
                    op.invoke = rec.stamp();
                    op.status = cache.store(tid, op.key.data(),
                                            op.key.size(), val.data(),
                                            val.size());
                    op.ret = rec.stamp();
                } else if (dice < 85) {
                    op.kind = OpKind::Incr;
                    op.arg = 1 + rng.nextBounded(9);
                    std::uint64_t out = 0;
                    op.invoke = rec.stamp();
                    op.status =
                        cache.arith(tid, op.key.data(), op.key.size(),
                                    op.arg, true, out);
                    op.ret = rec.stamp();
                    op.outNum = out;
                } else {
                    op.kind = OpKind::Del;
                    op.invoke = rec.stamp();
                    op.status =
                        cache.del(tid, op.key.data(), op.key.size());
                    op.ret = rec.stamp();
                }
                hist.push_back(std::move(op));
            }
        });
    }
    for (auto &th : pool)
        th.join();
    std::vector<Op> history;
    for (auto &v : perThread) {
        for (auto &op : v)
            history.push_back(std::move(op));
    }
    return history;
}

/** Shard counts to sweep: all of {1,4,16} by default; a single count
 *  when TMEMC_LIN_SHARDS is set (the CI shard-matrix legs use this to
 *  pin one configuration per sanitizer run). */
std::vector<std::uint32_t>
shardSweep()
{
    if (const char *env = std::getenv("TMEMC_LIN_SHARDS")) {
        const unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0)
            return {static_cast<std::uint32_t>(v)};
    }
    return {1u, 4u, 16u};
}

TEST_P(LinearizabilityTest, ConcurrentHistoryIsLinearizable)
{
    // Plenty of memory and few small keys: no eviction and no expiry,
    // so the sequential model above is the complete specification.
    for (const std::uint32_t shards : shardSweep()) {
        Settings s;
        s.maxBytes = 64 * 1024 * 1024;
        auto cache = makeShardedCache(GetParam(), s, 4, shards);
        ASSERT_NE(cache, nullptr);
        ASSERT_EQ(cache->shardCount(), shards);

        const std::vector<Op> history = recordHistory(
            *cache, /*threads=*/4, /*ops_per_thread=*/40, /*keys=*/8,
            /*seed=*/20260806 + shards);
        EXPECT_TRUE(linearizable(history))
            << GetParam() << " with shards=" << shards;
    }
}

TEST_P(LinearizabilityTest, InvisibleReaderFastPathPreservesLinearizability)
{
    // The GET path's read-only sites (mc:get-copy, mc:refcount-expr)
    // run as invisible readers when RuntimeCfg::roFastPath is on:
    // sequence-validated loads, no read set, O(1) commit. Opacity of
    // that path is exactly single-key linearizability of get against
    // concurrent set/incr/del — record the same mixed history with
    // the fast path on and off and demand both check out, plus proof
    // that the "on" leg actually carried fast-path commits (on the
    // branches whose get-copy is speculative) so the pass is not
    // vacuous.
    const std::string &branch = GetParam();
    const bool hintedBranch =
        branch.find("Lib") != std::string::npos ||
        branch.find("onCommit") != std::string::npos;
    for (const bool fast : {true, false}) {
        for (const std::uint32_t shards : {1u, 4u}) {
            tm::RuntimeCfg cfg;
            cfg.roFastPath = fast;
            tm::Runtime::get().configure(cfg);
            tm::Runtime::get().resetStats();

            Settings s;
            s.maxBytes = 64 * 1024 * 1024;
            auto cache = makeShardedCache(branch, s, 4, shards);
            ASSERT_NE(cache, nullptr);
            const std::vector<Op> history = recordHistory(
                *cache, /*threads=*/4, /*ops_per_thread=*/40,
                /*keys=*/8, /*seed=*/20260808 + shards + (fast ? 1 : 0));
            EXPECT_TRUE(linearizable(history))
                << branch << " roFastPath=" << fast
                << " shards=" << shards;

            const auto snap = tm::Runtime::get().snapshot();
            if (fast && hintedBranch) {
                EXPECT_GT(snap.total.roFastCommits, 0u)
                    << branch << ": fast path never engaged";
            }
            if (!fast) {
                EXPECT_EQ(snap.total.roFastCommits, 0u)
                    << branch << ": ablation knob ignored";
            }
            // The cache (and its maintenance thread) must be gone
            // before the next configure(), which refuses while any
            // transaction is in flight.
            cache.reset();
        }
    }
    tm::Runtime::get().configure(tm::RuntimeCfg{});
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, LinearizabilityTest,
    ::testing::ValuesIn(allBranchNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-' || c == '+')
                c = '_';
        }
        return name;
    });

} // namespace
