/**
 * @file
 * Tests for the text-protocol layer and the worklist dispatcher.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "mc/cache_iface.h"
#include "mc/protocol.h"
#include "mc/worklist.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

class ProtocolTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        Settings s;
        s.maxBytes = 8 * 1024 * 1024;
        cache_ = makeCache(GetParam(), s, 2);
        ASSERT_NE(cache_, nullptr);
    }

    std::string
    exec(const std::string &req)
    {
        return protocolExecute(*cache_, 0, req);
    }

    std::unique_ptr<CacheIface> cache_;
};

TEST_P(ProtocolTest, SetAndGet)
{
    EXPECT_EQ(exec("set greet 0 0 5\r\nhello\r\n"), "STORED\r\n");
    EXPECT_EQ(exec("get greet\r\n"),
              "VALUE greet 0 5\r\nhello\r\nEND\r\n");
}

TEST_P(ProtocolTest, GetMissEndsImmediately)
{
    EXPECT_EQ(exec("get nothing\r\n"), "END\r\n");
}

TEST_P(ProtocolTest, AddReplaceSemantics)
{
    EXPECT_EQ(exec("add k 0 0 1\r\na\r\n"), "STORED\r\n");
    EXPECT_EQ(exec("add k 0 0 1\r\nb\r\n"), "NOT_STORED\r\n");
    EXPECT_EQ(exec("replace k 0 0 1\r\nc\r\n"), "STORED\r\n");
    EXPECT_EQ(exec("replace zz 0 0 1\r\nd\r\n"), "NOT_STORED\r\n");
    EXPECT_EQ(exec("get k\r\n"), "VALUE k 0 1\r\nc\r\nEND\r\n");
}

TEST_P(ProtocolTest, GetsReturnsCasAndCasStores)
{
    EXPECT_EQ(exec("set c 0 0 2\r\nv1\r\n"), "STORED\r\n");
    const std::string reply = exec("gets c\r\n");
    // "VALUE c 0 2 <cas>\r\nv1\r\nEND\r\n"
    ASSERT_EQ(reply.rfind("VALUE c 0 2 ", 0), 0u);
    const std::size_t eol = reply.find("\r\n");
    const std::string cas = reply.substr(12, eol - 12);
    EXPECT_EQ(exec("cas c 0 0 2 " + cas + "\r\nv2\r\n"), "STORED\r\n");
    EXPECT_EQ(exec("cas c 0 0 2 " + cas + "\r\nv3\r\n"), "EXISTS\r\n");
    EXPECT_EQ(exec("cas zz 0 0 1 1\r\nx\r\n"), "NOT_FOUND\r\n");
}

TEST_P(ProtocolTest, AppendPrepend)
{
    EXPECT_EQ(exec("append m 0 0 1\r\nx\r\n"), "NOT_STORED\r\n");
    exec("set m 0 0 3\r\nmid\r\n");
    EXPECT_EQ(exec("append m 0 0 4\r\n-end\r\n"), "STORED\r\n");
    EXPECT_EQ(exec("prepend m 0 0 4\r\npre-\r\n"), "STORED\r\n");
    EXPECT_EQ(exec("get m\r\n"),
              "VALUE m 0 11\r\npre-mid-end\r\nEND\r\n");
}

TEST_P(ProtocolTest, DeleteReports)
{
    exec("set d 0 0 1\r\nx\r\n");
    EXPECT_EQ(exec("delete d\r\n"), "DELETED\r\n");
    EXPECT_EQ(exec("delete d\r\n"), "NOT_FOUND\r\n");
}

TEST_P(ProtocolTest, IncrDecr)
{
    exec("set n 0 0 2\r\n40\r\n");
    EXPECT_EQ(exec("incr n 2\r\n"), "42\r\n");
    EXPECT_EQ(exec("decr n 40\r\n"), "2\r\n");
    EXPECT_EQ(exec("decr n 50\r\n"), "0\r\n");
    EXPECT_EQ(exec("incr missing 1\r\n"), "NOT_FOUND\r\n");
}

TEST_P(ProtocolTest, StatsAndVersionAndFlush)
{
    exec("set s 0 0 1\r\nx\r\n");
    const std::string stats = exec("stats\r\n");
    EXPECT_NE(stats.find("STAT curr_items 1\r\n"), std::string::npos);
    EXPECT_NE(stats.find("END\r\n"), std::string::npos);
    const std::string version = exec("version\r\n");
    EXPECT_EQ(version.rfind("VERSION ", 0), 0u);
    EXPECT_EQ(exec("flush_all\r\n"), "OK\r\n");
    EXPECT_EQ(exec("get s\r\n"), "END\r\n");
}

TEST_P(ProtocolTest, MalformedInputsRejected)
{
    EXPECT_EQ(exec(""), "ERROR\r\n");
    EXPECT_EQ(exec("\r\n"), "ERROR\r\n");
    EXPECT_EQ(exec("bogus cmd\r\n"), "ERROR\r\n");
    EXPECT_EQ(exec("get\r\n"), "ERROR\r\n");
    EXPECT_EQ(exec("set k 0 0\r\n"), "ERROR\r\n");
    // Declared more bytes than provided.
    EXPECT_EQ(exec("set k 0 0 10\r\nabc\r\n"),
              "CLIENT_ERROR bad data chunk\r\n");
    EXPECT_EQ(exec("incr n\r\n"), "ERROR\r\n");
}

INSTANTIATE_TEST_SUITE_P(SomeBranches, ProtocolTest,
                         ::testing::Values("Baseline", "IP-Callable",
                                           "IT-onCommit"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(Worklist, DispatchesAndReplies)
{
    tm::Runtime::get().configure(tm::RuntimeCfg{});
    Settings s;
    auto cache = makeCache("IT-onCommit", s, 3);
    Worklist wl(3, [&](std::uint32_t w, const ConnWork &work) {
        return protocolExecute(*cache, w, work.request);
    });
    std::atomic<int> outstanding{0};
    std::atomic<int> stored{0};
    for (int i = 0; i < 200; ++i) {
        outstanding.fetch_add(1);
        const std::string key = "wk" + std::to_string(i);
        wl.submit("set " + key + " 0 0 3\r\nabc\r\n",
                  [&](std::string reply) {
                      if (reply == "STORED\r\n")
                          stored.fetch_add(1);
                      outstanding.fetch_sub(1);
                  });
    }
    while (outstanding.load() != 0)
        std::this_thread::yield();
    EXPECT_EQ(stored.load(), 200);
    EXPECT_EQ(cache->globalStats().currItems, 200u);
}

TEST(Worklist, ShutdownJoinsWorkers)
{
    std::atomic<int> handled{0};
    {
        Worklist wl(2, [&](std::uint32_t, const ConnWork &) {
            handled.fetch_add(1);
            return std::string("ok");
        });
        std::atomic<int> outstanding{2};
        wl.submit("x", [&](std::string) { outstanding.fetch_sub(1); });
        wl.submit("y", [&](std::string) { outstanding.fetch_sub(1); });
        while (outstanding.load() != 0)
            std::this_thread::yield();
    }  // Destructor must join cleanly.
    EXPECT_EQ(handled.load(), 2);
}

} // namespace
