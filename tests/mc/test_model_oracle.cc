/**
 * @file
 * Reference-model oracle: long random operation sequences executed
 * against both the cache and a trivially-correct in-memory model;
 * every observable result must match, for every branch.
 *
 * Sequential oracle runs catch semantic bugs (wrong CAS behaviour,
 * clobbered values, phantom items) that invariant checks miss; the
 * concurrent suites cover interleaving separately.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "mc/cache_iface.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

/** The trivially-correct model. */
class ModelCache
{
  public:
    struct Entry
    {
        std::string value;
        std::uint64_t cas;
    };

    OpStatus
    store(const std::string &key, const std::string &val, StoreMode mode,
          std::uint64_t cas_expected)
    {
        auto it = map_.find(key);
        switch (mode) {
          case StoreMode::Add:
            if (it != map_.end())
                return OpStatus::NotStored;
            break;
          case StoreMode::Replace:
            if (it == map_.end())
                return OpStatus::NotStored;
            break;
          case StoreMode::Cas:
            if (it == map_.end())
                return OpStatus::Miss;
            if (it->second.cas != cas_expected)
                return OpStatus::Exists;
            break;
          case StoreMode::Set:
            break;
        }
        map_[key] = {val, ++casCounter_};
        return OpStatus::Ok;
    }

    std::optional<Entry>
    get(const std::string &key) const
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        return it->second;
    }

    bool
    del(const std::string &key)
    {
        return map_.erase(key) > 0;
    }

    OpStatus
    concat(const std::string &key, const std::string &extra, bool append)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return OpStatus::NotStored;
        it->second.value =
            append ? it->second.value + extra : extra + it->second.value;
        it->second.cas = ++casCounter_;
        return OpStatus::Ok;
    }

    OpStatus
    arith(const std::string &key, std::uint64_t delta, bool incr,
          std::uint64_t &out)
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return OpStatus::Miss;
        const std::uint64_t cur =
            std::strtoull(it->second.value.c_str(), nullptr, 10);
        out = incr ? cur + delta : (cur < delta ? 0 : cur - delta);
        it->second.value = std::to_string(out);
        it->second.cas = ++casCounter_;
        return OpStatus::Ok;
    }

    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<std::string, Entry> map_;
    std::uint64_t casCounter_ = 0;
};

class OracleTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(OracleTest, RandomOpSequenceMatchesModel)
{
    tm::Runtime::get().configure(runtimeCfgFor(GetParam()));
    Settings s;
    s.maxBytes = 64 * 1024 * 1024;  // No evictions: model has none.
    s.hashPowerInit = 6;            // Force expansions mid-sequence.
    auto cache = makeCache(GetParam(), s, 1);
    ASSERT_NE(cache, nullptr);
    ModelCache model;

    XorShift128 rng(0xda7a + GetParam().size());
    char buf[512];
    constexpr int ops = 20000;
    constexpr int key_space = 300;

    for (int i = 0; i < ops; ++i) {
        const std::string key =
            "o" + std::to_string(rng.nextBounded(key_space));
        const double roll = rng.nextDouble();

        if (roll < 0.35) {
            // get: value and hit/miss must match; CAS ids are
            // generation counters in both, but with different
            // numbering, so only presence is compared.
            const auto r = cache->get(0, key.data(), key.size(), buf,
                                      sizeof(buf));
            const auto m = model.get(key);
            ASSERT_EQ(r.status == OpStatus::Ok, m.has_value())
                << "op " << i << " get " << key;
            if (m) {
                ASSERT_EQ(std::string(buf, r.vlen), m->value)
                    << "op " << i << " get " << key;
            }
        } else if (roll < 0.6) {
            const std::string val =
                key + "=" + std::to_string(rng.nextBounded(1 << 20));
            const auto mode =
                rng.nextDouble() < 0.5
                    ? StoreMode::Set
                    : (rng.nextDouble() < 0.5 ? StoreMode::Add
                                              : StoreMode::Replace);
            const auto st = cache->store(0, key.data(), key.size(),
                                         val.data(), val.size(), mode, 0);
            const auto ms = model.store(key, val, mode, 0);
            ASSERT_EQ(st, ms) << "op " << i << " store " << key;
        } else if (roll < 0.7) {
            // CAS: read the real cache's CAS id, sometimes corrupt it.
            const auto r = cache->get(0, key.data(), key.size(), buf,
                                      sizeof(buf));
            const bool corrupt = rng.nextDouble() < 0.4;
            if (r.status == OpStatus::Ok) {
                const std::uint64_t cas = r.casId + (corrupt ? 7 : 0);
                const std::string val = key + "+cas";
                const auto st =
                    cache->store(0, key.data(), key.size(), val.data(),
                                 val.size(), StoreMode::Cas, cas);
                // Mirror into the model using its own CAS numbering.
                const auto m = model.get(key);
                ASSERT_TRUE(m.has_value());
                const auto ms = model.store(
                    key, val, StoreMode::Cas,
                    corrupt ? m->cas + 7 : m->cas);
                ASSERT_EQ(st, ms) << "op " << i << " cas " << key;
            }
        } else if (roll < 0.75) {
            const auto st = cache->del(0, key.data(), key.size());
            const bool md = model.del(key);
            ASSERT_EQ(st == OpStatus::Ok, md) << "op " << i;
        } else if (roll < 0.8) {
            const bool append = rng.nextDouble() < 0.5;
            const std::string extra =
                "+" + std::to_string(rng.nextBounded(100));
            const auto st = cache->concat(0, key.data(), key.size(),
                                          extra.data(), extra.size(),
                                          append);
            const auto ms = model.concat(key, extra, append);
            ASSERT_EQ(st, ms) << "op " << i << " concat " << key;
        } else if (roll < 0.9) {
            // Seed a numeric value sometimes so arith hits.
            if (rng.nextDouble() < 0.3) {
                const std::string num =
                    std::to_string(rng.nextBounded(1000));
                cache->store(0, key.data(), key.size(), num.data(),
                             num.size());
                model.store(key, num, StoreMode::Set, 0);
            }
            std::uint64_t got = 0;
            std::uint64_t want = 0;
            const bool incr = rng.nextDouble() < 0.5;
            const std::uint64_t delta = rng.nextBounded(50);
            const auto st = cache->arith(0, key.data(), key.size(),
                                         delta, incr, got);
            const auto ms = model.arith(key, delta, incr, want);
            ASSERT_EQ(st, ms) << "op " << i << " arith " << key;
            if (st == OpStatus::Ok)
                ASSERT_EQ(got, want) << "op " << i << " arith " << key;
        } else {
            // Cross-check the census.
            ASSERT_EQ(cache->globalStats().currItems, model.size())
                << "op " << i;
        }
    }
    cache->quiesceMaintenance();
    ASSERT_EQ(cache->globalStats().currItems, model.size());
    ASSERT_EQ(cache->linkedItemCount(), model.size());
    // Final full sweep: every model key must read back exactly.
    for (int k = 0; k < key_space; ++k) {
        const std::string key = "o" + std::to_string(k);
        const auto m = model.get(key);
        const auto r =
            cache->get(0, key.data(), key.size(), buf, sizeof(buf));
        ASSERT_EQ(r.status == OpStatus::Ok, m.has_value()) << key;
        if (m)
            ASSERT_EQ(std::string(buf, r.vlen), m->value) << key;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, OracleTest, ::testing::ValuesIn(allBranchNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
