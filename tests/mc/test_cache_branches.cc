/**
 * @file
 * Behavioural tests of the cache API, parameterized over every branch
 * of the transactionalization ladder: the same assertions must hold
 * from Baseline through IT-onCommit.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "mc/cache_iface.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using namespace tmemc::mc;

class BranchTest : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        tm::Runtime::get().configure(runtimeCfgFor(GetParam()));
        tm::Runtime::get().resetStats();
        Settings s;
        s.maxBytes = 8 * 1024 * 1024;
        s.slabPageSize = 16 * 1024;
        s.hashPowerInit = 8;
        cache_ = makeCache(GetParam(), s, 4);
        ASSERT_NE(cache_, nullptr);
    }

    OpStatus
    put(const std::string &key, const std::string &val,
        StoreMode mode = StoreMode::Set, std::uint64_t cas = 0)
    {
        return cache_->store(0, key.data(), key.size(), val.data(),
                             val.size(), mode, cas);
    }

    /** Get as a string; empty optional on miss. */
    bool
    fetch(const std::string &key, std::string &out,
          std::uint64_t *cas = nullptr)
    {
        char buf[4096];
        const auto r =
            cache_->get(0, key.data(), key.size(), buf, sizeof(buf));
        if (r.status != OpStatus::Ok)
            return false;
        out.assign(buf, r.vlen);
        if (cas != nullptr)
            *cas = r.casId;
        return true;
    }

    std::unique_ptr<CacheIface> cache_;
};

TEST_P(BranchTest, MissOnEmptyCache)
{
    std::string out;
    EXPECT_FALSE(fetch("nothing", out));
}

TEST_P(BranchTest, SetThenGetRoundTrips)
{
    ASSERT_EQ(put("hello", "world"), OpStatus::Ok);
    std::string out;
    ASSERT_TRUE(fetch("hello", out));
    EXPECT_EQ(out, "world");
}

TEST_P(BranchTest, OverwriteReplacesValue)
{
    ASSERT_EQ(put("k", "first"), OpStatus::Ok);
    ASSERT_EQ(put("k", "second-longer-value"), OpStatus::Ok);
    std::string out;
    ASSERT_TRUE(fetch("k", out));
    EXPECT_EQ(out, "second-longer-value");
    EXPECT_EQ(cache_->globalStats().currItems, 1u);
}

TEST_P(BranchTest, AddOnlyWhenAbsent)
{
    EXPECT_EQ(put("a", "1", StoreMode::Add), OpStatus::Ok);
    EXPECT_EQ(put("a", "2", StoreMode::Add), OpStatus::NotStored);
    std::string out;
    ASSERT_TRUE(fetch("a", out));
    EXPECT_EQ(out, "1");
}

TEST_P(BranchTest, ReplaceOnlyWhenPresent)
{
    EXPECT_EQ(put("r", "x", StoreMode::Replace), OpStatus::NotStored);
    ASSERT_EQ(put("r", "x"), OpStatus::Ok);
    EXPECT_EQ(put("r", "y", StoreMode::Replace), OpStatus::Ok);
    std::string out;
    ASSERT_TRUE(fetch("r", out));
    EXPECT_EQ(out, "y");
}

TEST_P(BranchTest, CasMatchesAndMismatches)
{
    ASSERT_EQ(put("c", "v1"), OpStatus::Ok);
    std::string out;
    std::uint64_t cas = 0;
    ASSERT_TRUE(fetch("c", out, &cas));
    EXPECT_EQ(put("c", "v2", StoreMode::Cas, cas), OpStatus::Ok);
    // Stale CAS id now fails.
    EXPECT_EQ(put("c", "v3", StoreMode::Cas, cas), OpStatus::Exists);
    ASSERT_TRUE(fetch("c", out));
    EXPECT_EQ(out, "v2");
    EXPECT_EQ(put("missing", "v", StoreMode::Cas, 1), OpStatus::Miss);
    EXPECT_EQ(cache_->globalStats().casBadval, 1u);
}

TEST_P(BranchTest, DeleteRemoves)
{
    ASSERT_EQ(put("d", "gone"), OpStatus::Ok);
    EXPECT_EQ(cache_->del(0, "d", 1), OpStatus::Ok);
    std::string out;
    EXPECT_FALSE(fetch("d", out));
    EXPECT_EQ(cache_->del(0, "d", 1), OpStatus::Miss);
    EXPECT_EQ(cache_->globalStats().currItems, 0u);
}

TEST_P(BranchTest, IncrDecrArithmetic)
{
    ASSERT_EQ(put("n", "10"), OpStatus::Ok);
    std::uint64_t v = 0;
    EXPECT_EQ(cache_->arith(0, "n", 1, 5, true, v), OpStatus::Ok);
    EXPECT_EQ(v, 15u);
    EXPECT_EQ(cache_->arith(0, "n", 1, 3, false, v), OpStatus::Ok);
    EXPECT_EQ(v, 12u);
    std::string out;
    ASSERT_TRUE(fetch("n", out));
    EXPECT_EQ(out, "12");
    // Decrement clamps at zero, like memcached.
    EXPECT_EQ(cache_->arith(0, "n", 1, 100, false, v), OpStatus::Ok);
    EXPECT_EQ(v, 0u);
    // Miss path.
    EXPECT_EQ(cache_->arith(0, "absent", 6, 1, true, v), OpStatus::Miss);
}

TEST_P(BranchTest, IncrGrowsDigitCountInPlace)
{
    ASSERT_EQ(put("g", "9"), OpStatus::Ok);
    std::uint64_t v = 0;
    for (int i = 0; i < 5; ++i)
        ASSERT_EQ(cache_->arith(0, "g", 1, 999, true, v), OpStatus::Ok);
    std::string out;
    ASSERT_TRUE(fetch("g", out));
    EXPECT_EQ(out, std::to_string(9 + 5 * 999));
}

TEST_P(BranchTest, AppendPrependInPlace)
{
    ASSERT_EQ(put("cat", "middle"), OpStatus::Ok);
    EXPECT_EQ(cache_->concat(0, "cat", 3, "-end", 4, true),
              OpStatus::Ok);
    EXPECT_EQ(cache_->concat(0, "cat", 3, "front-", 6, false),
              OpStatus::Ok);
    std::string out;
    ASSERT_TRUE(fetch("cat", out));
    EXPECT_EQ(out, "front-middle-end");
    // Missing key: NOT_STORED, like memcached.
    EXPECT_EQ(cache_->concat(0, "nope", 4, "x", 1, true),
              OpStatus::NotStored);
}

TEST_P(BranchTest, AppendGrowsAcrossChunkBoundary)
{
    // Start small, append until the value must migrate to bigger slab
    // classes (the CAS-replace path).
    ASSERT_EQ(put("grow", "0123456789"), OpStatus::Ok);
    std::string expected = "0123456789";
    const std::string chunk(64, 'z');
    for (int i = 0; i < 40; ++i) {
        ASSERT_EQ(cache_->concat(0, "grow", 4, chunk.data(),
                                 chunk.size(), true),
                  OpStatus::Ok)
            << "round " << i;
        expected += chunk;
    }
    std::string out;
    ASSERT_TRUE(fetch("grow", out));
    EXPECT_EQ(out.size(), expected.size());
    EXPECT_EQ(out, expected);
    EXPECT_EQ(cache_->globalStats().currItems, 1u);
}

TEST_P(BranchTest, PrependPreservesOrderAcrossGrowth)
{
    ASSERT_EQ(put("pre", "tail"), OpStatus::Ok);
    std::string expected = "tail";
    for (int i = 0; i < 30; ++i) {
        const std::string piece = std::to_string(i) + "|";
        ASSERT_EQ(cache_->concat(0, "pre", 3, piece.data(), piece.size(),
                                 false),
                  OpStatus::Ok);
        expected = piece + expected;
    }
    std::string out;
    ASSERT_TRUE(fetch("pre", out));
    EXPECT_EQ(out, expected);
}

TEST_P(BranchTest, TouchUpdatesExpiry)
{
    ASSERT_EQ(put("t", "v"), OpStatus::Ok);
    EXPECT_EQ(cache_->touch(0, "t", 1, 1), OpStatus::Ok);
    EXPECT_EQ(cache_->touch(0, "zz", 2, 1), OpStatus::Miss);
    // Advance logical time far past the expiry; expired items are
    // lazily reclaimed on the next get.
    std::string out;
    for (int i = 0; i < 100000 && fetch("t", out); ++i) {
    }
    EXPECT_FALSE(fetch("t", out));
    EXPECT_GE(cache_->globalStats().expiredUnfetched, 1u);
}

TEST_P(BranchTest, StatsCountersTrackOps)
{
    ASSERT_EQ(put("s1", "v"), OpStatus::Ok);
    std::string out;
    ASSERT_TRUE(fetch("s1", out));
    fetch("s-missing", out);
    const ThreadStatsBlock ts = cache_->threadStats();
    EXPECT_EQ(ts.cmdSet, 1u);
    EXPECT_EQ(ts.cmdGet, 2u);
    EXPECT_EQ(ts.getHits, 1u);
    EXPECT_EQ(ts.getMisses, 1u);
    const GlobalStats gs = cache_->globalStats();
    EXPECT_EQ(gs.currItems, 1u);
    EXPECT_EQ(gs.totalItems, 1u);
    EXPECT_EQ(gs.currBytes, 1u);
}

TEST_P(BranchTest, StatsTextRendersRows)
{
    ASSERT_EQ(put("x", "val"), OpStatus::Ok);
    char buf[2048];
    const std::size_t n = cache_->statsText(0, buf, sizeof(buf));
    ASSERT_GT(n, 0u);
    const std::string text(buf, n);
    EXPECT_NE(text.find("STAT curr_items 1\r\n"), std::string::npos);
    EXPECT_NE(text.find("STAT cmd_set 1\r\n"), std::string::npos);
}

TEST_P(BranchTest, FlushAllEmptiesTheCache)
{
    for (int i = 0; i < 50; ++i) {
        const std::string k = "flush" + std::to_string(i);
        ASSERT_EQ(put(k, "v"), OpStatus::Ok);
    }
    EXPECT_EQ(cache_->globalStats().currItems, 50u);
    cache_->flushAll(0);
    EXPECT_EQ(cache_->globalStats().currItems, 0u);
    EXPECT_EQ(cache_->linkedItemCount(), 0u);
    std::string out;
    EXPECT_FALSE(fetch("flush7", out));
}

TEST_P(BranchTest, ManyKeysSurviveHashExpansion)
{
    const std::uint32_t initial_power = cache_->hashPowerNow();
    constexpr int n = 2000;  // >> 1.5 * 2^8 buckets.
    for (int i = 0; i < n; ++i) {
        const std::string k = "exp" + std::to_string(i);
        ASSERT_EQ(put(k, "v" + std::to_string(i)), OpStatus::Ok);
    }
    cache_->quiesceMaintenance();
    EXPECT_GT(cache_->hashPowerNow(), initial_power);
    for (int i = 0; i < n; ++i) {
        const std::string k = "exp" + std::to_string(i);
        std::string out;
        ASSERT_TRUE(fetch(k, out)) << k;
        EXPECT_EQ(out, "v" + std::to_string(i));
    }
    EXPECT_EQ(cache_->globalStats().currItems,
              static_cast<std::uint64_t>(n));
}

TEST_P(BranchTest, EvictionKeepsCacheWithinBudget)
{
    // Tiny cache: force the eviction path hard.
    tm::Runtime::get().configure(runtimeCfgFor(GetParam()));
    Settings s;
    s.maxBytes = 64 * 1024;
    s.slabPageSize = 16 * 1024;
    s.hashPowerInit = 6;
    auto small = makeCache(GetParam(), s, 2);
    std::string big(512, 'B');
    for (int i = 0; i < 600; ++i) {
        const std::string k = "evict" + std::to_string(i);
        const auto st = small->store(0, k.data(), k.size(), big.data(),
                                     big.size());
        ASSERT_TRUE(st == OpStatus::Ok || st == OpStatus::OutOfMemory);
    }
    const GlobalStats gs = small->globalStats();
    EXPECT_GT(gs.evictions, 0u);
    // Newest items must still be present.
    char buf[1024];
    const auto r = small->get(0, "evict599", 8, buf, sizeof(buf));
    EXPECT_EQ(r.status, OpStatus::Ok);
    EXPECT_EQ(gs.currItems, small->linkedItemCount());
}

TEST_P(BranchTest, LargeValueRejected)
{
    std::string huge(64 * 1024, 'x');
    EXPECT_EQ(put("big", huge), OpStatus::NotStored);
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, BranchTest,
    ::testing::ValuesIn(allBranchNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
