/**
 * @file
 * atomlint fixture: the correct armed-latch idiom (src/common/fault.cc,
 * src/obs/tail.cc after the PR-10 fix). Relaxed fast-path gate,
 * release arm store publishing config, acquire re-read on the slow
 * path before trusting the config. Must produce no diagnostics.
 */

// atomlint-expect: none

#include <atomic>
#include <cstddef>

namespace
{

// atom-protocol: armed-latch
std::atomic<bool> armed{false};
std::size_t configK = 0;

void
arm(std::size_t k)
{
    configK = k;
    armed.store(true, std::memory_order_release);
}

void
disarm()
{
    armed.store(false, std::memory_order_release);
}

bool
fastGate()
{
    return armed.load(std::memory_order_relaxed);
}

std::size_t
slowPath()
{
    if (!armed.load(std::memory_order_acquire))
        return 0;
    return configK; // Published by the release arm store.
}

std::size_t
driver()
{
    arm(5);
    const std::size_t k = fastGate() ? slowPath() : 0;
    disarm();
    return k;
}

} // namespace
