/**
 * @file
 * atomlint fixture: an atom-allow waiver on an access that would be
 * AL2 — the fence-ordered relaxed re-read idiom from the TM
 * algorithms' validation loops. The waiver covers its line plus the
 * two following, so a standalone marker line covers a wrapped
 * statement. Must produce no diagnostics.
 */

// atomlint-expect: none

#include <atomic>
#include <cstdint>

namespace
{

// atom-protocol: release-acquire-pair
std::atomic<std::uint64_t> version{0};

std::uint64_t
revalidate(std::uint64_t seen)
{
    std::atomic_thread_fence(std::memory_order_acquire);
    // atom-allow: relaxed re-read ordered by the fence above
    if (version.load(std::memory_order_relaxed) != seen)
        return 0;
    return seen;
}

void
publish(std::uint64_t v)
{
    version.store(v, std::memory_order_release);
}

} // namespace
