/**
 * @file
 * atomlint fixture: a guarded-by(statsMu) atomic accessed without
 * the named lock held. The atomic type only makes the word tear-free;
 * the protocol says its consistency comes from the mutex.
 */

#include <atomic>
#include <cstdint>
#include <mutex>

namespace
{

std::mutex statsMu;
// atom-protocol: guarded-by(statsMu)
std::atomic<std::uint64_t> epoch{0};

void
bumpHeldOk()
{
    std::lock_guard<std::mutex> g(statsMu);
    epoch.store(epoch.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
}

std::uint64_t
peekBroken()
{
    return epoch.load(std::memory_order_relaxed); // atomlint-expect: AL5
}

} // namespace
