/**
 * @file
 * atomlint fixture: one variable bound to two different protocols
 * (here an extern declaration and its definition disagree). The
 * binding is project-wide by name, so the protocols must match.
 */

#include <atomic>
#include <cstdint>

// atom-protocol: relaxed-counter
extern std::atomic<std::uint64_t> twoFaced;

// atom-protocol: release-acquire-pair
std::atomic<std::uint64_t> twoFaced{0}; // atomlint-expect: AL1
