/**
 * @file
 * atomlint fixture: protocol bound through an atomic type alias (the
 * src/tm/orec.h OrecWord pattern). Accesses through alias-typed
 * locals, references, and owned arrays all inherit the protocol and
 * are all at their minima here. Must produce no diagnostics.
 */

// atomlint-expect: none

#include <atomic>
#include <cstdint>
#include <memory>

namespace
{

// atom-protocol: orec-lock
using VersionWord = std::atomic<std::uint64_t>;

struct Table
{
    std::unique_ptr<VersionWord[]> words;
};

bool
tryLock(VersionWord &w)
{
    std::uint64_t expect = 0;
    return w.compare_exchange_strong(expect, 1,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed);
}

void
unlock(VersionWord *w, std::uint64_t version)
{
    w->store(version, std::memory_order_release);
}

std::uint64_t
sample(const Table &t, std::size_t i)
{
    return t.words[i].load(std::memory_order_acquire);
}

} // namespace
