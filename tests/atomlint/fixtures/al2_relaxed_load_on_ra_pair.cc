/**
 * @file
 * atomlint fixture: a relaxed load consuming a release-acquire pair.
 * The guard's writer publishes with release; a relaxed read of the
 * guard creates no happens-before edge, so the payload read after it
 * can be stale — the classic MP relaxed outcome.
 */

#include <atomic>
#include <cstdint>

namespace
{

// atom-protocol: release-acquire-pair
std::atomic<std::uint64_t> guard{0};
std::uint64_t payload = 0;

void
publish()
{
    payload = 42;
    guard.store(1, std::memory_order_release);
}

std::uint64_t
consumeBroken()
{
    if (guard.load(std::memory_order_relaxed) == 1) // atomlint-expect: AL2
        return payload;
    return 0;
}

} // namespace
