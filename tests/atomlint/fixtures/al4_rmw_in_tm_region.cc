/**
 * @file
 * atomlint fixture: an atomic RMW inside a checked (atomic) tm::run
 * body. The order is protocol-correct, so AL2/AL3 stay quiet — but
 * the RMW is immediately visible and survives abort, which tmlint
 * flags as TM3; atomlint's AL4 is the inventory-side view of the
 * same composition rule.
 */

#include <atomic>
#include <cstdint>

#include "tm/api.h"

namespace
{

// atom-protocol: relaxed-counter
std::atomic<std::uint64_t> escapes{0};
std::uint64_t cell;

const tmemc::tm::TxnAttr kAttr{"fixture:al4-rmw",
                               tmemc::tm::TxnKind::Atomic, false};

void
bumpInsideTx()
{
    namespace tm = tmemc::tm;
    tm::run(kAttr, [&](tm::TxDesc &tx) {
        escapes.fetch_add(1, std::memory_order_relaxed); // atomlint-expect: AL4
        tm::txStore(tx, &cell, tm::txLoad(tx, &cell) + 1);
    });
}

} // namespace
