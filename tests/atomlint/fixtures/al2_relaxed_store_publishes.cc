/**
 * @file
 * atomlint fixture: the bug atomlint's first tree scan found in
 * obs::armTail() — an armed-latch latch stored relaxed. Config is
 * written before arming, but a relaxed arm store publishes nothing:
 * a worker that sees the latch can still read stale configuration.
 */

#include <atomic>
#include <cstddef>

namespace
{

// atom-protocol: armed-latch
std::atomic<bool> armed{false};
std::size_t configK = 0;

void
armBroken(std::size_t k)
{
    configK = k;
    armed.store(true, std::memory_order_relaxed); // atomlint-expect: AL2
}

void
disarmBroken()
{
    armed.store(false, std::memory_order_relaxed); // atomlint-expect: AL2
}

bool
fastGate()
{
    return armed.load(std::memory_order_relaxed); // relaxed gate is the point
}

} // namespace
