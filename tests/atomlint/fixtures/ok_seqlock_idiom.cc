/**
 * @file
 * atomlint fixture: the NOrec-style seqlock at its protocol minima —
 * acquire reads of the sequence word, acquire CAS to enter the
 * writer section, release store to exit, and a release RMW unlock
 * variant (the acq_or_rel RMW rule accepts either side). Must
 * produce no diagnostics.
 */

// atomlint-expect: none

#include <atomic>
#include <cstdint>

namespace
{

// atom-protocol: seqlock
std::atomic<std::uint64_t> seq{0};
std::uint64_t payload = 0;

bool
enterWriter(std::uint64_t snapshot)
{
    std::uint64_t expect = snapshot;
    return seq.compare_exchange_strong(expect, snapshot + 1,
                                       std::memory_order_acquire);
}

void
exitWriter(std::uint64_t snapshot)
{
    payload += 1;
    seq.store(snapshot + 2, std::memory_order_release);
}

std::uint64_t
reader()
{
    const std::uint64_t s1 = seq.load(std::memory_order_acquire);
    const std::uint64_t v = payload;
    const std::uint64_t s2 = seq.load(std::memory_order_acquire);
    return (s1 == s2 && (s1 & 1) == 0) ? v : 0;
}

std::uint64_t
readerTicket()
{
    return seq.fetch_add(0, std::memory_order_acq_rel);
}

} // namespace
