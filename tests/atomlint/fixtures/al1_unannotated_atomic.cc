/**
 * @file
 * atomlint fixture: a std::atomic declaration with no atom-protocol
 * annotation. Every atomic in the tree must declare its ordering
 * protocol; an unannotated one is unreviewable.
 */

#include <atomic>
#include <cstdint>

namespace
{

std::atomic<std::uint64_t> orphan{0}; // atomlint-expect: AL1

std::uint64_t
peek()
{
    return orphan.load(std::memory_order_relaxed);
}

} // namespace
