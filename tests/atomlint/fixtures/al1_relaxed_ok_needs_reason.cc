/**
 * @file
 * atomlint fixture: relaxed-ok is the "externally synchronized"
 * escape hatch; it is meaningless without the reason naming the
 * external synchronization (a lock, a fence, a quiesced phase).
 */

#include <atomic>

namespace
{

// atom-protocol: relaxed-ok
std::atomic<bool> because{false}; // atomlint-expect: AL1

bool
peek()
{
    return because.load(std::memory_order_relaxed);
}

} // namespace
