/**
 * @file
 * atomlint fixture: a fully-relaxed CAS acquiring an orec-lock word
 * (bound through the annotated type alias, the way src/tm/orec.h
 * binds OrecWord). A lock acquisition without the acquire side lets
 * the critical section's reads float above the lock.
 */

#include <atomic>
#include <cstdint>

namespace
{

// atom-protocol: orec-lock
using LockWord = std::atomic<std::uint64_t>;

LockWord word{0};

bool
tryLockBroken(LockWord &w)
{
    std::uint64_t expect = 0;
    return w.compare_exchange_strong(expect, 1, // atomlint-expect: AL2
                                     std::memory_order_relaxed);
}

void
unlockOk(LockWord &w)
{
    w.store(0, std::memory_order_release);
}

bool
driver()
{
    const bool got = tryLockBroken(word);
    if (got)
        unlockOk(word);
    return got;
}

} // namespace
