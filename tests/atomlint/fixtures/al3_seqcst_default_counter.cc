/**
 * @file
 * atomlint fixture: implicit seq_cst on a relaxed-counter — both the
 * no-argument member-call form and the operator form. Warn-tier
 * (AL3): correct but pays a full fence per tick on x86/ARM.
 */

#include <atomic>
#include <cstdint>

namespace
{

// atom-protocol: relaxed-counter
std::atomic<std::uint64_t> ticks{0};

void
tickBroken()
{
    ticks.fetch_add(1); // atomlint-expect: AL3
}

void
tickOperatorBroken()
{
    ++ticks; // atomlint-expect: AL3
}

std::uint64_t
readBroken()
{
    return ticks.load(); // atomlint-expect: AL3
}

void
tickOk()
{
    ticks.fetch_add(1, std::memory_order_relaxed);
}

} // namespace
