/**
 * @file
 * atomlint fixture: a seq-cst-required variable accessed with
 * acquire/release. SB-shaped algorithms (Dekker-style flags) need
 * the single total order; release/acquire alone permits both
 * threads to miss each other's store.
 */

#include <atomic>

namespace
{

// atom-protocol: seq-cst-required
std::atomic<bool> flagA{false};
// atom-protocol: seq-cst-required
std::atomic<bool> flagB{false};

bool
enterBroken()
{
    flagA.store(true, std::memory_order_release); // atomlint-expect: AL2
    return !flagB.load(std::memory_order_acquire); // atomlint-expect: AL2
}

bool
enterOk()
{
    flagA.store(true, std::memory_order_seq_cst);
    return !flagB.load(); // implicit seq_cst is the protocol here
}

} // namespace
