/**
 * @file
 * atomlint fixture: explicit over-ordering on a relaxed-counter. An
 * acquire load / release RMW on a statistics counter orders nothing
 * anyone relies on — the protocol says pay for relaxed only.
 */

#include <atomic>
#include <cstdint>

namespace
{

// atom-protocol: relaxed-counter
std::atomic<std::uint64_t> served{0};

void
bumpBroken()
{
    served.fetch_add(1, std::memory_order_release); // atomlint-expect: AL3
}

std::uint64_t
readBroken()
{
    return served.load(std::memory_order_acquire); // atomlint-expect: AL3
}

std::uint64_t
readOk()
{
    return served.load(std::memory_order_relaxed);
}

} // namespace
