/**
 * @file
 * atomlint fixture: guarded-by accesses with the named lock held —
 * both through an RAII guard and through explicit lock()/unlock()
 * bracketing. Must produce no diagnostics.
 */

// atomlint-expect: none

#include <atomic>
#include <cstdint>
#include <mutex>

namespace
{

std::mutex healthMu;
// atom-protocol: guarded-by(healthMu)
std::atomic<std::uint64_t> failures{0};

void
recordGuard()
{
    std::lock_guard<std::mutex> g(healthMu);
    failures.store(failures.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
}

std::uint64_t
recordExplicit()
{
    healthMu.lock();
    const std::uint64_t n = failures.load(std::memory_order_relaxed);
    healthMu.unlock();
    return n;
}

} // namespace
