/**
 * @file
 * atomlint fixture: a mutex acquired inside a function declared
 * atom-nonblocking. The marker is for hot paths whose contract is
 * "one relaxed load when disarmed" — taking a lock there turns every
 * caller into a potential blocker (the blocking-in-loop lint).
 */

#include <atomic>
#include <cstdint>
#include <mutex>

namespace
{

std::mutex slowMu;
// atom-protocol: relaxed-counter
std::atomic<std::uint64_t> hits{0};

// atom-nonblocking: per-op fast path, called from the event loop
std::uint64_t
recordBroken()
{
    hits.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> g(slowMu); // atomlint-expect: AL5
    return hits.load(std::memory_order_relaxed);
}

} // namespace
