/**
 * @file
 * Algorithm-specific behaviours: rollback restoring memory (direct
 * update), redo-log merging (buffered update), conflict detection, and
 * abort statistics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr attr{"algo:test", tm::TxnKind::Atomic, false};

class AlgoTest : public ::testing::TestWithParam<tm::AlgoKind>
{
  protected:
    void SetUp() override { useRuntime(GetParam(), tm::CmKind::NoCM); }
};

TEST_P(AlgoTest, AbortRestoresMemory)
{
    if (GetParam() == tm::AlgoKind::Serial)
        GTEST_SKIP() << "serial transactions never abort";
    static std::uint64_t cell;
    cell = 77;
    int runs = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        ++runs;
        tm::txStore<std::uint64_t>(tx, &cell, 123);
        if (runs == 1) {
            // Force one abort after the speculative write. For direct
            // update the write is already in memory and must be undone
            // before the retry re-reads it.
            throw tm::TxAbort{};
        }
        EXPECT_EQ(tm::txLoad(tx, &cell), 123u);
    });
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(cell, 123u);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.aborts, 1u);
    EXPECT_EQ(snap.total.commits, 1u);
}

TEST_P(AlgoTest, AbortedTransactionInvisibleToOthers)
{
    if (GetParam() == tm::AlgoKind::Serial)
        GTEST_SKIP() << "serial transactions never abort";
    static std::uint64_t cell;
    cell = 5;
    static std::atomic<int> phase{0};
    phase = 0;

    std::thread t([&] {
        int attempts = 0;
        tm::run(attr, [&](tm::TxDesc &tx) {
            if (++attempts > 1)
                return;  // Second attempt: commit without writing.
            tm::txStore<std::uint64_t>(tx, &cell, 999);
            phase.store(1);
            while (phase.load() != 2)
                std::this_thread::yield();
            throw tm::TxAbort{};
        });
    });
    // This thread waits for the speculative write, then observes
    // memory non-transactionally after the abort completes.
    while (phase.load() != 1)
        std::this_thread::yield();
    phase.store(2);
    t.join();
    EXPECT_EQ(cell, 5u);
}

TEST_P(AlgoTest, PartialWordWritesMerge)
{
    static std::uint64_t word;
    word = 0x1111111111111111ull;
    tm::run(attr, [](tm::TxDesc &tx) {
        auto *bytes = reinterpret_cast<unsigned char *>(&word);
        tm::txStore<unsigned char>(tx, bytes + 2, 0xff);
        tm::txStore<unsigned char>(tx, bytes + 5, 0xee);
        // Read back the whole word through the transaction: must merge
        // buffered bytes over memory for lazy algorithms.
        const std::uint64_t seen = tm::txLoad(tx, &word);
        EXPECT_EQ(seen & 0xff0000u, 0xff0000u);
        EXPECT_EQ((seen >> 40) & 0xff, 0xeeu);
        EXPECT_EQ(seen & 0xff, 0x11u);
    });
    EXPECT_EQ(word, 0x1111ee1111ff1111ull);
}

TEST_P(AlgoTest, WriteWriteConflictSerializesOutcome)
{
    // Two threads do read-modify-write on the same word; whatever the
    // interleaving, the result equals sequential application.
    static std::uint64_t cell;
    cell = 0;
    constexpr int per = 3000;
    auto worker = [&] {
        for (int i = 0; i < per; ++i) {
            tm::run(attr, [](tm::TxDesc &tx) {
                tm::txStore<std::uint64_t>(tx, &cell,
                                           tm::txLoad(tx, &cell) + 1);
            });
        }
    };
    std::thread a(worker);
    std::thread b(worker);
    a.join();
    b.join();
    EXPECT_EQ(cell, 2u * per);
}

TEST_P(AlgoTest, LargeWriteSetCommits)
{
    constexpr int n = 4096;
    static std::uint64_t arr[n];
    std::memset(arr, 0, sizeof(arr));
    tm::run(attr, [](tm::TxDesc &tx) {
        for (int i = 0; i < n; ++i)
            tm::txStore<std::uint64_t>(tx, &arr[i], i);
    });
    for (int i = 0; i < n; ++i)
        ASSERT_EQ(arr[i], static_cast<std::uint64_t>(i));
}

TEST_P(AlgoTest, ReadOnlyCommitCounted)
{
    static std::uint64_t cell = 3;
    tm::Runtime::get().resetStats();
    tm::run(attr, [](tm::TxDesc &tx) { (void)tm::txLoad(tx, &cell); });
    const auto snap = tm::Runtime::get().snapshot();
    if (GetParam() == tm::AlgoKind::Serial) {
        EXPECT_EQ(snap.total.serialCommits, 1u);
    } else {
        EXPECT_EQ(snap.total.readOnlyCommits, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Algos, AlgoTest,
    ::testing::Values(tm::AlgoKind::GccEager, tm::AlgoKind::Lazy,
                      tm::AlgoKind::NOrec, tm::AlgoKind::RA,
                      tm::AlgoKind::Serial),
    [](const ::testing::TestParamInfo<tm::AlgoKind> &info) {
        return tmemc::tests::algoName(info.param);
    });

} // namespace
