/**
 * @file
 * TM-level opacity checker over histories captured by the runtime's
 * opacity recorder (src/tm/opacity.h) — the transactional extension of
 * the Wing & Gong linearizability checker in tests/mc/lin_checker.h.
 *
 * Opacity [Guerraoui & Kapalka 2008]: a history is opaque when there
 * is a single serial order of ALL transaction attempts — committed
 * AND aborted — that (a) respects real-time precedence (an attempt
 * that completed before another began must come first), (b) replays
 * every committed attempt's reads and writes correctly, and (c) gives
 * every aborted attempt a point at which all of its reads came from a
 * single consistent memory state (no zombie reads). Aborted attempts
 * participate as read-only observers: their writes never reach the
 * replayed memory.
 *
 * Search shape, after lin_checker.h: DFS over "which attempt
 * serializes next", restricted to real-time-minimal candidates, with
 * exact memoization on (done-set, memory state). Because the recorded
 * workload's initial memory contents are unknown, word values are
 * bound lazily: the first read of an undefined byte defines it, and
 * the bindings travel with the state so memoization stays exact. A
 * fast pre-pass replays the attempts in end-stamp order — for the
 * STM algorithms under test the commit order essentially is the stamp
 * order, so real (correct) histories verify in linear time and the
 * DFS only runs when something actually needs reordering.
 *
 * Failure is never silent: histories too large for the bitmask or a
 * search that exhausts its node budget FAIL with an explicit message
 * (a vacuous pass would defeat the gate), and a genuine violation
 * dumps the offending per-domain history to stderr so CI can upload
 * it as an artifact.
 */

#ifndef TMEMC_TESTS_TM_OPACITY_CHECKER_H
#define TMEMC_TESTS_TM_OPACITY_CHECKER_H

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "tm/opacity.h"

namespace tmemc::opctest
{

using tm::opacity::Access;
using tm::opacity::TxRecord;

/** Attempt-count cap: the DFS done-set is a 256-bit mask. */
constexpr std::size_t kMaxTxPerDomain = 256;
/** DFS node budget; exhaustion FAILS (explicitly, never vacuously). */
constexpr std::size_t kNodeBudget = 4u << 20;

/** One word of replayed memory: value bits that have been defined
 *  (written, or bound by a read of initially-unknown memory). */
struct WordVal
{
    std::uint64_t value = 0;
    std::uint64_t defined = 0;
};

/** Replayed memory. Ordered so serialization for memoization and the
 *  counterexample dump are deterministic. */
using MemState = std::map<std::uintptr_t, WordVal>;

namespace detail
{

/**
 * Replay one attempt against @p st in program order.
 *
 * Reads must match @p st merged under the attempt's own prior writes
 * (read-your-own-writes); bytes no one has defined yet are bound to
 * the observed value — the run's unknown initial memory. Committed
 * attempts then publish their write overlay into @p st; aborted ones
 * discard it (their effects were rolled back).
 *
 * @return false when some read cannot have come from this state — the
 *         candidate serialization dies.
 */
inline bool
replayAttempt(const TxRecord &rec, MemState &st)
{
    std::map<std::uintptr_t, WordVal> overlay;
    for (const Access &a : rec.accesses) {
        if (a.isWrite) {
            WordVal &w = overlay[a.addr];
            w.value = (w.value & ~a.mask) | (a.value & a.mask);
            w.defined |= a.mask;
            continue;
        }
        const auto ov = overlay.find(a.addr);
        const std::uint64_t own_mask =
            ov != overlay.end() ? ov->second.defined : 0;
        if (ov != overlay.end() &&
            ((a.value ^ ov->second.value) & own_mask) != 0)
            return false;  // Disagrees with its own earlier write.
        WordVal &mem = st[a.addr];
        const std::uint64_t mem_mask = mem.defined & ~own_mask;
        if (((a.value ^ mem.value) & mem_mask) != 0)
            return false;  // Disagrees with the serialized state.
        // Bind still-undefined bytes to the observed value: they are
        // the workload's initial memory contents.
        const std::uint64_t fresh = ~own_mask & ~mem.defined;
        if (fresh != 0) {
            mem.value = (mem.value & ~fresh) | (a.value & fresh);
            mem.defined |= fresh;
        }
    }
    if (rec.committed) {
        for (const auto &[addr, w] : overlay) {
            WordVal &mem = st[addr];
            mem.value = (mem.value & ~w.defined) | (w.value & w.defined);
            mem.defined |= w.defined;
        }
    }
    return true;
}

/** Exact memo key: done-mask plus the full serialized memory state. */
inline std::string
memoKey(const std::array<std::uint64_t, 4> &done, const MemState &st)
{
    std::string key;
    key.reserve(32 + st.size() * 24);
    auto put = [&key](std::uint64_t v) {
        key.append(reinterpret_cast<const char *>(&v), sizeof(v));
    };
    for (std::uint64_t w : done)
        put(w);
    for (const auto &[addr, w] : st) {
        put(addr);
        put(w.value & w.defined);
        put(w.defined);
    }
    return key;
}

struct OpacityDfs
{
    const std::vector<const TxRecord *> &recs;
    std::unordered_set<std::string> visited;
    std::size_t nodes = 0;
    bool budgetExhausted = false;

    bool
    search(std::array<std::uint64_t, 4> done, std::size_t placed,
           const MemState &st)
    {
        const std::size_t n = recs.size();
        if (placed == n)
            return true;
        if (++nodes > kNodeBudget) {
            budgetExhausted = true;
            return false;
        }
        if (!visited.insert(memoKey(done, st)).second)
            return false;
        auto is_done = [&done](std::size_t i) {
            return (done[i / 64] >> (i % 64)) & 1;
        };
        // Real-time minimality: an attempt may serialize next only if
        // no still-pending attempt completed before it began.
        std::uint64_t min_end = ~0ull;
        for (std::size_t i = 0; i < n; ++i) {
            if (!is_done(i))
                min_end = std::min(min_end, recs[i]->end);
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (is_done(i) || recs[i]->begin > min_end)
                continue;
            MemState next = st;
            if (!replayAttempt(*recs[i], next))
                continue;
            auto next_done = done;
            next_done[i / 64] |= 1ull << (i % 64);
            if (search(next_done, placed + 1, next))
                return true;
            if (budgetExhausted)
                return false;
        }
        return false;
    }
};

inline void
dumpHistory(const std::vector<const TxRecord *> &recs, const char *why)
{
    std::fprintf(stderr, "non-opaque history (%s), %zu attempts:\n", why,
                 recs.size());
    for (const TxRecord *r : recs) {
        std::fprintf(
            stderr, "  [%llu,%llu] %s%s%s thread=%llu site=%s:\n",
            static_cast<unsigned long long>(r->begin),
            static_cast<unsigned long long>(r->end),
            r->committed ? "committed" : "aborted",
            r->serial ? " serial" : "", r->roFast ? " rofast" : "",
            static_cast<unsigned long long>(r->threadId), r->site);
        const std::size_t cap = 32;
        for (std::size_t i = 0; i < r->accesses.size() && i < cap; ++i) {
            const Access &a = r->accesses[i];
            std::fprintf(stderr,
                         "    %s %#llx = %#llx mask=%#llx\n",
                         a.isWrite ? "W" : "R",
                         static_cast<unsigned long long>(a.addr),
                         static_cast<unsigned long long>(a.value),
                         static_cast<unsigned long long>(a.mask));
        }
        if (r->accesses.size() > cap) {
            std::fprintf(stderr, "    ... %zu more accesses\n",
                         r->accesses.size() - cap);
        }
    }
}

} // namespace detail

/**
 * Check one domain's history (every record must share a domainTag).
 * Prints the history to stderr on failure.
 */
inline bool
opaqueSingleDomain(std::vector<const TxRecord *> recs)
{
    // Attempts with no accesses serialize anywhere; drop them up front.
    std::erase_if(recs,
                  [](const TxRecord *r) { return r->accesses.empty(); });
    if (recs.empty())
        return true;
    if (recs.size() > kMaxTxPerDomain) {
        ADD_FAILURE() << "history too large for the opacity checker ("
                      << recs.size() << " attempts per domain); lower "
                      << "the op count";
        return false;
    }
    // Fast pre-pass: end-stamp order respects real time by
    // construction and is the algorithms' natural commit order.
    std::sort(recs.begin(), recs.end(),
              [](const TxRecord *a, const TxRecord *b) {
                  return a->end < b->end;
              });
    {
        MemState st;
        bool ok = true;
        for (const TxRecord *r : recs) {
            if (!detail::replayAttempt(*r, st)) {
                ok = false;
                break;
            }
        }
        if (ok)
            return true;
    }
    detail::OpacityDfs dfs{recs, {}, 0, false};
    if (dfs.search({}, 0, MemState{}))
        return true;
    if (dfs.budgetExhausted) {
        ADD_FAILURE() << "opacity search exhausted its node budget ("
                      << kNodeBudget << " nodes) — shrink the workload "
                      << "rather than trusting a vacuous pass";
        detail::dumpHistory(recs, "search budget exhausted");
        return false;
    }
    detail::dumpHistory(recs, "no valid serialization");
    return false;
}

/**
 * Check a recorded history: partition by domain (per-domain data is
 * disjoint by the TxDomain contract, so each projection must be
 * independently opaque) and verify every partition.
 */
inline bool
opaque(const std::vector<TxRecord> &records)
{
    std::vector<const void *> domains;
    for (const TxRecord &r : records) {
        if (std::find(domains.begin(), domains.end(), r.domainTag) ==
            domains.end())
            domains.push_back(r.domainTag);
    }
    for (const void *tag : domains) {
        std::vector<const TxRecord *> sub;
        for (const TxRecord &r : records) {
            if (r.domainTag == tag)
                sub.push_back(&r);
        }
        if (!opaqueSingleDomain(std::move(sub)))
            return false;
    }
    return true;
}

} // namespace tmemc::opctest

#endif // TMEMC_TESTS_TM_OPACITY_CHECKER_H
