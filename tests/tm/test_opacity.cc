/**
 * @file
 * The TM-level opacity checker, two ways:
 *
 *  1. Self-tests: hand-built known-bad histories — zombie read,
 *     write-skew, real-time-order violation, aborted-attempt
 *     inconsistent snapshot — that the checker must REJECT, mirroring
 *     lin_checker's phantom/stale/lost-update self-tests, plus
 *     accept-cases that pin the searcher's flexibility (aborted
 *     readers serialized before later committers, lazy initial-value
 *     binding, masked partial writes).
 *
 *  2. Live histories: a randomized TmVar read/modify/write workload
 *     recorded through the runtime's opacity recorder, checked across
 *     every STM algorithm and across all cache branch names x shard
 *     counts {1,4,16} (each shard is one TxDomain; histories are
 *     checked per domain).
 *
 * Determinism: TMEMC_OPACITY_SEED pins the workload seed (the
 * TMEMC_LIN_SHARDS precedent); every failure message carries the seed
 * so a nightly counterexample replays locally. TMEMC_OPACITY_ROUNDS
 * multiplies workload repetition for the nightly soak (each round is
 * its own armed window, keeping histories under the checker's caps).
 *
 * Scope note: histories are recorded at the TM level (TmVar traffic)
 * rather than by recording whole-cache runs, because the IP-style
 * branches privatize item memory and access it raw — by design those
 * accesses bypass TM instrumentation, so a word-level recording of an
 * IP cache run would be incomplete and the checker would report false
 * violations. The linearizability suite covers the branches at the
 * cache-semantics level; this suite certifies the TM layer each
 * branch configuration actually runs on.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "mc/branch.h"
#include "opacity_checker.h"
#include "tm/api.h"
#include "tm/domain.h"

namespace
{

using namespace tmemc;
using opctest::opaque;
using tm::opacity::Access;
using tm::opacity::TxRecord;

// ---------------------------------------------------------------------
// Self-tests on hand-built histories
// ---------------------------------------------------------------------

constexpr std::uintptr_t kX = 0x1000;
constexpr std::uintptr_t kY = 0x1008;
constexpr std::uint64_t kFull = ~std::uint64_t{0};
constexpr const void *kDom = &kX;  // Any stable tag.

TxRecord
mkRec(std::uint64_t begin, std::uint64_t end, bool committed,
      std::vector<Access> accesses)
{
    TxRecord r;
    r.begin = begin;
    r.end = end;
    r.committed = committed;
    r.site = "selftest";
    r.domainTag = kDom;
    r.accesses = std::move(accesses);
    return r;
}

Access
rd(std::uintptr_t addr, std::uint64_t val)
{
    return {false, addr, val, kFull};
}

Access
wr(std::uintptr_t addr, std::uint64_t val, std::uint64_t mask = kFull)
{
    return {true, addr, val, mask};
}

TEST(OpacitySelfTest, RejectsZombieRead)
{
    // T2 aborts having read x from after T1's commit but y from
    // before it: no single point in any serial order supplies both.
    std::vector<TxRecord> h;
    h.push_back(mkRec(0, 1, true, {wr(kX, 0), wr(kY, 0)}));
    h.push_back(mkRec(2, 4, true, {wr(kX, 1), wr(kY, 1)}));
    h.push_back(mkRec(3, 5, false, {rd(kX, 1), rd(kY, 0)}));
    EXPECT_FALSE(opaque(h));
}

TEST(OpacitySelfTest, RejectsWriteSkewNonSerializable)
{
    // Both committed attempts read both initial values and each wrote
    // one variable: neither order replays — the classic
    // non-serializable pair a real STM must have aborted.
    std::vector<TxRecord> h;
    h.push_back(mkRec(0, 1, true, {wr(kX, 0), wr(kY, 0)}));
    h.push_back(mkRec(2, 5, true, {rd(kX, 0), rd(kY, 0), wr(kX, 1)}));
    h.push_back(mkRec(3, 6, true, {rd(kX, 0), rd(kY, 0), wr(kY, 1)}));
    EXPECT_FALSE(opaque(h));
}

TEST(OpacitySelfTest, RejectsRealTimeOrderViolation)
{
    // T2 began strictly after the x=1 commit completed, yet read the
    // overwritten value. Without the real-time edge the order
    // T0,T2,T1 would replay fine — the checker must not use it.
    std::vector<TxRecord> h;
    h.push_back(mkRec(0, 1, true, {wr(kX, 0)}));
    h.push_back(mkRec(2, 3, true, {wr(kX, 1)}));
    h.push_back(mkRec(4, 5, true, {rd(kX, 0)}));
    EXPECT_FALSE(opaque(h));
}

TEST(OpacitySelfTest, RejectsAbortedTxInconsistentSnapshot)
{
    // Torn invariant pair (a + b == 1000): the aborted attempt saw
    // T1's write to a but not its write to b.
    std::vector<TxRecord> h;
    h.push_back(mkRec(0, 1, true, {wr(kX, 500), wr(kY, 500)}));
    h.push_back(mkRec(2, 5, true,
                      {rd(kX, 500), wr(kX, 400), rd(kY, 500),
                       wr(kY, 600)}));
    h.push_back(mkRec(3, 6, false, {rd(kX, 400), rd(kY, 500)}));
    EXPECT_FALSE(opaque(h));
}

TEST(OpacitySelfTest, AcceptsSerializableOverlap)
{
    std::vector<TxRecord> h;
    h.push_back(mkRec(0, 1, true, {wr(kX, 0), wr(kY, 0)}));
    h.push_back(mkRec(2, 6, true, {rd(kX, 0), wr(kX, 1)}));
    h.push_back(mkRec(3, 7, true, {rd(kY, 0), wr(kY, 1)}));
    EXPECT_TRUE(opaque(h));
}

TEST(OpacitySelfTest, AcceptsAbortedReaderAtEarlierPoint)
{
    // The aborted attempt's snapshot predates T1's commit; since the
    // windows overlap, serializing it before T1 is legal. This is the
    // case the end-stamp fast pass cannot satisfy — it exercises the
    // DFS reordering.
    std::vector<TxRecord> h;
    h.push_back(mkRec(0, 1, true, {wr(kX, 0), wr(kY, 0)}));
    h.push_back(mkRec(2, 5, true, {wr(kX, 1), wr(kY, 1)}));
    h.push_back(mkRec(3, 6, false, {rd(kX, 0), rd(kY, 0)}));
    EXPECT_TRUE(opaque(h));
}

TEST(OpacitySelfTest, AcceptsReadYourOwnWritesAndMaskedStores)
{
    // A committed attempt observes its own buffered partial write
    // merged over memory another attempt defined.
    std::vector<TxRecord> h;
    h.push_back(mkRec(0, 1, true, {wr(kX, 0xAABBCCDD11223344ull)}));
    h.push_back(mkRec(2, 3, true,
                      {wr(kX, 0x77, 0xFF),  // Low byte only.
                       rd(kX, 0xAABBCCDD11223377ull)}));
    h.push_back(mkRec(4, 5, true, {rd(kX, 0xAABBCCDD11223377ull)}));
    EXPECT_TRUE(opaque(h));
}

TEST(OpacitySelfTest, BindsUnknownInitialMemoryConsistently)
{
    // Reads of never-written words bind the run's initial contents;
    // agreeing readers pass, a disagreeing one cannot.
    std::vector<TxRecord> agree;
    agree.push_back(mkRec(0, 3, true, {rd(kX, 7)}));
    agree.push_back(mkRec(1, 4, true, {rd(kX, 7)}));
    EXPECT_TRUE(opaque(agree));

    std::vector<TxRecord> clash;
    clash.push_back(mkRec(0, 3, true, {rd(kX, 7)}));
    clash.push_back(mkRec(1, 4, true, {rd(kX, 9)}));
    EXPECT_FALSE(opaque(clash));
}

// ---------------------------------------------------------------------
// Recorder window discipline
// ---------------------------------------------------------------------

TEST(OpacityRecorder, DropsStragglerFromPreviousWindow)
{
    // A thread that latched recording in window N but only finishes
    // after window N+1 is armed must not leak its record — or its
    // overflow — into the new window's history (a mixed-workload
    // record would fail the checker spuriously).
    tm::TxDomain dom(8);
    tm::TxDesc straggler;
    straggler.domain.store(&dom);

    tm::opacity::arm();  // Window N.
    tm::opacity::beginRecord(straggler);
    ASSERT_TRUE(straggler.opRecording);
    tm::opacity::noteAccess(straggler, true, kX, 1, kFull);
    (void)tm::opacity::collect();  // Window N closes.

    tm::opacity::arm();  // Window N+1.
    tm::opacity::finishRecord(straggler, true, false, false);
    const std::vector<TxRecord> leaked = tm::opacity::collect();
    EXPECT_TRUE(leaked.empty());
    EXPECT_FALSE(tm::opacity::overflowed());
}

TEST(OpacityRecorder, StragglerOverflowDoesNotPoisonNewWindow)
{
    tm::TxDomain dom(8);
    tm::TxDesc straggler;
    straggler.domain.store(&dom);

    tm::opacity::arm();
    tm::opacity::beginRecord(straggler);
    ASSERT_TRUE(straggler.opRecording);
    (void)tm::opacity::collect();

    tm::opacity::arm();  // New window; straggler now blows its cap.
    for (std::size_t i = 0; i <= tm::opacity::kMaxAccessesPerTx; ++i)
        tm::opacity::noteAccess(straggler, false, kX, 0, kFull);
    EXPECT_FALSE(straggler.opRecording);  // Attempt dropped whole...
    EXPECT_FALSE(tm::opacity::overflowed());  // ...but window is clean.
    (void)tm::opacity::collect();
}

// ---------------------------------------------------------------------
// Live histories from the runtime's recorder
// ---------------------------------------------------------------------

const tm::TxnAttr kRw{"opacity:rw", tm::TxnKind::Atomic, false, false};
const tm::TxnAttr kRo{"opacity:ro", tm::TxnKind::Atomic, false, true};

/** Per-shard data: one TxDomain plus the words its transactions own. */
struct Shard
{
    explicit Shard(std::uint32_t orec_bits) : domain(orec_bits) {}
    tm::TxDomain domain;
    std::array<tm::TmVar<std::uint64_t>, 8> vars;
};

std::uint64_t
envSeed()
{
    if (const char *s = std::getenv("TMEMC_OPACITY_SEED"))
        return std::strtoull(s, nullptr, 10);
    return 0;  // 0: sweep the default seeds.
}

unsigned
envRounds()
{
    if (const char *s = std::getenv("TMEMC_OPACITY_ROUNDS"))
        return static_cast<unsigned>(std::strtoul(s, nullptr, 10));
    return 1;
}

/**
 * Run a randomized TmVar workload (4 threads, mixed updates /
 * multi-var reads / hinted read-only attempts) across @p shards
 * domains under the current runtime configuration, recording every
 * attempt, and check the history. Workload sizes stay well under the
 * checker's 256-attempts-per-domain cap.
 */
void
recordAndCheck(const tm::RuntimeCfg &cfg, unsigned shards,
               std::uint64_t seed, const std::string &what)
{
    tm::Runtime::get().configure(cfg);
    tm::Runtime::get().resetStats();

    std::vector<std::unique_ptr<Shard>> shard_list;
    for (unsigned s = 0; s < shards; ++s) {
        shard_list.push_back(std::make_unique<Shard>(cfg.orecTableBits));
        for (unsigned v = 0; v < 8; ++v)
            shard_list.back()->vars[v].rawSet(v * 100);
    }

    constexpr unsigned kThreads = 4;
    constexpr unsigned kOpsPerThread = 20;

    tm::opacity::arm();
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            XorShift128 rng(seed * 7919 + t + 1);
            for (unsigned op = 0; op < kOpsPerThread; ++op) {
                Shard &sh = *shard_list[rng.next() % shards];
                tm::DomainScope scope(&sh.domain);
                const unsigned a = rng.next() % 8;
                const unsigned b = rng.next() % 8;
                switch (rng.next() % 3) {
                  case 0:  // Transfer between two vars.
                    tm::run(kRw, [&](tm::TxDesc &tx) {
                        const std::uint64_t va = sh.vars[a].get(tx);
                        sh.vars[a].set(tx, va - 1);
                        sh.vars[b].set(tx, sh.vars[b].get(tx) + 1);
                    });
                    break;
                  case 1:  // Multi-var read (full path).
                    tm::run(kRw, [&](tm::TxDesc &tx) {
                        std::uint64_t sum = 0;
                        for (const auto &v : sh.vars)
                            sum += v.get(tx);
                        return sum;
                    });
                    break;
                  default:  // Hinted read-only (fast path if enabled).
                    tm::run(kRo, [&](tm::TxDesc &tx) {
                        return sh.vars[a].get(tx) + sh.vars[b].get(tx);
                    });
                    break;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    const std::vector<TxRecord> records = tm::opacity::collect();

    EXPECT_FALSE(tm::opacity::overflowed())
        << what << " seed=" << seed << ": recorder overflow";
    EXPECT_GT(records.size(), 0u) << what << " seed=" << seed;
    EXPECT_TRUE(opaque(records))
        << what << " seed=" << seed
        << ": reproduce with TMEMC_OPACITY_SEED=" << seed;

    tm::Runtime::get().configure(tm::RuntimeCfg{});
}

std::vector<std::uint64_t>
seedSweep()
{
    const std::uint64_t pinned = envSeed();
    if (pinned != 0)
        return {pinned};
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t r = 1; r <= envRounds(); ++r)
        seeds.push_back(20140301 + r);
    return seeds;
}

std::vector<unsigned>
shardSweep()
{
    // TMEMC_LIN_SHARDS precedent: the CI shard matrix pins one count.
    if (const char *s = std::getenv("TMEMC_LIN_SHARDS")) {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(s, nullptr, 10));
        if (n > 0)
            return {n};
    }
    return {1, 4, 16};
}

class OpacityAlgoTest : public ::testing::TestWithParam<tm::AlgoKind>
{
};

TEST_P(OpacityAlgoTest, LiveHistoriesAreOpaque)
{
    tm::RuntimeCfg cfg;
    cfg.algo = GetParam();
    for (unsigned shards : shardSweep()) {
        for (std::uint64_t seed : seedSweep()) {
            recordAndCheck(cfg, shards, seed,
                           "algo=" + std::to_string(static_cast<int>(
                                         GetParam())) +
                               " shards=" + std::to_string(shards));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Algos, OpacityAlgoTest,
                         ::testing::Values(tm::AlgoKind::GccEager,
                                           tm::AlgoKind::Lazy,
                                           tm::AlgoKind::NOrec,
                                           tm::AlgoKind::RA,
                                           tm::AlgoKind::Serial),
                         [](const auto &info) {
                             switch (info.param) {
                             case tm::AlgoKind::GccEager:
                                 return "GccEager";
                             case tm::AlgoKind::Lazy:
                                 return "Lazy";
                             case tm::AlgoKind::NOrec:
                                 return "NOrec";
                             case tm::AlgoKind::RA:
                                 return "RA";
                             default:
                                 return "Serial";
                             }
                         });

/** Every cache branch name runs the TM workload under the runtime
 *  configuration that branch would select (IT-RA: the RA algorithm),
 *  across the shard sweep — "all 14 branches x shards {1,4,16}". */
class OpacityBranchTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(OpacityBranchTest, BranchRuntimeHistoriesAreOpaque)
{
    const tm::RuntimeCfg cfg = mc::runtimeCfgFor(GetParam());
    for (unsigned shards : shardSweep()) {
        for (std::uint64_t seed : seedSweep()) {
            recordAndCheck(cfg, shards, seed,
                           "branch=" + GetParam() +
                               " shards=" + std::to_string(shards));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Branches, OpacityBranchTest,
                         ::testing::ValuesIn(mc::allBranchNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '-')
                                     c = '_';
                             }
                             return n;
                         });

} // namespace
