/**
 * @file
 * Unit tests for the global readers/writer serialization lock.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tm/serial_lock.h"

namespace
{

using tmemc::tm::SerialLock;

TEST(SerialLock, ReadersShare)
{
    SerialLock lock;
    lock.readLock();
    lock.readLock();
    lock.readUnlock();
    lock.readUnlock();
    SUCCEED();
}

TEST(SerialLock, WriterExcludesReaders)
{
    SerialLock lock;
    std::atomic<bool> writer_in{false};
    std::atomic<bool> reader_done{false};

    lock.writeLock();
    writer_in = true;
    std::thread reader([&] {
        lock.readLock();
        EXPECT_FALSE(writer_in.load());
        lock.readUnlock();
        reader_done = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(reader_done.load());
    writer_in = false;
    lock.writeUnlock();
    reader.join();
    EXPECT_TRUE(reader_done.load());
}

TEST(SerialLock, WriterWaitsForReaders)
{
    SerialLock lock;
    std::atomic<bool> writer_acquired{false};
    lock.readLock();
    std::thread writer([&] {
        lock.writeLock();
        writer_acquired = true;
        lock.writeUnlock();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(writer_acquired.load());
    lock.readUnlock();
    writer.join();
    EXPECT_TRUE(writer_acquired.load());
}

TEST(SerialLock, UpgradeSucceedsWhenSoleReader)
{
    SerialLock lock;
    lock.readLock();
    ASSERT_TRUE(lock.tryUpgrade());
    EXPECT_TRUE(lock.writeHeld());
    lock.writeUnlock();
}

TEST(SerialLock, UpgradeFailsWhenWriterPending)
{
    SerialLock lock;
    lock.readLock();
    std::thread writer([&] { lock.writeLock(); });
    // Wait until the writer has claimed the writer flag.
    while (!lock.writeHeld())
        std::this_thread::yield();
    EXPECT_FALSE(lock.tryUpgrade());
    lock.readUnlock();
    writer.join();
    lock.writeUnlock();
}

TEST(SerialLock, ConcurrentCountersUnderReadLock)
{
    SerialLock lock;
    constexpr int threads = 4;
    constexpr int per = 20000;
    std::atomic<int> shared{0};
    int exclusively_counted = 0;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < per; ++i) {
                if (i % 1000 == 0) {
                    lock.writeLock();
                    ++exclusively_counted;  // Safe: exclusive.
                    lock.writeUnlock();
                } else {
                    lock.readLock();
                    shared.fetch_add(1);
                    lock.readUnlock();
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(exclusively_counted, threads * (per / 1000));
    EXPECT_EQ(shared.load(), threads * (per - per / 1000));
}

} // namespace
