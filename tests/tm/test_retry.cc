/**
 * @file
 * Tests for tm::retry() — the condition-synchronization extension the
 * paper recommends TM specifications adopt (Sections 3.2 and 5).
 *
 * Includes a transactional bounded queue: the producer/consumer
 * pattern that memcached's maintenance-thread wakeups implement with
 * semaphores, rebuilt on retry with no condition variables at all.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr attr{"retry:txn", tm::TxnKind::Atomic, false};

class RetryTest : public ::testing::TestWithParam<tm::AlgoKind>
{
  protected:
    void SetUp() override { useRuntime(GetParam(), tm::CmKind::NoCM); }
};

TEST_P(RetryTest, RetryBlocksUntilPredicateHolds)
{
    static std::uint64_t flag;
    flag = 0;
    std::atomic<bool> woke{false};

    std::thread waiter([&] {
        const std::uint64_t seen = tm::run(attr, [&](tm::TxDesc &tx) {
            const std::uint64_t v = tm::txLoad(tx, &flag);
            if (v == 0)
                tm::retry(tx);
            return v;
        });
        EXPECT_EQ(seen, 42u);
        woke = true;
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(woke.load());  // Still blocked: predicate false.
    tm::run(attr, [&](tm::TxDesc &tx) {
        tm::txStore<std::uint64_t>(tx, &flag, 42);
    });
    waiter.join();
    EXPECT_TRUE(woke.load());
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_GE(snap.total.retries, 1u);
}

TEST_P(RetryTest, RetryRollsBackSpeculativeWrites)
{
    static std::uint64_t cell;
    static std::uint64_t gate;
    cell = 0;
    gate = 0;
    std::thread waiter([&] {
        tm::run(attr, [&](tm::TxDesc &tx) {
            // Speculative write that must be undone on each retry wait.
            tm::txStore<std::uint64_t>(tx, &cell,
                                       tm::txLoad(tx, &cell) + 1);
            if (tm::txLoad(tx, &gate) == 0)
                tm::retry(tx);
        });
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // The waiter has retried at least once; its speculative increment
    // must not be visible. Observe transactionally: a plain read
    // would race with the eager algorithm's in-place writes.
    const std::uint64_t observed = tm::run(
        attr, [&](tm::TxDesc &tx) { return tm::txLoad(tx, &cell); });
    EXPECT_EQ(observed, 0u);
    tm::run(attr, [&](tm::TxDesc &tx) {
        tm::txStore<std::uint64_t>(tx, &gate, 1);
    });
    waiter.join();
    EXPECT_EQ(cell, 1u);  // Exactly one increment committed.
}

TEST_P(RetryTest, BoundedQueueProducerConsumer)
{
    // The paper's Figure 2 coordination pattern without semaphores or
    // condition variables: pure transactions + retry.
    constexpr int capacity = 4;
    constexpr int total = 500;
    static std::uint64_t ring[capacity];
    static std::uint64_t head;
    static std::uint64_t tail;
    head = tail = 0;

    std::thread producer([&] {
        for (int i = 1; i <= total; ++i) {
            tm::run(attr, [&](tm::TxDesc &tx) {
                const std::uint64_t h = tm::txLoad(tx, &head);
                const std::uint64_t t = tm::txLoad(tx, &tail);
                if (h - t >= capacity)
                    tm::retry(tx);  // Full.
                tm::txStore<std::uint64_t>(tx, &ring[h % capacity],
                                           static_cast<std::uint64_t>(i));
                tm::txStore<std::uint64_t>(tx, &head, h + 1);
            });
        }
    });
    std::uint64_t sum = 0;
    std::uint64_t last = 0;
    bool ordered = true;
    std::thread consumer([&] {
        for (int i = 0; i < total; ++i) {
            const std::uint64_t v = tm::run(attr, [&](tm::TxDesc &tx) {
                const std::uint64_t h = tm::txLoad(tx, &head);
                const std::uint64_t t = tm::txLoad(tx, &tail);
                if (t == h)
                    tm::retry(tx);  // Empty.
                const std::uint64_t val =
                    tm::txLoad(tx, &ring[t % capacity]);
                tm::txStore<std::uint64_t>(tx, &tail, t + 1);
                return val;
            });
            ordered = ordered && (v == last + 1);
            last = v;
            sum += v;
        }
    });
    producer.join();
    consumer.join();
    EXPECT_TRUE(ordered);
    EXPECT_EQ(sum, static_cast<std::uint64_t>(total) * (total + 1) / 2);
}

TEST_P(RetryTest, RetryOutsideTransactionIsFatal)
{
    EXPECT_DEATH(tm::retry(tm::myDesc()), "outside a transaction");
}

TEST_P(RetryTest, RetryInSerialModeIsFatal)
{
    static const tm::TxnAttr serial{"retry:serial", tm::TxnKind::Relaxed,
                                    true};
    EXPECT_DEATH(tm::run(serial,
                         [](tm::TxDesc &tx) { tm::retry(tx); }),
                 "irrevocable");
}

INSTANTIATE_TEST_SUITE_P(
    Algos, RetryTest,
    ::testing::Values(tm::AlgoKind::GccEager, tm::AlgoKind::Lazy,
                      tm::AlgoKind::NOrec, tm::AlgoKind::RA),
    [](const ::testing::TestParamInfo<tm::AlgoKind> &info) {
        return tmemc::tests::algoName(info.param);
    });

} // namespace
