/**
 * @file
 * Property tests of transactional atomicity and isolation, swept over
 * every (algorithm x contention manager x serial-lock) configuration
 * via parameterized gtest.
 *
 * Properties:
 *  - counter increments are never lost (atomicity of read-modify-write)
 *  - bank-transfer conservation (no torn or partially applied txns)
 *  - snapshot consistency (a reader never observes a half-updated pair)
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::algoName;
using tmemc::tests::cmName;

struct Cfg
{
    tm::AlgoKind algo;
    tm::CmKind cm;
    bool serialLock;
};

class AtomicityTest : public ::testing::TestWithParam<Cfg>
{
  protected:
    void
    SetUp() override
    {
        const Cfg &p = GetParam();
        tm::RuntimeCfg cfg;
        cfg.algo = p.algo;
        cfg.cm = p.cm;
        cfg.useSerialLock = p.serialLock;
        tm::Runtime::get().configure(cfg);
        tm::Runtime::get().resetStats();
    }
};

const tm::TxnAttr incrAttr{"prop:incr", tm::TxnKind::Atomic, false};
const tm::TxnAttr xferAttr{"prop:xfer", tm::TxnKind::Atomic, false};
const tm::TxnAttr auditAttr{"prop:audit", tm::TxnKind::Atomic, false};

TEST_P(AtomicityTest, NoLostIncrements)
{
    constexpr int threads = 4;
    constexpr int perThread = 2000;
    static std::uint64_t counter;
    counter = 0;

    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < perThread; ++i) {
                tm::run(incrAttr, [](tm::TxDesc &tx) {
                    tm::txStore<std::uint64_t>(
                        tx, &counter, tm::txLoad(tx, &counter) + 1);
                });
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * perThread);
}

TEST_P(AtomicityTest, BankConservation)
{
    constexpr int accounts = 16;
    constexpr int threads = 4;
    constexpr int perThread = 1500;
    constexpr std::uint64_t initial = 1000;
    static std::int64_t bank[accounts];
    for (auto &a : bank)
        a = initial;

    std::vector<std::thread> workers;
    std::atomic<bool> torn{false};
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(1000 + t);
            for (int i = 0; i < perThread; ++i) {
                const int from = rng.nextBounded(accounts);
                const int to = rng.nextBounded(accounts);
                if (from == to)
                    continue;
                tm::run(xferAttr, [&](tm::TxDesc &tx) {
                    const std::int64_t f = tm::txLoad(tx, &bank[from]);
                    const std::int64_t g = tm::txLoad(tx, &bank[to]);
                    tm::txStore<std::int64_t>(tx, &bank[from], f - 1);
                    tm::txStore<std::int64_t>(tx, &bank[to], g + 1);
                });
                // Periodic transactional audit: total must always be
                // conserved in any consistent snapshot.
                if (i % 100 == 0) {
                    const std::int64_t total =
                        tm::run(auditAttr, [&](tm::TxDesc &tx) {
                            std::int64_t sum = 0;
                            for (int a = 0; a < accounts; ++a)
                                sum += tm::txLoad(tx, &bank[a]);
                            return sum;
                        });
                    if (total !=
                        static_cast<std::int64_t>(accounts * initial))
                        torn.store(true);
                }
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_FALSE(torn.load());
    std::int64_t total = 0;
    for (auto a : bank)
        total += a;
    EXPECT_EQ(total, static_cast<std::int64_t>(accounts * initial));
}

TEST_P(AtomicityTest, PairedWritesNeverTorn)
{
    // Writers keep (x, y) with y == 2*x; readers must never see a
    // violation inside a transaction.
    static std::uint64_t x, y;
    x = 1;
    y = 2;
    std::atomic<bool> stop{false};
    std::atomic<bool> torn{false};

    std::thread writer([&] {
        static const tm::TxnAttr w{"prop:pair-w", tm::TxnKind::Atomic,
                                   false};
        for (int i = 2; i < 3000; ++i) {
            tm::run(w, [&](tm::TxDesc &tx) {
                tm::txStore<std::uint64_t>(tx, &x, i);
                tm::txStore<std::uint64_t>(tx, &y, 2 * i);
            });
        }
        stop.store(true);
    });
    std::thread reader([&] {
        static const tm::TxnAttr r{"prop:pair-r", tm::TxnKind::Atomic,
                                   false};
        while (!stop.load()) {
            const auto [gx, gy] = tm::run(r, [&](tm::TxDesc &tx) {
                return std::pair{tm::txLoad(tx, &x), tm::txLoad(tx, &y)};
            });
            if (gy != 2 * gx)
                torn.store(true);
        }
    });
    writer.join();
    reader.join();
    EXPECT_FALSE(torn.load());
}

TEST_P(AtomicityTest, ByteGranularWritesDoNotClobberNeighbors)
{
    // Two threads write interleaved byte ranges of one array; bytes
    // owned by the other thread must survive untouched.
    constexpr int len = 256;
    static unsigned char buf[len];
    std::memset(buf, 0, sizeof(buf));
    static const tm::TxnAttr w{"prop:bytes", tm::TxnKind::Atomic, false};

    auto worker = [&](int parity, unsigned char tag) {
        for (int round = 0; round < 200; ++round) {
            for (int i = parity; i < len; i += 2) {
                tm::run(w, [&](tm::TxDesc &tx) {
                    tm::txStore<unsigned char>(tx, &buf[i], tag);
                });
            }
        }
    };
    std::thread a(worker, 0, 0xaa);
    std::thread b(worker, 1, 0xbb);
    a.join();
    b.join();
    for (int i = 0; i < len; ++i)
        EXPECT_EQ(buf[i], (i % 2 == 0) ? 0xaa : 0xbb) << "index " << i;
}

std::vector<Cfg>
allConfigs()
{
    std::vector<Cfg> out;
    for (auto algo : {tm::AlgoKind::GccEager, tm::AlgoKind::Lazy,
                      tm::AlgoKind::NOrec, tm::AlgoKind::RA,
                      tm::AlgoKind::Serial}) {
        for (auto cm : {tm::CmKind::SerialAfterN, tm::CmKind::NoCM,
                        tm::CmKind::Backoff, tm::CmKind::Hourglass}) {
            out.push_back({algo, cm, true});
        }
    }
    // NoLock mode: no SerialAfterN (needs the lock), no Serial algo.
    for (auto algo :
         {tm::AlgoKind::GccEager, tm::AlgoKind::Lazy, tm::AlgoKind::NOrec,
          tm::AlgoKind::RA}) {
        for (auto cm :
             {tm::CmKind::NoCM, tm::CmKind::Backoff, tm::CmKind::Hourglass})
            out.push_back({algo, cm, false});
    }
    return out;
}

std::string
cfgName(const ::testing::TestParamInfo<Cfg> &info)
{
    const Cfg &c = info.param;
    return algoName(c.algo) + "_" + cmName(c.cm) +
           (c.serialLock ? "_Lock" : "_NoLock");
}

INSTANTIATE_TEST_SUITE_P(AllRuntimes, AtomicityTest,
                         ::testing::ValuesIn(allConfigs()), cfgName);

} // namespace
