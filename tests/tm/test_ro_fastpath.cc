/**
 * @file
 * The invisible-reader fast path (TxnAttr::readOnlyHint +
 * RuntimeCfg::roFastPath): correctness, promotion, opacity, and the
 * ablation knob, across the three speculative algorithms.
 *
 * The contract under test:
 *  - a hinted read-only transaction returns consistent values and
 *    commits without advancing the domain's clocks (it is invisible:
 *    no orec writes, no seqlock bump);
 *  - the first write (or handler registration) inside a hinted
 *    transaction promotes the attempt to the full path and re-executes
 *    — the hint can never produce a wrong result, only a slower one;
 *  - roFastCommits / roPromotions account exactly;
 *  - roFastPath=false disables the path entirely (the bench_ro_tx
 *    ablation).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tm/api.h"

namespace
{

using namespace tmemc;

const tm::TxnAttr kRo{"ro_fastpath:ro", tm::TxnKind::Atomic, false,
                      true};
const tm::TxnAttr kRw{"ro_fastpath:rw", tm::TxnKind::Atomic, false,
                      false};

class RoFastPathTest : public ::testing::TestWithParam<tm::AlgoKind>
{
  protected:
    void
    SetUp() override
    {
        tm::RuntimeCfg cfg;
        cfg.algo = GetParam();
        cfg.roFastPath = true;
        tm::Runtime::get().configure(cfg);
        tm::Runtime::get().resetStats();
    }

    void
    TearDown() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
    }
};

TEST_P(RoFastPathTest, HintedReadsAreCorrectAndCounted)
{
    tm::TmVar<std::uint64_t> a{3}, b{4};
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t sum = tm::run(kRo, [&](tm::TxDesc &tx) {
            return a.get(tx) + b.get(tx);
        });
        EXPECT_EQ(sum, 7u);
    }
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.roFastCommits, 100u);
    EXPECT_EQ(snap.total.roPromotions, 0u);
    EXPECT_EQ(snap.total.commits, 100u);
}

TEST_P(RoFastPathTest, RoCommitsDoNotAdvanceDomainClocks)
{
    tm::TmVar<std::uint64_t> x{1};
    // One full read-write commit first so both clocks are provably
    // live (a stuck-at-zero clock would vacuously pass).
    tm::run(kRw, [&](tm::TxDesc &tx) { x.set(tx, 2); });

    auto &dom = tm::Runtime::get().homeDomain();
    const std::uint64_t clock0 = dom.clock.load();
    const std::uint64_t seq0 = dom.norecSeq.load();
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t v =
            tm::run(kRo, [&](tm::TxDesc &tx) { return x.get(tx); });
        EXPECT_EQ(v, 2u);
    }
    // Invisible means invisible: the sequence-validated loads left no
    // trace in either domain clock.
    EXPECT_EQ(dom.clock.load(), clock0);
    EXPECT_EQ(dom.norecSeq.load(), seq0);
    EXPECT_GE(tm::Runtime::get().snapshot().total.roFastCommits, 50u);
}

TEST_P(RoFastPathTest, StorePromotesToFullPathAndWrites)
{
    tm::TmVar<std::uint64_t> x{10};
    // The hint is wrong here — the body writes. The attempt must
    // promote and re-execute on the full path, and the write must
    // land exactly once.
    tm::run(kRo, [&](tm::TxDesc &tx) { x.set(tx, x.get(tx) + 1); });
    const std::uint64_t v =
        tm::run(kRo, [&](tm::TxDesc &tx) { return x.get(tx); });
    EXPECT_EQ(v, 11u);

    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_GE(snap.total.roPromotions, 1u);
    // The promoted attempt commits on the full path; only the pure
    // read afterwards is a fast commit.
    EXPECT_EQ(snap.total.roFastCommits, 1u);
    EXPECT_EQ(snap.total.commits, 2u);
}

TEST_P(RoFastPathTest, OnCommitHandlerPromotes)
{
    tm::TmVar<std::uint64_t> x{5};
    bool ran = false;
    tm::run(kRo, [&](tm::TxDesc &tx) {
        (void)x.get(tx);
        // Handler registration needs the commit machinery the fast
        // path skips; it must promote, not silently drop the handler.
        tm::onCommit(tx, [&] { ran = true; });
    });
    EXPECT_TRUE(ran);
    EXPECT_GE(tm::Runtime::get().snapshot().total.roPromotions, 1u);
}

TEST_P(RoFastPathTest, AblationKnobDisablesFastPath)
{
    tm::RuntimeCfg cfg;
    cfg.algo = GetParam();
    cfg.roFastPath = false;
    tm::Runtime::get().configure(cfg);
    tm::Runtime::get().resetStats();

    tm::TmVar<std::uint64_t> x{9};
    for (int i = 0; i < 20; ++i) {
        const std::uint64_t v =
            tm::run(kRo, [&](tm::TxDesc &tx) { return x.get(tx); });
        EXPECT_EQ(v, 9u);
    }
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.roFastCommits, 0u);
    EXPECT_EQ(snap.total.roPromotions, 0u);
    EXPECT_EQ(snap.total.commits, 20u);
}

TEST_P(RoFastPathTest, OpaqueUnderConcurrentWriters)
{
    // Writers keep the invariant a + b == 1000 through full
    // transactions; hinted readers must never observe a torn pair, no
    // matter how the fast path's validation interleaves with commits.
    tm::TmVar<std::uint64_t> a{1000}, b{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> bad{0};

    std::thread writer([&] {
        for (int i = 0; !stop.load(); ++i) {
            tm::run(kRw, [&](tm::TxDesc &tx) {
                const std::uint64_t av = a.get(tx);
                a.set(tx, av - 1);
                b.set(tx, b.get(tx) + 1);
            });
            if (a.rawGet() == 0) {
                tm::run(kRw, [&](tm::TxDesc &tx) {
                    a.set(tx, 1000);
                    b.set(tx, 0);
                });
            }
        }
    });

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            for (int i = 0; i < 20000; ++i) {
                const std::uint64_t sum =
                    tm::run(kRo, [&](tm::TxDesc &tx) {
                        return a.get(tx) + b.get(tx);
                    });
                if (sum != 1000)
                    bad.fetch_add(1);
            }
        });
    }
    for (auto &t : readers)
        t.join();
    stop.store(true);
    writer.join();

    EXPECT_EQ(bad.load(), 0u);
    // The fast path must actually have carried traffic for this test
    // to mean anything (conflicted attempts may promote or abort; the
    // uncontended majority should not).
    EXPECT_GT(tm::Runtime::get().snapshot().total.roFastCommits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Algos, RoFastPathTest,
                         ::testing::Values(tm::AlgoKind::GccEager,
                                           tm::AlgoKind::Lazy,
                                           tm::AlgoKind::NOrec,
                                           tm::AlgoKind::RA),
                         [](const auto &info) {
                             switch (info.param) {
                             case tm::AlgoKind::GccEager:
                                 return "GccEager";
                             case tm::AlgoKind::Lazy:
                                 return "Lazy";
                             case tm::AlgoKind::NOrec:
                                 return "NOrec";
                             case tm::AlgoKind::RA:
                                 return "RA";
                             default:
                                 return "Other";
                             }
                         });

// ---------------------------------------------------------------------
// RA-specific invisible-reader cases: the fast path has no read set
// and no fences, so every load must individually validate against the
// RELEASE-ordered commit clock (orec version vs. the acquire-loaded
// begin snapshot). These pin the two interactions the RA branch adds.
// ---------------------------------------------------------------------

class RaRoFastPathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        tm::RuntimeCfg cfg;
        cfg.algo = tm::AlgoKind::RA;
        cfg.roFastPath = true;
        tm::Runtime::get().configure(cfg);
        tm::Runtime::get().resetStats();
    }

    void
    TearDown() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
    }
};

TEST_F(RaRoFastPathTest, InvisibleReaderValidatesAgainstReleaseClock)
{
    // A fast-path reader that began before a writer's release
    // fetch_add must refuse any word the writer republished: the orec
    // version exceeds the reader's acquire-loaded snapshot, the fast
    // path cannot extend, and the full-path retry sees a whole
    // post-commit state. Either way x + y stays even.
    tm::TmVar<std::uint64_t> x{2}, y{4};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> odd{0};

    std::thread writer([&] {
        while (!stop.load()) {
            tm::run(kRw, [&](tm::TxDesc &tx) {
                x.set(tx, x.get(tx) + 1);
                y.set(tx, y.get(tx) + 1);
            });
        }
    });
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t sum = tm::run(kRo, [&](tm::TxDesc &tx) {
            return x.get(tx) + y.get(tx);
        });
        if (sum % 2 != 0)
            odd.fetch_add(1);
    }
    stop.store(true);
    writer.join();

    EXPECT_EQ(odd.load(), 0u);
    EXPECT_GT(tm::Runtime::get().snapshot().total.roFastCommits, 0u);
}

TEST_F(RaRoFastPathTest, PromotionLandsOnFullRaPath)
{
    // Promotion out of the RA fast path must re-execute on the RA
    // full path (redo log + release commit), and the promoted commit
    // must advance the release-ordered clock exactly once.
    auto &dom = tm::Runtime::get().homeDomain();
    tm::TmVar<std::uint64_t> x{7};
    const std::uint64_t clock0 = dom.clock.load();
    tm::run(kRo, [&](tm::TxDesc &tx) { x.set(tx, x.get(tx) * 2); });
    EXPECT_EQ(dom.clock.load(), clock0 + 1);
    const std::uint64_t v =
        tm::run(kRo, [&](tm::TxDesc &tx) { return x.get(tx); });
    EXPECT_EQ(v, 14u);
    EXPECT_EQ(dom.clock.load(), clock0 + 1);

    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.roPromotions, 1u);
    EXPECT_EQ(snap.total.roFastCommits, 1u);
}

} // namespace
