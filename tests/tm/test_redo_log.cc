/**
 * @file
 * Unit tests for the masked redo log.
 */

#include <gtest/gtest.h>

#include "tm/redo_log.h"

namespace
{

using tmemc::tm::RedoLog;

TEST(RedoLog, EmptyLookupMisses)
{
    RedoLog log;
    std::uint64_t v = 0, m = 0;
    EXPECT_FALSE(log.lookup(0x1000, v, m));
    EXPECT_TRUE(log.empty());
}

TEST(RedoLog, InsertThenLookup)
{
    RedoLog log;
    log.insert(0x1000, 0xdeadbeef, 0xffffffffull);
    std::uint64_t v = 0, m = 0;
    ASSERT_TRUE(log.lookup(0x1000, v, m));
    EXPECT_EQ(v, 0xdeadbeefull);
    EXPECT_EQ(m, 0xffffffffull);
    EXPECT_EQ(log.size(), 1u);
}

TEST(RedoLog, OverlappingMasksMerge)
{
    RedoLog log;
    log.insert(0x2000, 0x00000000000000aa, 0x00000000000000ff);
    log.insert(0x2000, 0x0000000000bb0000, 0x0000000000ff0000);
    std::uint64_t v = 0, m = 0;
    ASSERT_TRUE(log.lookup(0x2000, v, m));
    EXPECT_EQ(m, 0x0000000000ff00ffull);
    EXPECT_EQ(v, 0x0000000000bb00aaull);
    EXPECT_EQ(log.size(), 1u);  // Same word: one entry.
}

TEST(RedoLog, LaterWriteWinsWithinMask)
{
    RedoLog log;
    log.insert(0x3000, 0x11, 0xff);
    log.insert(0x3000, 0x22, 0xff);
    std::uint64_t v = 0, m = 0;
    ASSERT_TRUE(log.lookup(0x3000, v, m));
    EXPECT_EQ(v & 0xff, 0x22u);
}

TEST(RedoLog, DistinctWordsKeptApart)
{
    RedoLog log;
    for (std::uintptr_t a = 0x1000; a < 0x1000 + 8 * 100; a += 8)
        log.insert(a, a, ~0ull);
    EXPECT_EQ(log.size(), 100u);
    for (std::uintptr_t a = 0x1000; a < 0x1000 + 8 * 100; a += 8) {
        std::uint64_t v = 0, m = 0;
        ASSERT_TRUE(log.lookup(a, v, m));
        EXPECT_EQ(v, a);
    }
}

TEST(RedoLog, GrowsPastInitialIndexCapacity)
{
    RedoLog log;
    constexpr int n = 10000;
    for (int i = 0; i < n; ++i)
        log.insert(0x10000 + 8ull * i, i, ~0ull);
    EXPECT_EQ(log.size(), static_cast<std::size_t>(n));
    std::uint64_t v = 0, m = 0;
    ASSERT_TRUE(log.lookup(0x10000 + 8ull * (n - 1), v, m));
    EXPECT_EQ(v, static_cast<std::uint64_t>(n - 1));
}

TEST(RedoLog, ClearForgetsEverything)
{
    RedoLog log;
    log.insert(0x1000, 1, ~0ull);
    log.clear();
    std::uint64_t v = 0, m = 0;
    EXPECT_FALSE(log.lookup(0x1000, v, m));
    EXPECT_TRUE(log.empty());
    // Reusable after clear.
    log.insert(0x1000, 2, ~0ull);
    ASSERT_TRUE(log.lookup(0x1000, v, m));
    EXPECT_EQ(v, 2u);
}

TEST(RedoLog, EntriesPreserveInsertionOrder)
{
    RedoLog log;
    log.insert(0x1000, 1, ~0ull);
    log.insert(0x2000, 2, ~0ull);
    log.insert(0x3000, 3, ~0ull);
    const auto &es = log.entries();
    ASSERT_EQ(es.size(), 3u);
    EXPECT_EQ(es[0].wordAddr, 0x1000u);
    EXPECT_EQ(es[1].wordAddr, 0x2000u);
    EXPECT_EQ(es[2].wordAddr, 0x3000u);
}

} // namespace
