/**
 * @file
 * Contention-manager behaviour tests: GCC's serialize-after-100-aborts
 * policy ("Abort Serial" in Tables 1-4), backoff, and the hourglass.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr attr{"cm:test", tm::TxnKind::Atomic, false};

TEST(CmTest, SerialAfterNSerializesForProgress)
{
    tm::RuntimeCfg cfg;
    cfg.algo = tm::AlgoKind::GccEager;
    cfg.cm = tm::CmKind::SerialAfterN;
    cfg.serialAfterAborts = 5;  // Small threshold for the test.
    tm::Runtime::get().configure(cfg);
    tm::Runtime::get().resetStats();

    int runs = 0;
    bool ended_serial = false;
    tm::run(attr, [&](tm::TxDesc &tx) {
        ++runs;
        if (tx.state == tm::RunState::SerialIrrevocable) {
            ended_serial = true;
            return;
        }
        throw tm::TxAbort{};  // Abort every speculative attempt.
    });
    EXPECT_TRUE(ended_serial);
    // 5 speculative attempts aborted, the 6th ran serial.
    EXPECT_EQ(runs, 6);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.aborts, 5u);
    EXPECT_EQ(snap.total.abortSerial, 1u);
    EXPECT_EQ(snap.total.commits, 1u);
    useRuntime(tm::AlgoKind::GccEager);
}

TEST(CmTest, NoCmNeverSerializes)
{
    useRuntime(tm::AlgoKind::GccEager, tm::CmKind::NoCM);
    int runs = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        ++runs;
        EXPECT_EQ(tx.state, tm::RunState::Speculative);
        if (runs < 200)
            throw tm::TxAbort{};  // Far beyond GCC's 100-abort limit.
    });
    EXPECT_EQ(runs, 200);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.abortSerial, 0u);
    EXPECT_EQ(snap.total.serialCommits, 0u);
}

TEST(CmTest, BackoffEventuallyCommits)
{
    useRuntime(tm::AlgoKind::GccEager, tm::CmKind::Backoff);
    int runs = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        ++runs;
        if (runs < 10)
            throw tm::TxAbort{};
    });
    EXPECT_EQ(runs, 10);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.commits, 1u);
    EXPECT_EQ(snap.total.aborts, 9u);
}

TEST(CmTest, HourglassBlocksNewTransactionsUntilStarverCommits)
{
    tm::RuntimeCfg cfg;
    cfg.algo = tm::AlgoKind::GccEager;
    cfg.cm = tm::CmKind::Hourglass;
    cfg.hourglassThreshold = 3;
    tm::Runtime::get().configure(cfg);
    tm::Runtime::get().resetStats();

    std::atomic<bool> starver_committed{false};
    std::atomic<bool> neck_claimed{false};
    std::atomic<bool> other_violated{false};

    std::thread starver([&] {
        int runs = 0;
        tm::run(attr, [&](tm::TxDesc &tx) {
            ++runs;
            if (runs <= 4) {
                if (runs == 4)
                    neck_claimed = true;  // Threshold reached at 3 aborts.
                throw tm::TxAbort{};
            }
            // Hold the neck for a while so `other` provably blocks.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        });
        starver_committed = true;
    });
    std::thread other([&] {
        while (!neck_claimed.load())
            std::this_thread::yield();
        tm::run(attr, [&](tm::TxDesc &) {
            // Must not begin until the starver committed.
            if (!starver_committed.load())
                other_violated = true;
        });
    });
    starver.join();
    other.join();
    EXPECT_FALSE(other_violated.load());
    useRuntime(tm::AlgoKind::GccEager);
}

TEST(CmTest, HourglassWorksWithoutSerialLock)
{
    // Figure 11's GCC-Hourglass configuration: no readers/writer lock.
    useRuntime(tm::AlgoKind::GccEager, tm::CmKind::Hourglass,
               /*serial_lock=*/false);
    static std::uint64_t counter;
    counter = 0;
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([] {
            for (int i = 0; i < 500; ++i) {
                tm::run(attr, [](tm::TxDesc &tx) {
                    tm::txStore<std::uint64_t>(
                        tx, &counter, tm::txLoad(tx, &counter) + 1);
                });
            }
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(counter, 2000u);
    useRuntime(tm::AlgoKind::GccEager);
}

} // namespace
