/**
 * @file
 * Tests for onCommit/onAbort handler semantics — the GCC extension the
 * paper's Section 3.5 is built on.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/sem.h"
#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr attr{"handlers:txn", tm::TxnKind::Atomic, false};
const tm::TxnAttr relaxed{"handlers:relaxed", tm::TxnKind::Relaxed, false};

class HandlerTest : public ::testing::Test
{
  protected:
    void SetUp() override { useRuntime(tm::AlgoKind::GccEager); }
};

TEST_F(HandlerTest, OnCommitRunsInRegistrationOrder)
{
    std::vector<int> order;
    tm::run(attr, [&](tm::TxDesc &tx) {
        tm::onCommit(tx, [&] { order.push_back(1); });
        tm::onCommit(tx, [&] { order.push_back(2); });
        tm::onCommit(tx, [&] { order.push_back(3); });
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(HandlerTest, OnCommitNotRunOnAbortedAttempts)
{
    int commits = 0;
    int attempts = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        ++attempts;
        tm::onCommit(tx, [&] { ++commits; });
        if (attempts < 3)
            throw tm::TxAbort{};
    });
    // The aborted attempts' handlers were discarded; only the final
    // attempt's handler ran.
    EXPECT_EQ(attempts, 3);
    EXPECT_EQ(commits, 1);
}

TEST_F(HandlerTest, OnAbortRunsAfterRollbackBeforeRetry)
{
    static std::uint64_t cell;
    cell = 7;
    int abort_handler_runs = 0;
    bool saw_rolled_back_value = false;
    int attempts = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        ++attempts;
        tm::txStore<std::uint64_t>(tx, &cell, 999);
        tm::onAbort(tx, [&] {
            ++abort_handler_runs;
            // Undo already happened: memory holds the original value.
            saw_rolled_back_value = (cell == 7);
        });
        if (attempts == 1)
            throw tm::TxAbort{};
    });
    EXPECT_EQ(abort_handler_runs, 1);
    EXPECT_TRUE(saw_rolled_back_value);
    EXPECT_EQ(cell, 999u);
}

TEST_F(HandlerTest, OnAbortNotRunOnCommit)
{
    int runs = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        tm::onAbort(tx, [&] { ++runs; });
    });
    EXPECT_EQ(runs, 0);
}

TEST_F(HandlerTest, NestedTransactionHandlersBelongToOuter)
{
    std::vector<std::string> order;
    tm::run(attr, [&](tm::TxDesc &tx) {
        tm::onCommit(tx, [&] { order.push_back("outer"); });
        tm::run(attr, [&](tm::TxDesc &inner) {
            tm::onCommit(inner, [&] { order.push_back("inner"); });
        });
        // The nested commit must NOT have run its handler yet: it is
        // subsumed by the outer transaction.
        EXPECT_TRUE(order.empty());
    });
    EXPECT_EQ(order, (std::vector<std::string>{"outer", "inner"}));
}

TEST_F(HandlerTest, HandlerMayStartNewTransaction)
{
    static std::uint64_t cell;
    cell = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        tm::onCommit(tx, [&] {
            tm::run(attr, [&](tm::TxDesc &tx2) {
                tm::txStore<std::uint64_t>(tx2, &cell, 42);
            });
        });
    });
    EXPECT_EQ(cell, 42u);
}

TEST_F(HandlerTest, SemPostPatternDelaysWakeupToCommit)
{
    // The paper's condition-synchronization replacement: sem_post via
    // onCommit. The post must not be visible before the txn commits.
    Semaphore sem;
    bool posted_early = false;
    tm::run(relaxed, [&](tm::TxDesc &tx) {
        tm::onCommit(tx, [&] { sem.post(); });
        posted_early = sem.tryWait();
    });
    EXPECT_FALSE(posted_early);
    EXPECT_TRUE(sem.tryWait());  // Visible after commit.
}

TEST_F(HandlerTest, OnCommitRunsAfterSerialLockRelease)
{
    // A handler that starts a transaction would deadlock if the serial
    // write lock were still held; this exercises that path by making
    // the transaction serial first.
    static const tm::TxnAttr serialSite{"handlers:serial",
                                        tm::TxnKind::Relaxed, true};
    static std::uint64_t cell;
    cell = 0;
    tm::run(serialSite, [&](tm::TxDesc &tx) {
        tm::onCommit(tx, [&] {
            tm::run(attr, [&](tm::TxDesc &tx2) {
                tm::txStore<std::uint64_t>(tx2, &cell, 5);
            });
        });
    });
    EXPECT_EQ(cell, 5u);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.startSerial, 1u);
}

TEST_F(HandlerTest, PerroErrnoPatternWorks)
{
    // Section 3.5: "in the case of perror, we could not simply delay
    // the function, but instead saved the errno and then called
    // strerror_r in the commit handler."
    std::string message;
    tm::run(relaxed, [&](tm::TxDesc &tx) {
        const int saved_errno = 2;  // ENOENT observed transactionally.
        tm::onCommit(tx, [&, saved_errno] {
            message = std::strerror(saved_errno);
        });
    });
    EXPECT_FALSE(message.empty());
}

} // namespace
