/**
 * @file
 * Weak-memory litmus tests with transactional boundaries, after the
 * Chong, Sorensen & Wickerson catalogue: SB, MP, LB and IRIW where
 * every shared access runs inside its own (tiny) transaction. Strong
 * isolation plus real-time ordering of committed transactions forbids
 * the classic relaxed outcomes even though each access sits in a
 * separate transaction — e.g. SB's r1 == r2 == 0 would require a
 * serialization cycle through the threads' program orders.
 *
 * The suite runs across all speculative algorithms including the
 * fence-free RA branch — the one these outcomes are actually at risk
 * on: RA has no seq_cst fences anywhere, so the forbidden results can
 * only stay forbidden if the orec release/acquire pairs and the
 * release-ordered commit clock are placed correctly. CI runs this
 * file under TSan; outcome assertions catch ordering bugs TSan's
 * happens-before analysis cannot (a too-weak ordering that is not a
 * data race).
 *
 * Harness: persistent threads with atomic round/done counters as
 * barriers (thread churn would dominate at thousands of rounds).
 * TMEMC_LITMUS_ROUNDS overrides the per-test round count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "litmus_harness.h"
#include "obs/tail.h"
#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr kAttr{"litmus", tm::TxnKind::Atomic, false};

int
litmusRounds()
{
    if (const char *s = std::getenv("TMEMC_LITMUS_ROUNDS"))
        return static_cast<int>(std::strtol(s, nullptr, 10));
    return 2000;
}

/** Transactional store of @p v into @p var — one tx per access. */
void
txPut(tm::TmVar<std::uint64_t> &var, std::uint64_t v)
{
    tm::run(kAttr, [&](tm::TxDesc &tx) { var.set(tx, v); });
}

/** Transactional load — one tx per access. */
std::uint64_t
txGet(tm::TmVar<std::uint64_t> &var)
{
    return tm::run(kAttr,
                   [&](tm::TxDesc &tx) { return var.get(tx); });
}

/** Round harness (tests/tm/litmus_harness.h), stopping after the
 *  first fatal gtest failure. The worker bodies here ignore the
 *  harness's thread-index parameter. */
void
litmusRun(int rounds, const std::function<void()> &reset,
          const std::vector<std::function<void()>> &bodies,
          const std::function<void(int)> &check)
{
    std::vector<std::function<void(unsigned)>> wrapped;
    wrapped.reserve(bodies.size());
    for (const auto &body : bodies)
        wrapped.emplace_back([&body](unsigned) { body(); });
    litmus::litmusRun(rounds, reset, wrapped, check, [] {
        return !::testing::Test::HasFatalFailure();
    });
}

class LitmusTest : public ::testing::TestWithParam<tm::AlgoKind>
{
  protected:
    void SetUp() override { useRuntime(GetParam()); }
    void
    TearDown() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
    }
};

TEST_P(LitmusTest, StoreBuffering)
{
    // SB: forbidden outcome r1 == 0 && r2 == 0 — would need each
    // thread's load serialized before the other thread's earlier
    // (program-order) store.
    tm::TmVar<std::uint64_t> x{0}, y{0};
    std::uint64_t r1 = 0, r2 = 0;
    litmusRun(
        litmusRounds(),
        [&] {
            x.rawSet(0);
            y.rawSet(0);
        },
        {[&] {
             txPut(x, 1);
             r1 = txGet(y);
         },
         [&] {
             txPut(y, 1);
             r2 = txGet(x);
         }},
        [&](int round) {
            ASSERT_FALSE(r1 == 0 && r2 == 0)
                << "SB relaxed outcome at round " << round;
        });
}

TEST_P(LitmusTest, MessagePassing)
{
    // MP: flag == 1 implies the payload write is visible.
    tm::TmVar<std::uint64_t> data{0}, flag{0};
    std::uint64_t r_flag = 0, r_data = 0;
    litmusRun(
        litmusRounds(),
        [&] {
            data.rawSet(0);
            flag.rawSet(0);
        },
        {[&] {
             txPut(data, 1);
             txPut(flag, 1);
         },
         [&] {
             r_flag = txGet(flag);
             r_data = txGet(data);
         }},
        [&](int round) {
            ASSERT_FALSE(r_flag == 1 && r_data == 0)
                << "MP relaxed outcome at round " << round;
        });
}

TEST_P(LitmusTest, LoadBuffering)
{
    // LB: forbidden outcome r1 == 1 && r2 == 1 — each load would have
    // to observe a store that is serialized after it.
    tm::TmVar<std::uint64_t> x{0}, y{0};
    std::uint64_t r1 = 0, r2 = 0;
    litmusRun(
        litmusRounds(),
        [&] {
            x.rawSet(0);
            y.rawSet(0);
        },
        {[&] {
             r1 = txGet(y);
             txPut(x, 1);
         },
         [&] {
             r2 = txGet(x);
             txPut(y, 1);
         }},
        [&](int round) {
            ASSERT_FALSE(r1 == 1 && r2 == 1)
                << "LB relaxed outcome at round " << round;
        });
}

TEST_P(LitmusTest, Iriw)
{
    // IRIW: two independent writers, two readers; the readers must
    // agree on the order of the writes (no (1,0) vs (1,0) crosswise).
    // This is the outcome plain release/acquire famously permits —
    // transactions must restore the single total order.
    tm::TmVar<std::uint64_t> x{0}, y{0};
    std::uint64_t r1 = 0, r2 = 0, r3 = 0, r4 = 0;
    litmusRun(
        litmusRounds(),
        [&] {
            x.rawSet(0);
            y.rawSet(0);
        },
        {[&] { txPut(x, 1); },
         [&] { txPut(y, 1); },
         [&] {
             r1 = txGet(x);
             r2 = txGet(y);
         },
         [&] {
             r3 = txGet(y);
             r4 = txGet(x);
         }},
        [&](int round) {
            ASSERT_FALSE(r1 == 1 && r2 == 0 && r3 == 1 && r4 == 0)
                << "IRIW relaxed outcome at round " << round
                << " (readers disagree on the write order)";
        });
}

TEST(ArmedLatchLitmus, ArmedLatchPublishesConfig)
{
    // From atomlint's initial tree scan (AL2, armed-latch protocol):
    // obs::armTail() stored both g_tailK and the g_tailArmed latch
    // relaxed, so a worker whose relaxed fast-path gate saw the latch
    // could trace against a stale K. The fix (tail.cc) made the arm
    // store release and added an acquire re-read of the latch in
    // beginRequestSlow(); this MP-shaped test pins it: whenever a
    // request is admitted (nonzero id), the K configured by that arm
    // must be visible.
    int roundK = 0;  // Written in reset, read after the go barrier.
    std::uint64_t r_id = 0;
    std::size_t r_k = 0;
    obs::tail::disarmTail();
    litmusRun(
        litmusRounds(),
        [&] {
            obs::tail::disarmTail();
            roundK = 5 + (std::rand() & 7);
            r_id = 0;
            r_k = 0;
        },
        {[&] { obs::tail::armTail(static_cast<std::size_t>(roundK)); },
         [&] {
             r_id = obs::tail::beginRequest(0, false, 0);
             // Sequenced after beginRequestSlow's acquire re-read of
             // the latch, so the arm's configuration is visible.
             r_k = obs::tail::tailK();
         }},
        [&](int round) {
            if (r_id != 0)
                ASSERT_EQ(r_k, static_cast<std::size_t>(roundK))
                    << "admitted request saw a stale tail K at round "
                    << round;
        });
    obs::tail::disarmTail();
}

INSTANTIATE_TEST_SUITE_P(Algos, LitmusTest,
                         ::testing::Values(tm::AlgoKind::GccEager,
                                           tm::AlgoKind::Lazy,
                                           tm::AlgoKind::NOrec,
                                           tm::AlgoKind::RA),
                         [](const auto &info) {
                             return tmemc::tests::algoName(info.param);
                         });

} // namespace
