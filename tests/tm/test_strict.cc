/**
 * @file
 * Tests for the TMEMC_TM_STRICT runtime cross-check (tm/strict.h).
 *
 * With the option ON (cmake -DTMEMC_TM_STRICT=ON), an uninstrumented
 * fast-path access made while the calling thread is speculating must
 * panic with a flight-recorder dump; accesses outside transactions and
 * on the serial-irrevocable path must not. With the option OFF (the
 * default), the guard macros compile to nothing — verified here both
 * functionally and with a min-of-many overhead spot check on the
 * PlainCtx hot path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "mc/branch.h"
#include "mc/ctx.h"
#include "tm/api.h"
#include "tm/strict.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr atomicAttr{"strict:atomic", tm::TxnKind::Atomic, false};
const tm::TxnAttr relaxedAttr{"strict:relaxed", tm::TxnKind::Relaxed,
                              false};

std::uint64_t sharedCell;

class StrictTest : public ::testing::Test
{
  protected:
    void SetUp() override { useRuntime(tm::AlgoKind::GccEager); }
};

// The trait the TMEMC_STRICT_SHARED_ENTRY macro dispatches on must
// hold regardless of build mode: TmCtx is instrumented (exposes .tx),
// PlainCtx is not.
TEST_F(StrictTest, InstrumentedCtxTraitClassifiesContexts)
{
    using Plain = mc::PlainCtx<mc::kBaseline>;
    using Instr = mc::TmCtx<mc::kITMax>;
    EXPECT_FALSE(tm::strict::IsInstrumentedCtx<Plain>::value);
    EXPECT_TRUE(tm::strict::IsInstrumentedCtx<Instr>::value);
}

TEST_F(StrictTest, PlainAccessOutsideTransactionIsAlwaysLegal)
{
    mc::PlainCtx<mc::kBaseline> c;
    c.store(&sharedCell, std::uint64_t{7});
    EXPECT_EQ(c.load(&sharedCell), 7u);
}

#if TMEMC_TM_STRICT

TEST_F(StrictTest, RawAccessInSpeculativeTransactionPanics)
{
    EXPECT_DEATH(
        {
            tm::run(atomicAttr, [](tm::TxDesc &) {
                mc::PlainCtx<mc::kBaseline> c;
                c.store(&sharedCell, std::uint64_t{1});
            });
        },
        "tm-strict");
}

TEST_F(StrictTest, RawLoadInSpeculativeTransactionPanics)
{
    EXPECT_DEATH(
        {
            tm::run(atomicAttr, [](tm::TxDesc &) {
                mc::PlainCtx<mc::kBaseline> c;
                (void)c.load(&sharedCell);
            });
        },
        "tm-strict");
}

// The serial-irrevocable path is exempt: after an in-flight switch
// the transaction owns the serial lock and direct access is exactly
// what GCC's runtime does too (and the legal landing spot of
// unsafeOp()).
TEST_F(StrictTest, SerialIrrevocablePathIsExempt)
{
    tm::run(relaxedAttr, [](tm::TxDesc &tx) {
        tm::unsafeOp(tx, "test: go serial");
        mc::PlainCtx<mc::kBaseline> c;
        c.store(&sharedCell, std::uint64_t{3});
    });
    EXPECT_EQ(sharedCell, 3u);
}

// Instrumented contexts must pass through the shared-entry guards
// without firing while speculating.
TEST_F(StrictTest, InstrumentedAccessWhileSpeculatingIsLegal)
{
    static std::uint64_t cell = 0;
    tm::run(atomicAttr, [](tm::TxDesc &tx) {
        mc::TmCtx<mc::kITMax> c{tx};
        c.store(&cell, c.load(&cell) + 1);
    });
    EXPECT_EQ(cell, 1u);
}

#else // !TMEMC_TM_STRICT

// With the option off, uninstrumented access inside a transaction is
// (dangerously) silent — the static checker is the line of defense.
// This pins the no-op behaviour so turning strict mode on is a
// deliberate choice, not an ambient one.
TEST_F(StrictTest, GuardsAreNoOpsWhenDisabled)
{
    tm::run(atomicAttr, [](tm::TxDesc &) {
        mc::PlainCtx<mc::kBaseline> c;
        c.store(&sharedCell, std::uint64_t{11});
    });
    EXPECT_EQ(sharedCell, 11u);
}

// Overhead spot check: the guard macro expands to ((void)0), so the
// guarded PlainCtx path must cost the same as a hand-written loop.
// Min-of-many filters scheduler noise; the 1.05x bound is the
// acceptance criterion for "no measurable overhead in default builds".
TEST_F(StrictTest, PlainCtxPathHasNoMeasurableOverheadWhenDisabled)
{
    constexpr int kIters = 200000;
    constexpr int kRounds = 9;
    static std::uint64_t cells[16] = {};
    mc::PlainCtx<mc::kBaseline> c;

    auto timeOnce = [&](auto &&body) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i)
            body(i);
        asm volatile("" ::: "memory");
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    double guarded = 1e9;
    double plain = 1e9;
    for (int r = 0; r < kRounds; ++r) {
        guarded = std::min(guarded, timeOnce([&](int i) {
            c.store(&cells[i & 15], c.load(&cells[i & 15]) + 1);
        }));
        plain = std::min(plain, timeOnce([&](int i) {
            std::uint64_t *p = &cells[i & 15];
            asm volatile("" : "+r"(p));
            *p = *p + 1;
        }));
    }
    // Generous floor keeps sub-microsecond denominators from turning
    // timer jitter into a ratio.
    EXPECT_LE(guarded, plain * 1.05 + 1e-4)
        << "guarded=" << guarded << "s plain=" << plain << "s";
}

#endif // TMEMC_TM_STRICT

} // namespace
