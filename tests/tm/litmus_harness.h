/**
 * @file
 * Shared litmus-test round harness: persistent threads released per
 * round through atomic go/done counters used as barriers (thread
 * churn would dominate at thousands of rounds). Extracted from
 * test_litmus.cc so the skeletons atomlint generates with
 * --emit-litmus (tools/atomlint/litmus_gen.py) compile standalone,
 * without gtest.
 *
 * Per round the driving thread calls `reset`, releases the workers,
 * waits for all of them, then calls `check(round)` — results written
 * by workers before the done-barrier are visible to check via the
 * acq_rel counter. `keepGoing` lets a gtest caller stop after a fatal
 * assertion (pass `[] { return !::testing::Test::HasFatalFailure(); }`);
 * standalone callers omit it.
 */

#ifndef TMEMC_TESTS_TM_LITMUS_HARNESS_H
#define TMEMC_TESTS_TM_LITMUS_HARNESS_H

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace tmemc::litmus
{

inline void
litmusRun(int rounds, const std::function<void()> &reset,
          const std::vector<std::function<void(unsigned)>> &bodies,
          const std::function<void(int)> &check,
          const std::function<bool()> &keepGoing = {})
{
    const int n = static_cast<int>(bodies.size());
    std::atomic<int> go{0};
    std::atomic<int> done{0};

    std::vector<std::thread> threads;
    for (unsigned ti = 0; ti < bodies.size(); ++ti) {
        const auto &body = bodies[ti];
        threads.emplace_back([&go, &done, &body, rounds, ti] {
            for (int r = 1; r <= rounds; ++r) {
                while (go.load(std::memory_order_acquire) < r)
                    std::this_thread::yield();
                body(ti);
                done.fetch_add(1, std::memory_order_acq_rel);
            }
        });
    }
    for (int r = 1; r <= rounds; ++r) {
        reset();
        done.store(0, std::memory_order_relaxed);
        go.store(r, std::memory_order_release);
        while (done.load(std::memory_order_acquire) < n)
            std::this_thread::yield();
        check(r);
        if (keepGoing && !keepGoing())
            break;
    }
    // On early exit, release the workers through their remaining
    // rounds (without resets) so join() cannot hang.
    go.store(rounds, std::memory_order_release);
    for (auto &t : threads)
        t.join();
}

} // namespace tmemc::litmus

#endif // TMEMC_TESTS_TM_LITMUS_HARNESS_H
