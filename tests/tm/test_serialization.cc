/**
 * @file
 * Tests for the serialization state machine: relaxed transactions
 * switching to serial-irrevocable mode on unsafe operations, static
 * start-serial sites, atomic transactions rejecting unsafe operations,
 * NoLock mode forbidding serialization, and the Tables 1-4 accounting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr relaxedAttr{"ser:relaxed", tm::TxnKind::Relaxed, false};
const tm::TxnAttr startSerialAttr{"ser:start-serial", tm::TxnKind::Relaxed,
                                  true};
const tm::TxnAttr atomicAttr{"ser:atomic", tm::TxnKind::Atomic, false};

class SerializationTest : public ::testing::Test
{
  protected:
    void SetUp() override { useRuntime(tm::AlgoKind::GccEager); }
};

TEST_F(SerializationTest, UnsafeOpSwitchesRelaxedInFlight)
{
    static std::uint64_t cell = 0;
    cell = 0;
    int body_runs = 0;
    bool was_serial_after_unsafe = false;
    tm::run(relaxedAttr, [&](tm::TxDesc &tx) {
        ++body_runs;
        tm::txStore<std::uint64_t>(tx, &cell, 1);
        tm::unsafeOp(tx, "test-io");
        was_serial_after_unsafe =
            (tx.state == tm::RunState::SerialIrrevocable);
    });
    // The speculative attempt aborted at the unsafe op and the body
    // re-ran serially: two executions, one commit.
    EXPECT_EQ(body_runs, 2);
    EXPECT_TRUE(was_serial_after_unsafe);
    EXPECT_EQ(cell, 1u);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.commits, 1u);
    EXPECT_EQ(snap.total.inflightSwitch, 1u);
    EXPECT_EQ(snap.total.startSerial, 0u);
    EXPECT_EQ(snap.total.serialCommits, 1u);
    // The switch rollback is not a contention abort.
    EXPECT_EQ(snap.total.aborts, 0u);
}

TEST_F(SerializationTest, StartSerialRunsOnceSerially)
{
    int body_runs = 0;
    tm::run(startSerialAttr, [&](tm::TxDesc &tx) {
        ++body_runs;
        EXPECT_EQ(tx.state, tm::RunState::SerialIrrevocable);
        tm::unsafeOp(tx, "always-unsafe");  // No-op when already serial.
    });
    EXPECT_EQ(body_runs, 1);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.startSerial, 1u);
    EXPECT_EQ(snap.total.inflightSwitch, 0u);
    EXPECT_EQ(snap.total.serialCommits, 1u);
}

TEST_F(SerializationTest, AtomicUnsafeOpIsFatal)
{
    EXPECT_DEATH(tm::run(atomicAttr,
                         [](tm::TxDesc &tx) { tm::unsafeOp(tx, "io"); }),
                 "atomic transaction");
}

TEST_F(SerializationTest, StartSerialAtomicAttrIsFatal)
{
    static const tm::TxnAttr bad{"ser:bad", tm::TxnKind::Atomic, true};
    EXPECT_DEATH(tm::run(bad, [](tm::TxDesc &) {}), "start-serial");
}

TEST_F(SerializationTest, NoLockModeForbidsSerialization)
{
    useRuntime(tm::AlgoKind::GccEager, tm::CmKind::NoCM,
               /*serial_lock=*/false);
    EXPECT_DEATH(tm::run(relaxedAttr,
                         [](tm::TxDesc &tx) { tm::unsafeOp(tx, "io"); }),
                 "NoLock");
    useRuntime(tm::AlgoKind::GccEager);
}

TEST_F(SerializationTest, NoLockRejectsSerialAfterNConfig)
{
    tm::RuntimeCfg cfg;
    cfg.useSerialLock = false;
    cfg.cm = tm::CmKind::SerialAfterN;
    EXPECT_DEATH(tm::Runtime::get().configure(cfg), "SerialAfterN");
}

TEST_F(SerializationTest, SafeRelaxedTransactionStaysSpeculative)
{
    static std::uint64_t cell = 0;
    tm::run(relaxedAttr, [](tm::TxDesc &tx) {
        tm::txStore<std::uint64_t>(tx, &cell, 9);
        EXPECT_EQ(tx.state, tm::RunState::Speculative);
    });
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.serialCommits, 0u);
    EXPECT_EQ(snap.total.inflightSwitch, 0u);
}

TEST_F(SerializationTest, UnannotatedCallSafeWhenInferenceOn)
{
    // GCC infers safety of functions whose bodies it sees; the paper's
    // explanation for why the callable annotation changed nothing.
    tm::run(relaxedAttr, [](tm::TxDesc &tx) {
        tm::noteCall(tx, tm::FnAttr::Unannotated, "helper");
        EXPECT_EQ(tx.state, tm::RunState::Speculative);
    });
}

TEST_F(SerializationTest, UnannotatedCallSerializesWithoutInference)
{
    tm::RuntimeCfg cfg;
    cfg.inferCallableSafety = false;
    tm::Runtime::get().configure(cfg);
    tm::Runtime::get().resetStats();
    tm::run(relaxedAttr, [](tm::TxDesc &tx) {
        tm::noteCall(tx, tm::FnAttr::Unannotated, "helper");
        EXPECT_EQ(tx.state, tm::RunState::SerialIrrevocable);
    });
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.inflightSwitch, 1u);
    useRuntime(tm::AlgoKind::GccEager);
}

TEST_F(SerializationTest, CallableAnnotationAvoidsSerialization)
{
    tm::RuntimeCfg cfg;
    cfg.inferCallableSafety = false;
    tm::Runtime::get().configure(cfg);
    tm::run(relaxedAttr, [](tm::TxDesc &tx) {
        tm::noteCall(tx, tm::FnAttr::Callable, "helper");
        tm::noteCall(tx, tm::FnAttr::Safe, "helper2");
        tm::noteCall(tx, tm::FnAttr::Pure, "helper3");
        EXPECT_EQ(tx.state, tm::RunState::Speculative);
    });
    useRuntime(tm::AlgoKind::GccEager);
}

TEST_F(SerializationTest, SerialAlgoRunsEverythingSerially)
{
    useRuntime(tm::AlgoKind::Serial);
    static std::uint64_t cell = 0;
    tm::run(atomicAttr, [](tm::TxDesc &tx) {
        EXPECT_EQ(tx.state, tm::RunState::SerialIrrevocable);
        tm::txStore<std::uint64_t>(tx, &cell, 4);
    });
    EXPECT_EQ(cell, 4u);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.serialCommits, 1u);
    // Config-forced serial mode is not a serialization *cause*.
    EXPECT_EQ(snap.total.startSerial, 0u);
    useRuntime(tm::AlgoKind::GccEager);
}

TEST_F(SerializationTest, SerialTransactionExcludesSpeculation)
{
    // While a relaxed txn is irrevocable, a speculative txn in another
    // thread must not begin (readers/writer lock semantics).
    static std::atomic<int> phase{0};
    static std::uint64_t cell = 0;
    cell = 0;

    std::thread other([&] {
        while (phase.load() != 1)
            std::this_thread::yield();
        tm::run(atomicAttr, [&](tm::TxDesc &tx) {
            // This begin must block until the serial txn finished.
            EXPECT_EQ(phase.load(), 2);
            tm::txStore<std::uint64_t>(tx, &cell,
                                       tm::txLoad(tx, &cell) + 1);
        });
    });

    tm::run(startSerialAttr, [&](tm::TxDesc &tx) {
        phase.store(1);
        // Give the other thread ample chance to (incorrectly) start.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        tm::txStore<std::uint64_t>(tx, &cell, tm::txLoad(tx, &cell) + 1);
        phase.store(2);
    });
    other.join();
    EXPECT_EQ(cell, 2u);
}

} // namespace
