/**
 * @file
 * Stress and failure-injection tests for the TM runtime: orec-hash
 * collisions, randomized abort injection, redo-log pressure, and
 * allocation under repeated aborts.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "tm/api.h"
#include "tm/orec.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr attr{"stress:txn", tm::TxnKind::Atomic, false};

class StressTest : public ::testing::TestWithParam<tm::AlgoKind>
{
  protected:
    void SetUp() override { useRuntime(GetParam(), tm::CmKind::NoCM); }
};

TEST_P(StressTest, CollidingOrecAddressesStayCorrect)
{
    // Find two distinct word addresses in one buffer that share an
    // ownership record, then hammer both from one transaction (the
    // lock acquisition must be idempotent) and from racing threads.
    auto &orecs = tm::Runtime::get().orecs();
    static std::vector<std::uint64_t> buf;
    buf.assign(1 << 16, 0);

    std::size_t a = 0, b = 0;
    bool found = false;
    for (std::size_t i = 1; i < buf.size() && !found; ++i) {
        if (&orecs.forWord(reinterpret_cast<std::uintptr_t>(&buf[0])) ==
            &orecs.forWord(reinterpret_cast<std::uintptr_t>(&buf[i]))) {
            a = 0;
            b = i;
            found = true;
        }
    }
    if (!found)
        GTEST_SKIP() << "no collision in test range";

    // Same-transaction double acquisition.
    tm::run(attr, [&](tm::TxDesc &tx) {
        tm::txStore<std::uint64_t>(tx, &buf[a], 1);
        tm::txStore<std::uint64_t>(tx, &buf[b], 2);
        EXPECT_EQ(tm::txLoad(tx, &buf[a]), 1u);
        EXPECT_EQ(tm::txLoad(tx, &buf[b]), 2u);
    });
    EXPECT_EQ(buf[a], 1u);
    EXPECT_EQ(buf[b], 2u);

    // Cross-thread increments on the colliding pair.
    constexpr int per = 2000;
    auto worker = [&](std::size_t target) {
        for (int i = 0; i < per; ++i) {
            tm::run(attr, [&](tm::TxDesc &tx) {
                tm::txStore<std::uint64_t>(
                    tx, &buf[target], tm::txLoad(tx, &buf[target]) + 1);
            });
        }
    };
    std::thread t1(worker, a);
    std::thread t2(worker, b);
    t1.join();
    t2.join();
    EXPECT_EQ(buf[a], 1u + per);
    EXPECT_EQ(buf[b], 2u + per);
}

TEST_P(StressTest, RandomAbortInjectionPreservesConservation)
{
    if (GetParam() == tm::AlgoKind::Serial)
        GTEST_SKIP() << "serial transactions cannot abort";
    constexpr int accounts = 8;
    static std::int64_t bank[accounts];
    for (auto &x : bank)
        x = 100;

    constexpr int threads = 3;
    constexpr int per = 2000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([t] {
            XorShift128 rng(31 + t);
            for (int i = 0; i < per; ++i) {
                const int from = rng.nextBounded(accounts);
                const int to = (from + 1 + rng.nextBounded(accounts - 1)) %
                               accounts;
                int attempt = 0;
                tm::run(attr, [&](tm::TxDesc &tx) {
                    ++attempt;
                    const auto f = tm::txLoad(tx, &bank[from]);
                    tm::txStore<std::int64_t>(tx, &bank[from], f - 1);
                    // Fault injection: fail the first attempt 30% of
                    // the time, mid-transaction.
                    if (attempt == 1 && rng.nextDouble() < 0.3)
                        throw tm::TxAbort{};
                    const auto g = tm::txLoad(tx, &bank[to]);
                    tm::txStore<std::int64_t>(tx, &bank[to], g + 1);
                });
            }
        });
    }
    for (auto &w : workers)
        w.join();
    std::int64_t total = 0;
    for (auto x : bank)
        total += x;
    EXPECT_EQ(total, accounts * 100);
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_GT(snap.total.aborts, 0u);
}

TEST_P(StressTest, LargeMixedReadWriteSetsCommit)
{
    constexpr int words = 2048;
    static std::uint64_t region[words];
    std::memset(region, 0, sizeof(region));
    // Several rounds of a transaction that reads half the region and
    // rewrites the other half with merged sub-word stores.
    for (int round = 1; round <= 3; ++round) {
        tm::run(attr, [&](tm::TxDesc &tx) {
            std::uint64_t sum = 0;
            for (int i = 0; i < words; i += 2)
                sum += tm::txLoad(tx, &region[i]);
            for (int i = 1; i < words; i += 2) {
                auto *bytes = reinterpret_cast<unsigned char *>(&region[i]);
                tm::txStore<unsigned char>(tx, bytes + (round % 8),
                                           static_cast<unsigned char>(
                                               round));
                tm::txStore<std::uint32_t>(
                    tx, reinterpret_cast<std::uint32_t *>(bytes) + 1,
                    static_cast<std::uint32_t>(sum & 0xff));
            }
        });
    }
    // Odd words carry round-3 byte in some lane.
    bool any = false;
    for (int i = 1; i < words; i += 2)
        any = any || region[i] != 0;
    EXPECT_TRUE(any);
}

TEST_P(StressTest, TxMallocReclaimedAcrossAbortStorm)
{
    if (GetParam() == tm::AlgoKind::Serial)
        GTEST_SKIP() << "serial transactions cannot abort";
    // Each attempt allocates; all but the last must be reclaimed via
    // the abort list (leak-checked under ASan builds; here we at least
    // verify the survivor is usable and sized).
    int attempts = 0;
    void *survivor = tm::run(attr, [&](tm::TxDesc &tx) {
        ++attempts;
        void *p = tm::txMalloc(tx, 128);
        std::memset(p, attempts, 128);
        if (attempts < 50)
            throw tm::TxAbort{};
        return p;
    });
    EXPECT_EQ(attempts, 50);
    EXPECT_EQ(static_cast<unsigned char *>(survivor)[127], 50);
    std::free(survivor);
}

TEST_P(StressTest, ReadHeavyScanWhileWritersChurn)
{
    constexpr int words = 512;
    static std::uint64_t region[words];
    std::memset(region, 0, sizeof(region));
    std::atomic<bool> stop{false};
    std::atomic<bool> torn{false};

    // Writers keep region[i] == region[i+1] for even i.
    std::thread writer([&] {
        XorShift128 rng(9);
        for (int i = 0; i < 4000; ++i) {
            const int slot =
                static_cast<int>(rng.nextBounded(words / 2)) * 2;
            tm::run(attr, [&](tm::TxDesc &tx) {
                const std::uint64_t v = tm::txLoad(tx, &region[slot]) + 1;
                tm::txStore<std::uint64_t>(tx, &region[slot], v);
                tm::txStore<std::uint64_t>(tx, &region[slot + 1], v);
            });
        }
        stop.store(true);
    });
    std::thread scanner([&] {
        while (!stop.load()) {
            tm::run(attr, [&](tm::TxDesc &tx) {
                for (int i = 0; i < words; i += 2) {
                    if (tm::txLoad(tx, &region[i]) !=
                        tm::txLoad(tx, &region[i + 1]))
                        torn.store(true);
                }
            });
        }
    });
    writer.join();
    scanner.join();
    EXPECT_FALSE(torn.load());
}

INSTANTIATE_TEST_SUITE_P(
    Algos, StressTest,
    ::testing::Values(tm::AlgoKind::GccEager, tm::AlgoKind::Lazy,
                      tm::AlgoKind::NOrec, tm::AlgoKind::RA,
                      tm::AlgoKind::Serial),
    [](const ::testing::TestParamInfo<tm::AlgoKind> &info) {
        return tmemc::tests::algoName(info.param);
    });

} // namespace
