/**
 * @file
 * Privatization-safety tests (paper Figure 1 and Section 3.1).
 *
 * The IP branch pattern: data guarded by a transactional boolean lock
 * is accessed *outside* transactions once the lock is held. This is
 * explicit privatization; the Draft C++ TM Specification requires the
 * TM to make it safe, and GCC's default algorithm provides it via
 * commit-time quiescence. These tests drive that pattern hard.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;

const tm::TxnAttr lockAttr{"priv:lock", tm::TxnKind::Atomic, false};
const tm::TxnAttr touchAttr{"priv:touch", tm::TxnKind::Atomic, false};

class PrivatizationTest : public ::testing::TestWithParam<tm::AlgoKind>
{
  protected:
    void
    SetUp() override
    {
        tmemc::tests::useRuntime(GetParam(), tm::CmKind::NoCM);
    }
};

/** Transactional boolean lock (the paper's itemlock replacement). */
struct TmBoolLock
{
    std::uint64_t held = 0;

    bool
    tryAcquire()
    {
        return tm::run(lockAttr, [&](tm::TxDesc &tx) {
            if (tm::txLoad(tx, &held) != 0)
                return false;
            tm::txStore<std::uint64_t>(tx, &held, 1);
            return true;
        });
    }

    void
    release()
    {
        tm::run(lockAttr, [&](tm::TxDesc &tx) {
            tm::txStore<std::uint64_t>(tx, &held, 0);
        });
    }
};

TEST_P(PrivatizationTest, PrivatizedDataNotClobbered)
{
    // Thread A privatizes `data` by committing the tm-bool acquire,
    // then mutates it with plain accesses (func2a in Figure 1a).
    // Thread B reads the lock and, when free, uses the data inside a
    // transaction (func1a). The data must always be internally
    // consistent: pair (u, v) with v == u + 1.
    static TmBoolLock lock;
    static std::uint64_t u, v;
    lock.held = 0;
    u = 10;
    v = 11;
    std::atomic<bool> bad{false};
    constexpr int rounds = 3000;

    std::thread privatizer([&] {
        for (int i = 0; i < rounds; ++i) {
            if (!lock.tryAcquire())
                continue;
            // Privatized: non-transactional read-modify-write.
            const std::uint64_t nu = u + 1;
            u = nu;
            v = nu + 1;
            if (v != u + 1)
                bad = true;
            lock.release();
        }
    });
    std::thread reader([&] {
        for (int i = 0; i < rounds; ++i) {
            const bool ok = tm::run(touchAttr, [&](tm::TxDesc &tx) {
                if (tm::txLoad(tx, &lock.held) != 0)
                    return true;  // Lock held: stay away.
                const std::uint64_t su = tm::txLoad(tx, &u);
                const std::uint64_t sv = tm::txLoad(tx, &v);
                return sv == su + 1;
            });
            if (!ok)
                bad = true;
        }
    });
    privatizer.join();
    reader.join();
    EXPECT_FALSE(bad.load());
    EXPECT_EQ(v, u + 1);
}

TEST_P(PrivatizationTest, UnlinkThenReclaimIsSafe)
{
    // The classic privatization idiom: transactionally unlink a node
    // from a shared list, then read/write and free it privately.
    struct Node
    {
        std::uint64_t value;
        Node *next;
    };
    static Node *head;
    static const tm::TxnAttr popAttr{"priv:pop", tm::TxnKind::Atomic,
                                     false};
    static const tm::TxnAttr scanAttr{"priv:scan", tm::TxnKind::Atomic,
                                      false};

    constexpr int nodes = 2000;
    head = nullptr;
    for (int i = 0; i < nodes; ++i) {
        Node *n = new Node{static_cast<std::uint64_t>(i), head};
        head = n;
    }

    std::atomic<bool> bad{false};
    std::atomic<bool> done{false};
    std::thread scanner([&] {
        // Repeatedly walks the list transactionally; must never touch
        // a freed node (crash/UB under ASan) nor see a torn value.
        while (!done.load()) {
            tm::run(scanAttr, [&](tm::TxDesc &tx) {
                Node *cur = tm::txLoad(tx, &head);
                int steps = 0;
                while (cur != nullptr && steps < 64) {
                    const std::uint64_t val = tm::txLoad(tx, &cur->value);
                    if (val >= nodes)
                        bad = true;
                    cur = tm::txLoad(tx, &cur->next);
                    ++steps;
                }
            });
        }
    });
    std::thread popper([&] {
        for (int i = 0; i < nodes; ++i) {
            Node *mine = tm::run(popAttr, [&](tm::TxDesc &tx) -> Node * {
                Node *h = tm::txLoad(tx, &head);
                if (h == nullptr)
                    return nullptr;
                tm::txStore<Node *>(tx, &head,
                                    tm::txLoad(tx, &h->next));
                return h;
            });
            if (mine == nullptr)
                break;
            // Privatized: plain access, then reclamation.
            mine->value = ~0ull;
            delete mine;
        }
        done = true;
    });
    popper.join();
    scanner.join();
    EXPECT_FALSE(bad.load());
    EXPECT_EQ(head, nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, PrivatizationTest,
    ::testing::Values(tm::AlgoKind::GccEager, tm::AlgoKind::Lazy,
                      tm::AlgoKind::NOrec, tm::AlgoKind::RA),
    [](const ::testing::TestParamInfo<tm::AlgoKind> &info) {
        return tmemc::tests::algoName(info.param);
    });

} // namespace
