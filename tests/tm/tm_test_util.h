/**
 * @file
 * Shared helpers for the TM test suites: runtime (re)configuration and
 * the algorithm/CM parameter space for parameterized tests.
 */

#ifndef TMEMC_TESTS_TM_TEST_UTIL_H
#define TMEMC_TESTS_TM_TEST_UTIL_H

#include <string>
#include <tuple>

#include "tm/api.h"

namespace tmemc::tests
{

/** Configure the global runtime for a test case. */
inline void
useRuntime(tm::AlgoKind algo, tm::CmKind cm = tm::CmKind::SerialAfterN,
           bool serial_lock = true)
{
    tm::RuntimeCfg cfg;
    cfg.algo = algo;
    cfg.cm = cm;
    cfg.useSerialLock = serial_lock;
    tm::Runtime::get().configure(cfg);
    tm::Runtime::get().resetStats();
}

/** Pretty-printer for parameterized test names. */
inline std::string
algoName(tm::AlgoKind a)
{
    switch (a) {
      case tm::AlgoKind::GccEager:
        return "GccEager";
      case tm::AlgoKind::Lazy:
        return "Lazy";
      case tm::AlgoKind::NOrec:
        return "NOrec";
      case tm::AlgoKind::Serial:
        return "Serial";
      case tm::AlgoKind::RA:
        return "RA";
    }
    return "?";
}

inline std::string
cmName(tm::CmKind c)
{
    switch (c) {
      case tm::CmKind::SerialAfterN:
        return "SerialAfterN";
      case tm::CmKind::NoCM:
        return "NoCM";
      case tm::CmKind::Backoff:
        return "Backoff";
      case tm::CmKind::Hourglass:
        return "Hourglass";
    }
    return "?";
}

} // namespace tmemc::tests

#endif // TMEMC_TESTS_TM_TEST_UTIL_H
