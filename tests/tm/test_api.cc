/**
 * @file
 * Unit tests for the public TM API: transaction execution, return
 * values, nesting, typed and byte-granular access, handlers, and
 * transactional allocation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "tm/api.h"
#include "tm_test_util.h"

namespace
{

using namespace tmemc;
using tmemc::tests::useRuntime;

const tm::TxnAttr atomicAttr{"test:atomic", tm::TxnKind::Atomic, false};
const tm::TxnAttr relaxedAttr{"test:relaxed", tm::TxnKind::Relaxed, false};

class ApiTest : public ::testing::Test
{
  protected:
    void SetUp() override { useRuntime(tm::AlgoKind::GccEager); }
};

TEST_F(ApiTest, EmptyTransactionCommits)
{
    tm::run(atomicAttr, [](tm::TxDesc &) {});
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.commits, 1u);
    EXPECT_EQ(snap.total.txns, 1u);
    EXPECT_EQ(snap.total.aborts, 0u);
}

TEST_F(ApiTest, TransactionExpressionReturnsValue)
{
    static std::uint64_t cell = 41;
    const std::uint64_t got = tm::run(atomicAttr, [](tm::TxDesc &tx) {
        return tm::txLoad(tx, &cell) + 1;
    });
    EXPECT_EQ(got, 42u);
}

TEST_F(ApiTest, StoreIsVisibleAfterCommit)
{
    static std::uint64_t cell = 0;
    cell = 0;
    tm::run(atomicAttr,
            [](tm::TxDesc &tx) { tm::txStore<std::uint64_t>(tx, &cell, 7); });
    EXPECT_EQ(cell, 7u);
}

TEST_F(ApiTest, ReadAfterWriteSeesOwnWrite)
{
    static std::uint64_t cell = 1;
    cell = 1;
    const std::uint64_t got = tm::run(atomicAttr, [](tm::TxDesc &tx) {
        tm::txStore<std::uint64_t>(tx, &cell, 99);
        return tm::txLoad(tx, &cell);
    });
    EXPECT_EQ(got, 99u);
}

TEST_F(ApiTest, SubWordTypesRoundTrip)
{
    static struct
    {
        std::uint8_t b;
        std::uint16_t h;
        std::uint32_t w;
        std::int64_t d;
    } cells{};
    tm::run(atomicAttr, [](tm::TxDesc &tx) {
        tm::txStore<std::uint8_t>(tx, &cells.b, 0xab);
        tm::txStore<std::uint16_t>(tx, &cells.h, 0xcdef);
        tm::txStore<std::uint32_t>(tx, &cells.w, 0xdeadbeef);
        tm::txStore<std::int64_t>(tx, &cells.d, -12345678901234ll);
    });
    EXPECT_EQ(cells.b, 0xab);
    EXPECT_EQ(cells.h, 0xcdef);
    EXPECT_EQ(cells.w, 0xdeadbeefu);
    EXPECT_EQ(cells.d, -12345678901234ll);
    const auto got = tm::run(atomicAttr, [](tm::TxDesc &tx) {
        return std::tuple{tm::txLoad(tx, &cells.b), tm::txLoad(tx, &cells.h),
                          tm::txLoad(tx, &cells.w), tm::txLoad(tx, &cells.d)};
    });
    EXPECT_EQ(std::get<0>(got), 0xab);
    EXPECT_EQ(std::get<1>(got), 0xcdef);
    EXPECT_EQ(std::get<2>(got), 0xdeadbeefu);
    EXPECT_EQ(std::get<3>(got), -12345678901234ll);
}

TEST_F(ApiTest, UnalignedByteRangesRoundTrip)
{
    static char buf[64];
    std::memset(buf, 0, sizeof(buf));
    const char msg[] = "straddles word boundaries";
    tm::run(atomicAttr, [&](tm::TxDesc &tx) {
        tm::txStoreBytes(tx, buf + 3, msg, sizeof(msg));
    });
    EXPECT_STREQ(buf + 3, msg);
    char out[sizeof(msg)];
    tm::run(atomicAttr, [&](tm::TxDesc &tx) {
        tm::txLoadBytes(tx, out, buf + 3, sizeof(msg));
    });
    EXPECT_STREQ(out, msg);
}

TEST_F(ApiTest, NestedTransactionsFlatten)
{
    static std::uint64_t cell = 0;
    cell = 0;
    tm::run(atomicAttr, [](tm::TxDesc &tx) {
        tm::txStore<std::uint64_t>(tx, &cell, 1);
        tm::run(atomicAttr, [](tm::TxDesc &inner) {
            tm::txStore<std::uint64_t>(inner, &cell, 2);
        });
        EXPECT_EQ(tm::txLoad(tx, &cell), 2u);
    });
    EXPECT_EQ(cell, 2u);
    // A flattened nest counts as one top-level transaction.
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.total.txns, 1u);
    EXPECT_EQ(snap.total.commits, 1u);
}

TEST_F(ApiTest, InTransactionReflectsState)
{
    EXPECT_FALSE(tm::inTransaction());
    tm::run(atomicAttr,
            [](tm::TxDesc &) { EXPECT_TRUE(tm::inTransaction()); });
    EXPECT_FALSE(tm::inTransaction());
}

TEST_F(ApiTest, OnCommitRunsAfterCommit)
{
    static std::uint64_t cell = 0;
    cell = 0;
    bool ran = false;
    tm::run(atomicAttr, [&](tm::TxDesc &tx) {
        tm::txStore<std::uint64_t>(tx, &cell, 5);
        tm::onCommit(tx, [&] {
            ran = true;
            // Handler runs after all locks are released; memory holds
            // the committed value.
            EXPECT_EQ(cell, 5u);
            EXPECT_FALSE(tm::inTransaction());
        });
        EXPECT_FALSE(ran);
    });
    EXPECT_TRUE(ran);
}

TEST_F(ApiTest, OnCommitOutsideTransactionRunsImmediately)
{
    bool ran = false;
    tm::onCommit(tm::myDesc(), [&] { ran = true; });
    EXPECT_TRUE(ran);
}

TEST_F(ApiTest, UserExceptionCommitsAndPropagates)
{
    static std::uint64_t cell = 0;
    cell = 0;
    EXPECT_THROW(tm::run(atomicAttr,
                         [](tm::TxDesc &tx) {
                             tm::txStore<std::uint64_t>(tx, &cell, 3);
                             throw std::runtime_error("escape");
                         }),
                 std::runtime_error);
    // Commit-on-escape: the write survived.
    EXPECT_EQ(cell, 3u);
}

TEST_F(ApiTest, TxMallocSurvivesCommit)
{
    void *p = tm::run(atomicAttr, [](tm::TxDesc &tx) {
        void *q = tm::txMalloc(tx, 32);
        std::memset(q, 0x5a, 32);
        return q;
    });
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(static_cast<unsigned char *>(p)[31], 0x5a);
    std::free(p);
}

TEST_F(ApiTest, TxFreeDeferredToCommit)
{
    void *p = std::malloc(16);
    static std::uint64_t cell = 0;
    tm::run(atomicAttr, [&](tm::TxDesc &tx) {
        tm::txFree(tx, p);
        // The buffer must still be readable inside the transaction.
        tm::txStore<std::uint64_t>(tx, &cell, 1);
    });
    SUCCEED();  // No double free / use-after-free under ASan runs.
}

TEST_F(ApiTest, TmVarGetSet)
{
    static tm::TmVar<std::uint64_t> v{11};
    const auto got = tm::run(atomicAttr, [](tm::TxDesc &tx) {
        v.set(tx, v.get(tx) * 2);
        return v.get(tx);
    });
    EXPECT_EQ(got, 22u);
    EXPECT_EQ(v.rawGet(), 22u);
}

TEST_F(ApiTest, PerSiteProfileTracksSites)
{
    static const tm::TxnAttr siteA{"site:a", tm::TxnKind::Atomic, false};
    static const tm::TxnAttr siteB{"site:b", tm::TxnKind::Atomic, false};
    for (int i = 0; i < 3; ++i)
        tm::run(siteA, [](tm::TxDesc &) {});
    tm::run(siteB, [](tm::TxDesc &) {});
    const auto snap = tm::Runtime::get().snapshot();
    EXPECT_EQ(snap.perSite.at(&siteA).commits, 3u);
    EXPECT_EQ(snap.perSite.at(&siteB).commits, 1u);
    const std::string profile = snap.formatProfile();
    EXPECT_NE(profile.find("site:a"), std::string::npos);
    EXPECT_NE(profile.find("site:b"), std::string::npos);
}

} // namespace
