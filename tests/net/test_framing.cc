/**
 * @file
 * Streaming-framing unit tests: the request scanners that let both
 * protocols parse from a connection buffer that may hold a partial
 * request, several pipelined requests, or garbage.
 */

#include <gtest/gtest.h>

#include "mc/binary_protocol.h"
#include "mc/protocol.h"
#include "net/client.h"

namespace
{

using namespace tmemc;
using mc::FrameStatus;

// ----------------------------------------------------------------------
// ASCII request framing
// ----------------------------------------------------------------------

TEST(AsciiFraming, SimpleCommandIsOneLine)
{
    const std::string req = "get somekey\r\n";
    const auto r = mc::protocolTryFrame(req.data(), req.size());
    EXPECT_EQ(r.status, FrameStatus::Ready);
    EXPECT_EQ(r.frameLen, req.size());
}

TEST(AsciiFraming, PrefixNeedsMore)
{
    const std::string req = "get somek";
    const auto r = mc::protocolTryFrame(req.data(), req.size());
    EXPECT_EQ(r.status, FrameStatus::NeedMore);
}

TEST(AsciiFraming, EveryPrefixOfStorageCommandNeedsMore)
{
    const std::string req = "set k 0 0 5\r\nhello\r\n";
    for (std::size_t n = 0; n < req.size(); ++n) {
        const auto r = mc::protocolTryFrame(req.data(), n);
        EXPECT_EQ(r.status, FrameStatus::NeedMore)
            << "prefix length " << n;
    }
    const auto full = mc::protocolTryFrame(req.data(), req.size());
    EXPECT_EQ(full.status, FrameStatus::Ready);
    EXPECT_EQ(full.frameLen, req.size());
}

TEST(AsciiFraming, StorageFrameSpansBody)
{
    // The byte count governs the frame even when the body contains
    // \r\n sequences.
    const std::string req = "set k 0 0 4\r\n\r\n\r\n\r\n";
    const auto r = mc::protocolTryFrame(req.data(), req.size());
    EXPECT_EQ(r.status, FrameStatus::Ready);
    EXPECT_EQ(r.frameLen, req.size());
}

TEST(AsciiFraming, PipelinedRequestsFrameOneAtATime)
{
    const std::string a = "set k 0 0 3\r\nabc\r\n";
    const std::string b = "get k\r\n";
    const std::string buf = a + b;
    const auto r1 = mc::protocolTryFrame(buf.data(), buf.size());
    ASSERT_EQ(r1.status, FrameStatus::Ready);
    EXPECT_EQ(r1.frameLen, a.size());
    const auto r2 = mc::protocolTryFrame(buf.data() + a.size(),
                                         buf.size() - a.size());
    ASSERT_EQ(r2.status, FrameStatus::Ready);
    EXPECT_EQ(r2.frameLen, b.size());
}

TEST(AsciiFraming, OversizedCommandLineIsError)
{
    // A "get" whose key pushes the line past the ceiling: unframeable.
    std::string req = "get " + std::string(mc::kMaxCommandLine, 'k');
    const auto r = mc::protocolTryFrame(req.data(), req.size());
    EXPECT_EQ(r.status, FrameStatus::Error);
    ASSERT_NE(r.error, nullptr);
    EXPECT_NE(std::string(r.error).find("CLIENT_ERROR"),
              std::string::npos);
}

TEST(AsciiFraming, OversizedBodyIsError)
{
    const std::string req = "set k 0 0 999999999\r\n";
    const auto r = mc::protocolTryFrame(req.data(), req.size());
    EXPECT_EQ(r.status, FrameStatus::Error);
}

TEST(AsciiFraming, MalformedStorageLineFramesAsLine)
{
    // Missing <bytes>: frame the line alone so the executor can
    // answer ERROR instead of the connection wedging forever.
    const std::string req = "set k 0\r\n";
    const auto r = mc::protocolTryFrame(req.data(), req.size());
    EXPECT_EQ(r.status, FrameStatus::Ready);
    EXPECT_EQ(r.frameLen, req.size());
}

TEST(AsciiFraming, BareNewlineTerminatedLineFrames)
{
    const std::string req = "version\n";
    const auto r = mc::protocolTryFrame(req.data(), req.size());
    EXPECT_EQ(r.status, FrameStatus::Ready);
    EXPECT_EQ(r.frameLen, req.size());
}

// ----------------------------------------------------------------------
// Binary request framing
// ----------------------------------------------------------------------

TEST(BinaryFraming, EveryPrefixNeedsMore)
{
    const std::string frame = mc::binSetRequest("key", "value");
    for (std::size_t n = 1; n < frame.size(); ++n) {
        const auto r = mc::binaryTryFrame(
            reinterpret_cast<const std::uint8_t *>(frame.data()), n);
        EXPECT_EQ(r.status, FrameStatus::NeedMore)
            << "prefix length " << n;
    }
    const auto full = mc::binaryTryFrame(
        reinterpret_cast<const std::uint8_t *>(frame.data()),
        frame.size());
    ASSERT_EQ(full.status, FrameStatus::Ready);
    EXPECT_EQ(full.frameLen, frame.size());
}

TEST(BinaryFraming, PipelinedFrames)
{
    const std::string a = mc::binSetRequest("k1", "v1");
    const std::string b = mc::binRequest(mc::BinOp::Get, "k1");
    const std::string buf = a + b;
    const auto r1 = mc::binaryTryFrame(
        reinterpret_cast<const std::uint8_t *>(buf.data()), buf.size());
    ASSERT_EQ(r1.status, FrameStatus::Ready);
    EXPECT_EQ(r1.frameLen, a.size());
}

TEST(BinaryFraming, BadMagicIsError)
{
    const std::uint8_t junk[4] = {0x7f, 0x00, 0x00, 0x00};
    const auto r = mc::binaryTryFrame(junk, sizeof(junk));
    EXPECT_EQ(r.status, FrameStatus::Error);
}

TEST(BinaryFraming, OversizedKeyIsError)
{
    const std::string frame = mc::binRequest(
        mc::BinOp::Get, std::string(mc::kBinMaxKeyBytes + 1, 'k'));
    const auto r = mc::binaryTryFrame(
        reinterpret_cast<const std::uint8_t *>(frame.data()),
        frame.size());
    EXPECT_EQ(r.status, FrameStatus::Error);
}

TEST(BinaryFraming, LyingLengthFieldsAreError)
{
    // keyLength > bodyLength: impossible frame.
    mc::BinHeader h;
    h.magic = static_cast<std::uint8_t>(mc::BinMagic::Request);
    h.opcode = static_cast<std::uint8_t>(mc::BinOp::Get);
    h.keyLength = 10;
    h.bodyLength = 4;
    std::uint8_t wire[mc::kBinHeaderSize];
    mc::binEncodeHeader(h, wire);
    const auto r = mc::binaryTryFrame(wire, sizeof(wire));
    EXPECT_EQ(r.status, FrameStatus::Error);
}

TEST(BinaryFraming, HugeBodyIsError)
{
    mc::BinHeader h;
    h.magic = static_cast<std::uint8_t>(mc::BinMagic::Request);
    h.opcode = static_cast<std::uint8_t>(mc::BinOp::Set);
    h.bodyLength = 0x40000000;  // 1 GiB claim.
    std::uint8_t wire[mc::kBinHeaderSize];
    mc::binEncodeHeader(h, wire);
    const auto r = mc::binaryTryFrame(wire, sizeof(wire));
    EXPECT_EQ(r.status, FrameStatus::Error);
}

// ----------------------------------------------------------------------
// ASCII response framing (client side)
// ----------------------------------------------------------------------

TEST(AsciiResponseFraming, SingleLine)
{
    const std::string rep = "STORED\r\n";
    const auto r = net::asciiResponseTryFrame(rep.data(), rep.size());
    ASSERT_EQ(r.status, FrameStatus::Ready);
    EXPECT_EQ(r.frameLen, rep.size());
}

TEST(AsciiResponseFraming, ValueBlockAndMiss)
{
    const std::string hit = "VALUE k 0 5\r\nhello\r\nEND\r\n";
    for (std::size_t n = 0; n < hit.size(); ++n) {
        EXPECT_EQ(net::asciiResponseTryFrame(hit.data(), n).status,
                  FrameStatus::NeedMore)
            << "prefix length " << n;
    }
    const auto r = net::asciiResponseTryFrame(hit.data(), hit.size());
    ASSERT_EQ(r.status, FrameStatus::Ready);
    EXPECT_EQ(r.frameLen, hit.size());

    const std::string miss = "END\r\n";
    const auto m = net::asciiResponseTryFrame(miss.data(), miss.size());
    ASSERT_EQ(m.status, FrameStatus::Ready);
    EXPECT_EQ(m.frameLen, miss.size());
}

TEST(AsciiResponseFraming, StatsBlock)
{
    const std::string rep =
        "STAT curr_items 1\r\nSTAT total_items 2\r\nEND\r\n";
    const auto r = net::asciiResponseTryFrame(rep.data(), rep.size());
    ASSERT_EQ(r.status, FrameStatus::Ready);
    EXPECT_EQ(r.frameLen, rep.size());
}

} // namespace
