/**
 * @file
 * The I/O backend matrix (io_backend.h): every backend serves the
 * same bytes, io_uring degrades gracefully where the kernel refuses
 * it, and the zero-copy gather path obeys the same backpressure caps
 * and fault-injection invariants as the seed copy path.
 *
 * Branch is IP-onCommit throughout: its item strategy supports pinned
 * gets (CacheCore::pinnedGetSupported()), so the writev/io_uring
 * backends actually ship GET hits zero-copy — the IT-* branches fall
 * back to the copy path and would test nothing new.
 *
 * Tests named *Chaos* run fault schedules on the net.sys.writev site;
 * the CMake registration exposes them under `ctest -L chaos` too.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "mc/binary_protocol.h"
#include "mc/cache_iface.h"
#include "mc/protocol.h"
#include "mc/reply.h"
#include "net/client.h"
#include "net/io_backend.h"
#include "net/server.h"
#include "tm/runtime.h"

namespace
{

using namespace tmemc;

// ----------------------------------------------------------------------
// Flag plumbing
// ----------------------------------------------------------------------

TEST(IoBackendFlag, ParseAcceptsCanonicalNamesAndAliases)
{
    net::IoBackend b = net::IoBackend::Epoll;
    EXPECT_TRUE(net::parseIoBackend("epoll", b));
    EXPECT_EQ(b, net::IoBackend::Epoll);
    EXPECT_TRUE(net::parseIoBackend("writev", b));
    EXPECT_EQ(b, net::IoBackend::Writev);
    EXPECT_TRUE(net::parseIoBackend("io_uring", b));
    EXPECT_EQ(b, net::IoBackend::IoUring);
    EXPECT_TRUE(net::parseIoBackend("uring", b));
    EXPECT_EQ(b, net::IoBackend::IoUring);
    EXPECT_TRUE(net::parseIoBackend("io-uring", b));
    EXPECT_EQ(b, net::IoBackend::IoUring);

    b = net::IoBackend::Writev;
    EXPECT_FALSE(net::parseIoBackend("kqueue", b));
    EXPECT_EQ(b, net::IoBackend::Writev);  // Untouched on failure.

    EXPECT_STREQ(net::ioBackendName(net::IoBackend::Epoll), "epoll");
    EXPECT_STREQ(net::ioBackendName(net::IoBackend::Writev), "writev");
    EXPECT_STREQ(net::ioBackendName(net::IoBackend::IoUring),
                 "io_uring");
}

// ----------------------------------------------------------------------
// The zero-copy executor, off the wire
// ----------------------------------------------------------------------

TEST(PinnedExecute, AsciiGetHitRidesAsPinnedSegment)
{
    tm::Runtime::get().configure(tm::RuntimeCfg{});
    mc::Settings settings;
    settings.maxBytes = 16 * 1024 * 1024;
    auto cache = mc::makeCache("IP-onCommit", settings, 1);
    ASSERT_NE(cache, nullptr);
    ASSERT_TRUE(cache->pinnedGetSupported());

    ASSERT_EQ(mc::protocolExecute(*cache, 0, "set pk 0 0 5\r\nhello\r\n"),
              "STORED\r\n");

    mc::Reply out;
    ASSERT_TRUE(
        mc::protocolExecutePinned(*cache, 0, "get pk\r\n", out));
    EXPECT_TRUE(out.hasPinned());
    EXPECT_EQ(out.str(), "VALUE pk 0 5\r\nhello\r\nEND\r\n");

    // Misses produce no pinned segment; mutations refuse the pinned
    // path outright (the caller falls back to protocolExecute).
    mc::Reply miss;
    ASSERT_TRUE(
        mc::protocolExecutePinned(*cache, 0, "get nope\r\n", miss));
    EXPECT_FALSE(miss.hasPinned());
    EXPECT_EQ(miss.str(), "END\r\n");

    mc::Reply set;
    EXPECT_FALSE(mc::protocolExecutePinned(*cache, 0,
                                           "set pk 0 0 1\r\nx\r\n",
                                           set));
    EXPECT_EQ(set.bytes(), 0u);
}

// ----------------------------------------------------------------------
// Backend matrix fixture
// ----------------------------------------------------------------------

class IoBackendTest : public ::testing::TestWithParam<net::IoBackend>
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        mc::Settings settings;
        settings.maxBytes = 16 * 1024 * 1024;
        cache_ = mc::makeCache("IP-onCommit", settings, kWorkers);
        ASSERT_NE(cache_, nullptr);
        ASSERT_TRUE(cache_->pinnedGetSupported());
    }

    void
    TearDown() override
    {
        fault::disarmAll();
        if (server_ != nullptr)
            server_->stop();
    }

    void
    startServer(net::ServerCfg cfg)
    {
        cfg.port = 0;
        cfg.workers = kWorkers;
        cfg.ioBackend = GetParam();
        server_ = std::make_unique<net::Server>(*cache_, cfg);
        ASSERT_TRUE(server_->start());
    }

    net::Client
    makeClient()
    {
        net::Client c;
        EXPECT_TRUE(c.connect("127.0.0.1", server_->port(), 5000));
        c.setRecvTimeout(10000);
        return c;
    }

    static constexpr std::uint32_t kWorkers = 2;
    std::unique_ptr<mc::CacheIface> cache_;
    std::unique_ptr<net::Server> server_;
};

TEST_P(IoBackendTest, RoundTripsAreByteIdenticalAcrossBackends)
{
    startServer(net::ServerCfg{});
    // A requested io_uring may legitimately degrade to writev; it must
    // never fail to start or fall all the way back to the copy path.
    if (GetParam() == net::IoBackend::IoUring) {
        EXPECT_NE(server_->ioBackend(), net::IoBackend::Epoll);
    } else {
        EXPECT_EQ(server_->ioBackend(), GetParam());
    }

    net::Client c = makeClient();
    for (int i = 0; i < 20; ++i) {
        const std::string k = "k" + std::to_string(i);
        const std::string v = "value-" + std::to_string(i);
        ASSERT_EQ(c.roundTripAscii("set " + k + " 0 0 " +
                                   std::to_string(v.size()) + "\r\n" +
                                   v + "\r\n"),
                  "STORED\r\n");
        ASSERT_EQ(c.roundTripAscii("get " + k + "\r\n"),
                  "VALUE " + k + " 0 " + std::to_string(v.size()) +
                      "\r\n" + v + "\r\nEND\r\n");
    }

    // Multi-key get with an interior miss: hit, miss, hit.
    EXPECT_EQ(c.roundTripAscii("get k1 missing k2\r\n"),
              "VALUE k1 0 7\r\nvalue-1\r\nVALUE k2 0 7\r\nvalue-2"
              "\r\nEND\r\n");

    // gets carries the CAS id on the pinned path too.
    const std::string gets = c.roundTripAscii("gets k1\r\n");
    EXPECT_EQ(gets.compare(0, 13, "VALUE k1 0 7 "), 0) << gets;

    // Binary protocol on the same connection (copy path everywhere).
    const std::string wire =
        c.roundTripBinary(mc::binSetRequest("bk", "bv"));
    mc::BinResponse r;
    ASSERT_GT(mc::binParseResponse(wire, r), 0u);
    EXPECT_EQ(r.status, mc::BinStatus::Ok);

    // The effective backend is visible over the wire.
    const std::string stats = c.roundTripAscii("stats\r\n");
    const std::string want =
        std::string("STAT io_backend ") +
        net::ioBackendName(server_->ioBackend()) + "\r\n";
    EXPECT_NE(stats.find(want), std::string::npos) << stats;
}

TEST_P(IoBackendTest, PipelinedBurstKeepsOrder)
{
    startServer(net::ServerCfg{});
    net::Client c = makeClient();
    const std::string v(600, 'p');
    ASSERT_EQ(c.roundTripAscii("set pipe 0 0 " +
                               std::to_string(v.size()) + "\r\n" + v +
                               "\r\n"),
              "STORED\r\n");
    constexpr int kN = 200;
    std::string batch;
    for (int i = 0; i < kN; ++i)
        batch += "get pipe\r\n";
    ASSERT_TRUE(c.sendAll(batch));
    for (int i = 0; i < kN; ++i) {
        std::string reply;
        ASSERT_TRUE(c.recvAscii(reply)) << "reply " << i;
        ASSERT_EQ(reply, "VALUE pipe 0 " + std::to_string(v.size()) +
                             "\r\n" + v + "\r\nEND\r\n")
            << "reply " << i;
    }
}

TEST_P(IoBackendTest, SlowReaderHitsBackpressureOnPinnedBytes)
{
    // Satellite-4 regression: pendingWrite() must count pinned bytes.
    // The reply to one 8 KiB GET is almost entirely pinned payload —
    // if only owned bytes counted, the backlog would register ~30
    // bytes and the hard cap could never fire on the zero-copy path.
    net::ServerCfg cfg;
    cfg.limits.wbufSoftCap = 2 * 1024;
    cfg.limits.wbufHardCap = 4 * 1024;
    startServer(cfg);

    // Stall whichever write path this backend uses, so replies can
    // only accumulate against the caps.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.errnoValue = EAGAIN;
    fault::ScopedFault sfv("net.sys.writev", p);
    fault::ScopedFault sfw("net.write", p);

    net::Client c = makeClient();
    const std::string big(8 * 1024, 'B');
    ASSERT_TRUE(c.sendAll("set big 0 0 " + std::to_string(big.size()) +
                          "\r\n" + big + "\r\nget big\r\n"));
    std::string reply;
    EXPECT_FALSE(c.recvAscii(reply));  // Connection was cut.
    bool closed = false;
    for (int i = 0; i < 400 && !closed; ++i) {
        closed = server_->netStats().backpressureCloses >= 1;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(closed);

    // The shed is per-connection; with the stall lifted the server
    // serves the same item intact.
    fault::disarmAll();
    net::Client fresh = makeClient();
    EXPECT_EQ(fresh.roundTripAscii("get big\r\n"),
              "VALUE big 0 " + std::to_string(big.size()) + "\r\n" +
                  big + "\r\nEND\r\n");
}

// ----------------------------------------------------------------------
// drain() vs. in-flight pinned segments
// ----------------------------------------------------------------------

/**
 * Forwarding cache that counts pin acquire/release pairs. getPinned
 * rewrites PinnedValue::owner to this wrapper, so every release the
 * server performs — normal send completion, backpressure shed, or
 * connection teardown during drain()/stop() — routes through
 * releasePinned() here before reaching the real cache.
 */
class PinCountingCache : public mc::CacheIface
{
  public:
    explicit PinCountingCache(mc::CacheIface &inner) : inner_(inner) {}

    std::uint64_t acquired() const { return acquired_.load(); }
    std::uint64_t released() const { return released_.load(); }

    const char *branchName() const override
    {
        return inner_.branchName();
    }
    const mc::BranchCfg &branchCfg() const override
    {
        return inner_.branchCfg();
    }
    GetResult
    get(std::uint32_t tid, const char *key, std::size_t nkey, char *out,
        std::size_t out_cap) override
    {
        return inner_.get(tid, key, nkey, out, out_cap);
    }
    bool pinnedGetSupported() const override
    {
        return inner_.pinnedGetSupported();
    }
    PinnedValue
    getPinned(std::uint32_t tid, const char *key,
              std::size_t nkey) override
    {
        PinnedValue v = inner_.getPinned(tid, key, nkey);
        if (v.handle != nullptr) {
            acquired_.fetch_add(1);
            v.owner = this;
        }
        return v;
    }
    void
    releasePinned(std::uint32_t tid, void *handle) override
    {
        released_.fetch_add(1);
        inner_.releasePinned(tid, handle);
    }
    mc::OpStatus
    store(std::uint32_t tid, const char *key, std::size_t nkey,
          const char *val, std::size_t nbytes, mc::StoreMode mode,
          std::uint64_t cas_expected) override
    {
        return inner_.store(tid, key, nkey, val, nbytes, mode,
                            cas_expected);
    }
    mc::OpStatus
    del(std::uint32_t tid, const char *key, std::size_t nkey) override
    {
        return inner_.del(tid, key, nkey);
    }
    mc::OpStatus
    arith(std::uint32_t tid, const char *key, std::size_t nkey,
          std::uint64_t delta, bool incr,
          std::uint64_t &out_value) override
    {
        return inner_.arith(tid, key, nkey, delta, incr, out_value);
    }
    mc::OpStatus
    touch(std::uint32_t tid, const char *key, std::size_t nkey,
          std::int64_t exptime) override
    {
        return inner_.touch(tid, key, nkey, exptime);
    }
    mc::OpStatus
    concat(std::uint32_t tid, const char *key, std::size_t nkey,
           const char *extra, std::size_t nextra, bool append) override
    {
        return inner_.concat(tid, key, nkey, extra, nextra, append);
    }
    std::size_t
    statsText(std::uint32_t tid, char *out, std::size_t cap) override
    {
        return inner_.statsText(tid, out, cap);
    }
    void flushAll(std::uint32_t tid) override { inner_.flushAll(tid); }
    mc::GlobalStats globalStats() override
    {
        return inner_.globalStats();
    }
    mc::ThreadStatsBlock threadStats() override
    {
        return inner_.threadStats();
    }
    std::vector<mc::LockProfileRow> lockProfile() const override
    {
        return inner_.lockProfile();
    }
    std::uint64_t linkedItemCount() override
    {
        return inner_.linkedItemCount();
    }
    std::uint32_t hashPowerNow() override
    {
        return inner_.hashPowerNow();
    }
    void quiesceMaintenance() override { inner_.quiesceMaintenance(); }
    void
    requestRebalance(std::uint32_t src_cls,
                     std::uint32_t dst_cls) override
    {
        inner_.requestRebalance(src_cls, dst_cls);
    }
    std::uint32_t shardCount() const override
    {
        return inner_.shardCount();
    }
    std::uint32_t
    shardOf(const char *key, std::size_t nkey) const override
    {
        return inner_.shardOf(key, nkey);
    }

  private:
    mc::CacheIface &inner_;
    std::atomic<std::uint64_t> acquired_{0};
    std::atomic<std::uint64_t> released_{0};
};

class DrainPinsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        mc::Settings settings;
        settings.maxBytes = 16 * 1024 * 1024;
        inner_ = mc::makeCache("IP-onCommit", settings, 2);
        ASSERT_NE(inner_, nullptr);
        counting_ = std::make_unique<PinCountingCache>(*inner_);
        net::ServerCfg cfg;
        cfg.port = 0;
        cfg.workers = 2;
        cfg.ioBackend = net::IoBackend::Writev;
        server_ = std::make_unique<net::Server>(*counting_, cfg);
        ASSERT_TRUE(server_->start());
    }

    void
    TearDown() override
    {
        fault::disarmAll();
        if (server_ != nullptr)
            server_->stop();
    }

    /** Queue kGets pinned replies server-side by stalling the write
     *  syscalls, then wait until every pin is held. */
    void
    queuePinnedBacklog(net::Client &c)
    {
        const std::string v(2048, 'd');
        ASSERT_EQ(c.roundTripAscii("set dk 0 0 " +
                                   std::to_string(v.size()) + "\r\n" +
                                   v + "\r\n"),
                  "STORED\r\n");
        fault::Policy p;
        p.trigger = fault::Trigger::EveryNth;
        p.n = 1;
        p.errnoValue = EAGAIN;
        fault::arm("net.sys.writev", p);
        fault::arm("net.write", p);
        std::string burst;
        for (int i = 0; i < kGets; ++i)
            burst += "get dk\r\n";
        ASSERT_TRUE(c.sendAll(burst));
        for (int i = 0; i < 1000; ++i) {
            if (counting_->acquired() >= kGets &&
                counting_->released() < counting_->acquired())
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        ASSERT_GE(counting_->acquired(), std::uint64_t{kGets});
        ASSERT_LT(counting_->released(), counting_->acquired());
    }

    static constexpr int kGets = 4;
    std::unique_ptr<mc::CacheIface> inner_;
    std::unique_ptr<PinCountingCache> counting_;
    std::unique_ptr<net::Server> server_;
};

TEST_F(DrainPinsTest, GracefulDrainFlushesAndReleasesEveryPin)
{
    net::Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", server_->port(), 5000));
    c.setRecvTimeout(10000);
    queuePinnedBacklog(c);

    // Lift the stall: drain() must flush the queued pinned segments
    // (8 KiB fits loopback socket buffers without a reader) and drop
    // every reference before returning.
    fault::disarmAll();
    EXPECT_TRUE(server_->drain(5000));
    EXPECT_EQ(counting_->released(), counting_->acquired());

    // The flushed bytes are intact in the client's receive buffer.
    const std::string want =
        "VALUE dk 0 2048\r\n" + std::string(2048, 'd') + "\r\nEND\r\n";
    for (int i = 0; i < kGets; ++i) {
        std::string reply;
        ASSERT_TRUE(c.recvAscii(reply)) << "reply " << i;
        EXPECT_EQ(reply, want) << "reply " << i;
    }
}

TEST_F(DrainPinsTest, DeadlineForcedDrainStillReleasesEveryPin)
{
    net::Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", server_->port(), 5000));
    c.setRecvTimeout(10000);
    queuePinnedBacklog(c);

    // Keep the write path stalled so the backlog can never flush: the
    // deadline forces the remaining connections closed, and teardown
    // must still release every pinned segment it rips out of the
    // queues — a leaked reference here would pin slab memory forever.
    (void)server_->drain(300);
    EXPECT_EQ(counting_->released(), counting_->acquired());
    EXPECT_GE(counting_->acquired(), std::uint64_t{kGets});
}

// ----------------------------------------------------------------------
// Fault schedules on the gather-write syscall (chaos suite members)
// ----------------------------------------------------------------------

TEST_P(IoBackendTest, ChaosShortWritevStitchesReplies)
{
    startServer(net::ServerCfg{});
    // Every gather write is truncated to 7 bytes: headers, pinned
    // payloads, and trailers all leave in ragged fragments that may
    // split a segment mid-iovec. Replies must still be byte-perfect.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.byteCap = 7;
    fault::ScopedFault sfv("net.sys.writev", p);
    fault::ScopedFault sfw("net.write", p);

    net::Client c = makeClient();
    for (int i = 0; i < 30; ++i) {
        const std::string k = "sw" + std::to_string(i);
        const std::string v = "payload-" + std::to_string(i);
        ASSERT_EQ(c.roundTripAscii("set " + k + " 0 0 " +
                                   std::to_string(v.size()) + "\r\n" +
                                   v + "\r\n"),
                  "STORED\r\n");
        ASSERT_EQ(c.roundTripAscii("get " + k + "\r\n"),
                  "VALUE " + k + " 0 " + std::to_string(v.size()) +
                      "\r\n" + v + "\r\nEND\r\n");
    }
    if (GetParam() != net::IoBackend::Epoll)
        EXPECT_GT(sfv.firedCount(), 0u);
}

TEST_P(IoBackendTest, ChaosWritevEagainRetriesWithoutCorruption)
{
    startServer(net::ServerCfg{});
    // Half of all gather writes spuriously report EAGAIN; the flush
    // must wait for EPOLLOUT and resume exactly where it left off.
    fault::Policy p;
    p.trigger = fault::Trigger::Probability;
    p.probability = 0.5;
    p.seed = 424242;
    p.errnoValue = EAGAIN;
    fault::ScopedFault sfv("net.sys.writev", p);
    fault::ScopedFault sfw("net.write", p);

    net::Client c = makeClient();
    const std::string v(2048, 'e');
    ASSERT_EQ(c.roundTripAscii("set ek 0 0 " +
                               std::to_string(v.size()) + "\r\n" + v +
                               "\r\n"),
              "STORED\r\n");
    for (int i = 0; i < 40; ++i) {
        ASSERT_EQ(c.roundTripAscii("get ek\r\n"),
                  "VALUE ek 0 " + std::to_string(v.size()) + "\r\n" +
                      v + "\r\nEND\r\n")
            << "round " << i;
    }
}

TEST_P(IoBackendTest, ChaosEvictionPressureNeverTearsPinnedReplies)
{
    // A tiny cache under a write storm: items the reader just pinned
    // are prime eviction candidates. The refcount must keep every
    // pinned chunk's bytes alive until the kernel accepted them —
    // acknowledged VALUE replies must match what was stored, always.
    mc::Settings settings;
    settings.maxBytes = 2 * 1024 * 1024;
    cache_ = mc::makeCache("IP-onCommit", settings, kWorkers);
    ASSERT_NE(cache_, nullptr);
    startServer(net::ServerCfg{});

    // Ragged flushes widen the queued-pin window the storm races.
    fault::Policy p;
    p.trigger = fault::Trigger::Probability;
    p.probability = 0.5;
    p.seed = 777;
    p.byteCap = 512;
    fault::ScopedFault sfv("net.sys.writev", p);
    fault::ScopedFault sfw("net.write", p);

    auto valueFor = [](int i) {
        std::string v;
        while (v.size() < 8 * 1024)
            v += "v" + std::to_string(i) + "-";
        return v;
    };

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread writer([&] {
        net::Client w = makeClient();
        for (int i = 0; !stop.load(); ++i) {
            const std::string v = valueFor(i);
            const std::string r = w.roundTripAscii(
                "set wk" + std::to_string(i) + " 0 0 " +
                std::to_string(v.size()) + "\r\n" + v + "\r\n");
            if (r != "STORED\r\n" &&
                r.compare(0, 12, "SERVER_ERROR") != 0) {
                torn.fetch_add(1);
                break;
            }
        }
    });

    {
        net::Client r = makeClient();
        for (int round = 0; round < 120; ++round) {
            const int id = round % 8;
            const std::string k = "rk" + std::to_string(id);
            const std::string v = valueFor(1000 + id);
            ASSERT_EQ(r.roundTripAscii(
                          "set " + k + " 0 0 " +
                          std::to_string(v.size()) + "\r\n" + v +
                          "\r\n"),
                      "STORED\r\n")
                << "round " << round;
            const std::string got =
                r.roundTripAscii("get " + k + "\r\n");
            // Eviction may win the race (END); a hit must be intact.
            ASSERT_TRUE(got == "VALUE " + k + " 0 " +
                                   std::to_string(v.size()) + "\r\n" +
                                   v + "\r\nEND\r\n" ||
                        got == "END\r\n")
                << "round " << round << " torn reply ("
                << got.size() << " bytes)";
        }
    }
    stop.store(true);
    writer.join();
    EXPECT_EQ(torn.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, IoBackendTest,
                         ::testing::Values(net::IoBackend::Epoll,
                                           net::IoBackend::Writev,
                                           net::IoBackend::IoUring),
                         [](const auto &info) {
                             switch (info.param) {
                             case net::IoBackend::Epoll:
                                 return "Epoll";
                             case net::IoBackend::Writev:
                                 return "Writev";
                             case net::IoBackend::IoUring:
                                 return "IoUring";
                             default:
                                 return "Other";
                             }
                         });

} // namespace
