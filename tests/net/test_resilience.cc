/**
 * @file
 * Overload-resilience tests: each shedding mechanism — idle reaping,
 * the connection limit, write-buffer backpressure, graceful drain —
 * has a dedicated test, and each leaves its mark in a counter that is
 * also reachable over the wire through the ASCII `stats` command.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/fault.h"
#include "mc/cache_iface.h"
#include "net/client.h"
#include "net/server.h"
#include "tm/runtime.h"

namespace
{

using namespace tmemc;

/** Like the server fixture, but each test picks its own ServerCfg. */
class ResilienceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        mc::Settings settings;
        settings.maxBytes = 16 * 1024 * 1024;
        cache_ = mc::makeCache("IT-onCommit", settings, kWorkers);
        ASSERT_NE(cache_, nullptr);
    }

    void
    TearDown() override
    {
        fault::disarmAll();
        if (server_ != nullptr)
            server_->stop();
    }

    void
    startServer(net::ServerCfg cfg)
    {
        cfg.port = 0;
        cfg.workers = kWorkers;
        server_ = std::make_unique<net::Server>(*cache_, cfg);
        ASSERT_TRUE(server_->start());
    }

    net::Client
    makeClient()
    {
        net::Client c;
        EXPECT_TRUE(c.connect("127.0.0.1", server_->port(), 5000));
        c.setRecvTimeout(10000);
        return c;
    }

    /** Poll until @p pred or ~2s; resilience events are async. */
    template <typename Pred>
    static bool
    eventually(Pred pred)
    {
        for (int i = 0; i < 400; ++i) {
            if (pred())
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        return pred();
    }

    static constexpr std::uint32_t kWorkers = 2;
    std::unique_ptr<mc::CacheIface> cache_;
    std::unique_ptr<net::Server> server_;
};

// ----------------------------------------------------------------------
// Idle timeout
// ----------------------------------------------------------------------

TEST_F(ResilienceTest, IdleConnectionsAreReaped)
{
    net::ServerCfg cfg;
    cfg.idleTimeoutMs = 100;
    startServer(cfg);

    net::Client c = makeClient();
    ASSERT_EQ(c.roundTripAscii("set idle 0 0 2\r\nok\r\n"), "STORED\r\n");

    // Go quiet past the deadline: the reaper must close us.
    std::string reply;
    EXPECT_FALSE(c.recvAscii(reply));  // Blocks until the server's FIN.
    EXPECT_TRUE(eventually([&] {
        return server_->netStats().idleKicks >= 1 &&
               server_->openConnections() == 0;
    }));

    // An active client is never reaped: keep one busy well past the
    // deadline.
    net::Client busy = makeClient();
    for (int i = 0; i < 30; ++i) {
        ASSERT_EQ(busy.roundTripAscii("get idle\r\n"),
                  "VALUE idle 0 2\r\nok\r\nEND\r\n");
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

// ----------------------------------------------------------------------
// Connection limit
// ----------------------------------------------------------------------

TEST_F(ResilienceTest, MaxConnsRejectsPolitelyAndRecovers)
{
    net::ServerCfg cfg;
    cfg.maxConns = 2;
    startServer(cfg);

    // Fill the limit; a round trip guarantees each socket has been
    // adopted by its loop (adoption is what the limit counts).
    net::Client a = makeClient();
    net::Client b = makeClient();
    ASSERT_EQ(a.roundTripAscii("set k 0 0 1\r\nx\r\n"), "STORED\r\n");
    ASSERT_EQ(b.roundTripAscii("get k\r\n"),
              "VALUE k 0 1\r\nx\r\nEND\r\n");

    // One over the limit: the TCP connect succeeds (backlog), but the
    // server answers with the polite rejection and a clean FIN — not
    // an RST, not silence.
    net::Client rejected = makeClient();
    std::string reply;
    ASSERT_TRUE(rejected.recvAscii(reply));
    EXPECT_EQ(reply, "SERVER_ERROR too many connections\r\n");
    EXPECT_FALSE(rejected.recvAscii(reply));  // EOF after the error.
    EXPECT_EQ(server_->netStats().rejectedConnections, 1u);

    // The limit is live headroom, not a lifetime cap: free a slot and
    // the next client gets in.
    a.close();
    ASSERT_TRUE(eventually(
        [&] { return server_->netStats().currConnections < 2; }));
    net::Client late = makeClient();
    EXPECT_EQ(late.roundTripAscii("get k\r\n"),
              "VALUE k 0 1\r\nx\r\nEND\r\n");

    // Established connections were never disturbed.
    EXPECT_EQ(b.roundTripAscii("get k\r\n"),
              "VALUE k 0 1\r\nx\r\nEND\r\n");
}

// ----------------------------------------------------------------------
// Backpressure
// ----------------------------------------------------------------------

TEST_F(ResilienceTest, HardCapClosesConnectionThatStoppedReading)
{
    net::ServerCfg cfg;
    cfg.limits.wbufSoftCap = 2 * 1024;
    cfg.limits.wbufHardCap = 4 * 1024;
    startServer(cfg);

    // Stall the server's writes so replies can only accumulate.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.errnoValue = EAGAIN;
    fault::ScopedFault sf("net.write", p);

    // One value larger than the hard cap: its reply alone overruns
    // the budget the moment it is queued. (Must stay under the
    // cache's itemSizeMax, or the set itself is refused.)
    net::Client c = makeClient();
    const std::string big(8 * 1024, 'B');
    ASSERT_TRUE(c.sendAll("set big 0 0 " + std::to_string(big.size()) +
                          "\r\n" + big + "\r\nget big\r\n"));
    std::string reply;
    EXPECT_FALSE(c.recvAscii(reply));  // Connection was cut.
    EXPECT_TRUE(eventually(
        [&] { return server_->netStats().backpressureCloses >= 1; }));

    // The server sheds the one connection, not its health.
    fault::disarmAll();
    net::Client fresh = makeClient();
    EXPECT_EQ(fresh.roundTripAscii("get big\r\n").compare(0, 6,
                                                          "VALUE "),
              0);
}

TEST_F(ResilienceTest, SoftCapPausesReadingWithoutKillingTheConn)
{
    net::ServerCfg cfg;
    cfg.limits.wbufSoftCap = 4 * 1024;
    cfg.limits.wbufHardCap = 1024 * 1024;
    startServer(cfg);

    net::Client c = makeClient();
    const std::string v(2 * 1024, 'v');
    ASSERT_EQ(c.roundTripAscii("set v 0 0 " + std::to_string(v.size()) +
                               "\r\n" + v + "\r\n"),
              "STORED\r\n");
    // Pipeline enough gets that the reply stream crosses the soft cap
    // many times over; because this client *does* read, every reply
    // must still arrive, in order, intact — backpressure pauses the
    // conn, it never drops it.
    constexpr int kN = 50;
    std::string batch;
    for (int i = 0; i < kN; ++i)
        batch += "get v\r\n";
    ASSERT_TRUE(c.sendAll(batch));
    for (int i = 0; i < kN; ++i) {
        std::string reply;
        ASSERT_TRUE(c.recvAscii(reply)) << "reply " << i;
        EXPECT_EQ(reply, "VALUE v 0 " + std::to_string(v.size()) +
                             "\r\n" + v + "\r\nEND\r\n")
            << "reply " << i;
    }
    EXPECT_EQ(server_->netStats().backpressureCloses, 0u);
}

// ----------------------------------------------------------------------
// Graceful drain
// ----------------------------------------------------------------------

TEST_F(ResilienceTest, DrainClosesIdleConnectionsCleanly)
{
    startServer(net::ServerCfg{});
    net::Client c = makeClient();
    ASSERT_EQ(c.roundTripAscii("set d 0 0 2\r\nok\r\n"), "STORED\r\n");

    EXPECT_TRUE(server_->drain(2000));
    std::string reply;
    EXPECT_FALSE(c.recvAscii(reply));  // Clean EOF, not a hang.
    EXPECT_EQ(server_->openConnections(), 0u);

    // Drained means drained: no new connections are served.
    net::Client late;
    if (late.connect("127.0.0.1", server_->port(), 200)) {
        late.setRecvTimeout(500);
        EXPECT_NE(late.roundTripAscii("get d\r\n"),
                  "VALUE d 0 2\r\nok\r\nEND\r\n");
    }
}

TEST_F(ResilienceTest, DrainFlushesQueuedRepliesBeforeClosing)
{
    startServer(net::ServerCfg{});
    net::Client c = makeClient();

    // Wedge the server's writes, then issue requests: they execute
    // but their replies stay queued in the connection.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.errnoValue = EAGAIN;
    fault::arm("net.write", p);
    constexpr int kN = 10;
    std::string batch;
    for (int i = 0; i < kN; ++i)
        batch += "set dr" + std::to_string(i) + " 0 0 2\r\nok\r\n";
    ASSERT_TRUE(c.sendAll(batch));
    // Let the loop execute the batch (replies cannot leave, so wait
    // on wall time; generous for loopback).
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    fault::disarm("net.write");

    // Drain must deliver every queued reply before the FIN.
    std::thread drainer(
        [&] { EXPECT_TRUE(server_->drain(5000)); });
    for (int i = 0; i < kN; ++i) {
        std::string reply;
        ASSERT_TRUE(c.recvAscii(reply)) << "reply " << i;
        EXPECT_EQ(reply, "STORED\r\n") << "reply " << i;
    }
    std::string reply;
    EXPECT_FALSE(c.recvAscii(reply));  // Then EOF.
    drainer.join();
}

TEST_F(ResilienceTest, DrainDeadlineForcesStragglers)
{
    startServer(net::ServerCfg{});
    net::Client c = makeClient();

    // Permanently wedge writes so the queued reply can never leave:
    // drain must give up at the deadline and report it.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.errnoValue = EAGAIN;
    fault::ScopedFault sf("net.write", p);
    ASSERT_TRUE(c.sendAll("set z 0 0 2\r\nok\r\n"));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(server_->drain(300));
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(5));  // Bounded, not hung.
    EXPECT_EQ(server_->openConnections(), 0u);    // Still torn down.
}

// ----------------------------------------------------------------------
// Stats over the wire
// ----------------------------------------------------------------------

TEST_F(ResilienceTest, ServerCountersRoundTripThroughAsciiStats)
{
    net::ServerCfg cfg;
    cfg.maxConns = 1;
    startServer(cfg);

    net::Client c = makeClient();
    ASSERT_EQ(c.roundTripAscii("set s 0 0 1\r\nv\r\n"), "STORED\r\n");

    // Provoke one rejection so a nonzero counter crosses the wire.
    net::Client rejected = makeClient();
    std::string line;
    ASSERT_TRUE(rejected.recvAscii(line));
    ASSERT_EQ(line, "SERVER_ERROR too many connections\r\n");

    const std::string reply = c.roundTripAscii("stats\r\n");
    // Cache stats and server stats arrive as one block with one END.
    EXPECT_NE(reply.find("STAT curr_connections 1\r\n"),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("STAT total_connections 1\r\n"),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("STAT rejected_connections 1\r\n"),
              std::string::npos)
        << reply;
    EXPECT_NE(reply.find("STAT idle_kicks 0\r\n"), std::string::npos);
    EXPECT_NE(reply.find("STAT backpressure_closes 0\r\n"),
              std::string::npos);
    EXPECT_NE(reply.find("STAT oom_errors 0\r\n"), std::string::npos);
    EXPECT_NE(reply.find("STAT accept_failures 0\r\n"),
              std::string::npos);
    // Exactly one terminator, at the very end.
    EXPECT_EQ(reply.find("END\r\n"), reply.size() - 5);

    // The snapshot API agrees with the wire.
    const net::NetStats s = server_->netStats();
    EXPECT_EQ(s.currConnections, 1u);
    EXPECT_EQ(s.totalConnections, 1u);
    EXPECT_EQ(s.rejectedConnections, 1u);
    EXPECT_EQ(s.oomErrors, 0u);
}

} // namespace
