/**
 * @file
 * net::Cluster: ring placement, R=2 replication, replica failover,
 * ejection/probation health tracking, read-repair, fault-injected
 * partitions and slow nodes, the `stats cluster` render, and the
 * kill-a-node chaos case checked with the Wing & Gong linearizability
 * checker (lost-reply writes recorded as indeterminate ops).
 *
 * Three real servers run in-process on ephemeral loopback ports; a
 * "killed" node is its Server stopped and later restarted on the same
 * port with a **fresh, empty cache** — the in-process model of kill -9
 * losing all of a node's data (scripts/chaos_cluster.sh replays the
 * same scenario at process granularity).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../mc/lin_checker.h"
#include "common/fault.h"
#include "common/rng.h"
#include "mc/cache_iface.h"
#include "net/client.h"
#include "net/cluster.h"
#include "net/server.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;

// ----------------------------------------------------------------------
// Ring placement (no sockets involved)
// ----------------------------------------------------------------------

net::ClusterCfg
ringOnlyCfg(std::size_t n)
{
    net::ClusterCfg cfg;
    for (std::size_t i = 0; i < n; ++i)
        cfg.nodes.push_back(
            {"127.0.0.1", static_cast<std::uint16_t>(20000 + i)});
    return cfg;
}

TEST(ClusterRing, PlacementIsDeterministicAndBalanced)
{
    net::Cluster a(ringOnlyCfg(3));
    net::Cluster b(ringOnlyCfg(3));

    std::vector<std::size_t> primaries(3, 0);
    for (int i = 0; i < 1000; ++i) {
        const std::string key = "ring-key-" + std::to_string(i);
        const std::size_t p = a.primaryOf(key);
        EXPECT_EQ(p, b.primaryOf(key));  // Pure function of node list.
        ASSERT_LT(p, 3u);
        ++primaries[p];
    }
    // 64 virtual points per node: no node may own a degenerate share.
    for (std::size_t n = 0; n < 3; ++n)
        EXPECT_GT(primaries[n], 100u) << "node " << n << " starved";
}

TEST(ClusterRing, OwnersAreDistinctPrimaryFirst)
{
    net::Cluster c(ringOnlyCfg(3));
    for (int i = 0; i < 200; ++i) {
        const std::string key = "owner-key-" + std::to_string(i);
        const std::vector<std::size_t> owners = c.ownersOf(key);
        ASSERT_EQ(owners.size(), 2u);
        EXPECT_EQ(owners[0], c.primaryOf(key));
        EXPECT_NE(owners[0], owners[1]);
    }
}

TEST(ClusterRing, ReplicaCountClampsToNodeCount)
{
    net::ClusterCfg cfg = ringOnlyCfg(2);
    cfg.replicas = 5;
    net::Cluster c(cfg);
    const std::vector<std::size_t> owners = c.ownersOf("any");
    ASSERT_EQ(owners.size(), 2u);
    EXPECT_NE(owners[0], owners[1]);

    net::ClusterCfg solo = ringOnlyCfg(1);
    net::Cluster s(solo);
    EXPECT_EQ(s.ownersOf("any").size(), 1u);
}

// ----------------------------------------------------------------------
// Three live nodes on loopback
// ----------------------------------------------------------------------

class ClusterTest : public ::testing::Test
{
  protected:
    static constexpr std::size_t kNodes = 3;

    void
    SetUp() override
    {
        fault::disarmAll();
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        caches_.resize(kNodes);
        servers_.resize(kNodes);
        ports_.resize(kNodes, 0);
        for (std::size_t i = 0; i < kNodes; ++i)
            ASSERT_TRUE(startNode(i, 0));
    }

    void
    TearDown() override
    {
        fault::disarmAll();
        for (auto &server : servers_) {
            if (server != nullptr)
                server->stop();
        }
    }

    /** (Re)start node @p i; port 0 asks the kernel, otherwise rebinds
     *  the remembered port. Always a fresh cache: a restart models a
     *  kill -9 that lost the node's data. */
    bool
    startNode(std::size_t i, std::uint16_t port)
    {
        mc::Settings settings;
        settings.maxBytes = 32 * 1024 * 1024;
        caches_[i] = mc::makeCache("IP-onCommit", settings, 2);
        if (caches_[i] == nullptr)
            return false;
        net::ServerCfg scfg;
        scfg.port = port;
        scfg.workers = 2;
        // The previous incarnation's listener may still be in
        // TIME_WAIT; SO_REUSEADDR plus a couple of retries covers it.
        for (int attempt = 0; attempt < 20; ++attempt) {
            servers_[i] =
                std::make_unique<net::Server>(*caches_[i], scfg);
            if (servers_[i]->start()) {
                ports_[i] = servers_[i]->port();
                return true;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        return false;
    }

    void
    stopNode(std::size_t i)
    {
        servers_[i]->stop();
    }

    /** Fast-failure tuning so ejection/backoff paths run in
     *  milliseconds: maxRetries=1 and ejectAfter=2 mean one op
     *  against a dead node (2 attempts) ejects it. */
    net::ClusterCfg
    liveCfg() const
    {
        net::ClusterCfg cfg;
        for (std::size_t i = 0; i < kNodes; ++i)
            cfg.nodes.push_back({"127.0.0.1", ports_[i]});
        cfg.replicas = 2;
        cfg.nodeTimeoutMs = 200;
        cfg.requestDeadlineMs = 2000;
        cfg.maxRetries = 1;
        cfg.backoffBaseMs = 1;
        cfg.backoffCapMs = 4;
        cfg.ejectAfter = 2;
        cfg.probeIntervalMs = 50;
        return cfg;
    }

    /** A key whose primary copy lives on node @p idx. */
    static std::string
    keyOwnedBy(const net::Cluster &c, std::size_t idx)
    {
        for (int i = 0; i < 10000; ++i) {
            const std::string key = "pin" + std::to_string(i);
            if (c.primaryOf(key) == idx)
                return key;
        }
        ADD_FAILURE() << "no key maps to node " << idx;
        return "pin0";
    }

    /** Direct (non-cluster) lookup against one node's server. */
    std::string
    directGet(std::size_t idx, const std::string &key)
    {
        net::Client c;
        EXPECT_TRUE(c.connect("127.0.0.1", ports_[idx], 2000));
        c.setRecvTimeout(5000);
        return c.roundTripAscii("get " + key + "\r\n");
    }

    std::vector<std::unique_ptr<mc::CacheIface>> caches_;
    std::vector<std::unique_ptr<net::Server>> servers_;
    std::vector<std::uint16_t> ports_;
};

TEST_F(ClusterTest, SetGetDelRoundTrip)
{
    net::Cluster c(liveCfg());
    net::ClusterResult r = c.set("alpha", "12345");
    EXPECT_EQ(r.status, net::ClusterStatus::Ok);
    EXPECT_FALSE(r.degraded);

    r = c.get("alpha");
    ASSERT_EQ(r.status, net::ClusterStatus::Ok);
    EXPECT_EQ(r.value, "12345");
    EXPECT_FALSE(r.fromReplica);

    EXPECT_EQ(c.del("alpha").status, net::ClusterStatus::Ok);
    EXPECT_EQ(c.get("alpha").status, net::ClusterStatus::Miss);
    EXPECT_EQ(c.get("never-stored").status, net::ClusterStatus::Miss);

    const net::ClusterStats s = c.stats();
    EXPECT_GE(s.requests, 5u);
    EXPECT_EQ(s.ejections, 0u);
    EXPECT_EQ(s.failovers, 0u);
}

TEST_F(ClusterTest, WritesLandOnBothOwners)
{
    net::Cluster c(liveCfg());
    ASSERT_EQ(c.set("repl", "777").status, net::ClusterStatus::Ok);

    const std::vector<std::size_t> owners = c.ownersOf("repl");
    ASSERT_EQ(owners.size(), 2u);
    const std::string want = "VALUE repl 0 3\r\n777\r\nEND\r\n";
    EXPECT_EQ(directGet(owners[0], "repl"), want);
    EXPECT_EQ(directGet(owners[1], "repl"), want);
    // The third node holds no copy.
    for (std::size_t i = 0; i < kNodes; ++i) {
        if (i != owners[0] && i != owners[1])
            EXPECT_EQ(directGet(i, "repl"), "END\r\n");
    }
}

TEST_F(ClusterTest, GetFailsOverToReplicaWhenPrimaryDies)
{
    net::Cluster c(liveCfg());
    const std::string key = keyOwnedBy(c, 0);
    ASSERT_EQ(c.set(key, "42").status, net::ClusterStatus::Ok);

    stopNode(0);
    const net::ClusterResult r = c.get(key);
    ASSERT_EQ(r.status, net::ClusterStatus::Ok);
    EXPECT_EQ(r.value, "42");
    EXPECT_TRUE(r.fromReplica);

    const net::ClusterStats s = c.stats();
    EXPECT_GE(s.failovers, 1u);
    EXPECT_GE(s.net_errors, 1u);
}

TEST_F(ClusterTest, DegradedWriteAcksOnSingleCopy)
{
    net::Cluster c(liveCfg());
    const std::string key = keyOwnedBy(c, 1);
    const std::vector<std::size_t> owners = c.ownersOf(key);
    ASSERT_EQ(owners.size(), 2u);

    // Kill the replica owner: the primary still acks, flagged
    // degraded and counted as replica lag.
    stopNode(owners[1]);
    const net::ClusterResult r = c.set(key, "9");
    ASSERT_EQ(r.status, net::ClusterStatus::Ok);
    EXPECT_TRUE(r.degraded);
    EXPECT_GE(c.stats().replica_lag, 1u);

    // And the value is durable where it landed.
    const net::ClusterResult back = c.get(key);
    ASSERT_EQ(back.status, net::ClusterStatus::Ok);
    EXPECT_EQ(back.value, "9");
}

TEST_F(ClusterTest, EjectionThenProbationReadmission)
{
    net::Cluster c(liveCfg());
    const std::string key = keyOwnedBy(c, 2);
    ASSERT_EQ(c.set(key, "1").status, net::ClusterStatus::Ok);

    stopNode(2);
    // One op = maxRetries+1 = 2 consecutive failures = ejection.
    EXPECT_EQ(c.get(key).status, net::ClusterStatus::Ok);
    EXPECT_FALSE(c.nodeHealthy(2));
    EXPECT_GE(c.stats().ejections, 1u);

    // While ejected, ops route straight to the replica without
    // burning the dead node's timeout (beyond rate-limited probes).
    EXPECT_TRUE(c.get(key).fromReplica);

    // Restart on the same port; the next op after the probe interval
    // probes and re-admits it.
    ASSERT_TRUE(startNode(2, ports_[2]));
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    bool healthy = false;
    for (int i = 0; i < 100 && !healthy; ++i) {
        (void)c.get(key);
        healthy = c.nodeHealthy(2);
        if (!healthy)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(healthy);
    const net::ClusterStats s = c.stats();
    EXPECT_GE(s.probes, 1u);
    EXPECT_GE(s.readmissions, 1u);
}

TEST_F(ClusterTest, ReadRepairRestoresAnEmptyRestartedPrimary)
{
    net::Cluster c(liveCfg());
    const std::string key = keyOwnedBy(c, 0);
    ASSERT_EQ(c.set(key, "31337").status, net::ClusterStatus::Ok);

    // Kill and restart the primary with a fresh cache: its copy is
    // gone, the replica's survives.
    stopNode(0);
    ASSERT_TRUE(startNode(0, ports_[0]));
    EXPECT_EQ(directGet(0, key), "END\r\n");

    // The primary answers MISS; the cluster double-checks the
    // replica, serves the hit, and repairs the primary with `add`.
    const net::ClusterResult r = c.get(key);
    ASSERT_EQ(r.status, net::ClusterStatus::Ok);
    EXPECT_EQ(r.value, "31337");
    EXPECT_TRUE(r.fromReplica);
    EXPECT_GE(c.stats().read_repairs, 1u);
    EXPECT_EQ(directGet(0, key),
              "VALUE " + key + " 0 5\r\n31337\r\nEND\r\n");

    // Subsequent reads come from the repaired primary again.
    const net::ClusterResult again = c.get(key);
    ASSERT_EQ(again.status, net::ClusterStatus::Ok);
    EXPECT_FALSE(again.fromReplica);
}

TEST_F(ClusterTest, PartitionFaultSiteEjectsAndHealsWithoutSockets)
{
    net::Cluster c(liveCfg());
    const std::string key = keyOwnedBy(c, 0);
    ASSERT_EQ(c.set(key, "5").status, net::ClusterStatus::Ok);

    {
        // Partition node 0: every attempt fails with EHOSTUNREACH
        // before any socket is touched (the server stays up).
        fault::Policy p;
        p.trigger = fault::Trigger::EveryNth;
        p.n = 1;
        p.errnoValue = EHOSTUNREACH;
        fault::ScopedFault part("net.cluster.node.0", p);

        const net::ClusterResult r = c.get(key);
        ASSERT_EQ(r.status, net::ClusterStatus::Ok);
        EXPECT_EQ(r.value, "5");
        EXPECT_TRUE(r.fromReplica);
        EXPECT_FALSE(c.nodeHealthy(0));
        // Writes during the partition still ack on the replica.
        EXPECT_EQ(c.set(key, "6").status, net::ClusterStatus::Ok);
    }

    // Partition healed: the probe re-admits node 0.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    bool healthy = false;
    for (int i = 0; i < 100 && !healthy; ++i) {
        (void)c.get(key);
        healthy = c.nodeHealthy(0);
        if (!healthy)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(healthy);
    EXPECT_GE(c.stats().readmissions, 1u);
}

TEST_F(ClusterTest, DelayInjectedSlowNodeStillCompletes)
{
    net::Cluster c(liveCfg());
    const std::string key = keyOwnedBy(c, 1);
    ASSERT_EQ(c.set(key, "88").status, net::ClusterStatus::Ok);

    // A bare delay payload models a slow node, not a dead one: the
    // attempt proceeds after the stall and must still succeed.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.delayUs = 30000;
    fault::ScopedFault slow("net.cluster.node.1", p);

    const auto t0 = std::chrono::steady_clock::now();
    const net::ClusterResult r = c.get(key);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ASSERT_EQ(r.status, net::ClusterStatus::Ok);
    EXPECT_EQ(r.value, "88");
    EXPECT_FALSE(r.fromReplica);
    EXPECT_GE(elapsed, 30000);
    EXPECT_TRUE(c.nodeHealthy(1));  // Slow is not dead.
}

TEST_F(ClusterTest, StatsClusterRendersThroughAnyServer)
{
    net::Cluster c(liveCfg());
    for (int i = 0; i < 8; ++i)
        ASSERT_EQ(c.set("sk" + std::to_string(i), "1").status,
                  net::ClusterStatus::Ok);

    // The cluster registers its counters with the process-wide
    // metrics registry, so `stats cluster` works through any server
    // sharing the process.
    net::Client cli;
    ASSERT_TRUE(cli.connect("127.0.0.1", ports_[0], 2000));
    cli.setRecvTimeout(5000);
    const std::string reply = cli.roundTripAscii("stats cluster\r\n");
    EXPECT_NE(reply.find("STAT cluster_requests "), std::string::npos)
        << reply;
    EXPECT_NE(reply.find("STAT cluster_ejections 0"), std::string::npos)
        << reply;
    EXPECT_NE(reply.find("END\r\n"), std::string::npos) << reply;

    // The row values are live: requests grew past the op count.
    const std::size_t pos = reply.find("STAT cluster_requests ");
    const std::uint64_t requests = std::strtoull(
        reply.c_str() + pos + sizeof("STAT cluster_requests ") - 1,
        nullptr, 10);
    EXPECT_GE(requests, 8u);
}

// ----------------------------------------------------------------------
// The kill-a-node chaos case, checked for linearizability
// ----------------------------------------------------------------------

TEST_F(ClusterTest, ChaosKillANodeKeepsAckedUpdatesAndReadmits)
{
    using lintest::Op;
    using lintest::OpKind;

    net::ClusterCfg cfg = liveCfg();
    net::Cluster c(cfg);

    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kOpsPerPhase = 120;
    constexpr std::size_t kKeys = 96;

    lintest::HistoryRecorder rec;
    std::vector<std::vector<Op>> perThread(kThreads);
    std::atomic<std::uint64_t> valueSeq{1};

    // One phase of mixed 50/50 set/get traffic on one thread.
    // Replies lost to the kill (NetFail / ProtoError on a write) are
    // recorded indeterminate: the checker lets them take effect at
    // any point after invoke, or never — an *acked* write, by
    // contrast, must be durable, and a stale or missing read of one
    // fails the check.
    auto runPhase = [&](std::size_t tid, std::uint64_t phase) {
        XorShift128 rng(0x9e3779b9u * (tid + 1) + phase);
        std::vector<Op> &hist = perThread[tid];
        for (std::size_t i = 0; i < kOpsPerPhase; ++i) {
            const std::string key =
                "ck" + std::to_string(rng.nextBounded(kKeys));
            Op op;
            op.key = key;
            if (rng.nextBounded(2) == 0) {
                op.kind = OpKind::Set;
                op.arg = valueSeq.fetch_add(1);
                op.invoke = rec.stamp();
                const net::ClusterResult r =
                    c.set(key, std::to_string(op.arg));
                if (r.status == net::ClusterStatus::Ok) {
                    op.ret = rec.stamp();
                    op.status = mc::OpStatus::Ok;
                } else {
                    op.ret = lintest::kNeverReturned;
                    op.indeterminate = true;
                }
                hist.push_back(op);
            } else {
                op.kind = OpKind::Get;
                op.invoke = rec.stamp();
                const net::ClusterResult r = c.get(key);
                op.ret = rec.stamp();
                if (r.status == net::ClusterStatus::Ok) {
                    op.status = mc::OpStatus::Ok;
                    op.out = r.value;
                } else if (r.status == net::ClusterStatus::Miss) {
                    op.status = mc::OpStatus::Miss;
                } else {
                    continue;  // A lost get has no effect: drop it.
                }
                hist.push_back(op);
            }
        }
    };

    auto runAll = [&](std::uint64_t phase) {
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < kThreads; ++t)
            threads.emplace_back([&, t, phase] { runPhase(t, phase); });
        for (std::thread &th : threads)
            th.join();
    };

    // Phase 1: healthy cluster.
    runAll(1);

    // Kill node 1 (takes its data with it), run degraded traffic.
    stopNode(1);
    runAll(2);
    EXPECT_FALSE(c.nodeHealthy(1));
    EXPECT_GE(c.stats().ejections, 1u);

    // Restart it empty on the same port; after the probe interval the
    // traffic itself re-admits it.
    ASSERT_TRUE(startNode(1, ports_[1]));
    std::this_thread::sleep_for(
        std::chrono::milliseconds(cfg.probeIntervalMs + 20));
    runAll(3);

    bool healthy = c.nodeHealthy(1);
    for (int i = 0; i < 100 && !healthy; ++i) {
        (void)c.get("ck" + std::to_string(i % kKeys));
        healthy = c.nodeHealthy(1);
        if (!healthy)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(healthy) << "restarted node never re-admitted";
    EXPECT_GE(c.stats().readmissions, 1u);

    // Final read-back: every key read once more, sequentially — any
    // acked update the kill destroyed shows up as a stale value or a
    // phantom miss here at the latest.
    std::vector<Op> history;
    for (std::vector<Op> &h : perThread)
        history.insert(history.end(), h.begin(), h.end());
    for (std::size_t k = 0; k < kKeys; ++k) {
        Op op;
        op.kind = OpKind::Get;
        op.key = "ck" + std::to_string(k);
        op.invoke = rec.stamp();
        const net::ClusterResult r = c.get(op.key);
        op.ret = rec.stamp();
        if (r.status == net::ClusterStatus::Ok) {
            op.status = mc::OpStatus::Ok;
            op.out = r.value;
        } else if (r.status == net::ClusterStatus::Miss) {
            op.status = mc::OpStatus::Miss;
        } else {
            continue;
        }
        history.push_back(op);
    }

    EXPECT_TRUE(lintest::linearizable(history))
        << "acked update lost or stale read after node kill";
}

} // namespace
