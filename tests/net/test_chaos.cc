/**
 * @file
 * Chaos tests: the server under deterministic fault injection. The
 * invariant throughout is the one the ISSUE demands — every reply the
 * server acknowledges is byte-for-byte intact, no matter what the
 * fault schedule does to the syscalls and allocators underneath it.
 *
 * Every schedule is seeded (common/fault.h), so a failure replays
 * exactly; nothing here depends on wall-clock randomness.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "mc/binary_protocol.h"
#include "mc/cache_iface.h"
#include "net/client.h"
#include "net/server.h"
#include "tm/runtime.h"

namespace
{

using namespace tmemc;

/** Fresh cache + server per test; faults disarmed on the way out. */
class ChaosTest : public ::testing::TestWithParam<const char *>
{
  protected:
    void
    SetUp() override
    {
        fault::disarmAll();
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        mc::Settings settings;
        settings.maxBytes = 16 * 1024 * 1024;
        cache_ = mc::makeCache(GetParam(), settings, kWorkers);
        ASSERT_NE(cache_, nullptr);
        net::ServerCfg cfg;
        cfg.port = 0;
        cfg.workers = kWorkers;
        server_ = std::make_unique<net::Server>(*cache_, cfg);
        ASSERT_TRUE(server_->start());
    }

    void
    TearDown() override
    {
        fault::disarmAll();
        server_->stop();
    }

    net::Client
    makeClient()
    {
        net::Client c;
        EXPECT_TRUE(c.connect("127.0.0.1", server_->port(), 5000));
        c.setRecvTimeout(10000);
        return c;
    }

    /** Set/get `count` keys and verify every reply byte-for-byte. */
    void
    verifyTraffic(net::Client &c, int count, const char *tag)
    {
        for (int i = 0; i < count; ++i) {
            const std::string k = std::string(tag) + std::to_string(i);
            const std::string v =
                "payload-" + std::to_string(i) + "-" + tag;
            ASSERT_EQ(c.roundTripAscii(
                          "set " + k + " 0 0 " +
                          std::to_string(v.size()) + "\r\n" + v + "\r\n"),
                      "STORED\r\n")
                << tag << " set " << i;
            ASSERT_EQ(c.roundTripAscii("get " + k + "\r\n"),
                      "VALUE " + k + " 0 " + std::to_string(v.size()) +
                          "\r\n" + v + "\r\nEND\r\n")
                << tag << " get " << i;
        }
    }

    static constexpr std::uint32_t kWorkers = 2;
    std::unique_ptr<mc::CacheIface> cache_;
    std::unique_ptr<net::Server> server_;
};

// ----------------------------------------------------------------------
// Short I/O
// ----------------------------------------------------------------------

TEST_P(ChaosTest, ShortWritesNeverCorruptReplies)
{
    // Every server-side write is truncated to 7 bytes, so each reply
    // leaves in ragged fragments the flush loop must stitch together.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.byteCap = 7;
    fault::ScopedFault sf("net.write", p);

    net::Client c = makeClient();
    verifyTraffic(c, 30, "sw");
    EXPECT_GT(sf.firedCount(), 0u);
}

TEST_P(ChaosTest, ShortReadsStillFrameCorrectly)
{
    // Every server-side read returns at most 3 bytes: requests arrive
    // shredded and the framing layer must reassemble them.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.byteCap = 3;
    fault::ScopedFault sf("net.read", p);

    net::Client c = makeClient();
    verifyTraffic(c, 10, "sr");
    EXPECT_GT(sf.firedCount(), 0u);
}

TEST_P(ChaosTest, MixedShortReadsAndWritesUnderPipelining)
{
    fault::Policy pr;
    pr.trigger = fault::Trigger::Probability;
    pr.probability = 0.5;
    pr.seed = 1234;
    pr.byteCap = 5;
    fault::ScopedFault sfr("net.read", pr);
    fault::Policy pw = pr;
    pw.seed = 5678;
    fault::ScopedFault sfw("net.write", pw);

    net::Client c = makeClient();
    std::string batch;
    constexpr int kN = 25;
    for (int i = 0; i < kN; ++i) {
        const std::string v = "vv" + std::to_string(i);
        batch += "set mx" + std::to_string(i) + " 0 0 " +
                 std::to_string(v.size()) + "\r\n" + v + "\r\n";
    }
    for (int i = 0; i < kN; ++i)
        batch += "get mx" + std::to_string(i) + "\r\n";
    ASSERT_TRUE(c.sendAll(batch));
    for (int i = 0; i < kN; ++i) {
        std::string reply;
        ASSERT_TRUE(c.recvAscii(reply)) << "set reply " << i;
        EXPECT_EQ(reply, "STORED\r\n") << "set reply " << i;
    }
    for (int i = 0; i < kN; ++i) {
        std::string reply;
        ASSERT_TRUE(c.recvAscii(reply)) << "get reply " << i;
        const std::string v = "vv" + std::to_string(i);
        EXPECT_EQ(reply, "VALUE mx" + std::to_string(i) + " 0 " +
                             std::to_string(v.size()) + "\r\n" + v +
                             "\r\nEND\r\n");
    }
}

// ----------------------------------------------------------------------
// Accept storms
// ----------------------------------------------------------------------

TEST_P(ChaosTest, EmfileStormOnAcceptShedsAndRecovers)
{
    // Every other accept(2) fails with EMFILE. The listener must
    // count the failure, shed, and pick the pending connection up on
    // the next poll tick — clients see extra latency, never errors.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 2;
    p.errnoValue = EMFILE;
    fault::ScopedFault sf("net.accept", p);

    for (int round = 0; round < 6; ++round) {
        net::Client c = makeClient();
        ASSERT_EQ(c.roundTripAscii("set em 0 0 2\r\nok\r\n"),
                  "STORED\r\n")
            << "round " << round;
    }
    EXPECT_GT(sf.firedCount(), 0u);
    EXPECT_GT(server_->netStats().acceptFailures, 0u);
}

// ----------------------------------------------------------------------
// Allocator faults mid-request
// ----------------------------------------------------------------------

TEST_P(ChaosTest, SlabOomMidSetYieldsServerErrorNotCorruption)
{
    net::Client c = makeClient();
    // Healthy store first, so the cache has state the fault must not
    // disturb.
    ASSERT_EQ(c.roundTripAscii("set keep 0 0 4\r\nsafe\r\n"),
              "STORED\r\n");

    {
        // Chunk allocation fails on every attempt (the eviction
        // retries all hit the same wall), so the SET must surface
        // SERVER_ERROR out of memory instead of a torn item.
        fault::Policy p;
        p.trigger = fault::Trigger::EveryNth;
        p.n = 1;
        fault::ScopedFault sf("mc.slabs.alloc", p);
        const std::string reply =
            c.roundTripAscii("set doomed 0 0 5\r\nnever\r\n");
        EXPECT_EQ(reply.compare(0, 26, "SERVER_ERROR out of memory"), 0)
            << reply;
        EXPECT_GT(sf.firedCount(), 0u);
    }

    // Fault gone: the same connection serves perfectly again and the
    // doomed key never materialized. The healthy key may have been
    // evicted by the failed SET's retries (eviction is the correct
    // response to pressure) — but it must be intact or cleanly gone,
    // never torn.
    EXPECT_EQ(c.roundTripAscii("get doomed\r\n"), "END\r\n");
    const std::string keep = c.roundTripAscii("get keep\r\n");
    EXPECT_TRUE(keep == "VALUE keep 0 4\r\nsafe\r\nEND\r\n" ||
                keep == "END\r\n")
        << keep;
    EXPECT_EQ(c.roundTripAscii("set doomed 0 0 3\r\nnow\r\n"),
              "STORED\r\n");
    EXPECT_GE(server_->netStats().oomErrors, 1u);
}

TEST_P(ChaosTest, PageAllocOomIsSurvivable)
{
    net::Client c = makeClient();
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    {
        fault::ScopedFault sf("mc.slabs.page_alloc", p);
        const std::string reply =
            c.roundTripAscii("set pg 0 0 3\r\nabc\r\n");
        EXPECT_EQ(reply.compare(0, 26, "SERVER_ERROR out of memory"), 0)
            << reply;
    }
    EXPECT_EQ(c.roundTripAscii("set pg 0 0 3\r\nabc\r\n"), "STORED\r\n");
    EXPECT_EQ(c.roundTripAscii("get pg\r\n"),
              "VALUE pg 0 3\r\nabc\r\nEND\r\n");
}

TEST_P(ChaosTest, BinaryProtocolReportsOomStatus)
{
    net::Client c = makeClient();
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    {
        fault::ScopedFault sf("mc.slabs.alloc", p);
        const std::string reply =
            c.roundTripBinary(mc::binSetRequest("bk", "bv"));
        mc::BinResponse r;
        ASSERT_GT(mc::binParseResponse(reply, r), 0u);
        EXPECT_EQ(r.status, mc::BinStatus::OutOfMemory);
    }
    const std::string reply =
        c.roundTripBinary(mc::binSetRequest("bk", "bv"));
    mc::BinResponse r;
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    EXPECT_EQ(r.status, mc::BinStatus::Ok);
    EXPECT_GE(server_->netStats().oomErrors, 1u);
}

// ----------------------------------------------------------------------
// Spurious wakeups
// ----------------------------------------------------------------------

TEST_P(ChaosTest, SpuriousEpollTimeoutsDoNotLoseEvents)
{
    // 30% of epoll_wait calls report zero events; level-triggered
    // epoll must re-deliver whatever was pending on the next call.
    fault::Policy p;
    p.trigger = fault::Trigger::Probability;
    p.probability = 0.3;
    p.seed = 99;
    fault::ScopedFault sf("net.epoll_wait", p);

    net::Client c = makeClient();
    verifyTraffic(c, 20, "ep");
    EXPECT_GT(sf.firedCount(), 0u);
}

// ----------------------------------------------------------------------
// Everything at once
// ----------------------------------------------------------------------

TEST_P(ChaosTest, CombinedFaultStormKeepsAcknowledgedRepliesIntact)
{
    fault::Policy shortio;
    shortio.trigger = fault::Trigger::Probability;
    shortio.probability = 0.4;
    shortio.seed = 7;
    shortio.byteCap = 9;
    fault::ScopedFault sfr("net.read", shortio);
    shortio.seed = 11;
    fault::ScopedFault sfw("net.write", shortio);
    fault::Policy spur;
    spur.trigger = fault::Trigger::Probability;
    spur.probability = 0.2;
    spur.seed = 13;
    fault::ScopedFault sfe("net.epoll_wait", spur);
    // High per-hit probability: a set only reports OOM when every
    // eviction retry fails too, so p must be near 1 for both reply
    // kinds to appear in the (seed-determined) schedule.
    fault::Policy oom;
    oom.trigger = fault::Trigger::Probability;
    oom.probability = 0.9;
    oom.seed = 17;
    fault::ScopedFault sfo("mc.slabs.alloc", oom);

    net::Client c = makeClient();
    int stored = 0;
    int oom_replies = 0;
    constexpr int kN = 60;
    for (int i = 0; i < kN; ++i) {
        const std::string k = "storm" + std::to_string(i);
        const std::string v = "value-" + std::to_string(i);
        const std::string reply = c.roundTripAscii(
            "set " + k + " 0 0 " + std::to_string(v.size()) + "\r\n" +
            v + "\r\n");
        if (reply == "STORED\r\n") {
            ++stored;
            // An acknowledged store must read back intact even while
            // the storm continues.
            ASSERT_EQ(c.roundTripAscii("get " + k + "\r\n"),
                      "VALUE " + k + " 0 " + std::to_string(v.size()) +
                          "\r\n" + v + "\r\nEND\r\n")
                << "key " << i;
        } else {
            ASSERT_EQ(
                reply.compare(0, 26, "SERVER_ERROR out of memory"), 0)
                << "unexpected reply: " << reply;
            ++oom_replies;
        }
    }
    // Both outcomes occur; the exact split is seed-determined.
    EXPECT_GT(stored, 0);
    EXPECT_GT(oom_replies, 0);
    EXPECT_EQ(server_->netStats().oomErrors,
              static_cast<std::uint64_t>(oom_replies));
}

INSTANTIATE_TEST_SUITE_P(Branches, ChaosTest,
                         ::testing::Values("Baseline", "IT-onCommit"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &ch : name)
                                 if (ch == '-')
                                     ch = '_';
                             return name;
                         });

} // namespace
