/**
 * @file
 * End-to-end server tests: real sockets over loopback against cache
 * branches, both protocols, including the streaming edge cases the
 * framing layer exists for — requests split across writes, pipelined
 * requests in one write, oversized keys/values, and abrupt client
 * disconnects mid-request.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/fault.h"
#include "mc/binary_protocol.h"
#include "mc/cache_iface.h"
#include "net/client.h"
#include "net/server.h"
#include "tm/runtime.h"

namespace
{

using namespace tmemc;

/** Server-over-a-branch fixture: fresh cache + server per test. */
class NetServerTest : public ::testing::TestWithParam<const char *>
{
  protected:
    void
    SetUp() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        mc::Settings settings;
        settings.maxBytes = 16 * 1024 * 1024;
        cache_ = mc::makeCache(GetParam(), settings, kWorkers);
        ASSERT_NE(cache_, nullptr);
        net::ServerCfg cfg;
        cfg.port = 0;  // Ephemeral.
        cfg.workers = kWorkers;
        server_ = std::make_unique<net::Server>(*cache_, cfg);
        ASSERT_TRUE(server_->start());
    }

    void
    TearDown() override
    {
        server_->stop();
    }

    net::Client
    makeClient()
    {
        net::Client c;
        EXPECT_TRUE(c.connect("127.0.0.1", server_->port()));
        return c;
    }

    static constexpr std::uint32_t kWorkers = 2;
    std::unique_ptr<mc::CacheIface> cache_;
    std::unique_ptr<net::Server> server_;
};

// ----------------------------------------------------------------------
// Round trips
// ----------------------------------------------------------------------

TEST_P(NetServerTest, AsciiSetGetDeleteRoundTrip)
{
    net::Client c = makeClient();
    EXPECT_EQ(c.roundTripAscii("set alpha 0 0 5\r\nhello\r\n"),
              "STORED\r\n");
    EXPECT_EQ(c.roundTripAscii("get alpha\r\n"),
              "VALUE alpha 0 5\r\nhello\r\nEND\r\n");
    EXPECT_EQ(c.roundTripAscii("delete alpha\r\n"), "DELETED\r\n");
    EXPECT_EQ(c.roundTripAscii("get alpha\r\n"), "END\r\n");
    EXPECT_EQ(c.roundTripAscii("delete alpha\r\n"), "NOT_FOUND\r\n");
}

TEST_P(NetServerTest, BinarySetGetDeleteRoundTrip)
{
    net::Client c = makeClient();

    std::string reply = c.roundTripBinary(mc::binSetRequest("k", "val"));
    mc::BinResponse r;
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    EXPECT_EQ(r.status, mc::BinStatus::Ok);

    reply = c.roundTripBinary(mc::binRequest(mc::BinOp::Get, "k"));
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    EXPECT_EQ(r.status, mc::BinStatus::Ok);
    EXPECT_EQ(r.value, "val");

    reply = c.roundTripBinary(mc::binRequest(mc::BinOp::Delete, "k"));
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    EXPECT_EQ(r.status, mc::BinStatus::Ok);

    reply = c.roundTripBinary(mc::binRequest(mc::BinOp::Get, "k"));
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    EXPECT_EQ(r.status, mc::BinStatus::KeyNotFound);
}

TEST_P(NetServerTest, BothProtocolsShareOneCache)
{
    net::Client c = makeClient();
    // Store over binary, read over ASCII, on the same connection.
    std::string reply =
        c.roundTripBinary(mc::binSetRequest("mixed", "payload"));
    mc::BinResponse r;
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    ASSERT_EQ(r.status, mc::BinStatus::Ok);
    EXPECT_EQ(c.roundTripAscii("get mixed\r\n"),
              "VALUE mixed 0 7\r\npayload\r\nEND\r\n");
}

TEST_P(NetServerTest, IncrDecrTouchVersionOverWire)
{
    net::Client c = makeClient();
    EXPECT_EQ(c.roundTripAscii("set n 0 0 2\r\n10\r\n"), "STORED\r\n");
    EXPECT_EQ(c.roundTripAscii("incr n 5\r\n"), "15\r\n");
    EXPECT_EQ(c.roundTripAscii("decr n 1\r\n"), "14\r\n");
    EXPECT_EQ(c.roundTripAscii("touch n 100\r\n"), "TOUCHED\r\n");
    const std::string v = c.roundTripAscii("version\r\n");
    EXPECT_EQ(v.compare(0, 8, "VERSION "), 0);
}

// ----------------------------------------------------------------------
// Streaming edge cases
// ----------------------------------------------------------------------

TEST_P(NetServerTest, RequestSplitAcrossManyWrites)
{
    net::Client c = makeClient();
    const std::string req = "set split 0 0 6\r\nabcdef\r\n";
    // Drip the request one byte at a time; the server must buffer
    // and frame incrementally.
    for (char ch : req) {
        ASSERT_TRUE(c.sendAll(std::string(1, ch)));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::string reply;
    ASSERT_TRUE(c.recvAscii(reply));
    EXPECT_EQ(reply, "STORED\r\n");
    EXPECT_EQ(c.roundTripAscii("get split\r\n"),
              "VALUE split 0 6\r\nabcdef\r\nEND\r\n");
}

TEST_P(NetServerTest, BinaryRequestSplitAcrossWrites)
{
    net::Client c = makeClient();
    const std::string frame = mc::binSetRequest("bk", "bv");
    // Split inside the 24-byte header, then inside the body.
    ASSERT_TRUE(c.sendAll(frame.substr(0, 10)));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(c.sendAll(frame.substr(10, 20)));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(c.sendAll(frame.substr(30)));
    std::string reply;
    ASSERT_TRUE(c.recvBinary(reply));
    mc::BinResponse r;
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    EXPECT_EQ(r.status, mc::BinStatus::Ok);
}

TEST_P(NetServerTest, PipelinedRequestsInOneWrite)
{
    net::Client c = makeClient();
    std::string batch;
    constexpr int kN = 20;
    for (int i = 0; i < kN; ++i) {
        const std::string k = "pipe" + std::to_string(i);
        batch += "set " + k + " 0 0 3\r\nv" +
                 std::to_string(i % 10) + "x\r\n";
    }
    for (int i = 0; i < kN; ++i)
        batch += "get pipe" + std::to_string(i) + "\r\n";
    ASSERT_TRUE(c.sendAll(batch));
    for (int i = 0; i < kN; ++i) {
        std::string reply;
        ASSERT_TRUE(c.recvAscii(reply));
        EXPECT_EQ(reply, "STORED\r\n") << "set " << i;
    }
    for (int i = 0; i < kN; ++i) {
        std::string reply;
        ASSERT_TRUE(c.recvAscii(reply));
        EXPECT_EQ(reply.compare(0, 6, "VALUE "), 0) << "get " << i;
    }
}

TEST_P(NetServerTest, MixedProtocolPipelineInOneWrite)
{
    net::Client c = makeClient();
    // ASCII set, binary set, ASCII get, binary get — one write.
    std::string batch = "set a1 0 0 2\r\nAA\r\n";
    batch += mc::binSetRequest("b1", "BB");
    batch += "get b1\r\n";
    batch += mc::binRequest(mc::BinOp::Get, "a1");
    ASSERT_TRUE(c.sendAll(batch));

    std::string reply;
    ASSERT_TRUE(c.recvAscii(reply));
    EXPECT_EQ(reply, "STORED\r\n");
    ASSERT_TRUE(c.recvBinary(reply));
    mc::BinResponse r;
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    EXPECT_EQ(r.status, mc::BinStatus::Ok);
    ASSERT_TRUE(c.recvAscii(reply));
    EXPECT_EQ(reply, "VALUE b1 0 2\r\nBB\r\nEND\r\n");
    ASSERT_TRUE(c.recvBinary(reply));
    ASSERT_GT(mc::binParseResponse(reply, r), 0u);
    EXPECT_EQ(r.value, "AA");
}

TEST_P(NetServerTest, OversizedKeyGetsErrorAndClose)
{
    net::Client c = makeClient();
    const std::string req =
        "get " + std::string(4096, 'k') + "\r\n";
    ASSERT_TRUE(c.sendAll(req));
    std::string reply;
    ASSERT_TRUE(c.recvAscii(reply));
    EXPECT_EQ(reply.compare(0, 12, "CLIENT_ERROR"), 0);
    // The server closes after an unframeable request; the next recv
    // must see EOF, not a hang.
    EXPECT_FALSE(c.recvAscii(reply));
}

TEST_P(NetServerTest, OversizedValueGetsErrorAndClose)
{
    net::Client c = makeClient();
    ASSERT_TRUE(c.sendAll("set big 0 0 999999999\r\n"));
    std::string reply;
    ASSERT_TRUE(c.recvAscii(reply));
    EXPECT_EQ(reply.compare(0, 12, "SERVER_ERROR"), 0);
    EXPECT_FALSE(c.recvAscii(reply));
}

TEST_P(NetServerTest, BinaryGarbageClosesConnection)
{
    net::Client c = makeClient();
    // Binary-magic byte followed by a frame whose lengths lie.
    mc::BinHeader h;
    h.magic = static_cast<std::uint8_t>(mc::BinMagic::Request);
    h.opcode = static_cast<std::uint8_t>(mc::BinOp::Get);
    h.keyLength = 100;
    h.bodyLength = 4;
    std::string wire(mc::kBinHeaderSize, '\0');
    mc::binEncodeHeader(
        h, reinterpret_cast<std::uint8_t *>(wire.data()));
    ASSERT_TRUE(c.sendAll(wire));
    std::string reply;
    EXPECT_FALSE(c.recvBinary(reply));  // Closed, no response.
}

TEST_P(NetServerTest, AbruptDisconnectMidRequestLeavesServerHealthy)
{
    // Half a storage request, then a hard close (RST via SO_LINGER
    // would be even harsher; plain close exercises the same path
    // because the frame never completes).
    for (int round = 0; round < 3; ++round) {
        net::Client c = makeClient();
        ASSERT_TRUE(c.sendAll("set doomed 0 0 100\r\npartial-bo"));
        c.close();
    }
    // Binary flavour: header promising a body that never comes.
    {
        net::Client c = makeClient();
        const std::string frame = mc::binSetRequest("doomed2", "body");
        ASSERT_TRUE(c.sendAll(frame.substr(0, frame.size() - 2)));
        c.close();
    }
    // The server must still serve new clients flawlessly.
    net::Client c = makeClient();
    EXPECT_EQ(c.roundTripAscii("set alive 0 0 2\r\nok\r\n"),
              "STORED\r\n");
    EXPECT_EQ(c.roundTripAscii("get alive\r\n"),
              "VALUE alive 0 2\r\nok\r\nEND\r\n");
    // And the half-written key must not exist.
    EXPECT_EQ(c.roundTripAscii("get doomed\r\n"), "END\r\n");
}

TEST_P(NetServerTest, QuitClosesConnection)
{
    net::Client c = makeClient();
    ASSERT_TRUE(c.sendAll("set q 0 0 1\r\nz\r\nquit\r\n"));
    std::string reply;
    ASSERT_TRUE(c.recvAscii(reply));
    EXPECT_EQ(reply, "STORED\r\n");
    EXPECT_FALSE(c.recvAscii(reply));  // EOF after quit.
}

// ----------------------------------------------------------------------
// Reconnect after server restart
// ----------------------------------------------------------------------

TEST_P(NetServerTest, ClientReconnectsAfterServerRestart)
{
    // Regression: a server restart used to leave the client erroring
    // forever — fill()/sendAll() kept the defunct fd, so every later
    // call failed on it and there was no way back short of a fresh
    // Client. Now EOF/hard errors drop the socket and
    // ensureConnected() re-dials the remembered endpoint.
    net::Client c = makeClient();
    EXPECT_EQ(c.roundTripAscii("set alpha 0 0 5\r\nhello\r\n"),
              "STORED\r\n");
    const std::uint16_t port = server_->port();
    server_->stop();

    // The dead socket surfaces as a failed round trip AND a closed
    // client (previously: failed round trip, fd still held).
    EXPECT_EQ(c.roundTripAscii("get alpha\r\n"), "");
    EXPECT_FALSE(c.isConnected());

    // Nothing is listening yet, so re-dialing fails — but cleanly,
    // leaving the client able to try again.
    EXPECT_FALSE(c.ensureConnected(500));

    // Restart on the same port (the cache survives in this process);
    // one ensureConnected later the same client works again.
    net::ServerCfg cfg;
    cfg.port = port;
    cfg.workers = kWorkers;
    server_ = std::make_unique<net::Server>(*cache_, cfg);
    ASSERT_TRUE(server_->start());
    ASSERT_TRUE(c.ensureConnected(2000));
    EXPECT_TRUE(c.isConnected());
    EXPECT_EQ(c.roundTripAscii("get alpha\r\n"),
              "VALUE alpha 0 5\r\nhello\r\nEND\r\n");
}

TEST_P(NetServerTest, EnsureConnectedIsIdempotentOnLiveSocket)
{
    net::Client c = makeClient();
    EXPECT_EQ(c.roundTripAscii("set idem 0 0 2\r\nok\r\n"),
              "STORED\r\n");
    // A live socket is left alone — no spurious re-dial.
    const std::uint64_t before = server_->accepted();
    EXPECT_TRUE(c.ensureConnected(1000));
    EXPECT_EQ(server_->accepted(), before);
    EXPECT_EQ(c.roundTripAscii("get idem\r\n"),
              "VALUE idem 0 2\r\nok\r\nEND\r\n");
}

TEST_P(NetServerTest, ConnectFaultSiteFailsTheDial)
{
    // The net.sys.connect site fails the dial before the kernel sees
    // it — the hook cluster partition schedules are built on.
    fault::Policy p;
    p.trigger = fault::Trigger::EveryNth;
    p.n = 1;
    p.errnoValue = EHOSTUNREACH;
    {
        fault::ScopedFault sf("net.sys.connect", p);
        net::Client c;
        EXPECT_FALSE(c.connect("127.0.0.1", server_->port()));
        EXPECT_FALSE(c.connect("127.0.0.1", server_->port(), 1000));
        EXPECT_EQ(sf.firedCount(), 2u);
    }
    // Disarmed: the same dial succeeds.
    net::Client c = makeClient();
    EXPECT_EQ(c.roundTripAscii("version\r\n").compare(0, 8, "VERSION "),
              0);
}

// ----------------------------------------------------------------------
// Concurrency
// ----------------------------------------------------------------------

TEST_P(NetServerTest, ManyConcurrentClients)
{
    constexpr int kClients = 8;
    constexpr int kOpsPerClient = 50;
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            net::Client c;
            if (!c.connect("127.0.0.1", server_->port())) {
                ++failures;
                return;
            }
            for (int i = 0; i < kOpsPerClient; ++i) {
                const std::string k =
                    "c" + std::to_string(t) + "-" + std::to_string(i);
                if (c.roundTripAscii("set " + k + " 0 0 3\r\nxyz\r\n") !=
                    "STORED\r\n")
                    ++failures;
                if (c.roundTripAscii("get " + k + "\r\n")
                        .compare(0, 6, "VALUE ") != 0)
                    ++failures;
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GE(server_->accepted(), static_cast<std::uint64_t>(kClients));
}

TEST_P(NetServerTest, MetricsAdminCommandReturnsJson)
{
    auto c = makeClient();
    EXPECT_EQ(c.roundTripAscii("set m1 0 0 2\r\nok\r\n"), "STORED\r\n");

    // The reply is one JSON line followed by END; the ASCII framer
    // sees them as two responses.
    const std::string json = c.roundTripAscii("metrics\r\n");
    ASSERT_TRUE(json.rfind("{\"schema\":\"tmemc-metrics-v1\"", 0) == 0)
        << json;
    EXPECT_NE(json.find("\"net_requests_served\":"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"net_curr_connections\":"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"latency\":{"), std::string::npos) << json;
    std::string tail;
    ASSERT_TRUE(c.recvAscii(tail));
    EXPECT_EQ(tail, "END\r\n");

    // The connection stays usable after the admin command.
    EXPECT_EQ(c.roundTripAscii("get m1\r\n"),
              "VALUE m1 0 2\r\nok\r\nEND\r\n");
}

TEST_P(NetServerTest, StatsLatencyAndTmRows)
{
    auto c = makeClient();
    EXPECT_EQ(c.roundTripAscii("set s1 0 0 2\r\nok\r\n"), "STORED\r\n");
    EXPECT_EQ(c.roundTripAscii("get s1\r\n"),
              "VALUE s1 0 2\r\nok\r\nEND\r\n");

    const std::string lat = c.roundTripAscii("stats latency\r\n");
    EXPECT_NE(lat.find("STAT lat_cmd_count "), std::string::npos) << lat;
    EXPECT_NE(lat.find("STAT lat_cmd_p99_us "), std::string::npos)
        << lat;
    EXPECT_NE(lat.find("STAT lat_tx_count "), std::string::npos) << lat;
    EXPECT_EQ(lat.compare(lat.size() - 5, 5, "END\r\n"), 0) << lat;
    // The set and get above each went through the command timer.
    EXPECT_EQ(lat.find("STAT lat_cmd_count 0\r\n"), std::string::npos)
        << lat;

    const std::string tmrows = c.roundTripAscii("stats tm\r\n");
    EXPECT_NE(tmrows.find("STAT tm_commits "), std::string::npos)
        << tmrows;
    EXPECT_NE(tmrows.find("STAT tm_txns "), std::string::npos) << tmrows;
    EXPECT_EQ(tmrows.compare(tmrows.size() - 5, 5, "END\r\n"), 0)
        << tmrows;
}

INSTANTIATE_TEST_SUITE_P(Branches, NetServerTest,
                         ::testing::Values("Baseline", "IT-onCommit"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &ch : name)
                                 if (ch == '-')
                                     ch = '_';
                             return name;
                         });

} // namespace
