/**
 * @file
 * Tests for the marshaling-based conversion and formatting functions
 * and the transaction-safe realloc.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>

#include <cstring>
#include <string>

#include "tm/api.h"
#include "tmsafe/marshal.h"
#include "tmsafe/tm_alloc.h"
#include "tmsafe/tm_convert.h"
#include "tmsafe/tm_format.h"

namespace
{

using namespace tmemc;

const tm::TxnAttr attr{"tmconvert:test", tm::TxnKind::Atomic, false};

class TmConvertTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
    }
};

TEST_F(TmConvertTest, IsspaceMatchesLibc)
{
    for (int c = 0; c < 256; ++c)
        EXPECT_EQ(!!tmsafe::tm_isspace(c),
                  !!std::isspace(static_cast<unsigned char>(c)));
}

TEST_F(TmConvertTest, StrtolParsesLikeLibc)
{
    static char buf[64];
    const char *cases[] = {"0",       "42",    "-17",      "  123 tail",
                           "0x1f",    "999999", "-2147483648", "junk"};
    for (const char *cs : cases) {
        std::strcpy(buf, cs);
        char *libc_end = nullptr;
        const long expect = std::strtol(buf, &libc_end, 10);
        std::size_t consumed = 0;
        const long got = tm::run(attr, [&](tm::TxDesc &tx) {
            return tmsafe::tm_strtol(tx, buf, sizeof(buf), &consumed, 10);
        });
        EXPECT_EQ(got, expect) << cs;
        EXPECT_EQ(consumed, static_cast<std::size_t>(libc_end - buf))
            << cs;
    }
}

TEST_F(TmConvertTest, StrtoullParsesLikeLibc)
{
    static char buf[64];
    const char *cases[] = {"0", "18446744073709551615", "123abc", "7"};
    for (const char *cs : cases) {
        std::strcpy(buf, cs);
        const unsigned long long expect = std::strtoull(buf, nullptr, 10);
        const unsigned long long got = tm::run(attr, [&](tm::TxDesc &tx) {
            return tmsafe::tm_strtoull(tx, buf, sizeof(buf), nullptr, 10);
        });
        EXPECT_EQ(got, expect) << cs;
    }
}

TEST_F(TmConvertTest, AtoiMatches)
{
    static char buf[32];
    std::strcpy(buf, "-451");
    const int got = tm::run(attr, [&](tm::TxDesc &tx) {
        return tmsafe::tm_atoi(tx, buf, sizeof(buf));
    });
    EXPECT_EQ(got, -451);
}

TEST_F(TmConvertTest, MaxLenBoundsTheParse)
{
    static char buf[32];
    std::strcpy(buf, "123456");
    const long got = tm::run(attr, [&](tm::TxDesc &tx) {
        return tmsafe::tm_strtol(tx, buf, 3, nullptr, 10);
    });
    EXPECT_EQ(got, 123);  // Only 3 bytes marshaled.
}

TEST_F(TmConvertTest, SnprintfUllFormats)
{
    static char dst[32];
    std::memset(dst, 0x7f, sizeof(dst));
    const int len = tm::run(attr, [&](tm::TxDesc &tx) {
        return tmsafe::tm_snprintf_ull(tx, dst, sizeof(dst),
                                       18446744073709551615ull);
    });
    EXPECT_EQ(len, 20);
    EXPECT_STREQ(dst, "18446744073709551615");
}

TEST_F(TmConvertTest, SnprintfUllTruncatesLikeLibc)
{
    static char dst[8];
    char expect[8];
    const int elen = std::snprintf(expect, sizeof(expect), "%llu",
                                   123456789ull);
    const int len = tm::run(attr, [&](tm::TxDesc &tx) {
        return tmsafe::tm_snprintf_ull(tx, dst, sizeof(dst), 123456789ull);
    });
    EXPECT_EQ(len, elen);
    EXPECT_STREQ(dst, expect);
}

TEST_F(TmConvertTest, SnprintfStrMarshalsSharedSource)
{
    static char src[32];
    static char dst[32];
    std::strcpy(src, "shared-string");
    const int len = tm::run(attr, [&](tm::TxDesc &tx) {
        return tmsafe::tm_snprintf_str(tx, dst, sizeof(dst), src,
                                       sizeof(src));
    });
    EXPECT_EQ(len, 13);
    EXPECT_STREQ(dst, "shared-string");
}

TEST_F(TmConvertTest, SnprintfStatShapesRow)
{
    static char dst[64];
    tm::run(attr, [&](tm::TxDesc &tx) {
        tmsafe::tm_snprintf_stat(tx, dst, sizeof(dst), "curr_items", 42);
    });
    EXPECT_STREQ(dst, "STAT curr_items 42\r\n");
}

TEST_F(TmConvertTest, HtonsMatchesSystem)
{
    for (std::uint16_t v : {std::uint16_t{0}, std::uint16_t{1},
                            std::uint16_t{0x1234}, std::uint16_t{0xffff}}) {
        EXPECT_EQ(tmsafe::tm_htons(v), htons(v));
        EXPECT_EQ(tmsafe::tm_ntohs(tmsafe::tm_htons(v)), v);
    }
}

TEST_F(TmConvertTest, ReallocGrowsAndPreservesContents)
{
    static char *shared = nullptr;
    shared = static_cast<char *>(std::malloc(16));
    std::memcpy(shared, "0123456789abcdef", 16);
    char *grown = tm::run(attr, [&](tm::TxDesc &tx) {
        return static_cast<char *>(
            tmsafe::tm_realloc(tx, shared, 16, 64));
    });
    EXPECT_EQ(std::memcmp(grown, "0123456789abcdef", 16), 0);
    std::free(grown);
}

TEST_F(TmConvertTest, ReallocAbortedKeepsOriginal)
{
    static char *shared = nullptr;
    shared = static_cast<char *>(std::malloc(16));
    std::memcpy(shared, "keepme_keepme_k", 16);
    int attempts = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        if (++attempts == 1) {
            (void)tmsafe::tm_realloc(tx, shared, 16, 64);
            throw tm::TxAbort{};  // New buffer reclaimed, old kept.
        }
    });
    EXPECT_EQ(std::memcmp(shared, "keepme_keepme_k", 16), 0);
    std::free(shared);
}

TEST_F(TmConvertTest, MarshalRoundTrip)
{
    static char shared_in[64];
    static char shared_out[64];
    std::strcpy(shared_in, "marshal me");
    tm::run(attr, [&](tm::TxDesc &tx) {
        char stack[64];
        tmsafe::marshalIn(tx, stack, shared_in, sizeof(stack));
        // "Pure" private-memory work:
        for (char *p = stack; *p; ++p)
            *p = static_cast<char>(std::toupper(
                static_cast<unsigned char>(*p)));
        tmsafe::marshalOut(tx, shared_out, stack, sizeof(stack));
    });
    EXPECT_STREQ(shared_out, "MARSHAL ME");
}

} // namespace
