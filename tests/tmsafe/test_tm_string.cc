/**
 * @file
 * Extensional-equivalence tests: every tmsafe function must agree with
 * its libc counterpart, both the transactional clone (inside a
 * transaction) and the naive non-transactional clone.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tm/api.h"
#include "tmsafe/tm_string.h"

namespace
{

using namespace tmemc;

const tm::TxnAttr attr{"tmsafe:test", tm::TxnKind::Atomic, false};

class TmStringTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
    }
};

TEST_F(TmStringTest, MemcpyMatchesLibc)
{
    static char src[257];
    static char dst[257];
    XorShift128 rng(1);
    for (int round = 0; round < 50; ++round) {
        const std::size_t n = rng.nextBounded(256) + 1;
        for (std::size_t i = 0; i < n; ++i)
            src[i] = static_cast<char>(rng.next());
        std::memset(dst, 0, sizeof(dst));
        tm::run(attr, [&](tm::TxDesc &tx) {
            tmsafe::tm_memcpy(tx, dst, src, n);
        });
        EXPECT_EQ(std::memcmp(dst, src, n), 0);
    }
}

TEST_F(TmStringTest, MemmoveHandlesOverlapBothWays)
{
    static char buf[128];
    // Forward overlap (dst > src).
    for (int i = 0; i < 64; ++i)
        buf[i] = static_cast<char>('A' + i % 26);
    char expect[128];
    std::memcpy(expect, buf, sizeof(buf));
    std::memmove(expect + 10, expect, 50);
    tm::run(attr, [&](tm::TxDesc &tx) {
        tmsafe::tm_memmove(tx, buf + 10, buf, 50);
    });
    EXPECT_EQ(std::memcmp(buf, expect, 64), 0);

    // Backward overlap (dst < src).
    for (int i = 0; i < 64; ++i)
        buf[i] = static_cast<char>('a' + i % 26);
    std::memcpy(expect, buf, sizeof(buf));
    std::memmove(expect, expect + 7, 40);
    tm::run(attr, [&](tm::TxDesc &tx) {
        tmsafe::tm_memmove(tx, buf, buf + 7, 40);
    });
    EXPECT_EQ(std::memcmp(buf, expect, 64), 0);
}

TEST_F(TmStringTest, MemcmpSignMatchesLibc)
{
    static char a[64];
    static char b[64];
    XorShift128 rng(2);
    for (int round = 0; round < 200; ++round) {
        const std::size_t n = rng.nextBounded(63) + 1;
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = static_cast<char>(rng.nextBounded(4));
            b[i] = static_cast<char>(rng.nextBounded(4));
        }
        const int expect = std::memcmp(a, b, n);
        const int got = tm::run(attr, [&](tm::TxDesc &tx) {
            return tmsafe::tm_memcmp(tx, a, b, n);
        });
        EXPECT_EQ(got < 0, expect < 0);
        EXPECT_EQ(got > 0, expect > 0);
        EXPECT_EQ(got == 0, expect == 0);
        EXPECT_EQ(tmsafe::naive_memcmp(a, b, n) == 0, expect == 0);
    }
}

TEST_F(TmStringTest, MemsetFills)
{
    static char buf[100];
    std::memset(buf, 1, sizeof(buf));
    tm::run(attr, [&](tm::TxDesc &tx) {
        tmsafe::tm_memset(tx, buf + 3, 0x7e, 90);
    });
    EXPECT_EQ(buf[2], 1);
    for (int i = 3; i < 93; ++i)
        ASSERT_EQ(buf[i], 0x7e);
    EXPECT_EQ(buf[93], 1);
}

TEST_F(TmStringTest, StrlenMatches)
{
    static char s[128];
    for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 100u}) {
        std::memset(s, 'q', len);
        s[len] = '\0';
        const std::size_t got = tm::run(attr, [&](tm::TxDesc &tx) {
            return tmsafe::tm_strlen(tx, s);
        });
        EXPECT_EQ(got, len);
        EXPECT_EQ(tmsafe::naive_strlen(s), len);
    }
}

TEST_F(TmStringTest, StrncmpMatchesLibc)
{
    static char a[32];
    static char b[32];
    const char *cases[][2] = {{"hello", "hello"}, {"hello", "help"},
                              {"abc", "abcd"},    {"", ""},
                              {"zz", "za"},       {"same", "same"}};
    for (const auto &cs : cases) {
        std::strcpy(a, cs[0]);
        std::strcpy(b, cs[1]);
        for (std::size_t n : {0u, 2u, 4u, 8u}) {
            const int expect = std::strncmp(a, b, n);
            const int got = tm::run(attr, [&](tm::TxDesc &tx) {
                return tmsafe::tm_strncmp(tx, a, b, n);
            });
            EXPECT_EQ(got < 0, expect < 0) << cs[0] << " vs " << cs[1];
            EXPECT_EQ(got > 0, expect > 0);
        }
    }
}

TEST_F(TmStringTest, StrncpyPadsWithNulsLikeLibc)
{
    static char src[16];
    static char dst[16];
    static char expect[16];
    std::strcpy(src, "hi");
    std::memset(dst, 0x55, sizeof(dst));
    std::memset(expect, 0x55, sizeof(expect));
    std::strncpy(expect, src, 10);
    tm::run(attr, [&](tm::TxDesc &tx) {
        tmsafe::tm_strncpy(tx, dst, src, 10);
    });
    EXPECT_EQ(std::memcmp(dst, expect, 16), 0);
}

TEST_F(TmStringTest, StrchrFindsAndMisses)
{
    static char s[] = "find the needle";
    const char *hit = tm::run(attr, [&](tm::TxDesc &tx) {
        return tmsafe::tm_strchr(tx, s, 'n');
    });
    EXPECT_EQ(hit, std::strchr(s, 'n'));
    const char *miss = tm::run(attr, [&](tm::TxDesc &tx) {
        return tmsafe::tm_strchr(tx, s, 'z');
    });
    EXPECT_EQ(miss, nullptr);
    // Searching for NUL returns the terminator, like libc.
    const char *term = tm::run(attr, [&](tm::TxDesc &tx) {
        return tmsafe::tm_strchr(tx, s, '\0');
    });
    EXPECT_EQ(term, s + std::strlen(s));
}

TEST_F(TmStringTest, TransactionalCopyIsAtomicUnderAbort)
{
    // If the transaction aborts after tm_memcpy, the destination must
    // be fully restored (direct-update undo covers byte-granular ops).
    static char dst[64];
    std::memset(dst, 'o', sizeof(dst));
    char snapshot[64];
    std::memcpy(snapshot, dst, sizeof(dst));
    int attempts = 0;
    tm::run(attr, [&](tm::TxDesc &tx) {
        if (++attempts == 1) {
            char src[64];
            std::memset(src, 'n', sizeof(src));
            tmsafe::tm_memcpy(tx, dst, src, sizeof(src));
            throw tm::TxAbort{};
        }
    });
    EXPECT_EQ(std::memcmp(dst, snapshot, sizeof(dst)), 0);
}

} // namespace
