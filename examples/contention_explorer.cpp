/**
 * @file
 * Contention explorer: the paper's Figure 11 question — which STM
 * algorithm and contention manager should an expert pick? — on a
 * tunable microworkload instead of the full cache.
 *
 * Threads increment counters drawn from a small hot set; --hot
 * controls how contended the workload is. Compare commits/second and
 * abort rates across algorithm x contention-manager combinations.
 *
 * Usage: contention_explorer [threads] [hot-set-size]
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;

const tm::TxnAttr site{"explorer:rmw", tm::TxnKind::Atomic, false};

constexpr int kCells = 1024;
std::uint64_t gCells[kCells];

struct Combo
{
    const char *label;
    tm::AlgoKind algo;
    tm::CmKind cm;
    bool serialLock;
};

double
runCombo(const Combo &combo, std::uint32_t threads, int hot,
         std::uint64_t ops_per_thread, double &aborts_per_commit)
{
    tm::RuntimeCfg cfg;
    cfg.algo = combo.algo;
    cfg.cm = combo.cm;
    cfg.useSerialLock = combo.serialLock;
    tm::Runtime::get().configure(cfg);
    tm::Runtime::get().resetStats();
    for (auto &c : gCells)
        c = 0;

    WallTimer timer;
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(t + 99);
            for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
                const int a = static_cast<int>(rng.nextBounded(hot));
                const int b = static_cast<int>(rng.nextBounded(hot));
                tm::run(site, [&](tm::TxDesc &tx) {
                    // A small read-modify-write transaction over two
                    // hot cells.
                    tm::txStore<std::uint64_t>(
                        tx, &gCells[a], tm::txLoad(tx, &gCells[a]) + 1);
                    tm::txStore<std::uint64_t>(
                        tx, &gCells[b], tm::txLoad(tx, &gCells[b]) + 1);
                });
            }
        });
    }
    for (auto &w : workers)
        w.join();
    const double secs = timer.elapsedSeconds();

    const auto snap = tm::Runtime::get().snapshot();
    aborts_per_commit =
        snap.total.commits > 0
            ? static_cast<double>(snap.total.aborts) /
                  static_cast<double>(snap.total.commits)
            : 0.0;

    // Sanity: increments must never be lost.
    std::uint64_t total = 0;
    for (auto &c : gCells)
        total += c;
    if (total != 2 * threads * ops_per_thread)
        std::fprintf(stderr, "LOST UPDATES in %s!\n", combo.label);
    return static_cast<double>(threads) *
           static_cast<double>(ops_per_thread) / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t threads =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
    const int hot = argc > 2 ? std::atoi(argv[2]) : 16;
    const std::uint64_t ops = 50000;

    const Combo combos[] = {
        {"GCC default (serialize@100)", tm::AlgoKind::GccEager,
         tm::CmKind::SerialAfterN, true},
        {"GCC-NoCM (no serial lock)", tm::AlgoKind::GccEager,
         tm::CmKind::NoCM, false},
        {"GCC-Backoff", tm::AlgoKind::GccEager, tm::CmKind::Backoff,
         false},
        {"GCC-Hourglass", tm::AlgoKind::GccEager, tm::CmKind::Hourglass,
         false},
        {"Lazy-NoCM", tm::AlgoKind::Lazy, tm::CmKind::NoCM, false},
        {"NOrec-NoCM", tm::AlgoKind::NOrec, tm::CmKind::NoCM, false},
        {"Serial (reference)", tm::AlgoKind::Serial,
         tm::CmKind::SerialAfterN, true},
    };

    std::printf("contention explorer: %u threads, hot set %d, "
                "%llu txns/thread\n\n",
                threads, hot, static_cast<unsigned long long>(ops));
    std::printf("%-30s %14s %16s\n", "configuration", "txns/sec",
                "aborts/commit");
    for (const Combo &combo : combos) {
        double apc = 0.0;
        const double rate = runCombo(combo, threads, hot, ops, apc);
        std::printf("%-30s %14.0f %16.3f\n", combo.label, rate, apc);
    }
    std::printf("\npaper takeaway (Section 4): real workloads are "
                "sensitive to these\nchoices; direct update wins on "
                "latency despite high abort rates, and\nhourglass "
                "throttling tracks no-CM while guaranteeing progress.\n");
    return 0;
}
