/**
 * @file
 * A transactional memcached "server": the full stack — worklist
 * dispatcher (libevent substitute), text protocol, and a cache branch
 * of your choice — driven by in-process clients.
 *
 * Usage: tm_kv_server [branch] [workers] [requests-per-client]
 *   branch defaults to IT-onCommit; try Baseline, IP-Callable, ...
 *
 * Build & run:  ./build/examples/tm_kv_server IT-onCommit 4 2000
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "mc/cache_iface.h"
#include "mc/protocol.h"
#include "mc/worklist.h"
#include "tm/api.h"

int
main(int argc, char **argv)
{
    using namespace tmemc;
    const std::string branch = argc > 1 ? argv[1] : "IT-onCommit";
    const std::uint32_t workers =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;
    const int requests = argc > 3 ? std::atoi(argv[3]) : 2000;

    tm::Runtime::get().configure(tm::RuntimeCfg{});

    mc::Settings settings;
    settings.maxBytes = 64 * 1024 * 1024;
    auto cache = mc::makeCache(branch, settings, workers);
    if (cache == nullptr) {
        std::fprintf(stderr, "unknown branch '%s'\n", branch.c_str());
        return 1;
    }
    std::printf("tm_kv_server: branch=%s workers=%u\n",
                cache->branchName(), workers);

    // The server: a worklist whose handler runs the protocol.
    mc::Worklist worklist(workers,
                          [&](std::uint32_t w, const mc::ConnWork &work) {
                              return mc::protocolExecute(*cache, w,
                                                         work.request);
                          });

    // A version probe, like a client's first exchange.
    std::atomic<int> outstanding{0};
    auto submit = [&](std::string req,
                      std::function<void(std::string)> check) {
        outstanding.fetch_add(1);
        worklist.submit(std::move(req), [&, check](std::string reply) {
            if (check)
                check(std::move(reply));
            outstanding.fetch_sub(1);
        });
    };
    submit("version\r\n", [](std::string reply) {
        std::printf("server says: %s", reply.c_str());
    });

    // In-process clients hammering the protocol.
    WallTimer timer;
    std::atomic<std::uint64_t> stored{0};
    std::atomic<std::uint64_t> hits{0};
    std::vector<std::thread> clients;
    for (std::uint32_t c = 0; c < 3; ++c) {
        clients.emplace_back([&, c] {
            XorShift128 rng(c + 1);
            for (int i = 0; i < requests; ++i) {
                const std::string key =
                    "user:" + std::to_string(rng.nextBounded(500));
                if (rng.nextDouble() < 0.2) {
                    const std::string val =
                        "profile-data-" + std::to_string(i);
                    char req[256];
                    std::snprintf(req, sizeof(req),
                                  "set %s 0 0 %zu\r\n%s\r\n", key.c_str(),
                                  val.size(), val.c_str());
                    submit(req, [&](std::string reply) {
                        if (reply == "STORED\r\n")
                            stored.fetch_add(1);
                    });
                } else {
                    submit("get " + key + "\r\n",
                           [&](std::string reply) {
                               if (reply.rfind("VALUE ", 0) == 0)
                                   hits.fetch_add(1);
                           });
                }
            }
        });
    }
    for (auto &t : clients)
        t.join();
    while (outstanding.load() != 0)
        std::this_thread::yield();
    const double secs = timer.elapsedSeconds();

    std::printf("%d requests in %.3f s (%.0f req/s); stored=%llu "
                "hits=%llu\n",
                3 * requests, secs, 3 * requests / secs,
                static_cast<unsigned long long>(stored.load()),
                static_cast<unsigned long long>(hits.load()));

    // Ask the server for its stats the way a client would.
    submit("stats\r\n", [](std::string reply) {
        std::printf("\n%s", reply.c_str());
    });
    while (outstanding.load() != 0)
        std::this_thread::yield();

    const auto snap = tm::Runtime::get().snapshot();
    if (snap.total.txns > 0) {
        std::printf("\nTM: %llu txns, %llu commits, %llu aborts, "
                    "start-serial=%llu in-flight=%llu\n",
                    static_cast<unsigned long long>(snap.total.txns),
                    static_cast<unsigned long long>(snap.total.commits),
                    static_cast<unsigned long long>(snap.total.aborts),
                    static_cast<unsigned long long>(snap.total.startSerial),
                    static_cast<unsigned long long>(
                        snap.total.inflightSwitch));
    }
    return 0;
}
