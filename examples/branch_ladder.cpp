/**
 * @file
 * The experience report as a runnable demo: walk the paper's
 * transactionalization ladder branch by branch, run the same workload
 * on each, and narrate what changed and what it did to serialization
 * and running time.
 *
 * Build & run:  ./build/examples/branch_ladder
 */

#include <cstdio>
#include <string>

#include "common/timer.h"
#include "mc/cache_iface.h"
#include "tm/api.h"
#include "workload/memslap.h"

namespace
{

using namespace tmemc;

struct Rung
{
    const char *branch;
    const char *what;
};

const Rung kLadder[] = {
    {"Baseline",
     "memcached 1.4.15 as shipped: pthread locks, condition variables,\n"
     "   lock_incr refcounts, volatile maintenance flags"},
    {"Semaphore",
     "Section 3.2: condition variables replaced with semaphores so the\n"
     "   associated locks can become transactions"},
    {"IP",
     "Section 3.3: every lock replaced; item locks become transactional\n"
     "   booleans and privatize their data (Figure 1a)"},
    {"IT",
     "the other fork: item critical sections become transactions\n"
     "   (Figure 1b); the save-for-later corner cases disappear"},
    {"IP-Callable",
     "transaction_callable annotations applied (38 of them in the\n"
     "   paper); GCC already infers safety, so nothing changes"},
    {"IP-Max",
     "volatiles and refcounts rewritten as transaction expressions;\n"
     "   start-serial causes vanish, transaction counts grow"},
    {"IP-Lib",
     "Section 3.4: memcmp/memcpy/strtoull/snprintf replaced with\n"
     "   transaction-safe reimplementations and marshaling wrappers"},
    {"IP-onCommit",
     "Section 3.5: fprintf/sem_post/asserts move to onCommit handlers;\n"
     "   no transaction can serialize any more"},
};

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t threads = argc > 1
        ? static_cast<std::uint32_t>(std::atoi(argv[1]))
        : 4;

    std::printf("Transactionalizing legacy code, one branch at a time\n");
    std::printf("(workload: %u threads x 10000 ops, 9:1 get:set)\n\n",
                threads);

    for (const Rung &rung : kLadder) {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        tm::Runtime::get().resetStats();

        mc::Settings settings;
        settings.maxBytes = 128 * 1024 * 1024;
        auto cache = mc::makeCache(rung.branch, settings, threads);

        workload::MemslapCfg w;
        w.concurrency = threads;
        w.executeNumber = 10000;
        w.windowSize = 5000;
        const auto result = workload::runMemslap(*cache, w);
        cache.reset();

        const auto snap = tm::Runtime::get().snapshot();
        std::printf("%-12s %s\n", rung.branch, rung.what);
        if (snap.total.txns == 0) {
            std::printf("   -> %.3f s; no transactions (lock-based)\n\n",
                        result.seconds);
            continue;
        }
        if (snap.total.inflightSwitch > 0 &&
            std::string(rung.branch) == "IP") {
            // Show off the serialization-blame diagnostic once.
            std::printf("%s", snap.formatBlame().c_str());
        }
        std::printf("   -> %.3f s; %llu txns, start-serial %llu "
                    "(%.1f%%), in-flight %llu (%.1f%%), "
                    "abort-serial %llu\n\n",
                    result.seconds,
                    static_cast<unsigned long long>(snap.total.txns),
                    static_cast<unsigned long long>(snap.total.startSerial),
                    100.0 * snap.total.startSerial / snap.total.txns,
                    static_cast<unsigned long long>(
                        snap.total.inflightSwitch),
                    100.0 * snap.total.inflightSwitch / snap.total.txns,
                    static_cast<unsigned long long>(snap.total.abortSerial));
    }

    // The final move: remove the readers/writer lock (Figure 10).
    {
        tm::RuntimeCfg rcfg;
        rcfg.useSerialLock = false;
        rcfg.cm = tm::CmKind::NoCM;
        tm::Runtime::get().configure(rcfg);
        tm::Runtime::get().resetStats();
        mc::Settings settings;
        settings.maxBytes = 128 * 1024 * 1024;
        auto cache = mc::makeCache("IP-onCommit", settings, threads);
        workload::MemslapCfg w;
        w.concurrency = threads;
        w.executeNumber = 10000;
        w.windowSize = 5000;
        const auto result = workload::runMemslap(*cache, w);
        cache.reset();
        const auto snap = tm::Runtime::get().snapshot();
        std::printf("%-12s Section 4: with zero serialization, delete "
                    "the global\n   readers/writer lock from the TM "
                    "runtime itself\n",
                    "IP-NoLock");
        std::printf("   -> %.3f s; %llu txns, %llu aborts, zero serial "
                    "transactions\n",
                    result.seconds,
                    static_cast<unsigned long long>(snap.total.txns),
                    static_cast<unsigned long long>(snap.total.aborts));
    }
    return 0;
}
