/**
 * @file
 * Quickstart: the tmemc transactional-memory API in five minutes.
 *
 * Shows the library rendering of the Draft C++ TM Specification
 * constructs the paper studies: atomic and relaxed transactions,
 * transaction expressions, unsafe operations and the in-flight switch,
 * onCommit handlers, and the runtime statistics.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "tm/api.h"

namespace
{

using namespace tmemc;

// A static attribute per transaction site, as GCC derives one per
// __transaction block. Atomic = statically guaranteed never to
// serialize; Relaxed = may perform unsafe operations.
const tm::TxnAttr xferSite{"quickstart:transfer", tm::TxnKind::Atomic,
                           false};
const tm::TxnAttr auditSite{"quickstart:audit", tm::TxnKind::Atomic,
                            false};
const tm::TxnAttr logSite{"quickstart:logged-transfer",
                          tm::TxnKind::Relaxed, false};

constexpr int kAccounts = 8;
std::int64_t gAccounts[kAccounts];

void
transfer(int from, int to, std::int64_t amount)
{
    // __transaction_atomic { ... }
    tm::run(xferSite, [&](tm::TxDesc &tx) {
        const std::int64_t f = tm::txLoad(tx, &gAccounts[from]);
        tm::txStore(tx, &gAccounts[from], f - amount);
        const std::int64_t t = tm::txLoad(tx, &gAccounts[to]);
        tm::txStore(tx, &gAccounts[to], t + amount);
    });
}

std::int64_t
audit()
{
    // A transaction expression: the transaction produces a value.
    return tm::run(auditSite, [&](tm::TxDesc &tx) {
        std::int64_t total = 0;
        for (auto &acct : gAccounts)
            total += tm::txLoad(tx, &acct);
        return total;
    });
}

void
loggedTransfer(int from, int to, std::int64_t amount, bool verbose)
{
    // A relaxed transaction: it may perform I/O. Two ways to do it:
    // the unsafe way serializes the transaction (in-flight switch);
    // the onCommit way keeps it fully concurrent — the paper's
    // Section 3.5 insight.
    tm::run(logSite, [&](tm::TxDesc &tx) {
        const std::int64_t f = tm::txLoad(tx, &gAccounts[from]);
        tm::txStore(tx, &gAccounts[from], f - amount);
        const std::int64_t t = tm::txLoad(tx, &gAccounts[to]);
        tm::txStore(tx, &gAccounts[to], t + amount);
        if (verbose) {
            tm::onCommit(tx, [=] {
                std::printf("  [log] moved %lld from %d to %d\n",
                            static_cast<long long>(amount), from, to);
            });
        }
    });
}

} // namespace

int
main()
{
    // Configure the runtime: GCC's defaults (eager direct-update STM,
    // serialize-after-100-aborts, global readers/writer lock).
    tm::Runtime::get().configure(tm::RuntimeCfg{});

    for (auto &acct : gAccounts)
        acct = 1000;

    std::printf("== concurrent transfers ==\n");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < 25000; ++i)
                transfer((t + i) % kAccounts, (t + i + 3) % kAccounts,
                         1);
        });
    }
    for (auto &th : threads)
        th.join();

    std::printf("total after 100000 transfers: %lld (expected %d)\n",
                static_cast<long long>(audit()), kAccounts * 1000);

    std::printf("\n== relaxed transaction with onCommit logging ==\n");
    loggedTransfer(0, 1, 5, true);
    loggedTransfer(1, 0, 5, false);
    std::printf("total: %lld\n", static_cast<long long>(audit()));

    std::printf("\n== runtime statistics ==\n");
    const auto snap = tm::Runtime::get().snapshot();
    std::printf("transactions: %llu, commits: %llu, aborts: %llu\n",
                static_cast<unsigned long long>(snap.total.txns),
                static_cast<unsigned long long>(snap.total.commits),
                static_cast<unsigned long long>(snap.total.aborts));
    std::printf("serialized: start=%llu in-flight=%llu by-aborts=%llu\n",
                static_cast<unsigned long long>(snap.total.startSerial),
                static_cast<unsigned long long>(snap.total.inflightSwitch),
                static_cast<unsigned long long>(snap.total.abortSerial));
    std::printf("\n%s", snap.formatProfile().c_str());
    return 0;
}
