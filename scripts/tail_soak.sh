#!/usr/bin/env bash
# tail_soak.sh — the nightly tail-blame gate.
#
# Boots one sharded tmemc_server with the tail tracer armed and a
# deliberately slow shard (--slow-shard injects a stall into that
# shard's mc.shard<N>.op fault site), drives it with bench_net
# --connect over loopback, then terminates the server so it writes its
# tmemc-tail-v1 dump. Fails if:
#   - the client loses responses or the server exits nonzero,
#   - `stats tail` does not report an armed tracer with kept requests,
#   - parse_tail.py does not blame the injected shard for the tail
#     (--assert-top-shard) — the end-to-end claim: the tracer finds
#     the planted needle, attributed to the right shard.
#
# Usage: tail_soak.sh [BUILD_DIR] [OPS_PER_THREAD] [THREADS]
# Env:   TMEMC_TAIL_JSON_OUT (dump path; default under mktemp -d)
#        TMEMC_TAIL_PORT (default 11511)
#        TMEMC_TAIL_SHARDS (default 8)
#        TMEMC_TAIL_SLOW_SHARD (default 3)
#        TMEMC_TAIL_DELAY_US (default 400)
#        TMEMC_TAIL_EVERY_N (default 1)

set -euo pipefail

BUILD=${1:-build}
OPS=${2:-20000}
THREADS=${3:-4}
PORT=${TMEMC_TAIL_PORT:-11511}
SHARDS=${TMEMC_TAIL_SHARDS:-8}
SLOW=${TMEMC_TAIL_SLOW_SHARD:-3}
DELAY_US=${TMEMC_TAIL_DELAY_US:-400}
EVERY_N=${TMEMC_TAIL_EVERY_N:-1}

SERVER="$BUILD/src/net/tmemc_server"
BENCH="$BUILD/bench/bench_net"
PARSE="$(dirname "$0")/parse_tail.py"
[ -x "$SERVER" ] || { echo "missing $SERVER (build first)" >&2; exit 2; }
[ -x "$BENCH" ] || { echo "missing $BENCH (build first)" >&2; exit 2; }

LOG_DIR=$(mktemp -d)
# Overridable so CI can upload the dump as an artifact.
TAIL_JSON="${TMEMC_TAIL_JSON_OUT:-$LOG_DIR/tail.json}"
SERVER_PID=""
cleanup() {
    if [ -n "$SERVER_PID" ]; then
        kill -9 "$SERVER_PID" 2>/dev/null || true
    fi
    wait 2>/dev/null || true
}
trap cleanup EXIT
trap 'trap - EXIT; cleanup; exit 130' INT
trap 'trap - EXIT; cleanup; exit 143' TERM

"$SERVER" --port "$PORT" --branch IT-onCommit --shards "$SHARDS" \
    --workers "$THREADS" --mem 64 --tail --tail-json "$TAIL_JSON" \
    --slow-shard "$SLOW:$DELAY_US:$EVERY_N" \
    >"$LOG_DIR/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
        exec 3>&- 3<&- 2>/dev/null || true
        break
    fi
    sleep 0.1
done
echo "server up: 127.0.0.1:$PORT shards=$SHARDS" \
     "slow-shard=$SLOW (+${DELAY_US}us every $EVERY_N ops)"

"$BENCH" --connect "$PORT" --ops "$OPS" --window 2000 \
    --threads "$THREADS" | tee "$LOG_DIR/bench.log"

# The live view must already show kept traces before shutdown.
STATS=$(exec 3<>"/dev/tcp/127.0.0.1/$PORT" &&
        printf 'stats tail\r\nquit\r\n' >&3 && timeout 5 cat <&3)
grep -q '^STAT tail_armed 1' <<<"$STATS" || {
    echo "tail_soak: FAILED (stats tail reports tracer disarmed)" >&2
    exit 1
}
KEPT=$(sed -n 's/^STAT tail_kept \([0-9]*\).*/\1/p' <<<"$STATS")
if [ -z "$KEPT" ] || [ "$KEPT" -eq 0 ]; then
    echo "tail_soak: FAILED (stats tail kept no requests)" >&2
    exit 1
fi
echo "stats tail: kept=$KEPT"

kill -TERM "$SERVER_PID"
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
SERVER_PID=""
if [ "$SERVER_RC" -ne 0 ]; then
    cat "$LOG_DIR/server.log"
    echo "tail_soak: FAILED (server exit $SERVER_RC)" >&2
    exit 1
fi
[ -s "$TAIL_JSON" ] || {
    echo "tail_soak: FAILED (server wrote no $TAIL_JSON)" >&2
    exit 1
}

python3 "$PARSE" "$TAIL_JSON" --top 3 --assert-top-shard "$SLOW"
echo "tail_soak: OK (shard $SLOW blamed for the injected stall)"
