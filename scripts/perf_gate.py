#!/usr/bin/env python3
"""CI performance gate over tmemc-bench-v1 JSON files.

Benchmark binaries emit rows via --json (see bench/figure_harness.h):

    {"schema": "tmemc-bench-v1",
     "rows": [{"bench": ..., "branch": ..., "threads": N, "shards": N,
               "secs": S, "ops_per_sec": R, "p99_us": P,
               "aborts_per_commit": A, "serial_pct": C}, ...]}

Rows are keyed by (bench, branch, threads, shards). Three subcommands:

  check       compare current run(s) against a checked-in baseline;
              exits 1 on a throughput regression beyond --threshold
              (default 25%), on a serialization-taxonomy band change,
              or on a baseline row missing from the current run.
  rebaseline  merge run files into a fresh baseline document.
  selftest    verify the gate's own behaviour on synthetic data
              (identity passes, a 2x slowdown fails, a taxonomy shift
              fails, a missing row fails).

The taxonomy bands mirror the paper's serialization story: a branch is
"none" (serial_pct < 0.5, e.g. the lock-based Baseline), "some"
(< 50), or "dominant" (>= 50, e.g. IT before the Callable fix). A
branch drifting between bands means the reproduction changed shape,
not just speed, and no throughput threshold should excuse that.

Absolute ops/s thresholds are noisy across heterogeneous runners;
--normalize [PREFIX=]KEY (KEY = "bench:branch:threads:shards",
repeatable) divides each row's throughput by a reference row from the
same side before comparing, gating on relative shape instead. PREFIX
scopes a reference to the benches whose name starts with it — use one
reference per bench *binary* (e.g. bench_fig4=... and bench_net=...),
because the load noise normalization cancels is only shared within a
single binary's run. CI uses exactly that two-reference form.
"""

import argparse
import json
import sys


BANDS = (("none", 0.5), ("some", 50.0))  # else "dominant"


def band(serial_pct):
    for name, upper in BANDS:
        if serial_pct < upper:
            return name
    return "dominant"


def key_of(row):
    return (row["bench"], row["branch"], int(row["threads"]),
            int(row["shards"]))


def key_str(key):
    return "%s:%s:%d:%d" % key


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "tmemc-bench-v1":
        raise SystemExit("%s: not a tmemc-bench-v1 file" % path)
    return doc["rows"]


def index_rows(row_lists):
    out = {}
    for rows in row_lists:
        for row in rows:
            out[key_of(row)] = row
    return out


def normalize(rows_by_key, refs):
    """Rescale ops_per_sec by reference rows from the same side.

    refs is a list of (bench_prefix, ref_key): rows whose bench name
    starts with bench_prefix are divided by that side's reference
    row's ops_per_sec (first matching prefix wins; an empty prefix
    matches everything). Scoping matters because the noise that
    normalization removes is only shared within one binary's run —
    dividing a bench_net row by a bench_fig4 reference *adds* the two
    runs' noise instead of cancelling it.
    """
    scales = []
    for prefix, ref_key in refs:
        ref = rows_by_key.get(ref_key)
        if ref is None or ref["ops_per_sec"] <= 0:
            raise SystemExit("normalize reference row %s missing or "
                             "zero" % key_str(ref_key))
        scales.append((prefix, ref["ops_per_sec"]))
    out = {}
    for k, r in rows_by_key.items():
        for prefix, scale in scales:
            if k[0].startswith(prefix):
                out[k] = dict(r, ops_per_sec=r["ops_per_sec"] / scale)
                break
        else:
            out[k] = dict(r)
    return out


def compare(baseline, current, threshold):
    """Return (failures, entries): failure strings plus one diff entry
    per baseline row."""
    failures = []
    entries = []
    for key, base in sorted(baseline.items()):
        name = key_str(key)
        cur = current.get(key)
        if cur is None:
            failures.append("missing row: %s" % name)
            entries.append({"key": name, "status": "missing",
                            "baseline_ops_per_sec":
                                base["ops_per_sec"]})
            continue
        ratio = (cur["ops_per_sec"] / base["ops_per_sec"]
                 if base["ops_per_sec"] > 0 else 1.0)
        base_band = band(base.get("serial_pct", 0.0))
        cur_band = band(cur.get("serial_pct", 0.0))
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "regression"
            failures.append(
                "throughput regression: %s %.4g -> %.4g ops/s "
                "(%.1f%% of baseline, floor %.1f%%)"
                % (name, base["ops_per_sec"], cur["ops_per_sec"],
                   100.0 * ratio, 100.0 * (1.0 - threshold)))
        if base_band != cur_band:
            status = "taxonomy"
            failures.append(
                "serialization taxonomy changed: %s %s (%.2f%%) -> "
                "%s (%.2f%%)"
                % (name, base_band, base.get("serial_pct", 0.0),
                   cur_band, cur.get("serial_pct", 0.0)))
        entries.append({
            "key": name,
            "status": status,
            "baseline_ops_per_sec": base["ops_per_sec"],
            "current_ops_per_sec": cur["ops_per_sec"],
            "ratio": round(ratio, 4),
            "baseline_band": base_band,
            "current_band": cur_band,
            "baseline_p99_us": base.get("p99_us"),
            "current_p99_us": cur.get("p99_us"),
        })
    for key in sorted(set(current) - set(baseline)):
        entries.append({"key": key_str(key), "status": "new"})
    return failures, entries


def cmd_check(args):
    baseline = index_rows([load_rows(args.baseline)])
    current = index_rows([load_rows(p) for p in args.current])
    if args.normalize:
        refs = []
        for spec in args.normalize:
            prefix, _, keypart = spec.rpartition("=")
            parts = keypart.split(":")
            if len(parts) != 4:
                raise SystemExit("--normalize wants [PREFIX=]bench:"
                                 "branch:threads:shards")
            refs.append((prefix, (parts[0], parts[1], int(parts[2]),
                                  int(parts[3]))))
        baseline = normalize(baseline, refs)
        current = normalize(current, refs)
    failures, entries = compare(baseline, current, args.threshold)
    if args.diff_out:
        with open(args.diff_out, "w") as f:
            json.dump({"schema": "tmemc-perf-diff-v1",
                       "threshold": args.threshold,
                       "failures": failures,
                       "rows": entries}, f, indent=2)
            f.write("\n")
    for entry in entries:
        if "ratio" in entry:
            print("%-60s %-10s %6.1f%%"
                  % (entry["key"], entry["status"],
                     100.0 * entry["ratio"]))
        else:
            print("%-60s %s" % (entry["key"], entry["status"]))
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        return 1
    print("\nperf gate OK (%d rows within %.0f%%)"
          % (len(entries), 100.0 * args.threshold))
    return 0


def cmd_rebaseline(args):
    merged = index_rows([load_rows(p) for p in args.inputs])
    rows = [merged[k] for k in sorted(merged)]
    with open(args.out, "w") as f:
        json.dump({"schema": "tmemc-bench-v1", "rows": rows}, f,
                  indent=2)
        f.write("\n")
    print("wrote %s (%d rows)" % (args.out, len(rows)))
    return 0


def synthetic(ops_scale=1.0, serial_pct=None, drop=None):
    rows = {
        ("bench_fig4", "Baseline", 4, 1): (2.5e6, 0.0),
        ("bench_fig4", "IP", 4, 1): (4.4e4, 29.8),
        ("bench_fig4", "IT", 4, 1): (6.4e4, 64.0),
        ("bench_net_loopback", "IT-onCommit", 4, 1): (8.4e4, 0.0),
    }
    out = {}
    for key, (ops, pct) in rows.items():
        if key == drop:
            continue
        if serial_pct is not None:
            pct = serial_pct.get(key, pct)
        out[key] = {"bench": key[0], "branch": key[1],
                    "threads": key[2], "shards": key[3],
                    "secs": 1.0, "ops_per_sec": ops * ops_scale,
                    "p99_us": 5.0, "aborts_per_commit": 0.1,
                    "serial_pct": pct}
    return out


def cmd_selftest(_args):
    base = synthetic()
    cases = [
        ("identity passes", synthetic(), 0),
        ("2x slowdown fails", synthetic(ops_scale=0.5), 1),
        ("10% dip passes at 25% threshold",
         synthetic(ops_scale=0.9), 0),
        ("taxonomy shift fails",
         synthetic(serial_pct={("bench_fig4", "IP", 4, 1): 75.0}), 1),
        ("missing row fails",
         synthetic(drop=("bench_fig4", "IT", 4, 1)), 1),
    ]
    ok = True
    for name, current, want in cases:
        failures, _ = compare(base, current, 0.25)
        got = 1 if failures else 0
        status = "pass" if got == want else "FAIL"
        ok = ok and got == want
        print("selftest: %-35s %s" % (name, status))
        if got == want and failures:
            for failure in failures:
                print("          (expected) " + failure)
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("check")
    p.add_argument("--baseline", required=True)
    p.add_argument("--current", nargs="+", required=True)
    p.add_argument("--threshold", type=float, default=0.25)
    p.add_argument("--diff-out")
    p.add_argument("--normalize", action="append",
                   help="reference row [PREFIX=]bench:branch:threads:"
                        "shards; repeatable, PREFIX scopes it to "
                        "benches whose name starts with PREFIX")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("rebaseline")
    p.add_argument("--out", required=True)
    p.add_argument("inputs", nargs="+")
    p.set_defaults(fn=cmd_rebaseline)

    p = sub.add_parser("selftest")
    p.set_defaults(fn=cmd_selftest)

    args = parser.parse_args()
    sys.exit(args.fn(args))


if __name__ == "__main__":
    main()
