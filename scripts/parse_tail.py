#!/usr/bin/env python3
"""Render tmemc-tail-v1 dumps: per-request timelines + tail blame.

The tail tracer (src/obs/tail.h) keeps the K slowest requests with
their full parse->exec->tx-attempts->flush span chains; tmemc_server
--tail-json (or the `tail` admin command, or bench_net --tail-json)
dumps them as:

    {"schema": "tmemc-tail-v1", "branch": ..., "algo": ...,
     "armed": B, "k": K, "considered": N, "kept": M,
     "requests": [{"id", "worker", "shard", "binary", "start_ns",
                   "total_ns", "overflow",
                   "spans": [{"kind", "shard", "t0_ns", "dur_ns",
                              tx only: "attempt", "outcome",
                              "serial", "site", "cause"}, ...]}, ...]}

This script answers "where did the tail go": it draws an ASCII
timeline for the slowest requests and aggregates per-shard blame —
what fraction of each shard's tail time sat in discarded transaction
attempts (aborts/retries), in serial-mode execution (in-flight
switches, ro-fast promotions, and commits under the global lock), and
in flush waits, versus useful parse+exec work.

--assert-top-shard S exits 1 unless the shard owning the most tail
time is S — the nightly soak injects a slow shard and requires the
blame to land on it. --selftest checks the blame math on synthetic
data and needs no input file.
"""

import argparse
import json
import sys


# Span-time categories, keyed on the exact outcome strings
# txOutcomeName() emits (src/obs/tail.cc). A tx attempt that did not
# commit is wasted time: conflict aborts and retries are "abort"
# blame; serial switches and ro-fast promotions restart in serial
# mode, so they and committed-serial attempts are "serial" blame.
ABORT_OUTCOMES = ("abort", "retry")
SERIAL_OUTCOMES = ("serial-switch", "ro-promote", "serial-commit")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "tmemc-tail-v1":
        raise SystemExit("%s: not a tmemc-tail-v1 file" % path)
    return doc


def classify(span):
    """Blame category for one span: abort, serial, flush, or None
    (time already covered by the enclosing exec span)."""
    kind = span["kind"]
    if kind == "flush":
        return "flush"
    if kind != "tx":
        return None
    outcome = span.get("outcome", "")
    if outcome in ABORT_OUTCOMES:
        return "abort"
    if outcome in SERIAL_OUTCOMES or span.get("serial"):
        return "serial"
    return None


def request_blame(req):
    """Split one request's total_ns into blame buckets.

    tx spans nest inside the exec span, so the buckets are carved out
    of the total and the remainder ("work") is parse + exec time not
    attributable to aborts/serial/flush.
    """
    buckets = {"abort": 0, "serial": 0, "flush": 0}
    for span in req["spans"]:
        cat = classify(span)
        if cat is not None:
            buckets[cat] += span["dur_ns"]
    blamed = sum(buckets.values())
    buckets["work"] = max(0, req["total_ns"] - blamed)
    return buckets


def shard_blame(requests):
    """Aggregate request_blame by the shard each request ran on."""
    shards = {}
    for req in requests:
        agg = shards.setdefault(
            req["shard"],
            {"requests": 0, "total": 0,
             "abort": 0, "serial": 0, "flush": 0, "work": 0})
        agg["requests"] += 1
        agg["total"] += req["total_ns"]
        for cat, ns in request_blame(req).items():
            agg[cat] += ns
    return shards


def us(ns):
    return ns / 1000.0


def print_timeline(req, rank, width=48):
    spans = req["spans"]
    total = max(req["total_ns"], 1)
    print("#%-2d id=%d worker=%d shard=%d %s total=%.0fus%s"
          % (rank, req["id"], req["worker"], req["shard"],
             "binary" if req.get("binary") else "ascii",
             us(req["total_ns"]),
             " [overflow]" if req.get("overflow") else ""))
    for span in spans:
        lo = min(width - 1, span["t0_ns"] * width // total)
        hi = min(width, (span["t0_ns"] + span["dur_ns"]) * width
                 // total)
        bar = " " * lo + "#" * max(1, hi - lo)
        bar = bar[:width].ljust(width)
        if span["kind"] == "tx":
            label = "tx#%d %-7s %s" % (
                span.get("attempt", 0), span.get("outcome", "?"),
                span.get("site", ""))
            if span.get("serial"):
                label += " [serial]"
            if span.get("cause"):
                label += " (%s)" % span["cause"]
        else:
            label = span["kind"]
        print("  |%s| %8.1fus %8.1fus  s%-2d %s"
              % (bar, us(span["t0_ns"]), us(span["dur_ns"]),
                 span["shard"], label))


def print_blame(shards):
    print("%6s %9s %12s %8s %8s %8s %8s"
          % ("shard", "requests", "tail_ms", "abort%", "serial%",
             "flush%", "work%"))
    for shard in sorted(shards):
        agg = shards[shard]
        total = max(agg["total"], 1)
        print("%6d %9d %12.2f %7.1f%% %7.1f%% %7.1f%% %7.1f%%"
              % (shard, agg["requests"], agg["total"] / 1e6,
                 100.0 * agg["abort"] / total,
                 100.0 * agg["serial"] / total,
                 100.0 * agg["flush"] / total,
                 100.0 * agg["work"] / total))


def top_shard(shards):
    """The shard owning the most tail time (ties: lowest shard id)."""
    return min(shards,
               key=lambda s: (-shards[s]["total"], s)) if shards \
        else None


def run(doc, args):
    requests = doc.get("requests", [])
    print("tail dump: branch=%s algo=%s armed=%s k=%d considered=%d "
          "kept=%d"
          % (doc.get("branch", "?"), doc.get("algo", "?"),
             doc.get("armed"), doc.get("k", 0),
             doc.get("considered", 0), len(requests)))
    if not requests:
        print("no requests kept (tracer never armed, or no traffic)")
        return 1 if args.assert_top_shard is not None else 0

    ordered = sorted(requests, key=lambda r: -r["total_ns"])
    if not args.no_timelines:
        print("\nslowest %d of %d kept requests:"
              % (min(args.top, len(ordered)), len(ordered)))
        for rank, req in enumerate(ordered[:args.top]):
            print_timeline(req, rank)

    shards = shard_blame(requests)
    print("\nper-shard tail blame (% of that shard's tail time):")
    print_blame(shards)
    top = top_shard(shards)
    print("top blamed shard: %d (%.2fms of tail across %d requests)"
          % (top, shards[top]["total"] / 1e6,
             shards[top]["requests"]))

    if args.assert_top_shard is not None \
            and top != args.assert_top_shard:
        print("FAILED: expected shard %d to own the tail, got %d"
              % (args.assert_top_shard, top), file=sys.stderr)
        return 1
    return 0


def synthetic_doc():
    """Two shards; shard 3's requests are slow because of aborts."""
    def tx(t0, dur, outcome, serial=False, attempt=1):
        return {"kind": "tx", "shard": 3, "t0_ns": t0, "dur_ns": dur,
                "attempt": attempt, "outcome": outcome,
                "serial": serial, "site": "mc:test", "cause": ""}

    slow = {"id": 1, "worker": 0, "shard": 3, "binary": True,
            "start_ns": 0, "total_ns": 1000000, "overflow": False,
            "spans": [
                {"kind": "parse", "shard": 0, "t0_ns": 0,
                 "dur_ns": 1000},
                {"kind": "exec", "shard": 3, "t0_ns": 1000,
                 "dur_ns": 990000},
                tx(2000, 600000, "abort"),
                tx(610000, 100000, "serial-commit", serial=True,
                   attempt=2),
                {"kind": "flush", "shard": 3, "t0_ns": 991000,
                 "dur_ns": 9000}]}
    fast = {"id": 2, "worker": 1, "shard": 1, "binary": True,
            "start_ns": 0, "total_ns": 50000, "overflow": False,
            "spans": [
                {"kind": "parse", "shard": 0, "t0_ns": 0,
                 "dur_ns": 500},
                {"kind": "exec", "shard": 1, "t0_ns": 500,
                 "dur_ns": 49000},
                {"kind": "tx", "shard": 1, "t0_ns": 1000,
                 "dur_ns": 20000, "attempt": 1, "outcome": "commit",
                 "serial": False, "site": "mc:test", "cause": ""},
                {"kind": "flush", "shard": 1, "t0_ns": 49500,
                 "dur_ns": 500}]}
    return {"schema": "tmemc-tail-v1", "branch": "IT-onCommit",
            "algo": "gcc-eager", "armed": True, "k": 32,
            "considered": 2, "kept": 2, "requests": [slow, fast]}


def selftest():
    doc = synthetic_doc()
    shards = shard_blame(doc["requests"])
    checks = [
        ("shard 3 owns the tail", top_shard(shards) == 3),
        ("abort blame is the 600us discarded attempt",
         shards[3]["abort"] == 600000),
        ("serial blame is the 100us serial commit",
         shards[3]["serial"] == 100000),
        ("flush blame counted", shards[3]["flush"] == 9000),
        ("buckets sum to the request total",
         sum(shards[3][c] for c in
             ("abort", "serial", "flush", "work")) == 1000000),
        ("committed optimistic attempt is work, not blame",
         shards[1]["abort"] == 0 and shards[1]["serial"] == 0),
    ]
    ok = True
    for name, passed in checks:
        print("selftest: %-45s %s"
              % (name, "pass" if passed else "FAIL"))
        ok = ok and passed
    ns = argparse.Namespace(top=3, no_timelines=False,
                            assert_top_shard=3)
    ok = ok and run(doc, ns) == 0
    ns.assert_top_shard = 1
    ok = ok and run(doc, ns) == 1
    print("selftest: %s" % ("OK" if ok else "FAILED"))
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json", nargs="?",
                        help="tmemc-tail-v1 file to render")
    parser.add_argument("--top", type=int, default=5,
                        help="timelines to draw (default 5)")
    parser.add_argument("--no-timelines", action="store_true",
                        help="blame table only")
    parser.add_argument("--assert-top-shard", type=int,
                        help="exit 1 unless this shard owns the most "
                             "tail time")
    parser.add_argument("--selftest", action="store_true",
                        help="check the blame math on synthetic data")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    if args.json is None:
        parser.error("need a tmemc-tail-v1 file (or --selftest)")
    sys.exit(run(load(args.json), args))


if __name__ == "__main__":
    main()
