#!/usr/bin/env bash
# Format helper for the repo's .clang-format (gem5 style).
#
#   scripts/format.sh                 # reformat every tracked C++ file
#   scripts/format.sh --check         # dry-run -Werror over the tree
#   scripts/format.sh --check-diff R  # dry-run -Werror over files that
#                                     # changed since merge-base with R
#
# CLANG_FORMAT overrides the binary (e.g. CLANG_FORMAT=clang-format-18).

set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" > /dev/null; then
    echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT=...)" >&2
    exit 1
fi

mode="apply"
ref=""
case "${1:-}" in
    --check) mode="check" ;;
    --check-diff)
        mode="check"
        ref="${2:?--check-diff needs a ref}"
        ;;
    "") ;;
    *)
        echo "usage: $0 [--check | --check-diff <ref>]" >&2
        exit 2
        ;;
esac

if [[ -n "$ref" ]]; then
    base="$(git merge-base "$ref" HEAD)"
    mapfile -t files < <(git diff --name-only --diff-filter=ACMR \
        "$base" -- '*.cc' '*.h' '*.cpp')
else
    # Tracked files plus new not-yet-added ones, so a fresh source
    # file is formatted before its first commit.
    mapfile -t files < <({
        git ls-files '*.cc' '*.h' '*.cpp'
        git ls-files --others --exclude-standard '*.cc' '*.h' '*.cpp'
    } | sort -u)
fi

if [[ ${#files[@]} -eq 0 ]]; then
    echo "format.sh: no C++ files to check"
    exit 0
fi

echo "format.sh: ${mode} on ${#files[@]} files with $($CLANG_FORMAT --version)"
if [[ "$mode" == "check" ]]; then
    "$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
else
    "$CLANG_FORMAT" -i "${files[@]}"
fi
