#!/usr/bin/env bash
# chaos_cluster.sh — the kill-a-node gate at process granularity.
#
# Boots three tmemc_server processes on loopback, runs bench_cluster
# (R=2 replication, acked-update tracking) against them, kill -9s one
# node mid-run, restarts it, and fails if:
#   - bench_cluster reports any lost acknowledged update, or
#   - the kill window missed the run entirely (ejections == 0 means
#     the workload never saw the dead node — the gate proved nothing;
#     raise OPS), or
#   - the restarted node was never re-admitted (readmissions == 0).
#
# Usage: chaos_cluster.sh [BUILD_DIR] [OPS_PER_THREAD] [THREADS]
# Env:   TMEMC_CHAOS_BASE_PORT (default 11411)
#        TMEMC_CHAOS_KILL_AFTER / TMEMC_CHAOS_DOWN_FOR (seconds)

set -euo pipefail

BUILD=${1:-build}
OPS=${2:-60000}
THREADS=${3:-4}
BASE_PORT=${TMEMC_CHAOS_BASE_PORT:-11411}
KILL_AFTER=${TMEMC_CHAOS_KILL_AFTER:-0.7}
DOWN_FOR=${TMEMC_CHAOS_DOWN_FOR:-1.5}

SERVER="$BUILD/src/net/tmemc_server"
BENCH="$BUILD/bench/bench_cluster"
[ -x "$SERVER" ] || { echo "missing $SERVER (build first)" >&2; exit 2; }
[ -x "$BENCH" ] || { echo "missing $BENCH (build first)" >&2; exit 2; }

LOG_DIR=$(mktemp -d)
PIDS=()
BENCH_PID=""
cleanup() {
    # Kill the client first so its node-timeout logic stops driving
    # half-dead servers, then the nodes. Everything here is a child of
    # this shell, so the final wait reaps them all — after it returns,
    # no started pid can survive as a zombie or an orphan.
    if [ -n "$BENCH_PID" ]; then
        kill -9 "$BENCH_PID" 2>/dev/null || true
    fi
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
# INT/TERM must run the same cleanup as EXIT: a harness dying
# mid-kill-window used to orphan every tmemc_server it had started
# (plus bench_cluster, which cleanup never killed at all).
trap cleanup EXIT
trap 'trap - EXIT; cleanup; exit 130' INT
trap 'trap - EXIT; cleanup; exit 143' TERM

start_node() { # $1 = node index (0-based); appends to PIDS
    local port=$((BASE_PORT + $1))
    "$SERVER" --port "$port" --branch IP-onCommit --shards 4 \
        --workers 2 --mem 64 >"$LOG_DIR/node$1.log" 2>&1 &
    PIDS+=($!)
}

wait_ready() { # $1 = port
    for _ in $(seq 1 100); do
        if (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null; then
            exec 3>&- 3<&- 2>/dev/null || true
            return 0
        fi
        sleep 0.1
    done
    echo "node on port $1 never became ready" >&2
    return 1
}

for i in 0 1 2; do start_node "$i"; done
for i in 0 1 2; do wait_ready $((BASE_PORT + i)); done
ENDPOINTS="127.0.0.1:$BASE_PORT,127.0.0.1:$((BASE_PORT + 1)),127.0.0.1:$((BASE_PORT + 2))"
echo "cluster up: $ENDPOINTS"

"$BENCH" --cluster "$ENDPOINTS" --replicas 2 --node-timeout-ms 150 \
    --ops "$OPS" --threads "$THREADS" --window 2000 \
    --set-fraction 0.5 >"$LOG_DIR/bench.log" 2>&1 &
BENCH_PID=$!

sleep "$KILL_AFTER"
VICTIM_PID=${PIDS[1]}
echo "killing node 1 (pid $VICTIM_PID)"
kill -9 "$VICTIM_PID"
sleep "$DOWN_FOR"
echo "restarting node 1"
start_node 1
wait_ready $((BASE_PORT + 1))

BENCH_RC=0
wait "$BENCH_PID" || BENCH_RC=$?
cat "$LOG_DIR/bench.log"
if [ "$BENCH_RC" -ne 0 ]; then
    echo "chaos_cluster: FAILED (bench_cluster exit $BENCH_RC)" >&2
    exit 1
fi

CLUSTER_LINE=$(grep '^cluster:' "$LOG_DIR/bench.log" || true)
EJECTIONS=$(sed -n 's/.*ejections=\([0-9]*\).*/\1/p' <<<"$CLUSTER_LINE")
READMISSIONS=$(sed -n 's/.*readmissions=\([0-9]*\).*/\1/p' <<<"$CLUSTER_LINE")
if [ -z "$EJECTIONS" ] || [ "$EJECTIONS" -eq 0 ]; then
    echo "chaos_cluster: FAILED (no ejection observed — the kill" \
         "window missed the run; raise OPS)" >&2
    exit 1
fi
if [ -z "$READMISSIONS" ] || [ "$READMISSIONS" -eq 0 ]; then
    echo "chaos_cluster: FAILED (restarted node never re-admitted)" >&2
    exit 1
fi

# Tear down now and assert it actually worked: any started pid still
# alive after cleanup is the orphan bug this gate exists to catch.
trap - EXIT INT TERM
cleanup
for pid in "${PIDS[@]}" $BENCH_PID; do
    if kill -0 "$pid" 2>/dev/null; then
        echo "chaos_cluster: FAILED (pid $pid survived cleanup)" >&2
        exit 1
    fi
done
echo "chaos_cluster: OK (ejections=$EJECTIONS readmissions=$READMISSIONS, zero lost acked updates)"
