file(REMOVE_RECURSE
  "CMakeFiles/tm_kv_server.dir/tm_kv_server.cpp.o"
  "CMakeFiles/tm_kv_server.dir/tm_kv_server.cpp.o.d"
  "tm_kv_server"
  "tm_kv_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tm_kv_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
