# Empty compiler generated dependencies file for tm_kv_server.
# This may be replaced when dependencies are built.
