# Empty compiler generated dependencies file for branch_ladder.
# This may be replaced when dependencies are built.
