file(REMOVE_RECURSE
  "CMakeFiles/branch_ladder.dir/branch_ladder.cpp.o"
  "CMakeFiles/branch_ladder.dir/branch_ladder.cpp.o.d"
  "branch_ladder"
  "branch_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
