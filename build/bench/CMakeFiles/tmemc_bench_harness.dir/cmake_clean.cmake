file(REMOVE_RECURSE
  "CMakeFiles/tmemc_bench_harness.dir/figure_harness.cc.o"
  "CMakeFiles/tmemc_bench_harness.dir/figure_harness.cc.o.d"
  "libtmemc_bench_harness.a"
  "libtmemc_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmemc_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
