file(REMOVE_RECURSE
  "libtmemc_bench_harness.a"
)
