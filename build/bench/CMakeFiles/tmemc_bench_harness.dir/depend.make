# Empty dependencies file for tmemc_bench_harness.
# This may be replaced when dependencies are built.
