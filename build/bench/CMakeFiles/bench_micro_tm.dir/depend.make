# Empty dependencies file for bench_micro_tm.
# This may be replaced when dependencies are built.
