file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tm.dir/bench_micro_tm.cc.o"
  "CMakeFiles/bench_micro_tm.dir/bench_micro_tm.cc.o.d"
  "bench_micro_tm"
  "bench_micro_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
