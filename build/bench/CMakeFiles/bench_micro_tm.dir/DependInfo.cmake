
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_tm.cc" "bench/CMakeFiles/bench_micro_tm.dir/bench_micro_tm.cc.o" "gcc" "bench/CMakeFiles/bench_micro_tm.dir/bench_micro_tm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tmemc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/tmemc_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/tmemc_tm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
