file(REMOVE_RECURSE
  "CMakeFiles/bench_lockprof.dir/bench_lockprof.cc.o"
  "CMakeFiles/bench_lockprof.dir/bench_lockprof.cc.o.d"
  "bench_lockprof"
  "bench_lockprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lockprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
