# Empty compiler generated dependencies file for bench_lockprof.
# This may be replaced when dependencies are built.
