file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tmsafe.dir/bench_micro_tmsafe.cc.o"
  "CMakeFiles/bench_micro_tmsafe.dir/bench_micro_tmsafe.cc.o.d"
  "bench_micro_tmsafe"
  "bench_micro_tmsafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tmsafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
