# Empty dependencies file for bench_micro_tmsafe.
# This may be replaced when dependencies are built.
