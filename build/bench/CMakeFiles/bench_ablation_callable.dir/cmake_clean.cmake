file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_callable.dir/bench_ablation_callable.cc.o"
  "CMakeFiles/bench_ablation_callable.dir/bench_ablation_callable.cc.o.d"
  "bench_ablation_callable"
  "bench_ablation_callable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_callable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
