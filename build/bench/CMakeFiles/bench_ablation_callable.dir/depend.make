# Empty dependencies file for bench_ablation_callable.
# This may be replaced when dependencies are built.
