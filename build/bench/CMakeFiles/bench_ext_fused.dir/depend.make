# Empty dependencies file for bench_ext_fused.
# This may be replaced when dependencies are built.
