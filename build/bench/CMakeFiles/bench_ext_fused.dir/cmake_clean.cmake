file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fused.dir/bench_ext_fused.cc.o"
  "CMakeFiles/bench_ext_fused.dir/bench_ext_fused.cc.o.d"
  "bench_ext_fused"
  "bench_ext_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
