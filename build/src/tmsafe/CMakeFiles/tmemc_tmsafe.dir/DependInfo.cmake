
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmsafe/tm_alloc.cc" "src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/tm_alloc.cc.o" "gcc" "src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/tm_alloc.cc.o.d"
  "/root/repo/src/tmsafe/tm_convert.cc" "src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/tm_convert.cc.o" "gcc" "src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/tm_convert.cc.o.d"
  "/root/repo/src/tmsafe/tm_format.cc" "src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/tm_format.cc.o" "gcc" "src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/tm_format.cc.o.d"
  "/root/repo/src/tmsafe/tm_string.cc" "src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/tm_string.cc.o" "gcc" "src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/tm_string.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tm/CMakeFiles/tmemc_tm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
