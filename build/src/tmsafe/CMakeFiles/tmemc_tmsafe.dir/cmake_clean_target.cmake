file(REMOVE_RECURSE
  "libtmemc_tmsafe.a"
)
