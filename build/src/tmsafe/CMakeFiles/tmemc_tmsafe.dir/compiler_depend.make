# Empty compiler generated dependencies file for tmemc_tmsafe.
# This may be replaced when dependencies are built.
