file(REMOVE_RECURSE
  "CMakeFiles/tmemc_tmsafe.dir/tm_alloc.cc.o"
  "CMakeFiles/tmemc_tmsafe.dir/tm_alloc.cc.o.d"
  "CMakeFiles/tmemc_tmsafe.dir/tm_convert.cc.o"
  "CMakeFiles/tmemc_tmsafe.dir/tm_convert.cc.o.d"
  "CMakeFiles/tmemc_tmsafe.dir/tm_format.cc.o"
  "CMakeFiles/tmemc_tmsafe.dir/tm_format.cc.o.d"
  "CMakeFiles/tmemc_tmsafe.dir/tm_string.cc.o"
  "CMakeFiles/tmemc_tmsafe.dir/tm_string.cc.o.d"
  "libtmemc_tmsafe.a"
  "libtmemc_tmsafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmemc_tmsafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
