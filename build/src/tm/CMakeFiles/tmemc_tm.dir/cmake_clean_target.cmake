file(REMOVE_RECURSE
  "libtmemc_tm.a"
)
