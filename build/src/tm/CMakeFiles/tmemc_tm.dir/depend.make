# Empty dependencies file for tmemc_tm.
# This may be replaced when dependencies are built.
