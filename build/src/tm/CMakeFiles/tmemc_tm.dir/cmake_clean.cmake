file(REMOVE_RECURSE
  "CMakeFiles/tmemc_tm.dir/algo_gcc.cc.o"
  "CMakeFiles/tmemc_tm.dir/algo_gcc.cc.o.d"
  "CMakeFiles/tmemc_tm.dir/algo_lazy.cc.o"
  "CMakeFiles/tmemc_tm.dir/algo_lazy.cc.o.d"
  "CMakeFiles/tmemc_tm.dir/algo_norec.cc.o"
  "CMakeFiles/tmemc_tm.dir/algo_norec.cc.o.d"
  "CMakeFiles/tmemc_tm.dir/algo_serial.cc.o"
  "CMakeFiles/tmemc_tm.dir/algo_serial.cc.o.d"
  "CMakeFiles/tmemc_tm.dir/cm.cc.o"
  "CMakeFiles/tmemc_tm.dir/cm.cc.o.d"
  "CMakeFiles/tmemc_tm.dir/runtime.cc.o"
  "CMakeFiles/tmemc_tm.dir/runtime.cc.o.d"
  "CMakeFiles/tmemc_tm.dir/stats.cc.o"
  "CMakeFiles/tmemc_tm.dir/stats.cc.o.d"
  "libtmemc_tm.a"
  "libtmemc_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmemc_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
