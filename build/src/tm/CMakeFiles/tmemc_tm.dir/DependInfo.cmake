
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tm/algo_gcc.cc" "src/tm/CMakeFiles/tmemc_tm.dir/algo_gcc.cc.o" "gcc" "src/tm/CMakeFiles/tmemc_tm.dir/algo_gcc.cc.o.d"
  "/root/repo/src/tm/algo_lazy.cc" "src/tm/CMakeFiles/tmemc_tm.dir/algo_lazy.cc.o" "gcc" "src/tm/CMakeFiles/tmemc_tm.dir/algo_lazy.cc.o.d"
  "/root/repo/src/tm/algo_norec.cc" "src/tm/CMakeFiles/tmemc_tm.dir/algo_norec.cc.o" "gcc" "src/tm/CMakeFiles/tmemc_tm.dir/algo_norec.cc.o.d"
  "/root/repo/src/tm/algo_serial.cc" "src/tm/CMakeFiles/tmemc_tm.dir/algo_serial.cc.o" "gcc" "src/tm/CMakeFiles/tmemc_tm.dir/algo_serial.cc.o.d"
  "/root/repo/src/tm/cm.cc" "src/tm/CMakeFiles/tmemc_tm.dir/cm.cc.o" "gcc" "src/tm/CMakeFiles/tmemc_tm.dir/cm.cc.o.d"
  "/root/repo/src/tm/runtime.cc" "src/tm/CMakeFiles/tmemc_tm.dir/runtime.cc.o" "gcc" "src/tm/CMakeFiles/tmemc_tm.dir/runtime.cc.o.d"
  "/root/repo/src/tm/stats.cc" "src/tm/CMakeFiles/tmemc_tm.dir/stats.cc.o" "gcc" "src/tm/CMakeFiles/tmemc_tm.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
