# Empty compiler generated dependencies file for tmemc_workload.
# This may be replaced when dependencies are built.
