file(REMOVE_RECURSE
  "CMakeFiles/tmemc_workload.dir/memslap.cc.o"
  "CMakeFiles/tmemc_workload.dir/memslap.cc.o.d"
  "libtmemc_workload.a"
  "libtmemc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmemc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
