file(REMOVE_RECURSE
  "libtmemc_workload.a"
)
