
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/binary_protocol.cc" "src/mc/CMakeFiles/tmemc_mc.dir/binary_protocol.cc.o" "gcc" "src/mc/CMakeFiles/tmemc_mc.dir/binary_protocol.cc.o.d"
  "/root/repo/src/mc/branch.cc" "src/mc/CMakeFiles/tmemc_mc.dir/branch.cc.o" "gcc" "src/mc/CMakeFiles/tmemc_mc.dir/branch.cc.o.d"
  "/root/repo/src/mc/protocol.cc" "src/mc/CMakeFiles/tmemc_mc.dir/protocol.cc.o" "gcc" "src/mc/CMakeFiles/tmemc_mc.dir/protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tm/CMakeFiles/tmemc_tm.dir/DependInfo.cmake"
  "/root/repo/build/src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
