file(REMOVE_RECURSE
  "libtmemc_mc.a"
)
