# Empty compiler generated dependencies file for tmemc_mc.
# This may be replaced when dependencies are built.
