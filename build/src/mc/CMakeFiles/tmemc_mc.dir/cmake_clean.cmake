file(REMOVE_RECURSE
  "CMakeFiles/tmemc_mc.dir/binary_protocol.cc.o"
  "CMakeFiles/tmemc_mc.dir/binary_protocol.cc.o.d"
  "CMakeFiles/tmemc_mc.dir/branch.cc.o"
  "CMakeFiles/tmemc_mc.dir/branch.cc.o.d"
  "CMakeFiles/tmemc_mc.dir/protocol.cc.o"
  "CMakeFiles/tmemc_mc.dir/protocol.cc.o.d"
  "libtmemc_mc.a"
  "libtmemc_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmemc_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
