# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tm "/root/repo/build/tests/test_tm")
set_tests_properties(test_tm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tm_concurrent "/root/repo/build/tests/test_tm_concurrent")
set_tests_properties(test_tm_concurrent PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;27;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tmsafe "/root/repo/build/tests/test_tmsafe")
set_tests_properties(test_tmsafe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;35;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mc_components "/root/repo/build/tests/test_mc_components")
set_tests_properties(test_mc_components PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;40;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mc_branches "/root/repo/build/tests/test_mc_branches")
set_tests_properties(test_mc_branches PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;44;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mc_concurrent "/root/repo/build/tests/test_mc_concurrent")
set_tests_properties(test_mc_concurrent PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;48;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_serialization_profile "/root/repo/build/tests/test_serialization_profile")
set_tests_properties(test_serialization_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;52;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_protocol "/root/repo/build/tests/test_protocol")
set_tests_properties(test_protocol PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;56;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model_oracle "/root/repo/build/tests/test_model_oracle")
set_tests_properties(test_model_oracle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;62;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_soak "/root/repo/build/tests/test_soak")
set_tests_properties(test_soak PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;66;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workload "/root/repo/build/tests/test_workload")
set_tests_properties(test_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;70;tmemc_add_test;/root/repo/tests/CMakeLists.txt;0;")
