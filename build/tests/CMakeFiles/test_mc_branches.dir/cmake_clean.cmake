file(REMOVE_RECURSE
  "CMakeFiles/test_mc_branches.dir/mc/test_cache_branches.cc.o"
  "CMakeFiles/test_mc_branches.dir/mc/test_cache_branches.cc.o.d"
  "test_mc_branches"
  "test_mc_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
