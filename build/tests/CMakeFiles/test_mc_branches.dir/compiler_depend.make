# Empty compiler generated dependencies file for test_mc_branches.
# This may be replaced when dependencies are built.
