file(REMOVE_RECURSE
  "CMakeFiles/test_mc_components.dir/mc/test_components.cc.o"
  "CMakeFiles/test_mc_components.dir/mc/test_components.cc.o.d"
  "test_mc_components"
  "test_mc_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
