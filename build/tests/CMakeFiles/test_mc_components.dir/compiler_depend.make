# Empty compiler generated dependencies file for test_mc_components.
# This may be replaced when dependencies are built.
