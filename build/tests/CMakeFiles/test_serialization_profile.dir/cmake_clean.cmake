file(REMOVE_RECURSE
  "CMakeFiles/test_serialization_profile.dir/mc/test_serialization_profile.cc.o"
  "CMakeFiles/test_serialization_profile.dir/mc/test_serialization_profile.cc.o.d"
  "test_serialization_profile"
  "test_serialization_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serialization_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
