# Empty dependencies file for test_serialization_profile.
# This may be replaced when dependencies are built.
