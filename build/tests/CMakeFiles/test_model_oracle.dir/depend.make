# Empty dependencies file for test_model_oracle.
# This may be replaced when dependencies are built.
