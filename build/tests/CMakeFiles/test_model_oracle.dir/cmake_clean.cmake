file(REMOVE_RECURSE
  "CMakeFiles/test_model_oracle.dir/mc/test_model_oracle.cc.o"
  "CMakeFiles/test_model_oracle.dir/mc/test_model_oracle.cc.o.d"
  "test_model_oracle"
  "test_model_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
