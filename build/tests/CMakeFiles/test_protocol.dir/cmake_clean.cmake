file(REMOVE_RECURSE
  "CMakeFiles/test_protocol.dir/mc/test_binary_protocol.cc.o"
  "CMakeFiles/test_protocol.dir/mc/test_binary_protocol.cc.o.d"
  "CMakeFiles/test_protocol.dir/mc/test_protocol.cc.o"
  "CMakeFiles/test_protocol.dir/mc/test_protocol.cc.o.d"
  "CMakeFiles/test_protocol.dir/mc/test_protocol_fuzz.cc.o"
  "CMakeFiles/test_protocol.dir/mc/test_protocol_fuzz.cc.o.d"
  "test_protocol"
  "test_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
