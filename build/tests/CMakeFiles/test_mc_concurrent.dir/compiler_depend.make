# Empty compiler generated dependencies file for test_mc_concurrent.
# This may be replaced when dependencies are built.
