file(REMOVE_RECURSE
  "CMakeFiles/test_mc_concurrent.dir/mc/test_cache_concurrent.cc.o"
  "CMakeFiles/test_mc_concurrent.dir/mc/test_cache_concurrent.cc.o.d"
  "test_mc_concurrent"
  "test_mc_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
