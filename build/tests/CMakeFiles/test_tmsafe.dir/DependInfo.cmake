
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tmsafe/test_tm_convert.cc" "tests/CMakeFiles/test_tmsafe.dir/tmsafe/test_tm_convert.cc.o" "gcc" "tests/CMakeFiles/test_tmsafe.dir/tmsafe/test_tm_convert.cc.o.d"
  "/root/repo/tests/tmsafe/test_tm_string.cc" "tests/CMakeFiles/test_tmsafe.dir/tmsafe/test_tm_string.cc.o" "gcc" "tests/CMakeFiles/test_tmsafe.dir/tmsafe/test_tm_string.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tmemc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/tmemc_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/tmemc_tm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
