file(REMOVE_RECURSE
  "CMakeFiles/test_tmsafe.dir/tmsafe/test_tm_convert.cc.o"
  "CMakeFiles/test_tmsafe.dir/tmsafe/test_tm_convert.cc.o.d"
  "CMakeFiles/test_tmsafe.dir/tmsafe/test_tm_string.cc.o"
  "CMakeFiles/test_tmsafe.dir/tmsafe/test_tm_string.cc.o.d"
  "test_tmsafe"
  "test_tmsafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmsafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
