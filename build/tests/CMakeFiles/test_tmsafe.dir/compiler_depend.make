# Empty compiler generated dependencies file for test_tmsafe.
# This may be replaced when dependencies are built.
