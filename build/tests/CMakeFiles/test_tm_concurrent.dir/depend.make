# Empty dependencies file for test_tm_concurrent.
# This may be replaced when dependencies are built.
