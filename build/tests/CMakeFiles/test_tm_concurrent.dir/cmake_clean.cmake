file(REMOVE_RECURSE
  "CMakeFiles/test_tm_concurrent.dir/tm/test_atomicity.cc.o"
  "CMakeFiles/test_tm_concurrent.dir/tm/test_atomicity.cc.o.d"
  "CMakeFiles/test_tm_concurrent.dir/tm/test_privatization.cc.o"
  "CMakeFiles/test_tm_concurrent.dir/tm/test_privatization.cc.o.d"
  "CMakeFiles/test_tm_concurrent.dir/tm/test_stress.cc.o"
  "CMakeFiles/test_tm_concurrent.dir/tm/test_stress.cc.o.d"
  "test_tm_concurrent"
  "test_tm_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tm_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
