
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tm/test_algos.cc" "tests/CMakeFiles/test_tm.dir/tm/test_algos.cc.o" "gcc" "tests/CMakeFiles/test_tm.dir/tm/test_algos.cc.o.d"
  "/root/repo/tests/tm/test_api.cc" "tests/CMakeFiles/test_tm.dir/tm/test_api.cc.o" "gcc" "tests/CMakeFiles/test_tm.dir/tm/test_api.cc.o.d"
  "/root/repo/tests/tm/test_cm.cc" "tests/CMakeFiles/test_tm.dir/tm/test_cm.cc.o" "gcc" "tests/CMakeFiles/test_tm.dir/tm/test_cm.cc.o.d"
  "/root/repo/tests/tm/test_handlers.cc" "tests/CMakeFiles/test_tm.dir/tm/test_handlers.cc.o" "gcc" "tests/CMakeFiles/test_tm.dir/tm/test_handlers.cc.o.d"
  "/root/repo/tests/tm/test_redo_log.cc" "tests/CMakeFiles/test_tm.dir/tm/test_redo_log.cc.o" "gcc" "tests/CMakeFiles/test_tm.dir/tm/test_redo_log.cc.o.d"
  "/root/repo/tests/tm/test_retry.cc" "tests/CMakeFiles/test_tm.dir/tm/test_retry.cc.o" "gcc" "tests/CMakeFiles/test_tm.dir/tm/test_retry.cc.o.d"
  "/root/repo/tests/tm/test_serial_lock.cc" "tests/CMakeFiles/test_tm.dir/tm/test_serial_lock.cc.o" "gcc" "tests/CMakeFiles/test_tm.dir/tm/test_serial_lock.cc.o.d"
  "/root/repo/tests/tm/test_serialization.cc" "tests/CMakeFiles/test_tm.dir/tm/test_serialization.cc.o" "gcc" "tests/CMakeFiles/test_tm.dir/tm/test_serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/tmemc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/tmemc_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/tmsafe/CMakeFiles/tmemc_tmsafe.dir/DependInfo.cmake"
  "/root/repo/build/src/tm/CMakeFiles/tmemc_tm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
