file(REMOVE_RECURSE
  "CMakeFiles/test_tm.dir/tm/test_algos.cc.o"
  "CMakeFiles/test_tm.dir/tm/test_algos.cc.o.d"
  "CMakeFiles/test_tm.dir/tm/test_api.cc.o"
  "CMakeFiles/test_tm.dir/tm/test_api.cc.o.d"
  "CMakeFiles/test_tm.dir/tm/test_cm.cc.o"
  "CMakeFiles/test_tm.dir/tm/test_cm.cc.o.d"
  "CMakeFiles/test_tm.dir/tm/test_handlers.cc.o"
  "CMakeFiles/test_tm.dir/tm/test_handlers.cc.o.d"
  "CMakeFiles/test_tm.dir/tm/test_redo_log.cc.o"
  "CMakeFiles/test_tm.dir/tm/test_redo_log.cc.o.d"
  "CMakeFiles/test_tm.dir/tm/test_retry.cc.o"
  "CMakeFiles/test_tm.dir/tm/test_retry.cc.o.d"
  "CMakeFiles/test_tm.dir/tm/test_serial_lock.cc.o"
  "CMakeFiles/test_tm.dir/tm/test_serial_lock.cc.o.d"
  "CMakeFiles/test_tm.dir/tm/test_serialization.cc.o"
  "CMakeFiles/test_tm.dir/tm/test_serialization.cc.o.d"
  "test_tm"
  "test_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
