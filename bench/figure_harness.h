/**
 * @file
 * Shared driver for the figure/table reproduction binaries.
 *
 * Each paper figure is a set of (label, cache branch, TM runtime
 * config) series swept over worker-thread counts; each paper table is
 * the serialization profile of a set of branches at 4 threads. This
 * harness runs those sweeps with the memslap-like workload and prints
 * rows shaped like the paper's.
 *
 * The paper's parameters were --execute-number=625000 per thread with
 * 5 trials on a 12-core Xeon 5650; the defaults here are scaled down
 * (--ops to override) so a full figure regenerates in minutes on a
 * small container. Time-per-fixed-work is reported exactly as in the
 * figures: perfect scaling is a flat line across thread counts.
 */

#ifndef TMEMC_BENCH_FIGURE_HARNESS_H
#define TMEMC_BENCH_FIGURE_HARNESS_H

#include <string>
#include <vector>

#include "mc/cache_iface.h"
#include "tm/attr.h"
#include "workload/memslap.h"

namespace tmemc::bench
{

/** One curve in a figure. */
struct SeriesSpec
{
    std::string label;        //!< Legend label ("IP-Callable", ...).
    std::string cacheBranch;  //!< Branch name for makeCache().
    tm::RuntimeCfg runtime;   //!< TM runtime configuration.
};

/** Harness options (from the command line). */
struct HarnessOpts
{
    std::vector<std::uint32_t> threads{1, 2, 4, 8, 12};
    std::uint64_t opsPerThread = 20000;
    std::uint32_t trials = 3;
    std::uint64_t windowSize = 10000;
    std::size_t valueSize = 100;
    double setFraction = 0.1;
    bool emitCsv = false;
    /** Cache shard count (1 = the unsharded cache, as in the paper). */
    std::uint32_t shards = 1;
    /** --json OUT: write every measured row as tmemc-bench-v1 JSON. */
    std::string jsonPath;
    /** Row label for the JSON output; parseArgs derives it from the
     *  binary name ("bench_fig4"). */
    std::string benchName;
};

/** Measured cell: mean and standard deviation over trials. */
struct Cell
{
    double meanSeconds = 0.0;
    double stddevSeconds = 0.0;
    double opsPerSec = 0.0;
    /** Best (minimum) trial time and the throughput it implies. The
     *  JSON rows the perf gate diffs use these: for a fixed-work
     *  bench, background load only ever *adds* time, so best-of-K is
     *  the noise-robust estimate of the machine's capability. */
    double bestSeconds = 0.0;
    double bestOpsPerSec = 0.0;
    /** Tail and TM shape of the final trial (obs::MetricsRegistry). */
    double p99Us = 0.0;
    double abortsPerCommit = 0.0;
    double serialPct = 0.0;
};

/**
 * One machine-readable benchmark row. results/baseline.json and the
 * CI perf gate (scripts/perf_gate.py) consume files of these; rows
 * are keyed by (bench, branch, threads, shards).
 */
struct BenchRow
{
    std::string bench;
    std::string branch;
    std::uint32_t threads = 0;
    std::uint32_t shards = 1;
    double secs = 0.0;
    double opsPerSec = 0.0;
    double p99Us = 0.0;
    double abortsPerCommit = 0.0;
    double serialPct = 0.0;
};

/** Queue a row for writeBenchJson (process-global accumulator). */
void addBenchRow(const BenchRow &row);

/** Write every queued row to @p path as one tmemc-bench-v1 document.
 *  @return false on I/O failure. */
bool writeBenchJson(const std::string &path);

/** Parse --ops/--trials/--threads/--value/--csv/--set-fraction/
 *  --shards/--json. */
HarnessOpts parseArgs(int argc, char **argv);

/** Run one (series, threads) cell: trials x (fresh cache + workload). */
Cell runCell(const SeriesSpec &spec, std::uint32_t threads,
             const HarnessOpts &opts);

/**
 * Run and print a full figure: one row per thread count, one column
 * per series, each cell "seconds (+/- sd)".
 */
void runFigure(const std::string &title,
               const std::vector<SeriesSpec> &series,
               const HarnessOpts &opts);

/**
 * Run and print a serialization table (paper Tables 1-4): each branch
 * at 4 worker threads, columns Transactions / In-Flight Switch /
 * Start Serial / Abort Serial.
 */
void runSerializationTable(const std::string &title,
                           const std::vector<SeriesSpec> &series,
                           const HarnessOpts &opts);

/** Default runtime config (GCC: eager algo, serialize-after-100). */
tm::RuntimeCfg gccDefaultRuntime();

/** NoLock runtime (Figure 10): no serial lock, no CM. */
tm::RuntimeCfg noLockRuntime();

/** Spec helpers for the standard branch ladder. */
SeriesSpec branchSeries(const std::string &branch);

} // namespace tmemc::bench

#endif // TMEMC_BENCH_FIGURE_HARNESS_H
