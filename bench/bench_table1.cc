/**
 * @file
 * Table 1: frequency and cause of serialized transactions for a
 * 4-thread execution of the stage-3 branches.
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);
    runSerializationTable("Table 1: serialization causes (stage 3)",
                          {
                              branchSeries("IP"),
                              branchSeries("IT"),
                              branchSeries("IP-Callable"),
                              branchSeries("IT-Callable"),
                          },
                          opts);
    return 0;
}
