/**
 * @file
 * Table 4: serialization causes after the onCommit stage (4 threads).
 * The headline row: the onCommit branches have zero start-serial and
 * zero in-flight switches; only abort-driven serialization remains.
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);
    runSerializationTable("Table 4: serialization causes (onCommit stage)",
                          {
                              branchSeries("IP-Callable"),
                              branchSeries("IT-Callable"),
                              branchSeries("IP-Lib"),
                              branchSeries("IT-Lib"),
                              branchSeries("IP-onCommit"),
                              branchSeries("IT-onCommit"),
                          },
                          opts);
    return 0;
}
