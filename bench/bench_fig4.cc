/**
 * @file
 * Figure 4: performance of baseline transactional memcached — the
 * lock-based Baseline, the semaphore refactor, and the first
 * transactional branches (IP / IT), with and without callable
 * annotations.
 *
 * Paper findings to look for in the output: the condvar->semaphore
 * switch is performance-neutral; IP scales better than IT at this
 * stage; the callable annotation makes no difference.
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);
    runFigure("Figure 4: baseline transactional memcached",
              {
                  branchSeries("Baseline"),
                  branchSeries("Semaphore"),
                  branchSeries("IP"),
                  branchSeries("IT"),
                  branchSeries("IP-Callable"),
                  branchSeries("IT-Callable"),
                  // Release-acquire TM (branch #14): the fence-free
                  // algorithm must hold the line against gcc-eager IT.
                  branchSeries("IT-RA"),
              },
              opts);
    return 0;
}
