/**
 * @file
 * Figure 8: performance with transaction-safe library functions. The
 * paper's finding: a notable improvement over Max, especially at high
 * thread counts, though not yet matching IP-Callable.
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);
    runFigure("Figure 8: transaction-safe libraries",
              {
                  branchSeries("Baseline"),
                  branchSeries("IP-Callable"),
                  branchSeries("IT-Callable"),
                  branchSeries("IP-Max"),
                  branchSeries("IT-Max"),
                  branchSeries("IP-Lib"),
                  branchSeries("IT-Lib"),
              },
              opts);
    return 0;
}
