/**
 * @file
 * google-benchmark microbenchmarks of the TM runtime: the ablations
 * behind the paper's Section 4/5 claims.
 *
 *  - instrumentation cost: an uninstrumented RMW vs a transactional
 *    RMW under each algorithm ("every read and write of shared data
 *    involves a function call");
 *  - single-location transactions ("GCC currently does not optimize
 *    single-location transactions, and thus this change could have a
 *    significant impact on performance") — the cost of the Max stage's
 *    refcount/volatile transaction expressions;
 *  - the serial-lock tax: begin/commit with and without the global
 *    readers/writer lock (the Figure 10 delta, isolated);
 *  - read-set scaling: commit-time validation cost as transactions
 *    read more locations.
 */

#include <benchmark/benchmark.h>

#include "tm/api.h"

namespace
{

using namespace tmemc;

const tm::TxnAttr attr{"micro:txn", tm::TxnKind::Atomic, false};

void
configure(tm::AlgoKind algo, bool serial_lock)
{
    tm::RuntimeCfg cfg;
    cfg.algo = algo;
    cfg.cm = serial_lock ? tm::CmKind::SerialAfterN : tm::CmKind::NoCM;
    cfg.useSerialLock = serial_lock;
    tm::Runtime::get().configure(cfg);
}

std::uint64_t gCell = 0;
std::uint64_t gArray[4096] = {};

void
BM_UninstrumentedRmw(benchmark::State &state)
{
    for (auto _ : state) {
        gCell = gCell + 1;
        benchmark::DoNotOptimize(gCell);
    }
}
BENCHMARK(BM_UninstrumentedRmw);

void
BM_AtomicRmw(benchmark::State &state)
{
    // memcached's lock_incr: the reference point the Max stage's
    // transactional refcounts replaced.
    for (auto _ : state)
        __atomic_add_fetch(&gCell, 1, __ATOMIC_SEQ_CST);
}
BENCHMARK(BM_AtomicRmw);

void
BM_TxnRmw(benchmark::State &state)
{
    configure(static_cast<tm::AlgoKind>(state.range(0)), true);
    for (auto _ : state) {
        tm::run(attr, [](tm::TxDesc &tx) {
            tm::txStore<std::uint64_t>(tx, &gCell,
                                       tm::txLoad(tx, &gCell) + 1);
        });
    }
}
BENCHMARK(BM_TxnRmw)
    ->Arg(static_cast<int>(tm::AlgoKind::GccEager))
    ->Arg(static_cast<int>(tm::AlgoKind::Lazy))
    ->Arg(static_cast<int>(tm::AlgoKind::NOrec))
    ->Arg(static_cast<int>(tm::AlgoKind::Serial));

void
BM_SingleLocationTxnExpr(benchmark::State &state)
{
    // The Max stage's transaction expression: one read, no writes.
    configure(tm::AlgoKind::GccEager, true);
    for (auto _ : state) {
        const std::uint64_t v = tm::run(attr, [](tm::TxDesc &tx) {
            return tm::txLoad(tx, &gCell);
        });
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_SingleLocationTxnExpr);

void
BM_VolatileReadBaseline(benchmark::State &state)
{
    for (auto _ : state) {
        const std::uint64_t v =
            *const_cast<const volatile std::uint64_t *>(&gCell);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_VolatileReadBaseline);

void
BM_EmptyTxnWithSerialLock(benchmark::State &state)
{
    configure(tm::AlgoKind::GccEager, true);
    for (auto _ : state)
        tm::run(attr, [](tm::TxDesc &) {});
}
BENCHMARK(BM_EmptyTxnWithSerialLock);

void
BM_EmptyTxnNoLock(benchmark::State &state)
{
    configure(tm::AlgoKind::GccEager, false);
    for (auto _ : state)
        tm::run(attr, [](tm::TxDesc &) {});
}
BENCHMARK(BM_EmptyTxnNoLock);

void
BM_ReadSetScaling(benchmark::State &state)
{
    configure(tm::AlgoKind::GccEager, true);
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        const std::uint64_t v = tm::run(attr, [&](tm::TxDesc &tx) {
            std::uint64_t sum = 0;
            for (int i = 0; i < n; ++i)
                sum += tm::txLoad(tx, &gArray[i]);
            return sum;
        });
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReadSetScaling)->Arg(8)->Arg(64)->Arg(512)->Arg(4096);

void
BM_WriteSetScaling(benchmark::State &state)
{
    configure(static_cast<tm::AlgoKind>(state.range(1)), true);
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        tm::run(attr, [&](tm::TxDesc &tx) {
            for (int i = 0; i < n; ++i)
                tm::txStore<std::uint64_t>(tx, &gArray[i], i);
        });
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WriteSetScaling)
    ->Args({64, static_cast<int>(tm::AlgoKind::GccEager)})
    ->Args({64, static_cast<int>(tm::AlgoKind::Lazy)})
    ->Args({64, static_cast<int>(tm::AlgoKind::NOrec)});

} // namespace

BENCHMARK_MAIN();
