/**
 * @file
 * Table 3: serialization causes after the Lib stage (4 threads).
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);
    runSerializationTable("Table 3: serialization causes (Lib stage)",
                          {
                              branchSeries("IP-Callable"),
                              branchSeries("IT-Callable"),
                              branchSeries("IP-Max"),
                              branchSeries("IT-Max"),
                              branchSeries("IP-Lib"),
                              branchSeries("IT-Lib"),
                          },
                          opts);
    return 0;
}
