/**
 * @file
 * Ablation: what would the transaction_callable annotation buy under a
 * conservative compiler?
 *
 * The paper found the annotation changed nothing because GCC infers
 * the safety of functions whose bodies it can see. This ablation turns
 * inference off (RuntimeCfg::inferCallableSafety = false), so every
 * unannotated helper call from a relaxed transaction forces an
 * in-flight switch — and the Callable branches suddenly matter.
 */

#include <cstdio>

#include "figure_harness.h"
#include "tm/api.h"

int
main(int argc, char **argv)
{
    using namespace tmemc;
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);

    tm::RuntimeCfg conservative;
    conservative.inferCallableSafety = false;

    // The Lib stage is where the annotation can matter: the library
    // helpers are themselves safe, so the only question is whether the
    // compiler may instrument unannotated calls. At stage 3 the calls
    // are unsafe regardless, which is why Table 1 shows no difference.
    runFigure(
        "Ablation: callable annotations under a conservative compiler",
        {
            {"IP-Lib-Bare (inferring)", "IP-Lib-Bare",
             gccDefaultRuntime()},
            {"IP-Lib-Bare (conservative)", "IP-Lib-Bare", conservative},
            {"IP-Lib (conservative)", "IP-Lib", conservative},
        },
        opts);

    std::printf("serialization profiles at 4 threads:\n\n");
    std::printf("%-28s %12s %18s %18s %12s\n", "Configuration",
                "Transactions", "In-Flight Switch", "Start Serial",
                "Abort Serial");
    struct Cfg
    {
        const char *label;
        const char *branch;
        bool infer;
    };
    for (const Cfg &c :
         {Cfg{"IP-Lib-Bare (inferring)", "IP-Lib-Bare", true},
          Cfg{"IP-Lib-Bare (conservative)", "IP-Lib-Bare", false},
          Cfg{"IP-Lib (conservative)", "IP-Lib", false}}) {
        tm::RuntimeCfg rcfg;
        rcfg.inferCallableSafety = c.infer;
        tm::Runtime::get().configure(rcfg);
        tm::Runtime::get().resetStats();
        mc::Settings settings;
        settings.maxBytes = 256 * 1024 * 1024;
        auto cache = mc::makeCache(c.branch, settings, 4);
        workload::MemslapCfg w;
        w.concurrency = 4;
        w.executeNumber = opts.opsPerThread;
        w.windowSize = opts.windowSize;
        workload::runMemslap(*cache, w);
        cache.reset();
        const auto snap = tm::Runtime::get().snapshot();
        std::printf("%s\n", snap.formatTableRow(c.label).c_str());
    }
    std::printf("\npaper context: with inference on (GCC's behaviour), "
                "annotations are\nredundant; without it, unannotated "
                "helpers serialize relaxed txns.\n");
    return 0;
}
