/**
 * @file
 * Figure 10: performance without the readers/writer lock. Once no
 * transaction can serialize, the global serialization lock is removed
 * from the TM runtime (and the contention manager set to
 * retry-immediately). The paper's finding: the lock was the primary
 * source of overhead at high thread counts, and without it the TM
 * build comes within ~30% of the lock-based baseline.
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);

    SeriesSpec ip_nolock{"IP-NoLock", "IP-onCommit", noLockRuntime()};
    SeriesSpec it_nolock{"IT-NoLock", "IT-onCommit", noLockRuntime()};

    runFigure("Figure 10: removing the readers/writer lock",
              {
                  branchSeries("Baseline"),
                  branchSeries("IP-onCommit"),
                  branchSeries("IT-onCommit"),
                  ip_nolock,
                  it_nolock,
              },
              opts);
    return 0;
}
