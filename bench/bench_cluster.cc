/**
 * @file
 * bench_cluster: replicated-cluster throughput harness and the
 * acked-update correctness gate behind the chaos-cluster CI job.
 *
 * Two topologies:
 *
 *   --cluster host:port,host:port,...   drive external tmemc_server
 *       processes (scripts/chaos_cluster.sh boots three and kills one
 *       mid-run); the gate is the workload's own acked-update
 *       tracking — every acknowledged set must remain readable at
 *       that sequence or newer, inline and in a final read-back pass.
 *
 *   (no --cluster)   self-host three in-process servers on ephemeral
 *       loopback ports and run the same workload against them — a
 *       fault-free smoke of the routing/replication path that needs
 *       no orchestration.
 *
 * Exits nonzero on any lost acknowledged update (or if the cluster
 * was entirely unreachable), so CI runs it as a correctness gate.
 *
 * Usage: bench_cluster [--cluster a:p,b:p,c:p] [--replicas N]
 *                      [--node-timeout-ms N] [--ops N] [--window N]
 *                      [--threads N] [--set-fraction F] [--seed N]
 *                      [--branch NAME] [--shards N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mc/cache_iface.h"
#include "net/server.h"
#include "tm/api.h"
#include "workload/memslap.h"

namespace
{

std::vector<std::string>
splitCommas(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg; *p != '\0'; ++p) {
        if (*p == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += *p;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tmemc;

    std::vector<std::string> endpoints;
    unsigned replicas = 2;
    std::uint32_t node_timeout_ms = 250;
    std::uint64_t ops = 20000;
    std::uint64_t window = 1000;
    std::uint32_t threads = 4;
    double set_fraction = 0.5;
    std::uint64_t seed = 20140301;
    std::string branch = "IP-onCommit";
    std::uint32_t shards = 4;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--cluster")
            endpoints = splitCommas(next());
        else if (a == "--replicas")
            replicas = static_cast<unsigned>(std::atoi(next()));
        else if (a == "--node-timeout-ms")
            node_timeout_ms =
                static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--ops")
            ops = std::strtoull(next(), nullptr, 10);
        else if (a == "--window")
            window = std::strtoull(next(), nullptr, 10);
        else if (a == "--threads")
            threads = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--set-fraction")
            set_fraction = std::atof(next());
        else if (a == "--seed")
            seed = std::strtoull(next(), nullptr, 10);
        else if (a == "--branch")
            branch = next();
        else if (a == "--shards")
            shards = static_cast<std::uint32_t>(std::atoi(next()));
        else {
            std::fprintf(
                stderr,
                "usage: %s [--cluster a:p,b:p,c:p] [--replicas N] "
                "[--node-timeout-ms N] [--ops N] [--window N] "
                "[--threads N] [--set-fraction F] [--seed N] "
                "[--branch NAME] [--shards N]\n",
                argv[0]);
            return 2;
        }
    }

    // Self-hosted topology when no endpoints were given.
    std::vector<std::unique_ptr<mc::CacheIface>> caches;
    std::vector<std::unique_ptr<net::Server>> servers;
    if (endpoints.empty()) {
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        for (int n = 0; n < 3; ++n) {
            mc::Settings settings;
            settings.maxBytes = 64 * 1024 * 1024;
            auto cache =
                mc::makeShardedCache(branch, settings, threads, shards);
            if (cache == nullptr) {
                std::fprintf(stderr, "unknown branch '%s'\n",
                             branch.c_str());
                return 2;
            }
            net::ServerCfg scfg;
            scfg.port = 0;
            scfg.workers = 2;
            auto server = std::make_unique<net::Server>(*cache, scfg);
            if (!server->start()) {
                std::fprintf(stderr, "server %d start failed\n", n);
                return 1;
            }
            endpoints.push_back("127.0.0.1:" +
                                std::to_string(server->port()));
            caches.push_back(std::move(cache));
            servers.push_back(std::move(server));
        }
    }

    workload::MemslapCfg cfg;
    cfg.concurrency = threads;
    cfg.executeNumber = ops;
    cfg.windowSize = window;
    cfg.setFraction = set_fraction;
    cfg.seed = seed;
    cfg.clusterNodes = endpoints;
    cfg.clusterReplicas = replicas;
    cfg.nodeTimeoutMs = node_timeout_ms;

    std::printf("bench_cluster: nodes=%zu replicas=%u "
                "node-timeout=%ums ops/thread=%llu window=%llu "
                "threads=%u set-fraction=%.2f\n",
                endpoints.size(), replicas, node_timeout_ms,
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(window), threads,
                set_fraction);

    const workload::MemslapResult res = workload::runMemslapCluster(cfg);

    for (auto &server : servers)
        server->stop();

    std::printf("%12s %12s %12s %12s %12s %12s\n", "ops/s", "hits",
                "misses", "lost_resp", "degraded", "lost_acked");
    std::printf("%12.0f %12llu %12llu %12llu %12llu %12llu\n",
                res.opsPerSecond(),
                static_cast<unsigned long long>(res.hits),
                static_cast<unsigned long long>(res.misses),
                static_cast<unsigned long long>(res.lostResponses),
                static_cast<unsigned long long>(res.degradedWrites),
                static_cast<unsigned long long>(res.lostAckedUpdates));

    // Client-side counters: the chaos log reads failure handling
    // (ejections/failovers/read repairs) straight off this block.
    const net::ClusterStats &cs = res.clusterStats;
    std::printf("cluster: requests=%llu retries=%llu net_errors=%llu "
                "ejections=%llu probes=%llu readmissions=%llu "
                "failovers=%llu read_repairs=%llu replica_lag=%llu\n",
                static_cast<unsigned long long>(cs.requests),
                static_cast<unsigned long long>(cs.retries),
                static_cast<unsigned long long>(cs.net_errors),
                static_cast<unsigned long long>(cs.ejections),
                static_cast<unsigned long long>(cs.probes),
                static_cast<unsigned long long>(cs.readmissions),
                static_cast<unsigned long long>(cs.failovers),
                static_cast<unsigned long long>(cs.read_repairs),
                static_cast<unsigned long long>(cs.replica_lag));

    if (res.lostAckedUpdates != 0) {
        std::fprintf(stderr,
                     "bench_cluster: FAILED (%llu lost acknowledged "
                     "updates)\n",
                     static_cast<unsigned long long>(
                         res.lostAckedUpdates));
        return 1;
    }
    if (res.hits + res.misses + res.failures == 0 &&
        res.lostResponses > 0) {
        std::fprintf(stderr, "bench_cluster: FAILED (cluster "
                             "unreachable)\n");
        return 1;
    }
    std::printf("bench_cluster: OK (zero lost acknowledged updates)\n");
    return 0;
}
