/**
 * @file
 * Extension benchmark: the paper's future-work refcount elision
 * (Section 3.3: "with transactions, it might be possible to replace
 * the modifications of the reference count with a simple read", citing
 * Dragojevic et al.).
 *
 * Compares IT-onCommit (three transactions per get, refcounts bridging
 * them) with IT-Fused (one transaction per get, no refcounts), in the
 * NoLock runtime, and reports both time and transaction counts.
 */

#include <cstdio>

#include "figure_harness.h"
#include "tm/api.h"

int
main(int argc, char **argv)
{
    using namespace tmemc;
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);

    runFigure("Extension: refcount elision via fused get transactions",
              {
                  {"IT-onCommit", "IT-onCommit", noLockRuntime()},
                  {"IT-Fused", "IT-Fused", noLockRuntime()},
              },
              opts);

    // Transaction-count comparison at 4 threads.
    for (const char *branch : {"IT-onCommit", "IT-Fused"}) {
        tm::Runtime::get().configure(noLockRuntime());
        tm::Runtime::get().resetStats();
        mc::Settings settings;
        settings.maxBytes = 256 * 1024 * 1024;
        auto cache = mc::makeCache(branch, settings, 4);
        workload::MemslapCfg w;
        w.concurrency = 4;
        w.executeNumber = opts.opsPerThread;
        w.windowSize = opts.windowSize;
        workload::runMemslap(*cache, w);
        cache.reset();
        const auto snap = tm::Runtime::get().snapshot();
        std::printf("%-12s: %llu transactions for %llu ops "
                    "(%.2f txns/op), %llu aborts\n",
                    branch,
                    static_cast<unsigned long long>(snap.total.txns),
                    static_cast<unsigned long long>(4 *
                                                    opts.opsPerThread),
                    static_cast<double>(snap.total.txns) /
                        static_cast<double>(4 * opts.opsPerThread),
                    static_cast<unsigned long long>(snap.total.aborts));
    }
    return 0;
}
