/**
 * @file
 * Section 3.1's profiling step (mutrace substitute): run the
 * lock-based baseline under the workload and report per-lock
 * contention. The paper's finding to reproduce: cache_lock and
 * stats_lock are "the only locks that threads frequently failed to
 * acquire on their first attempt"; item locks are essentially never
 * contended.
 */

#include <cstdio>

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc;
    using namespace tmemc::bench;
    HarnessOpts opts = parseArgs(argc, argv);

    const std::uint32_t threads =
        opts.threads.empty() ? 4 : opts.threads.back();

    tm::Runtime::get().configure(gccDefaultRuntime());
    mc::Settings settings;
    settings.maxBytes = 256 * 1024 * 1024;
    settings.hashPowerInit = 12;
    auto cache = mc::makeCache("Baseline", settings, threads);

    workload::MemslapCfg w;
    w.concurrency = threads;
    w.executeNumber = opts.opsPerThread;
    w.windowSize = opts.windowSize;
    w.valueSize = opts.valueSize;
    w.setFraction = opts.setFraction;
    const auto result = workload::runMemslap(*cache, w);

    std::printf("== lock-contention profile (mutrace substitute) ==\n");
    std::printf("Baseline branch, %u worker threads, %llu ops/thread "
                "(%.2f s)\n\n",
                threads,
                static_cast<unsigned long long>(opts.opsPerThread),
                result.seconds);
    std::printf("%-24s %14s %14s %10s\n", "lock", "acquisitions",
                "contended", "rate");
    for (const auto &row : cache->lockProfile()) {
        std::printf("%-24s %14llu %14llu %9.3f%%\n", row.name.c_str(),
                    static_cast<unsigned long long>(row.acquisitions),
                    static_cast<unsigned long long>(row.contended),
                    row.contentionRate() * 100.0);
    }
    std::printf("\npaper finding: cache_lock and stats_lock are the "
                "contended locks;\nitem locks are never contended.\n");
    if (!opts.jsonPath.empty()) {
        addBenchRow({opts.benchName, "Baseline", threads, 1,
                     result.seconds, result.opsPerSecond(), 0.0, 0.0,
                     0.0});
        if (!writeBenchJson(opts.jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         opts.jsonPath.c_str());
            return 1;
        }
    }
    return 0;
}
