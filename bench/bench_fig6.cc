/**
 * @file
 * Figure 6: performance of the maximally transactionalized memcached
 * (volatiles and refcounts as transactions). The paper's finding: at
 * all thread counts performance degrades relative to the Callable
 * branches, because txn counts grow and delayed serialization points
 * make doomed transactions pay the instrumented slow path first.
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);
    runFigure("Figure 6: maximally transactionalized memcached",
              {
                  branchSeries("Baseline"),
                  branchSeries("IP-Callable"),
                  branchSeries("IT-Callable"),
                  branchSeries("IP-Max"),
                  branchSeries("IT-Max"),
              },
              opts);
    return 0;
}
