/**
 * @file
 * Table 2: serialization causes after the Max stage (4 threads).
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);
    runSerializationTable("Table 2: serialization causes (Max stage)",
                          {
                              branchSeries("IP-Callable"),
                              branchSeries("IT-Callable"),
                              branchSeries("IP-Max"),
                              branchSeries("IT-Max"),
                          },
                          opts);
    return 0;
}
