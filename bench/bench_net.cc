/**
 * @file
 * bench_net: the paper's measurement topology, restored — memslap
 * over loopback TCP against the served cache, side by side with the
 * in-process drive the figure harness uses.
 *
 * For each worker-thread count, the same fixed workload (memslap
 * defaults: 9:1 get:set, fixed-size keys/values, per-thread key
 * windows) runs twice against a fresh cache of the chosen branch:
 * once in-process and once through the epoll server with as many
 * event loops as client threads. The gap between the two columns is
 * the cost of the network stack — the layer the paper deliberately
 * kept on-machine so it would not hide TM latency.
 *
 * Exits nonzero if any response is lost or the server's served-count
 * disagrees with the number of requests sent, so CI can run it as a
 * correctness gate as well as a benchmark.
 *
 * Usage: bench_net [--branch NAME] [--ops N] [--window N]
 *                  [--threads a,b,c] [--shards N] [--ascii]
 *                  [--backend epoll|writev|io_uring]
 *                  [--timeout-ms N] [--trials K] [--json OUT]
 *                  [--tail] [--tail-json OUT] [--connect PORT]
 *                  [--probe-io-uring]
 *
 * --json writes one tmemc-bench-v1 row per (topology, thread count):
 * bench "bench_net_inproc" for the in-process drive and
 * "bench_net_loopback" for the served one, so the perf gate can watch
 * the network stack's cost separately from the cache's.
 *
 * --backend selects the server's I/O backend (io_backend.h). With a
 * non-epoll backend the loopback row's branch is suffixed with the
 * *effective* backend ("IP-onCommit+writev") so the gate tracks each
 * write path as its own row, and the in-process row is not emitted
 * (it would duplicate the epoll run's). Pair with --ascii to exercise
 * the zero-copy pinned-GET path, which serves ASCII get/gets.
 *
 * --probe-io-uring reports whether the kernel lets this process
 * create an io_uring and exits 0 (available) / 3 (unavailable) — the
 * CI capability gate.
 *
 * --tail arms the per-request tail tracer (obs/tail.h) for every
 * loopback leg, suffixes the loopback row's branch with "+tail" (an
 * additive row: armed cost is tracked separately, never compared
 * against the disarmed baseline), skips the inproc row (the
 * in-process drive has no conn layer, so nothing is traced), and
 * fails if any kept trace lacks its complete parse→exec→flush chain
 * — the armed-path smoke gate CI runs. --tail-json dumps the last
 * loopback leg's reservoir as tmemc-tail-v1 JSON.
 *
 * --connect drives an already-running server on 127.0.0.1:PORT
 * instead of self-hosting (the nightly tail soak's client). The
 * served/sent gate and the bench rows are skipped — the external
 * server's counters are not visible here — but lost responses still
 * fail the run.
 *
 * --timeout-ms bounds every connect and recv (default 10000), so a
 * wedged server fails the gate in seconds instead of hanging CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "figure_harness.h"
#include "mc/cache_iface.h"
#include "net/io_backend.h"
#include "net/server.h"
#include "obs/hist.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "tm/api.h"
#include "workload/memslap.h"

namespace
{

std::vector<std::uint32_t>
parseThreadList(const char *arg)
{
    std::vector<std::uint32_t> out;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p)
            break;
        if (v > 0)
            out.push_back(static_cast<std::uint32_t>(v));
        p = *end == ',' ? end + 1 : end;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tmemc;

    std::string branch = "IT-onCommit";
    std::uint64_t ops = 10000;
    std::uint64_t window = 2000;
    std::vector<std::uint32_t> threads{1, 4, 8};
    bool binary = true;
    std::uint32_t shards = 1;
    std::uint32_t timeout_ms = 10000;
    std::string json_path;
    std::string tail_json;
    bool tail_mode = false;
    std::uint16_t connect_port = 0;
    // Best-of-K: fixed work, so background load only adds time; the
    // minimum is the noise-robust estimate the perf gate wants.
    std::uint32_t trials = 1;
    net::IoBackend backend = net::IoBackend::Epoll;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--probe-io-uring") {
            // CI capability gate: 0 = the kernel lets this process
            // create a ring, 3 = it does not (ENOSYS/EPERM/seccomp).
            const bool have = net::ioUringSupported();
            std::printf("io_uring: %s\n",
                        have ? "available" : "unavailable");
            return have ? 0 : 3;
        }
        if (a == "--branch")
            branch = next();
        else if (a == "--ops")
            ops = std::strtoull(next(), nullptr, 10);
        else if (a == "--window")
            window = std::strtoull(next(), nullptr, 10);
        else if (a == "--threads")
            threads = parseThreadList(next());
        else if (a == "--shards")
            shards = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--ascii")
            binary = false;
        else if (a == "--timeout-ms")
            timeout_ms =
                static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--json")
            json_path = next();
        else if (a == "--tail")
            tail_mode = true;
        else if (a == "--tail-json") {
            tail_json = next();
            tail_mode = true;
        } else if (a == "--connect")
            connect_port =
                static_cast<std::uint16_t>(std::atoi(next()));
        else if (a == "--trials")
            trials = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--backend") {
            const std::string v = next();
            if (!net::parseIoBackend(v, backend)) {
                std::fprintf(stderr,
                             "unknown --backend '%s' (want epoll, "
                             "writev, or io_uring)\n",
                             v.c_str());
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--branch NAME] [--ops N] "
                         "[--window N] [--threads a,b,c] [--shards N] "
                         "[--ascii] "
                         "[--backend epoll|writev|io_uring] "
                         "[--timeout-ms N] [--trials K] "
                         "[--json OUT] [--tail] [--tail-json OUT] "
                         "[--connect PORT] [--probe-io-uring]\n",
                         argv[0]);
            return 2;
        }
    }
    if (trials == 0)
        trials = 1;

    if (connect_port != 0) {
        // Client-only mode: the harness (scripts/tail_soak.sh) owns
        // the server process, so there is nothing to self-host and no
        // served-count to check — only lost responses can fail.
        std::printf("bench_net: connect=127.0.0.1:%u protocol=%s "
                    "ops/thread=%llu window=%llu\n",
                    static_cast<unsigned>(connect_port),
                    binary ? "binary" : "ascii",
                    static_cast<unsigned long long>(ops),
                    static_cast<unsigned long long>(window));
        bool conn_ok = true;
        for (const std::uint32_t n : threads) {
            workload::MemslapCfg cfg;
            cfg.concurrency = n;
            cfg.executeNumber = ops;
            cfg.windowSize = window;
            cfg.binaryProtocol = binary;
            cfg.connectTimeoutMs = timeout_ms;
            cfg.recvTimeoutMs = timeout_ms;
            cfg.serverPort = connect_port;
            const workload::MemslapResult lb =
                workload::runMemslapNet(cfg);
            std::printf("%8u threads %16.0f ops/s %6llu lost\n", n,
                        lb.opsPerSecond(),
                        static_cast<unsigned long long>(
                            lb.lostResponses));
            conn_ok = conn_ok && lb.lostResponses == 0;
        }
        if (!conn_ok) {
            std::fprintf(stderr, "bench_net: FAILED (lost "
                                 "responses)\n");
            return 1;
        }
        std::printf("bench_net: OK (zero lost responses)\n");
        return 0;
    }

    std::printf("bench_net: branch=%s protocol=%s ops/thread=%llu "
                "window=%llu shards=%u backend=%s\n",
                branch.c_str(), binary ? "binary" : "ascii",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(window), shards,
                net::ioBackendName(backend));
    std::printf("%8s %16s %16s %8s %6s\n", "threads", "inproc ops/s",
                "loopback ops/s", "net/ip", "lost");

    bool ok = true;
    for (const std::uint32_t n : threads) {
        workload::MemslapCfg cfg;
        cfg.concurrency = n;
        cfg.executeNumber = ops;
        cfg.windowSize = window;
        cfg.binaryProtocol = binary;
        cfg.connectTimeoutMs = timeout_ms;
        cfg.recvTimeoutMs = timeout_ms;

        // One tm+histogram window per topology so each JSON row's
        // tail and abort shape describe only its own run.
        auto resetObs = [] {
            tm::Runtime::get().resetStats();
            obs::MetricsRegistry::get().resetHistograms();
        };
        auto txShape = [](bench::BenchRow &row) {
            const auto snap = tm::Runtime::get().snapshot();
            if (snap.total.commits == 0)
                return;
            const double commits =
                static_cast<double>(snap.total.commits);
            row.abortsPerCommit =
                static_cast<double>(snap.total.aborts) / commits;
            row.serialPct =
                100.0 *
                static_cast<double>(snap.total.serialCommits) /
                commits;
        };

        workload::MemslapResult inproc{};
        workload::MemslapResult net{};
        bench::BenchRow inprocRow{"bench_net_inproc", branch, n,
                                  shards, 0.0, 0.0, 0.0, 0.0, 0.0};
        bench::BenchRow netRow{"bench_net_loopback", branch, n,
                               shards, 0.0, 0.0, 0.0, 0.0, 0.0};
        bool row_ok = true;
        for (std::uint32_t trial = 0; trial < trials; ++trial) {
            // ----- In-process --------------------------------------------
            // serverPort selects network mode inside runMemslap, and
            // the loopback leg of the previous trial set it.
            cfg.serverPort = 0;
            tm::Runtime::get().configure(tm::RuntimeCfg{});
            resetObs();
            mc::Settings settings;
            settings.maxBytes = 64 * 1024 * 1024;
            auto cache =
                mc::makeShardedCache(branch, settings, n, shards);
            if (cache == nullptr) {
                std::fprintf(stderr, "unknown branch '%s'\n",
                             branch.c_str());
                return 2;
            }
            const workload::MemslapResult ip =
                workload::runMemslap(*cache, cfg);
            if (trial == 0 || ip.seconds < inproc.seconds) {
                inproc = ip;
                inprocRow.secs = ip.seconds;
                inprocRow.opsPerSec = ip.opsPerSecond();
                inprocRow.p99Us = obs::hist(obs::HistKind::Tx)
                                      .snapshot()
                                      .summary()
                                      .p99Us;
                txShape(inprocRow);
            }

            // ----- Over loopback, fresh cache, N event loops -------------
            // The in-process cache's maintenance thread commits
            // transactions of its own; join it (via the destructor)
            // before reconfiguring the runtime, which refuses while
            // any transaction is in flight.
            cache.reset();
            tm::Runtime::get().configure(tm::RuntimeCfg{});
            resetObs();
            cache = mc::makeShardedCache(branch, settings, n, shards);
            net::ServerCfg scfg;
            scfg.port = 0;
            scfg.workers = n;
            scfg.ioBackend = backend;
            net::Server server(*cache, scfg);
            if (!server.start()) {
                std::fprintf(stderr, "server start failed\n");
                return 1;
            }
            // Label the loopback row with what actually ran: a
            // requested io_uring may have degraded to writev, and the
            // gate must not compare rows across write paths. The
            // armed-tracer row likewise gets its own name so the gate
            // never compares armed cost against the disarmed baseline.
            netRow.branch = branch;
            if (server.ioBackend() != net::IoBackend::Epoll)
                netRow.branch +=
                    std::string("+") +
                    net::ioBackendName(server.ioBackend());
            if (tail_mode)
                netRow.branch += "+tail";
            if (tail_mode) {
                obs::tail::armTail();
                obs::tail::setTailLabel(
                    netRow.branch,
                    tm::algoKindName(tm::Runtime::get().cfg().algo));
            }
            cfg.serverPort = server.port();
            const workload::MemslapResult lb =
                workload::runMemslapNet(cfg);
            server.stop();
            if (tail_mode) {
                // stop() destroyed every Conn, force-finishing any
                // still-pending traces, so the reservoir is final.
                obs::tail::disarmTail();
                const auto traces = obs::tail::snapshotTail();
                bool chains_ok = !traces.empty();
                bool saw_tx = false;
                for (const auto &t : traces) {
                    bool has_exec = false;
                    for (const auto &s : t->spans) {
                        has_exec |=
                            s.kind == obs::tail::SpanKind::Exec;
                        saw_tx |= s.kind == obs::tail::SpanKind::Tx;
                    }
                    chains_ok =
                        chains_ok && t->spans.size() >= 3 &&
                        t->spans.front().kind ==
                            obs::tail::SpanKind::Parse &&
                        has_exec && t->totalNs() > 0 &&
                        (t->overflow ||
                         (t->spans.back().kind ==
                              obs::tail::SpanKind::Flush &&
                          t->spans.back().t1 >= t->spans.back().t0));
                }
                // A TM branch that committed transactions must show
                // them as tx spans; Baseline (no transactions) is
                // exempt.
                if (tm::Runtime::get().snapshot().total.commits > 0 &&
                    !saw_tx)
                    chains_ok = false;
                if (!chains_ok) {
                    row_ok = false;
                    std::fprintf(stderr,
                                 "  trial %u: tail traces missing or "
                                 "span chain incomplete\n", trial);
                }
            }
            if (trial == 0 || lb.seconds < net.seconds) {
                net = lb;
                // Over loopback the per-command histogram is live;
                // its tail is the row's p99 (request framed to reply
                // built).
                netRow.secs = lb.seconds;
                netRow.opsPerSec = lb.opsPerSecond();
                netRow.p99Us = obs::hist(obs::HistKind::Command)
                                   .snapshot()
                                   .summary()
                                   .p99Us;
                txShape(netRow);
            }

            const std::uint64_t sent =
                static_cast<std::uint64_t>(n) * (window + ops);
            const std::uint64_t served = server.requestsServed();
            // stop() folded every connection's count into the loops
            // before they were destroyed, so served is final here.
            // Every trial must be lossless, not just the best one.
            if (lb.lostResponses != 0 || served != sent) {
                row_ok = false;
                std::fprintf(stderr,
                             "  trial %u: served=%llu sent=%llu "
                             "lost=%llu\n",
                             trial,
                             static_cast<unsigned long long>(served),
                             static_cast<unsigned long long>(sent),
                             static_cast<unsigned long long>(
                                 lb.lostResponses));
            }
        }
        if (!json_path.empty()) {
            // The in-process drive never touches the I/O backend (or
            // the conn layer the tail tracer lives in), so a
            // non-epoll or --tail run would just duplicate the plain
            // epoll run's inproc row; emit it once, from that run.
            if (backend == net::IoBackend::Epoll && !tail_mode)
                bench::addBenchRow(inprocRow);
            bench::addBenchRow(netRow);
        }
        ok = ok && row_ok;

        std::printf("%8u %16.0f %16.0f %7.2fx %6llu%s\n", n,
                    inproc.opsPerSecond(), net.opsPerSecond(),
                    net.opsPerSecond() > 0
                        ? inproc.opsPerSecond() / net.opsPerSecond()
                        : 0.0,
                    static_cast<unsigned long long>(
                        net.lostResponses),
                    row_ok ? "" : "  [MISMATCH]");
    }
    if (!json_path.empty() && !bench::writeBenchJson(json_path)) {
        std::fprintf(stderr, "bench_net: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    // The reservoir survives disarmTail(), so this dumps the last
    // loopback leg's K slowest requests.
    if (!tail_json.empty() &&
        !obs::tail::writeTailJsonFile(tail_json)) {
        std::fprintf(stderr, "bench_net: cannot write %s\n",
                     tail_json.c_str());
        return 1;
    }
    if (!ok) {
        std::fprintf(stderr, "bench_net: FAILED (lost responses or "
                             "served/sent mismatch)\n");
        return 1;
    }
    std::printf("bench_net: OK (zero lost responses)\n");
    return 0;
}
