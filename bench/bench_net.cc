/**
 * @file
 * bench_net: the paper's measurement topology, restored — memslap
 * over loopback TCP against the served cache, side by side with the
 * in-process drive the figure harness uses.
 *
 * For each worker-thread count, the same fixed workload (memslap
 * defaults: 9:1 get:set, fixed-size keys/values, per-thread key
 * windows) runs twice against a fresh cache of the chosen branch:
 * once in-process and once through the epoll server with as many
 * event loops as client threads. The gap between the two columns is
 * the cost of the network stack — the layer the paper deliberately
 * kept on-machine so it would not hide TM latency.
 *
 * Exits nonzero if any response is lost or the server's served-count
 * disagrees with the number of requests sent, so CI can run it as a
 * correctness gate as well as a benchmark.
 *
 * Usage: bench_net [--branch NAME] [--ops N] [--window N]
 *                  [--threads a,b,c] [--shards N] [--ascii]
 *                  [--timeout-ms N]
 *
 * --timeout-ms bounds every connect and recv (default 10000), so a
 * wedged server fails the gate in seconds instead of hanging CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mc/cache_iface.h"
#include "net/server.h"
#include "tm/api.h"
#include "workload/memslap.h"

namespace
{

std::vector<std::uint32_t>
parseThreadList(const char *arg)
{
    std::vector<std::uint32_t> out;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p)
            break;
        if (v > 0)
            out.push_back(static_cast<std::uint32_t>(v));
        p = *end == ',' ? end + 1 : end;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tmemc;

    std::string branch = "IT-onCommit";
    std::uint64_t ops = 10000;
    std::uint64_t window = 2000;
    std::vector<std::uint32_t> threads{1, 4, 8};
    bool binary = true;
    std::uint32_t shards = 1;
    std::uint32_t timeout_ms = 10000;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--branch")
            branch = next();
        else if (a == "--ops")
            ops = std::strtoull(next(), nullptr, 10);
        else if (a == "--window")
            window = std::strtoull(next(), nullptr, 10);
        else if (a == "--threads")
            threads = parseThreadList(next());
        else if (a == "--shards")
            shards = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--ascii")
            binary = false;
        else if (a == "--timeout-ms")
            timeout_ms =
                static_cast<std::uint32_t>(std::atoi(next()));
        else {
            std::fprintf(stderr,
                         "usage: %s [--branch NAME] [--ops N] "
                         "[--window N] [--threads a,b,c] [--shards N] "
                         "[--ascii] [--timeout-ms N]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("bench_net: branch=%s protocol=%s ops/thread=%llu "
                "window=%llu shards=%u\n",
                branch.c_str(), binary ? "binary" : "ascii",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(window), shards);
    std::printf("%8s %16s %16s %8s %6s\n", "threads", "inproc ops/s",
                "loopback ops/s", "net/ip", "lost");

    bool ok = true;
    for (const std::uint32_t n : threads) {
        workload::MemslapCfg cfg;
        cfg.concurrency = n;
        cfg.executeNumber = ops;
        cfg.windowSize = window;
        cfg.binaryProtocol = binary;
        cfg.connectTimeoutMs = timeout_ms;
        cfg.recvTimeoutMs = timeout_ms;

        // ----- In-process ------------------------------------------------
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        mc::Settings settings;
        settings.maxBytes = 64 * 1024 * 1024;
        auto cache = mc::makeShardedCache(branch, settings, n, shards);
        if (cache == nullptr) {
            std::fprintf(stderr, "unknown branch '%s'\n",
                         branch.c_str());
            return 2;
        }
        const workload::MemslapResult inproc =
            workload::runMemslap(*cache, cfg);

        // ----- Over loopback, fresh cache, N event loops -----------------
        tm::Runtime::get().configure(tm::RuntimeCfg{});
        cache = mc::makeShardedCache(branch, settings, n, shards);
        net::ServerCfg scfg;
        scfg.port = 0;
        scfg.workers = n;
        net::Server server(*cache, scfg);
        if (!server.start()) {
            std::fprintf(stderr, "server start failed\n");
            return 1;
        }
        cfg.serverPort = server.port();
        const workload::MemslapResult net =
            workload::runMemslapNet(cfg);
        server.stop();

        const std::uint64_t sent =
            static_cast<std::uint64_t>(n) * (window + ops);
        const std::uint64_t served = server.requestsServed();
        // stop() folded every connection's count into the loops
        // before they were destroyed, so served is final here.
        const bool row_ok =
            net.lostResponses == 0 && served == sent;
        ok = ok && row_ok;

        std::printf("%8u %16.0f %16.0f %7.2fx %6llu%s\n", n,
                    inproc.opsPerSecond(), net.opsPerSecond(),
                    net.opsPerSecond() > 0
                        ? inproc.opsPerSecond() / net.opsPerSecond()
                        : 0.0,
                    static_cast<unsigned long long>(
                        net.lostResponses),
                    row_ok ? "" : "  [MISMATCH]");
        if (!row_ok) {
            std::fprintf(stderr,
                         "  served=%llu sent=%llu lost=%llu\n",
                         static_cast<unsigned long long>(served),
                         static_cast<unsigned long long>(sent),
                         static_cast<unsigned long long>(
                             net.lostResponses));
        }
    }
    if (!ok) {
        std::fprintf(stderr, "bench_net: FAILED (lost responses or "
                             "served/sent mismatch)\n");
        return 1;
    }
    std::printf("bench_net: OK (zero lost responses)\n");
    return 0;
}
