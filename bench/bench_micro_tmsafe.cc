/**
 * @file
 * google-benchmark microbenchmarks of the transaction-safe library:
 * the cost the specification's same-source clone rule imposes.
 *
 *  - libc memcpy vs the naive same-source clone vs the transactional
 *    clone (the paper: "we had to slow down the non-transactional code
 *    path");
 *  - marshaling-based strtoull/snprintf vs their libc counterparts;
 *  - byte-wise buffered stores read back as words (the redo-log stress
 *    the paper blames for Lazy/NOrec's memcpy costs).
 */

#include <benchmark/benchmark.h>

#include <cstring>

#include "tm/api.h"
#include "tmsafe/tm_convert.h"
#include "tmsafe/tm_format.h"
#include "tmsafe/tm_string.h"

namespace
{

using namespace tmemc;

const tm::TxnAttr attr{"micro:tmsafe", tm::TxnKind::Atomic, false};

char gSrc[8192];
char gDst[8192];

void
setupRuntime(tm::AlgoKind algo)
{
    tm::RuntimeCfg cfg;
    cfg.algo = algo;
    tm::Runtime::get().configure(cfg);
    std::memset(gSrc, 'a', sizeof(gSrc));
}

void
BM_LibcMemcpy(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::memset(gSrc, 'a', sizeof(gSrc));
    for (auto _ : state) {
        std::memcpy(gDst, gSrc, n);
        benchmark::DoNotOptimize(gDst);
    }
    state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_LibcMemcpy)->Arg(64)->Arg(1024)->Arg(8192);

void
BM_NaiveMemcpy(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::memset(gSrc, 'a', sizeof(gSrc));
    for (auto _ : state) {
        tmsafe::naive_memcpy(gDst, gSrc, n);
        benchmark::DoNotOptimize(gDst);
    }
    state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_NaiveMemcpy)->Arg(64)->Arg(1024)->Arg(8192);

void
BM_TmMemcpy(benchmark::State &state)
{
    setupRuntime(static_cast<tm::AlgoKind>(state.range(1)));
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        tm::run(attr, [&](tm::TxDesc &tx) {
            tmsafe::tm_memcpy(tx, gDst, gSrc, n);
        });
        benchmark::DoNotOptimize(gDst);
    }
    state.SetBytesProcessed(state.iterations() * n);
}
BENCHMARK(BM_TmMemcpy)
    ->Args({64, static_cast<int>(tm::AlgoKind::GccEager)})
    ->Args({1024, static_cast<int>(tm::AlgoKind::GccEager)})
    ->Args({64, static_cast<int>(tm::AlgoKind::Lazy)})
    ->Args({1024, static_cast<int>(tm::AlgoKind::Lazy)})
    ->Args({64, static_cast<int>(tm::AlgoKind::NOrec)})
    ->Args({1024, static_cast<int>(tm::AlgoKind::NOrec)});

void
BM_ByteStoresReadAsWords(benchmark::State &state)
{
    // The paper: "the need to buffer byte-by-byte stores in memcpy and
    // then read them later as words necessitated an expensive logging
    // mechanism" — write bytes, read the same region back as words.
    setupRuntime(static_cast<tm::AlgoKind>(state.range(0)));
    for (auto _ : state) {
        const std::uint64_t v = tm::run(attr, [&](tm::TxDesc &tx) {
            for (std::size_t i = 0; i < 256; ++i)
                tm::txStore<char>(tx, &gDst[i], static_cast<char>(i));
            std::uint64_t sum = 0;
            for (std::size_t i = 0; i < 256; i += 8) {
                sum += tm::txLoad(
                    tx, reinterpret_cast<std::uint64_t *>(&gDst[i]));
            }
            return sum;
        });
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_ByteStoresReadAsWords)
    ->Arg(static_cast<int>(tm::AlgoKind::GccEager))
    ->Arg(static_cast<int>(tm::AlgoKind::Lazy))
    ->Arg(static_cast<int>(tm::AlgoKind::NOrec));

void
BM_LibcStrtoull(benchmark::State &state)
{
    std::strcpy(gSrc, "18446744073709551615");
    for (auto _ : state) {
        const unsigned long long v = std::strtoull(gSrc, nullptr, 10);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_LibcStrtoull);

void
BM_MarshaledStrtoull(benchmark::State &state)
{
    setupRuntime(tm::AlgoKind::GccEager);
    std::strcpy(gSrc, "18446744073709551615");
    for (auto _ : state) {
        const unsigned long long v = tm::run(attr, [&](tm::TxDesc &tx) {
            return tmsafe::tm_strtoull(tx, gSrc, 32, nullptr, 10);
        });
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_MarshaledStrtoull);

void
BM_LibcSnprintfUll(benchmark::State &state)
{
    for (auto _ : state) {
        const int n = std::snprintf(gDst, 32, "%llu",
                                    9876543210123456789ull);
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_LibcSnprintfUll);

void
BM_MarshaledSnprintfUll(benchmark::State &state)
{
    setupRuntime(tm::AlgoKind::GccEager);
    for (auto _ : state) {
        const int n = tm::run(attr, [&](tm::TxDesc &tx) {
            return tmsafe::tm_snprintf_ull(tx, gDst, 32,
                                           9876543210123456789ull);
        });
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_MarshaledSnprintfUll);

} // namespace

BENCHMARK_MAIN();
