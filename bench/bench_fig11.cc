/**
 * @file
 * Figure 11: comparison of TM algorithms and contention managers on
 * the best branch (IP-onCommit, "GCC-NoCM" in the paper once the
 * readers/writer lock is gone).
 *
 * Series: GCC-NoCM (eager, no lock, no CM), NOrec and Lazy (also no
 * CM), GCC-Hourglass (toxic-transaction throttling at 128 consecutive
 * aborts), and GCC-Backoff.
 *
 * The paper's commentary quantified abort rates at 12 threads (NOrec
 * ~1 abort per 5 commits, Lazy ~14 per commit, GCC ~12.6 per commit)
 * and noted that the cross-thread variance of the abort rate was an
 * order of magnitude lower for GCC than Lazy; this binary prints the
 * same statistics after the sweep.
 */

#include <cmath>
#include <cstdio>

#include "figure_harness.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;
using namespace tmemc::bench;

tm::RuntimeCfg
algoRuntime(tm::AlgoKind algo, tm::CmKind cm)
{
    tm::RuntimeCfg cfg;
    cfg.algo = algo;
    cfg.cm = cm;
    cfg.useSerialLock = false;
    return cfg;
}

/** Run one series at a thread count and print its abort statistics. */
void
abortReport(const SeriesSpec &spec, std::uint32_t threads,
            const HarnessOpts &opts)
{
    tm::Runtime::get().configure(spec.runtime);
    tm::Runtime::get().resetStats();
    mc::Settings settings;
    settings.maxBytes = 256 * 1024 * 1024;
    settings.hashPowerInit = 12;
    auto cache = mc::makeCache(spec.cacheBranch, settings, threads);
    workload::MemslapCfg w;
    w.concurrency = threads;
    w.executeNumber = opts.opsPerThread;
    w.windowSize = opts.windowSize;
    w.valueSize = opts.valueSize;
    w.setFraction = opts.setFraction;
    workload::runMemslap(*cache, w);
    cache.reset();

    const auto snap = tm::Runtime::get().snapshot();
    const double aborts = static_cast<double>(snap.total.aborts);
    const double commits = static_cast<double>(snap.total.commits);

    // Cross-thread abort-rate variance (Figure 11 commentary).
    std::vector<double> rates;
    for (std::size_t i = 0; i < snap.abortsPerThread.size(); ++i) {
        if (snap.commitsPerThread[i] > 0) {
            rates.push_back(
                static_cast<double>(snap.abortsPerThread[i]) /
                static_cast<double>(snap.commitsPerThread[i]));
        }
    }
    double mean = 0.0;
    for (double r : rates)
        mean += r;
    mean /= rates.empty() ? 1.0 : static_cast<double>(rates.size());
    double var = 0.0;
    for (double r : rates)
        var += (r - mean) * (r - mean);
    var /= rates.size() > 1 ? static_cast<double>(rates.size() - 1) : 1.0;

    std::printf("%-14s commits=%-10llu aborts=%-10llu "
                "aborts/commit=%-8.3f thread-rate-stddev=%.4f\n",
                spec.label.c_str(),
                static_cast<unsigned long long>(snap.total.commits),
                static_cast<unsigned long long>(snap.total.aborts),
                commits > 0 ? aborts / commits : 0.0, std::sqrt(var));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);

    const std::vector<SeriesSpec> series = {
        branchSeries("Baseline"),
        {"GCC-NoCM", "IP-onCommit",
         algoRuntime(tm::AlgoKind::GccEager, tm::CmKind::NoCM)},
        {"NOrec", "IP-onCommit",
         algoRuntime(tm::AlgoKind::NOrec, tm::CmKind::NoCM)},
        {"Lazy", "IP-onCommit",
         algoRuntime(tm::AlgoKind::Lazy, tm::CmKind::NoCM)},
        {"GCC-Hourglass", "IP-onCommit",
         algoRuntime(tm::AlgoKind::GccEager, tm::CmKind::Hourglass)},
        {"GCC-Backoff", "IP-onCommit",
         algoRuntime(tm::AlgoKind::GccEager, tm::CmKind::Backoff)},
    };

    runFigure("Figure 11: TM algorithms and contention managers", series,
              opts);

    // Abort-rate commentary at the highest thread count in the sweep.
    const std::uint32_t max_threads = opts.threads.back();
    std::printf("== abort statistics at %u worker threads ==\n",
                max_threads);
    for (const auto &s : series) {
        if (s.label == "Baseline")
            continue;  // No transactions to report.
        abortReport(s, max_threads, opts);
    }
    return 0;
}
