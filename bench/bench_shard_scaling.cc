/**
 * @file
 * Shard-count scaling sweep: the fig4-style fixed-work ladder run at
 * shards = 1, 4, 16 for a lock baseline and the TM branches, so the
 * effect of splitting the cache into independent synchronization
 * domains is visible as columns of the same table.
 *
 * What to look for: at 8+ worker threads the sharded columns should
 * beat shards=1 — on a real multi-core box because shards run truly
 * in parallel, and even on a single core because sharding shrinks
 * each domain's conflict footprint (fewer aborts and serial-mode
 * entries in the TM branches, shorter lock convoys in the baseline).
 *
 * Usage: same flags as the figure binaries, plus
 *   --shard-list a,b,c   shard counts to sweep (default 1,4,16)
 *   --branches a,b,c     branch ladder (default Baseline,IT-onCommit)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "figure_harness.h"

namespace
{

std::vector<std::string>
splitList(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg; *p != '\0'; ++p) {
        if (*p == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += *p;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;

    // Peel off the flags this binary adds, then hand the rest to the
    // shared parser.
    std::vector<std::uint32_t> shard_list{1, 4, 16};
    std::vector<std::string> branches{"Baseline", "IT-onCommit"};
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shard-list") == 0 && i + 1 < argc) {
            shard_list.clear();
            for (const std::string &s : splitList(argv[++i]))
                shard_list.push_back(static_cast<std::uint32_t>(
                    std::strtoul(s.c_str(), nullptr, 10)));
        } else if (std::strcmp(argv[i], "--branches") == 0 &&
                   i + 1 < argc) {
            branches = splitList(argv[++i]);
        } else {
            rest.push_back(argv[i]);
        }
    }
    HarnessOpts opts =
        parseArgs(static_cast<int>(rest.size()), rest.data());

    std::printf("bench_shard_scaling: %llu ops/thread, %llu-key "
                "window, %.0f%% sets, %u trial(s)\n\n",
                static_cast<unsigned long long>(opts.opsPerThread),
                static_cast<unsigned long long>(opts.windowSize),
                opts.setFraction * 100.0, opts.trials);

    for (const std::string &branch : branches) {
        // One table per branch: columns are shard counts, rows are
        // thread counts, cells are ops/s, plus the speedup of the
        // largest shard count over the first at each thread count —
        // the number the acceptance gate reads.
        std::printf("== %s (ops/s) ==\n", branch.c_str());
        std::printf("%-8s", "threads");
        for (const std::uint32_t s : shard_list)
            std::printf(" %14s",
                        ("shards=" + std::to_string(s)).c_str());
        std::printf(" %10s\n", "speedup");
        for (const std::uint32_t t : opts.threads) {
            std::printf("%-8u", t);
            double first = 0.0, last = 0.0;
            for (const std::uint32_t s : shard_list) {
                HarnessOpts per = opts;
                per.shards = s;
                const Cell c = runCell(branchSeries(branch), t, per);
                if (!opts.jsonPath.empty()) {
                    addBenchRow({opts.benchName, branch, t, s,
                                 c.meanSeconds, c.opsPerSec, c.p99Us,
                                 c.abortsPerCommit, c.serialPct});
                }
                std::printf(" %14.0f", c.opsPerSec);
                std::fflush(stdout);
                if (s == shard_list.front())
                    first = c.opsPerSec;
                if (s == shard_list.back())
                    last = c.opsPerSec;
            }
            std::printf(" %9.2fx\n", first > 0 ? last / first : 0.0);
        }
        std::printf("\n");
    }
    if (!opts.jsonPath.empty() && !writeBenchJson(opts.jsonPath)) {
        std::fprintf(stderr, "cannot write %s\n",
                     opts.jsonPath.c_str());
        return 1;
    }
    return 0;
}
