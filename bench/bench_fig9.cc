/**
 * @file
 * Figure 9: performance with onCommit handlers. The paper's finding:
 * running times drop to almost the previous best (IP-Callable), and
 * with no mandatory serialization the transactional item locks (IT)
 * finally beat privatization (IP).
 */

#include "figure_harness.h"

int
main(int argc, char **argv)
{
    using namespace tmemc::bench;
    const HarnessOpts opts = parseArgs(argc, argv);
    runFigure("Figure 9: onCommit handlers",
              {
                  branchSeries("Baseline"),
                  branchSeries("IP-Callable"),
                  branchSeries("IT-Callable"),
                  branchSeries("IP-Lib"),
                  branchSeries("IT-Lib"),
                  branchSeries("IP-onCommit"),
                  branchSeries("IT-onCommit"),
              },
              opts);
    return 0;
}
