/**
 * @file
 * bench_ro_tx: the invisible-reader ablation — read-only transaction
 * throughput with the fast path on vs off, across the four
 * speculative algorithms (including the fence-free RA variant).
 *
 * Each worker thread runs a fixed count of read-only transactions;
 * every transaction sums a window of words from a shared array through
 * a site hinted TxnAttr::readOnlyHint. With RuntimeCfg::roFastPath on,
 * those transactions take the invisible-reader path (sequence-validated
 * loads against the domain clock, no read set, O(1) commit); off, they
 * run the full algorithm — the "-fast" vs "-full" branch pair per
 * algorithm is the measured delta, the Cost-of-Concurrency slice for
 * the dominant GET-shaped transaction.
 *
 * Doubles as a correctness gate: every load is checked against the
 * known array contents, and the run fails if a "-fast" combo commits
 * nothing on the fast path (hint silently ignored) or a "-full" combo
 * commits anything on it (ablation knob broken).
 *
 * Usage: bench_ro_tx [--ops N] [--threads a,b,c] [--reads N]
 *                    [--trials K] [--json OUT]
 *
 * --json writes tmemc-bench-v1 rows with bench "bench_ro_tx" and
 * branch "<algo>-fast" / "<algo>-full" (algo in gcc, lazy, norec, ra)
 * so the perf gate can hold the fast path's win.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "figure_harness.h"
#include "tm/api.h"

namespace
{

using namespace tmemc;

constexpr std::size_t kWords = 4096;

/** Shared read target; every word holds 1 so a window of R words must
 *  sum to exactly R — a per-transaction consistency check. */
tm::TmVar<std::uint64_t> gWords[kWords];

/** Static site attr with the read-only hint set — the bench's subject. */
const tm::TxnAttr kRoAttr{"bench_ro_tx:read", tm::TxnKind::Atomic,
                          false, true};

std::vector<std::uint32_t>
parseThreadList(const char *arg)
{
    std::vector<std::uint32_t> out;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const long v = std::strtol(p, &end, 10);
        if (end == p)
            break;
        if (v > 0)
            out.push_back(static_cast<std::uint32_t>(v));
        p = *end == ',' ? end + 1 : end;
    }
    return out;
}

struct Combo
{
    const char *label;  //!< JSON branch ("gcc-fast", ...).
    tm::AlgoKind algo;
    bool fast;
};

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t ops = 200000;
    std::vector<std::uint32_t> threads{1, 4, 8};
    std::uint32_t reads = 16;
    std::uint32_t trials = 1;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--ops")
            ops = std::strtoull(next(), nullptr, 10);
        else if (a == "--threads")
            threads = parseThreadList(next());
        else if (a == "--reads")
            reads = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--trials")
            trials = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--json")
            json_path = next();
        else {
            std::fprintf(stderr,
                         "usage: %s [--ops N] [--threads a,b,c] "
                         "[--reads N] [--trials K] [--json OUT]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reads == 0 || reads > kWords)
        reads = 16;
    if (trials == 0)
        trials = 1;

    for (std::size_t i = 0; i < kWords; ++i)
        gWords[i].rawSet(1);

    const Combo combos[] = {
        {"gcc-fast", tm::AlgoKind::GccEager, true},
        {"gcc-full", tm::AlgoKind::GccEager, false},
        {"lazy-fast", tm::AlgoKind::Lazy, true},
        {"lazy-full", tm::AlgoKind::Lazy, false},
        {"norec-fast", tm::AlgoKind::NOrec, true},
        {"norec-full", tm::AlgoKind::NOrec, false},
        {"ra-fast", tm::AlgoKind::RA, true},
        {"ra-full", tm::AlgoKind::RA, false},
    };

    std::printf("bench_ro_tx: ops/thread=%llu reads/tx=%u words=%zu\n",
                static_cast<unsigned long long>(ops), reads, kWords);
    std::printf("%12s %8s %14s %10s %8s\n", "branch", "threads",
                "ops/s", "rofast%", "aborts");

    bool ok = true;
    for (const Combo &c : combos) {
        for (const std::uint32_t n : threads) {
            double best_secs = 0.0;
            bench::BenchRow row{"bench_ro_tx", c.label, n, 1,
                                0.0,           0.0,     0.0, 0.0, 0.0};
            double rofast_pct = 0.0;
            std::uint64_t aborts = 0;
            for (std::uint32_t trial = 0; trial < trials; ++trial) {
                tm::RuntimeCfg cfg;
                cfg.algo = c.algo;
                cfg.roFastPath = c.fast;
                tm::Runtime::get().configure(cfg);
                tm::Runtime::get().resetStats();

                std::vector<std::thread> workers;
                workers.reserve(n);
                std::atomic<bool> sum_ok{true};
                const auto t0 = std::chrono::steady_clock::now();
                for (std::uint32_t t = 0; t < n; ++t) {
                    workers.emplace_back([&, t] {
                        // Per-thread rotating window start so threads
                        // don't all hammer the same cache lines.
                        std::size_t start = (t * 97) % kWords;
                        for (std::uint64_t k = 0; k < ops; ++k) {
                            const std::uint64_t sum = tm::run(
                                kRoAttr, [&](tm::TxDesc &tx) {
                                    std::uint64_t s = 0;
                                    for (std::uint32_t r = 0; r < reads;
                                         ++r) {
                                        const std::size_t idx =
                                            (start + r) % kWords;
                                        s += gWords[idx].get(tx);
                                    }
                                    return s;
                                });
                            if (sum != reads)
                                sum_ok.store(false);
                            start = (start + reads) % kWords;
                        }
                    });
                }
                for (auto &w : workers)
                    w.join();
                const auto t1 = std::chrono::steady_clock::now();
                const double secs =
                    std::chrono::duration<double>(t1 - t0).count();

                const auto snap = tm::Runtime::get().snapshot();
                const std::uint64_t commits = snap.total.commits;
                const std::uint64_t rofast = snap.total.roFastCommits;
                if (!sum_ok.load()) {
                    std::fprintf(stderr,
                                 "%s/%u: inconsistent read-only sum\n",
                                 c.label, n);
                    ok = false;
                }
                // The ablation knob must actually steer the path.
                if (c.fast && rofast == 0) {
                    std::fprintf(stderr,
                                 "%s/%u: no fast-path commits despite "
                                 "roFastPath=true\n",
                                 c.label, n);
                    ok = false;
                }
                if (!c.fast && rofast != 0) {
                    std::fprintf(stderr,
                                 "%s/%u: %llu fast-path commits despite "
                                 "roFastPath=false\n",
                                 c.label, n,
                                 static_cast<unsigned long long>(rofast));
                    ok = false;
                }

                if (trial == 0 || secs < best_secs) {
                    best_secs = secs;
                    row.secs = secs;
                    row.opsPerSec =
                        secs > 0.0 ? static_cast<double>(n) *
                                         static_cast<double>(ops) / secs
                                   : 0.0;
                    if (commits > 0) {
                        row.abortsPerCommit =
                            static_cast<double>(snap.total.aborts) /
                            static_cast<double>(commits);
                        row.serialPct =
                            100.0 *
                            static_cast<double>(
                                snap.total.serialCommits) /
                            static_cast<double>(commits);
                        rofast_pct = 100.0 *
                                     static_cast<double>(rofast) /
                                     static_cast<double>(commits);
                    }
                    aborts = snap.total.aborts;
                }
            }
            if (!json_path.empty())
                bench::addBenchRow(row);
            std::printf("%12s %8u %14.0f %9.1f%% %8llu\n", c.label, n,
                        row.opsPerSec, rofast_pct,
                        static_cast<unsigned long long>(aborts));
        }
    }

    if (!json_path.empty() && !bench::writeBenchJson(json_path)) {
        std::fprintf(stderr, "bench_ro_tx: cannot write %s\n",
                     json_path.c_str());
        return 1;
    }
    if (!ok) {
        std::fprintf(stderr, "bench_ro_tx: FAILED (consistency or "
                             "path-steering check)\n");
        return 1;
    }
    std::printf("bench_ro_tx: OK\n");
    return 0;
}
