/**
 * @file
 * Figure/table harness implementation.
 */

#include "figure_harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/hist.h"
#include "obs/metrics.h"
#include "tm/api.h"

namespace tmemc::bench
{

namespace
{

/** Rows queued by addBenchRow, rewritten wholesale on each
 *  writeBenchJson (a binary may emit from several harness calls). */
std::vector<BenchRow> g_rows;

} // namespace

void
addBenchRow(const BenchRow &row)
{
    g_rows.push_back(row);
}

bool
writeBenchJson(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::fprintf(f, "{\"schema\":\"tmemc-bench-v1\",\"rows\":[");
    for (std::size_t i = 0; i < g_rows.size(); ++i) {
        const BenchRow &r = g_rows[i];
        std::fprintf(
            f,
            "%s\n  {\"bench\":\"%s\",\"branch\":\"%s\",\"threads\":%u,"
            "\"shards\":%u,\"secs\":%.6f,\"ops_per_sec\":%.1f,"
            "\"p99_us\":%.3f,\"aborts_per_commit\":%.4f,"
            "\"serial_pct\":%.3f}",
            i == 0 ? "" : ",", r.bench.c_str(), r.branch.c_str(),
            r.threads, r.shards, r.secs, r.opsPerSec, r.p99Us,
            r.abortsPerCommit, r.serialPct);
    }
    std::fprintf(f, "\n]}\n");
    return std::fclose(f) == 0;
}

HarnessOpts
parseArgs(int argc, char **argv)
{
    HarnessOpts opts;
    // The row label is the binary's basename, so every harness bench
    // gains --json without touching its main().
    if (argc > 0 && argv[0] != nullptr) {
        const char *slash = std::strrchr(argv[0], '/');
        opts.benchName = slash != nullptr ? slash + 1 : argv[0];
    }
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg);
            return argv[++i];
        };
        if (std::strcmp(arg, "--ops") == 0) {
            opts.opsPerThread = std::strtoull(next(), nullptr, 10);
        } else if (std::strcmp(arg, "--trials") == 0) {
            opts.trials =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr,
                                                        10));
        } else if (std::strcmp(arg, "--threads") == 0) {
            opts.threads.clear();
            const char *list = next();
            for (const char *p = list; *p != '\0';) {
                opts.threads.push_back(
                    static_cast<std::uint32_t>(std::strtoul(p, nullptr,
                                                            10)));
                while (*p != '\0' && *p != ',')
                    ++p;
                if (*p == ',')
                    ++p;
            }
        } else if (std::strcmp(arg, "--window") == 0) {
            opts.windowSize = std::strtoull(next(), nullptr, 10);
        } else if (std::strcmp(arg, "--value") == 0) {
            opts.valueSize = std::strtoull(next(), nullptr, 10);
        } else if (std::strcmp(arg, "--set-fraction") == 0) {
            opts.setFraction = std::strtod(next(), nullptr);
        } else if (std::strcmp(arg, "--shards") == 0) {
            opts.shards =
                static_cast<std::uint32_t>(std::strtoul(next(), nullptr,
                                                        10));
        } else if (std::strcmp(arg, "--json") == 0) {
            opts.jsonPath = next();
        } else if (std::strcmp(arg, "--csv") == 0) {
            opts.emitCsv = true;
        } else if (std::strcmp(arg, "--quick") == 0) {
            opts.opsPerThread = 5000;
            opts.trials = 1;
            opts.windowSize = 2000;
        } else if (std::strcmp(arg, "--help") == 0) {
            std::printf(
                "options: --ops N --trials K --threads a,b,c --window W\n"
                "         --value BYTES --set-fraction F --shards N\n"
                "         --csv --json OUT --quick\n"
                "paper parameters: --ops 625000 --trials 5 "
                "--threads 1,2,4,8,12\n");
            std::exit(0);
        } else {
            fatal("unknown option '%s' (try --help)", arg);
        }
    }
    return opts;
}

tm::RuntimeCfg
gccDefaultRuntime()
{
    return tm::RuntimeCfg{};
}

tm::RuntimeCfg
noLockRuntime()
{
    tm::RuntimeCfg cfg;
    cfg.useSerialLock = false;
    cfg.cm = tm::CmKind::NoCM;
    return cfg;
}

SeriesSpec
branchSeries(const std::string &branch)
{
    // IT-RA carries its own runtime (the RA algorithm); every other
    // branch runs the GCC-default configuration.
    return SeriesSpec{branch, branch, mc::runtimeCfgFor(branch)};
}

Cell
runCell(const SeriesSpec &spec, std::uint32_t threads,
        const HarnessOpts &opts)
{
    std::vector<double> times;
    for (std::uint32_t trial = 0; trial < opts.trials; ++trial) {
        tm::Runtime::get().configure(spec.runtime);
        tm::Runtime::get().resetStats();
        // Reset per trial so the post-loop snapshots describe exactly
        // the final trial (the one whose cache teardown has finished).
        obs::MetricsRegistry::get().resetHistograms();

        mc::Settings settings;
        settings.maxBytes = 256 * 1024 * 1024;
        settings.hashPowerInit = 12;
        auto cache = mc::makeShardedCache(spec.cacheBranch, settings,
                                          threads, opts.shards);
        if (cache == nullptr)
            fatal("unknown branch '%s'", spec.cacheBranch.c_str());

        workload::MemslapCfg w;
        w.concurrency = threads;
        w.executeNumber = opts.opsPerThread;
        w.windowSize = opts.windowSize;
        w.valueSize = opts.valueSize;
        w.setFraction = opts.setFraction;
        w.seed = 20140301 + trial;
        const auto result = workload::runMemslap(*cache, w);
        times.push_back(result.seconds);
    }
    Cell cell;
    for (double t : times)
        cell.meanSeconds += t;
    cell.meanSeconds /= static_cast<double>(times.size());
    double var = 0.0;
    for (double t : times)
        var += (t - cell.meanSeconds) * (t - cell.meanSeconds);
    cell.stddevSeconds =
        times.size() > 1
            ? std::sqrt(var / static_cast<double>(times.size() - 1))
            : 0.0;
    cell.opsPerSec =
        static_cast<double>(threads) *
        static_cast<double>(opts.opsPerThread) / cell.meanSeconds;
    cell.bestSeconds = *std::min_element(times.begin(), times.end());
    cell.bestOpsPerSec =
        static_cast<double>(threads) *
        static_cast<double>(opts.opsPerThread) / cell.bestSeconds;

    // Tail latency and TM shape of the final trial. Lock-based
    // branches run no transactions, so their p99 is 0 and the ratios
    // stay 0 — the perf gate's taxonomy check relies on exactly that.
    cell.p99Us =
        obs::hist(obs::HistKind::Tx).snapshot().summary().p99Us;
    const auto snap = tm::Runtime::get().snapshot();
    if (snap.total.commits > 0) {
        const double commits =
            static_cast<double>(snap.total.commits);
        cell.abortsPerCommit =
            static_cast<double>(snap.total.aborts) / commits;
        cell.serialPct =
            100.0 * static_cast<double>(snap.total.serialCommits) /
            commits;
    }
    return cell;
}

void
runFigure(const std::string &title, const std::vector<SeriesSpec> &series,
          const HarnessOpts &opts)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("workload: %llu ops/thread, %llu-key window/thread, "
                "%.0f%% sets, %zu-byte values, %u trial(s)\n",
                static_cast<unsigned long long>(opts.opsPerThread),
                static_cast<unsigned long long>(opts.windowSize),
                opts.setFraction * 100.0, opts.valueSize, opts.trials);
    std::printf("cells: seconds for the fixed per-thread op count "
                "(flat line across threads = perfect scaling)\n\n");

    std::printf("%-8s", "threads");
    for (const auto &s : series)
        std::printf(" %20s", s.label.c_str());
    std::printf("\n");

    std::vector<std::vector<Cell>> grid;
    for (std::uint32_t t : opts.threads) {
        grid.emplace_back();
        std::printf("%-8u", t);
        std::fflush(stdout);
        for (const auto &s : series) {
            const Cell cell = runCell(s, t, opts);
            grid.back().push_back(cell);
            if (!opts.jsonPath.empty()) {
                addBenchRow({opts.benchName, s.label, t, opts.shards,
                             cell.bestSeconds, cell.bestOpsPerSec,
                             cell.p99Us, cell.abortsPerCommit,
                             cell.serialPct});
            }
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.3f (+/-%.3f)",
                          cell.meanSeconds, cell.stddevSeconds);
            std::printf(" %20s", buf);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    if (!opts.jsonPath.empty() && !writeBenchJson(opts.jsonPath))
        fatal("cannot write %s", opts.jsonPath.c_str());

    if (opts.emitCsv) {
        std::printf("\ncsv,threads");
        for (const auto &s : series)
            std::printf(",%s", s.label.c_str());
        std::printf("\n");
        for (std::size_t r = 0; r < opts.threads.size(); ++r) {
            std::printf("csv,%u", opts.threads[r]);
            for (const Cell &c : grid[r])
                std::printf(",%.6f", c.meanSeconds);
            std::printf("\n");
        }
    }
    std::printf("\n");
}

void
runSerializationTable(const std::string &title,
                      const std::vector<SeriesSpec> &series,
                      const HarnessOpts &opts)
{
    std::printf("== %s ==\n", title.c_str());
    std::printf("4-thread execution, %llu ops/thread (paper: 625000)\n\n",
                static_cast<unsigned long long>(opts.opsPerThread));
    std::printf("%-16s %12s %18s %18s %12s\n", "Branch", "Transactions",
                "In-Flight Switch", "Start Serial", "Abort Serial");

    for (const auto &s : series) {
        tm::Runtime::get().configure(s.runtime);
        tm::Runtime::get().resetStats();
        obs::MetricsRegistry::get().resetHistograms();

        mc::Settings settings;
        settings.maxBytes = 256 * 1024 * 1024;
        settings.hashPowerInit = 12;
        auto cache = mc::makeCache(s.cacheBranch, settings, 4);
        if (cache == nullptr)
            fatal("unknown branch '%s'", s.cacheBranch.c_str());

        workload::MemslapCfg w;
        w.concurrency = 4;
        w.executeNumber = opts.opsPerThread;
        w.windowSize = opts.windowSize;
        w.valueSize = opts.valueSize;
        w.setFraction = opts.setFraction;
        const auto result = workload::runMemslap(*cache, w);
        cache.reset();  // Include maintenance-thread transactions.

        const auto snap = tm::Runtime::get().snapshot();
        std::printf("%s\n", snap.formatTableRow(s.label).c_str());
        if (!opts.jsonPath.empty()) {
            BenchRow row{opts.benchName, s.label, 4, 1,
                         result.seconds,
                         result.seconds > 0.0
                             ? 4.0 *
                                   static_cast<double>(
                                       opts.opsPerThread) /
                                   result.seconds
                             : 0.0,
                         obs::hist(obs::HistKind::Tx)
                             .snapshot()
                             .summary()
                             .p99Us,
                         0.0, 0.0};
            if (snap.total.commits > 0) {
                const double commits =
                    static_cast<double>(snap.total.commits);
                row.abortsPerCommit =
                    static_cast<double>(snap.total.aborts) / commits;
                row.serialPct =
                    100.0 *
                    static_cast<double>(snap.total.serialCommits) /
                    commits;
            }
            addBenchRow(row);
        }
    }
    if (!opts.jsonPath.empty() && !writeBenchJson(opts.jsonPath))
        fatal("cannot write %s", opts.jsonPath.c_str());
    std::printf("\n");
}

} // namespace tmemc::bench
