"""Source model for tmlint: functions, annotations, and checked regions.

Built on the token stream from tmlexer.py. The model is deliberately
approximate — it has no preprocessor, no overload resolution, and no
template instantiation — but the approximations are all conservative
for the code shapes this repository uses (clang-format enforced,
annotation macros spelled literally, transactions entered through
tm::run or the branch-policy section runners). The libclang backend,
when a clang Python binding is present, replaces the annotation
extraction with an AST-accurate one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from tmlexer import match_brace, match_paren, tokenize

# Macro spellings carrying the annotation contract (common/compiler.h).
ANNOTATIONS = {
    "TM_SAFE": "safe",
    "TM_CALLABLE": "callable",
    "TM_PURE": "pure",
    "TM_UNSAFE": "unsafe",
}

# Call names that enter a transaction with a lambda body. tm::run is
# the library's __transaction_* rendering; the section runners are the
# branch policies' wrappers around it (sync_tm.h), through which every
# cache critical section flows.
RUN_NAMES = {"run"}
SECTION_RUNNERS = {
    "cacheSection",
    "slabsSection",
    "statsSection",
    "threadStatsSection",
    "itemSection",
}

# Deferred-handler registration points (tm/handlers.h machinery).
HANDLER_NAMES = {"onCommit", "onAbort"}

_KEYWORDS_NOT_CALLS = {
    "if", "while", "for", "switch", "return", "sizeof", "alignof",
    "decltype", "static_cast", "reinterpret_cast", "const_cast",
    "dynamic_cast", "catch", "throw", "new", "delete", "noexcept",
    "alignas", "static_assert", "defined", "assert", "constexpr",
    "typeid", "co_await", "co_return", "co_yield", "requires",
    "operator",
}

_TYPE_STARTERS = {
    "auto", "const", "constexpr", "static", "inline", "unsigned",
    "signed", "char", "int", "long", "short", "bool", "float", "double",
    "void", "struct", "class", "enum", "volatile", "register",
    "thread_local", "mutable", "extern",
}


@dataclass
class FunctionDef:
    name: str
    qual: str             # Qualified spelling as written, e.g. a::b::f.
    annotation: str       # '', 'safe', 'callable', 'pure', 'unsafe'.
    file: str = ""
    line: int = 0
    params: list = field(default_factory=list)   # Parameter names.
    body: tuple = (0, 0)  # Token index range [lo, hi) of the body.


@dataclass
class Region:
    """A lexical transaction body (lambda passed to a run call)."""
    kind: str             # 'atomic', 'relaxed', 'unknown'.
    entry: str            # The call that created it (run/cacheSection).
    file: str = ""
    line: int = 0
    params: list = field(default_factory=list)   # Lambda params.
    outer_params: list = field(default_factory=list)
    body: tuple = (0, 0)


@dataclass
class HandlerSite:
    """A lambda registered as an onCommit/onAbort handler."""
    which: str            # 'onCommit' or 'onAbort'.
    file: str = ""
    line: int = 0
    txdesc_names: list = field(default_factory=list)
    params: list = field(default_factory=list)
    body: tuple = (0, 0)


@dataclass
class SourceFile:
    path: str
    tokens: list = field(default_factory=list)
    markers: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    regions: list = field(default_factory=list)
    handlers: list = field(default_factory=list)
    attr_kinds: dict = field(default_factory=dict)  # attr var -> kind.


@dataclass
class Project:
    files: list = field(default_factory=list)
    # name -> set of annotations seen project-wide for that name. A
    # name annotated differently across overloads is 'ambiguous' to
    # the rules layer.
    annotation_index: dict = field(default_factory=dict)
    # name -> list of (SourceFile, FunctionDef) with visible bodies.
    bodies: dict = field(default_factory=dict)


def _qualified_name_ending(tokens, idx):
    """Walk a qualified id ending at tokens[idx]; return (lo, qual)."""
    parts = [tokens[idx].text]
    k = idx - 1
    while k >= 1 and tokens[k].kind == "punct" and tokens[k].text == "::":
        if tokens[k - 1].kind == "id":
            parts.append(tokens[k - 1].text)
            parts.append("::")
            k -= 2
        else:
            break
    parts.reverse()
    return k + 1, "".join(p for p in parts)


def _param_names(tokens, lo, hi):
    """Best-effort parameter names of a parameter list (lo, hi)."""
    names = []
    depth = 0
    last_id = None
    for k in range(lo + 1, hi):
        t = tokens[k]
        if t.kind == "punct":
            if t.text in "(<[{":
                depth += 1
            elif t.text in ")>]}":
                depth -= 1
            elif t.text == "," and depth == 0:
                if last_id is not None:
                    names.append(last_id)
                last_id = None
            elif t.text == "=" and depth == 0:
                pass  # Default argument: keep the name seen so far.
        elif t.kind == "id" and depth == 0:
            last_id = t.text
    if last_id is not None:
        names.append(last_id)
    return names


def _find_lambda(tokens, lo, hi):
    """First lambda intro in [lo, hi); returns (lb, params, b0, b1)
    token indices or None. b0/b1 delimit the body braces."""
    k = lo
    while k < hi:
        t = tokens[k]
        if t.kind == "punct" and t.text == "[":
            close = None
            depth = 0
            for j in range(k, min(hi, len(tokens))):
                tj = tokens[j]
                if tj.kind == "punct":
                    if tj.text == "[":
                        depth += 1
                    elif tj.text == "]":
                        depth -= 1
                        if depth == 0:
                            close = j
                            break
            if close is None:
                return None
            j = close + 1
            params = []
            if j < len(tokens) and tokens[j].kind == "punct" \
                    and tokens[j].text == "(":
                pc = match_paren(tokens, j)
                params = _param_names(tokens, j, pc)
                j = pc + 1
            # Skip specifiers (mutable, noexcept, -> ret) up to '{'.
            while j < len(tokens) and not (
                    tokens[j].kind == "punct" and tokens[j].text in "{;"):
                j += 1
            if j < len(tokens) and tokens[j].text == "{":
                return k, params, j, match_brace(tokens, j)
            return None
        k += 1
    return None


def _collect_attr_kinds(tokens):
    """Map TxnAttr variable names declared in this TU to their static
    TxnKind ('atomic'/'relaxed') where the initializer names one."""
    kinds = {}
    for k, t in enumerate(tokens):
        if t.kind != "id" or t.text != "TxnAttr":
            continue
        # TxnAttr NAME { ... TxnKind::X ... }  (or = { ... }).
        j = k + 1
        if j < len(tokens) and tokens[j].kind == "id":
            name = tokens[j].text
            j += 1
            while j < len(tokens) and tokens[j].text in ("=",):
                j += 1
            if j < len(tokens) and tokens[j].text == "{":
                end = match_brace(tokens, j)
                init = tokens[j:end]
                for q, tq in enumerate(init):
                    if tq.kind == "id" and tq.text == "TxnKind":
                        if q + 2 < len(init) and init[q + 2].kind == "id":
                            kinds[name] = init[q + 2].text.lower()
        # TMEMC_TXN_SITE(var, name, kind, serial)
        if t.text == "TMEMC_TXN_SITE" and k + 1 < len(tokens) \
                and tokens[k + 1].text == "(":
            end = match_paren(tokens, k + 1)
            args = tokens[k + 2 : end]
            if args:
                name = args[0].text
                for q, tq in enumerate(args):
                    if tq.kind == "id" and tq.text == "TxnKind" \
                            and q + 2 < len(args):
                        kinds[name] = args[q + 2].text.lower()
    return kinds


def _run_site_kind(tokens, arg_lo, arg_hi, attr_kinds):
    """Classify the attr argument of a run call."""
    ids = [t.text for t in tokens[arg_lo:arg_hi] if t.kind == "id"]
    for k, name in enumerate(ids):
        if name == "TxnKind" and k + 1 < len(ids):
            return ids[k + 1].lower()
    for name in ids:
        if name in attr_kinds:
            return attr_kinds[name]
    return "unknown"


def _scan_functions(sf):
    """Find function definitions and their annotations."""
    tokens = sf.tokens
    n = len(tokens)
    k = 0
    while k < n:
        t = tokens[k]
        if not (t.kind == "punct" and t.text == "("):
            k += 1
            continue
        # Candidate: id '(' ... ')' [const/noexcept/...] '{'
        if k == 0 or tokens[k - 1].kind != "id":
            k += 1
            continue
        name_idx = k - 1
        name = tokens[name_idx].text
        if name in _KEYWORDS_NOT_CALLS or name in _TYPE_STARTERS:
            k += 1
            continue
        close = match_paren(tokens, k)
        if close >= n:
            k += 1
            continue
        j = close + 1
        while j < n and tokens[j].kind == "id" and tokens[j].text in (
                "const", "noexcept", "override", "final", "mutable"):
            j += 1
        # Trailing return type: skip '-> T' fragments.
        while j < n and tokens[j].kind == "punct" and tokens[j].text == "->":
            j += 1
            while j < n and not (tokens[j].kind == "punct"
                                 and tokens[j].text in ("{", ";")):
                j += 1
        if not (j < n and tokens[j].kind == "punct"
                and tokens[j].text == "{"):
            k += 1
            continue
        # Reject control-flow and initializer-list shapes: the token
        # before the name must not be '.', '->', 'new', or the name
        # itself a declared variable init (heuristic: preceding token
        # is '=' or ',' or '(' means expression context).
        prev = tokens[name_idx - 1] if name_idx > 0 else None
        if prev is not None and prev.kind == "punct" and prev.text in (
                ".", "->", "=", ",", "(", "[", "!", "|", "+", "-",
                "/", "<", "?", ":"):
            # Expression context, not a definition. '*', '&', '>',
            # and '::' stay allowed: pointer/reference returns
            # (`Item *assocFind(...)`), template returns
            # (`vector<int> f(...)`), and qualified names.
            k += 1
            continue
        lo, qual = _qualified_name_ending(tokens, name_idx)
        # Annotation: scan backwards over the declaration prefix until
        # a hard boundary token.
        annotation = ""
        b = lo - 1
        while b >= 0:
            tb = tokens[b]
            if tb.kind == "punct" and tb.text in ("{", "}", ";"):
                break
            if tb.kind == "id" and tb.text in ANNOTATIONS:
                annotation = ANNOTATIONS[tb.text]
                break
            b -= 1
        body_end = match_brace(tokens, j)
        sf.functions.append(FunctionDef(
            name=name, qual=qual, annotation=annotation, file=sf.path,
            line=tokens[name_idx].line,
            params=_param_names(tokens, k, close),
            body=(j + 1, body_end)))
        k = close + 1


def _enclosing_function(sf, tok_idx):
    for fn in sf.functions:
        if fn.body[0] <= tok_idx < fn.body[1]:
            return fn
    return None


def _scan_regions_and_handlers(sf):
    tokens = sf.tokens
    n = len(tokens)
    for k, t in enumerate(tokens):
        if t.kind != "id":
            continue
        is_run = t.text in RUN_NAMES
        is_section = t.text in SECTION_RUNNERS
        is_handler = t.text in HANDLER_NAMES
        if not (is_run or is_section or is_handler):
            continue
        if k + 1 >= n or tokens[k + 1].text != "(":
            continue
        if is_run:
            # Accept only qualified tm::run / tmemc::tm::run spellings
            # (plain run(...) is too common a word).
            if not (k >= 2 and tokens[k - 1].text == "::"
                    and tokens[k - 2].kind == "id"
                    and tokens[k - 2].text in ("tm", "Runtime")):
                continue
        close = match_paren(tokens, k + 1)
        # First argument: up to the first depth-0 comma.
        arg_hi = close
        depth = 0
        for j in range(k + 2, close):
            tj = tokens[j]
            if tj.kind == "punct":
                if tj.text in "([{":
                    depth += 1
                elif tj.text in ")]}":
                    depth -= 1
                elif tj.text == "," and depth == 0:
                    arg_hi = j
                    break
        lam = _find_lambda(tokens, k + 2, close + 1)
        if lam is None:
            continue
        lam_open, lparams, b0, b1 = lam
        encl = _enclosing_function(sf, k)
        outer = list(encl.params) if encl is not None else []
        if is_handler:
            # The TxDesc the handler must not touch: the receiver of a
            # `tx.onCommit(...)` call, or ids in the argument list
            # before the lambda for `onCommit(tx, ...)` spellings.
            txnames = []
            if k >= 2 and tokens[k - 1].kind == "punct" \
                    and tokens[k - 1].text in (".", "->") \
                    and tokens[k - 2].kind == "id":
                txnames.append(tokens[k - 2].text)
            txnames += [tok.text for tok in tokens[k + 2 : lam_open]
                        if tok.kind == "id"]
            sf.handlers.append(HandlerSite(
                which=t.text, file=sf.path, line=t.line,
                txdesc_names=txnames or ["tx"],
                params=lparams, body=(b0 + 1, b1)))
            continue
        if is_section:
            kind = "unknown"
        else:
            kind = _run_site_kind(tokens, k + 2, arg_hi, sf.attr_kinds)
            if kind not in ("atomic", "relaxed"):
                kind = "unknown"
        sf.regions.append(Region(
            kind=kind, entry=t.text, file=sf.path, line=t.line,
            params=lparams, outer_params=outer, body=(b0 + 1, b1)))


def parse_file(path, text=None):
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    tokens, markers = tokenize(text)
    sf = SourceFile(path=path, tokens=tokens, markers=markers)
    sf.attr_kinds = _collect_attr_kinds(tokens)
    _scan_functions(sf)
    _scan_regions_and_handlers(sf)
    return sf


def build_project(paths, texts=None):
    proj = Project()
    for p in paths:
        sf = parse_file(p, None if texts is None else texts.get(p))
        proj.files.append(sf)
        for fn in sf.functions:
            if fn.annotation:
                proj.annotation_index.setdefault(fn.name, set()).add(
                    fn.annotation)
            proj.bodies.setdefault(fn.name, []).append((sf, fn))
    # Annotated declarations without bodies (header prototypes) also
    # feed the index: scan for 'TM_X <tokens> name (' ... ');'.
    for sf in proj.files:
        tokens = sf.tokens
        for k, t in enumerate(tokens):
            if t.kind == "id" and t.text in ANNOTATIONS:
                # Find the declared name: the id right before the next
                # '(' at this declaration.
                j = k + 1
                while j < len(tokens) and not (
                        tokens[j].kind == "punct"
                        and tokens[j].text in ("(", ";", "{", "}")):
                    j += 1
                if j < len(tokens) and tokens[j].text == "(" \
                        and tokens[j - 1].kind == "id":
                    proj.annotation_index.setdefault(
                        tokens[j - 1].text, set()).add(ANNOTATIONS[t.text])
    return proj
