#!/usr/bin/env python3
"""tmlint: static TM-safety checking for the tmemc library STM.

GCC's transactional-memory front end rejects, at compile time, atomic
transactions that reach code it cannot prove transaction-safe. tmemc
models transactions as a library (tm::run + TxDesc), so the compiler
provides none of that checking. tmlint restores it as an external
pass: it walks every translation unit under src/, finds transaction
bodies (lambdas passed to tm::run and to the branch-policy section
runners) and annotated functions, and enforces the TM1-TM4 rule
families documented in tmrules.py / docs/architecture.md section 9.

Backends:
  ctok   self-contained token-level front end (tmlexer + tmmodel).
         Always available; the one CI runs.
  clang  libclang AST refinement of the annotation index; used when a
         clang Python binding exists (see clang_backend.py).
  auto   clang when available, else ctok (default).

Exit status: 0 clean, 1 diagnostics (or selftest mismatch), 2 usage.

Usage:
  tmlint.py --src src                          lint the tree
  tmlint.py --selftest-fixtures tests/tmlint/fixtures
  tmlint.py --src src --json report.json       machine-readable report
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import clang_backend
import tmmodel
import tmrules

SOURCE_EXTS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")


def find_sources(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in ("build", ".git") and not d.startswith("build-"))
        for f in sorted(filenames):
            if f.endswith(SOURCE_EXTS):
                out.append(os.path.join(dirpath, f))
    return out


def relpath(path, base):
    try:
        return os.path.relpath(path, base)
    except ValueError:
        return path


def lint_tree(opts):
    src_files = find_sources(opts.src)
    if not src_files:
        print(f"tmlint: no sources under {opts.src}", file=sys.stderr)
        return 2
    project = tmmodel.build_project(src_files)
    backend = pick_backend(opts)
    if backend == "clang":
        merge_clang_annotations(project, src_files, opts.compile_commands)
    checker = tmrules.Checker(project, infer=not opts.no_infer)
    diags = sorted(checker.run(), key=lambda d: (d.file, d.line, d.rule))
    base = os.getcwd()
    for d in diags:
        print(f"{relpath(d.file, base)}:{d.line}: [{d.rule}] {d.msg}")
    summary = {
        "backend": backend,
        "files_checked": len(src_files),
        "diagnostics": [
            {"file": relpath(d.file, base), "line": d.line,
             "rule": d.rule, "message": d.msg}
            for d in diags
        ],
    }
    if opts.json:
        with open(opts.json, "w", encoding="utf-8") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
    print(f"tmlint: {len(diags)} diagnostic(s) across "
          f"{len(src_files)} file(s) [backend={backend}]")
    return 1 if diags else 0


def pick_backend(opts):
    if opts.backend == "clang":
        if not clang_backend.available():
            print("tmlint: clang backend requested but no usable "
                  "clang.cindex/libclang found", file=sys.stderr)
            sys.exit(2)
        return "clang"
    if opts.backend == "ctok":
        return "ctok"
    return "clang" if clang_backend.available() else "ctok"


def merge_clang_annotations(project, src_files, compile_commands):
    extra = clang_backend.annotation_index(
        [p for p in src_files if p.endswith((".cc", ".cpp", ".cxx"))],
        compile_commands)
    for name, anns in extra.items():
        project.annotation_index.setdefault(name, set()).update(anns)


def expected_from_markers(sf):
    """Fixture expectations from `// tmlint-expect: ...` markers."""
    expected = set()
    saw_none = False
    for m in sf.markers:
        if m.name != "tmlint-expect":
            continue
        if m.arg.strip().lower() == "none":
            saw_none = True
            continue
        for rule in m.arg.split():
            expected.add((m.line, rule.strip()))
    return expected, saw_none


def selftest(opts):
    fixture_files = find_sources(opts.selftest_fixtures)
    if not fixture_files:
        print(f"tmlint: no fixtures under {opts.selftest_fixtures}",
              file=sys.stderr)
        return 2
    # The real tree supplies the annotation index (txLoad, TmCtx
    # methods, ...) so fixtures resolve calls the way product code does.
    src_files = find_sources(opts.src) if os.path.isdir(opts.src) else []
    failures = 0
    for fixture in fixture_files:
        project = tmmodel.build_project(src_files + [fixture])
        checker = tmrules.Checker(project, infer=not opts.no_infer,
                                  check_paths=[fixture])
        diags = checker.run()
        sf = next(f for f in project.files if f.path == fixture)
        expected, saw_none = expected_from_markers(sf)
        got = {(d.line, d.rule) for d in diags}
        name = os.path.basename(fixture)
        if not expected and not saw_none:
            print(f"FAIL {name}: fixture declares no tmlint-expect "
                  "markers (add `// tmlint-expect: none` if clean)")
            failures += 1
            continue
        if got == expected:
            label = "none" if saw_none and not expected else ", ".join(
                sorted(f"{r}@{ln}" for ln, r in expected))
            print(f"ok   {name}: {label}")
            continue
        failures += 1
        print(f"FAIL {name}:")
        for ln, rule in sorted(expected - got):
            print(f"  missing expected {rule} at line {ln}")
        for ln, rule in sorted(got - expected):
            msg = next(d.msg for d in diags
                       if (d.line, d.rule) == (ln, rule))
            print(f"  unexpected {rule} at line {ln}: {msg}")
    total = len(fixture_files)
    print(f"tmlint selftest: {total - failures}/{total} fixtures ok")
    return 1 if failures else 0


def main(argv=None):
    ap = argparse.ArgumentParser(prog="tmlint.py",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("--src", default="src",
                    help="source tree to lint (default: src)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json for the clang backend")
    ap.add_argument("--json", default=None,
                    help="write a JSON report to this path")
    ap.add_argument("--backend", choices=("auto", "clang", "ctok"),
                    default="auto")
    ap.add_argument("--no-infer", action="store_true",
                    help="disable callable-safety inference for "
                         "unresolvable calls (models a conservative "
                         "compiler; see RuntimeCfg::inferCallableSafety)")
    ap.add_argument("--selftest-fixtures", default=None,
                    help="run the fixture selftest over this directory "
                         "instead of linting --src")
    opts = ap.parse_args(argv)
    if opts.selftest_fixtures:
        return selftest(opts)
    return lint_tree(opts)


if __name__ == "__main__":
    sys.exit(main())
