"""C++ tokenizer for tmlint's fallback front end.

Produces a flat token stream (no preprocessing, no template
instantiation) that is good enough for the region/annotation analysis
in tmmodel.py. Comments are stripped but scanned for tmlint waiver and
expectation markers, which are returned alongside the tokens.

Tokens are namedtuples (kind, text, line, col) with kind one of:
  id     identifier or keyword (including qualified fragments; the
         model layer joins `a :: b` sequences itself)
  num    numeric literal
  str    string literal (text is the raw literal, quotes included)
  chr    character literal
  punct  operator / punctuation, longest-match (e.g. '->', '::', '<<=')
"""

from __future__ import annotations

import re
from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line", "col"])
Marker = namedtuple("Marker", ["line", "name", "arg"])

# Longest-first so maximal munch works with a simple ordered scan.
_PUNCTS = [
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "?", ":", ".",
    "#",
]

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"(?:0[xXbB])?[0-9](?:[0-9a-fA-F'.]|[eEpP][+-])*[uUlLzZfF]*")

# Waiver / expectation markers recognized inside comments:
#   tmlint-expect: TM3            (fixture expectation on this line)
#   tmlint-expect: none           (fixture must produce no diagnostics)
#   tm-captured: <reason>         (TM1 waiver: fresh/captured memory)
#   tm-pure-local: <reason>       (TM1 waiver: std call on private data)
# The atomics-protocol checker (tools/atomlint) shares this lexer and
# adds its own marker family:
#   atom-protocol: <protocol>     (binds the declaration on this line
#                                  or the next two to a protocol)
#   atom-allow: <reason>          (per-site waiver, this line + two)
#   atom-nonblocking: <reason>    (function must stay mutex-free)
#   atomlint-expect: AL2          (atomlint fixture expectation)
_MARKER_RE = re.compile(
    r"(tmlint-expect|tm-captured|tm-pure-local"
    r"|atomlint-expect|atom-protocol|atom-allow|atom-nonblocking)"
    r"\s*:\s*([^\n*]*)")


def tokenize(text):
    """Return (tokens, markers) for one translation unit's source."""
    tokens = []
    markers = []
    i = 0
    line = 1
    col = 1
    n = len(text)

    def scan_comment(body, at_line):
        for m in _MARKER_RE.finditer(body):
            markers.append(
                Marker(at_line + body[: m.start()].count("\n"),
                       m.group(1), m.group(2).strip()))

    while i < n:
        c = text[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r\v\f":
            i += 1
            col += 1
            continue
        # Line comment.
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            scan_comment(text[i:j], line)
            col += j - i
            i = j
            continue
        # Block comment.
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            body = text[i : j + 2]
            scan_comment(body, line)
            nl = body.count("\n")
            if nl:
                line += nl
                col = len(body) - body.rfind("\n")
            else:
                col += len(body)
            i = j + 2
            continue
        # Preprocessor directive: keep '#' token, then swallow the rest
        # of the (possibly continued) line — includes/defines are read
        # by the model layer from raw text, not from tokens.
        if c == "#" and (not tokens or tokens[-1].line != line):
            j = i
            while j < n:
                k = text.find("\n", j)
                if k < 0:
                    j = n
                    break
                if text[k - 1] == "\\" if k > 0 else False:
                    j = k + 1
                    line += 1
                    continue
                j = k
                break
            i = j
            col = 1
            continue
        # Raw string literal.
        m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
        if m:
            delim = ")" + m.group(1) + '"'
            j = text.find(delim, i + m.end())
            j = n - len(delim) if j < 0 else j
            lit = text[i : j + len(delim)]
            tokens.append(Token("str", lit, line, col))
            line += lit.count("\n")
            i = j + len(delim)
            continue
        # String / char literal (with escapes).
        if c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            lit = text[i : j + 1]
            tokens.append(Token("str" if c == '"' else "chr", lit, line,
                                col))
            col += len(lit)
            i = j + 1
            continue
        m = _ID_RE.match(text, i)
        if m:
            tokens.append(Token("id", m.group(0), line, col))
            col += len(m.group(0))
            i = m.end()
            continue
        if c.isdigit():
            m = _NUM_RE.match(text, i)
            tokens.append(Token("num", m.group(0), line, col))
            col += len(m.group(0))
            i = m.end()
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line, col))
                col += len(p)
                i += len(p)
                break
        else:
            i += 1  # Unknown byte: skip.
            col += 1
    return tokens, markers


def match_brace(tokens, open_idx):
    """Index of the '}' matching tokens[open_idx] == '{' (or len)."""
    depth = 0
    for k in range(open_idx, len(tokens)):
        t = tokens[k]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return k
    return len(tokens)


def match_paren(tokens, open_idx):
    """Index of the ')' matching tokens[open_idx] == '(' (or len)."""
    depth = 0
    for k in range(open_idx, len(tokens)):
        t = tokens[k]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return k
    return len(tokens)
