"""tmlint rule engine: TM1-TM4 over the tmmodel source model.

Rule families (docs/architecture.md section 9 has the full catalogue):

  TM1  raw shared access inside a checked transaction body — a memory
       write that does not go through TxDesc instrumentation, or a call
       to the tm/raw.h escape hatches / raw std memory primitives on
       non-local data.
  TM2  unsafe call — a call from an atomic body that does not resolve
       to a TM_SAFE / TM_PURE (or, outside explicitly-atomic regions,
       TM_CALLABLE) function, after closing over visible bodies of
       unannotated callees the way GCC's inliner-driven safety
       inference does.
  TM3  irrevocable-only operation — syscall/I-O, raw allocation,
       mutex, atomic RMW, or a TM_UNSAFE callee — legal only in a
       relaxed transaction or on the serial path (lexically after an
       unsafeOp() in-flight switch in the same block).
  TM4  handler purity — onCommit/onAbort bodies run outside the
       transaction and must not touch the tm API or the TxDesc.

Waivers (comment markers, scanned by tmlexer; each covers its own
line plus the two following lines, so a standalone marker line can
cover a two-line statement):
  tm-captured: <reason>     waives TM1 — writes to captured
                            (transaction-fresh) memory, GCC's
                            captured-memory optimization.
  tm-pure-local: <reason>   waives TM1/TM3 — a std call operating on
                            private stack copies (the paper's
                            marshal-out pattern).
"""

from __future__ import annotations

from collections import namedtuple

from tmmodel import ANNOTATIONS, _TYPE_STARTERS, _KEYWORDS_NOT_CALLS
from tmlexer import match_brace, match_paren

Diagnostic = namedtuple("Diagnostic", ["file", "line", "rule", "msg"])

# Runtime API spellings; allowed in transaction bodies, forbidden in
# TM_PURE bodies and commit/abort handlers.
TM_API = {
    "txLoad", "txStore", "txLoadBytes", "txStoreBytes", "txMalloc",
    "txTryMalloc", "txFree", "unsafeOp", "noteCall", "retry", "run",
    "myDesc", "inTransaction",
}

# TxDesc members reachable from transaction bodies.
TX_METHODS = {"read", "write", "onCommit", "onAbort", "site", "domain"}

# Irrevocable free functions: syscalls, I/O, raw allocation, process
# control. Calling one speculatively can never be rolled back.
IRREVOCABLE_CALLS = {
    "malloc", "calloc", "realloc", "free", "posix_memalign",
    "aligned_alloc", "strdup",
    "printf", "fprintf", "vfprintf", "puts", "fputs", "fputc",
    "putchar", "fwrite", "fread", "fopen", "fclose", "fflush",
    "open", "close", "read", "write", "pread", "pwrite", "lseek",
    "recv", "send", "recvfrom", "sendto", "accept", "accept4",
    "socket", "bind", "listen", "connect", "shutdown", "setsockopt",
    "epoll_wait", "epoll_ctl", "epoll_create1", "ioctl", "fcntl",
    "poll", "select", "usleep", "sleep", "nanosleep", "exit", "_exit",
    "abort", "syscall", "system", "fork", "execve", "raise", "kill",
    "pthread_mutex_lock", "pthread_mutex_unlock", "pthread_cond_wait",
    "pthread_cond_signal", "pthread_cond_broadcast", "sem_wait",
    "sem_post", "sem_trywait",
}

# Member spellings that are irrevocable on any receiver.
MUTEX_METHODS = {"lock", "unlock", "try_lock", "lock_shared",
                 "unlock_shared"}
ATOMIC_RMW_METHODS = {"fetch_add", "fetch_sub", "fetch_and", "fetch_or",
                      "fetch_xor", "exchange", "compare_exchange_weak",
                      "compare_exchange_strong", "notify_one",
                      "notify_all"}

# Raw-memory std primitives: fine on private locals (the marshal
# pattern), a TM1 diagnostic on anything shared.
LOCAL_OK_FNS = {
    "memcmp", "memcpy", "memmove", "memset", "strlen", "strncmp",
    "strncpy", "strchr", "snprintf", "isspace", "isdigit", "tolower",
    "toupper", "strtol", "strtoull",
}

# Side-effect-free std utilities, always legal.
PURE_ALWAYS = {
    "move", "forward", "min", "max", "clamp", "swap", "size", "empty",
    "data", "begin", "end", "cbegin", "cend", "get", "tie",
    "make_pair", "make_tuple", "declval", "abs", "countl_zero",
    "countr_zero", "popcount", "bit_cast", "to_underlying", "as_const",
    "distance", "exchange_weak", "hash", "launder", "addressof",
    "char_traits", "numeric_limits", "is_same_v", "front", "back",
    "count", "find", "c_str", "length", "substr", "compare", "value",
    "has_value", "load",
}

# The tm/raw.h escape hatches: any use inside a checked region is TM1.
RAW_ESCAPES = {"rawLoad", "rawLoadAcquire", "rawStore", "rawGet",
               "rawSet"}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}

_CTRL_PARENS = {"if", "while", "for", "switch"}


def _is_macro_like(name):
    return name.isupper() or (name[:1].isupper() and "_" in name
                              and name.upper() == name)


def _is_type_like(name):
    return (name[:1].isupper() or name in _TYPE_STARTERS
            or name.endswith("_t") or name in (
                "string", "string_view", "vector", "array", "span",
                "optional", "pair", "tuple", "atomic", "mutex",
                "unique_ptr", "shared_ptr", "size_t", "ssize_t",
                "uintptr_t", "intptr_t", "ptrdiff_t"))


class _Scope:
    __slots__ = ("serial",)

    def __init__(self, serial=False):
        self.serial = serial


def collect_locals(tokens, lo, hi, seed=()):
    """Map of local names -> 'value' | 'ptr' declared in [lo, hi).

    seed names enter as 'value' (parameters: plain-name writes to them
    are private; deref/arrow writes are still flagged separately).
    """
    locals_ = {name: "value" for name in seed}
    n = min(hi, len(tokens))
    k = lo
    stmt_start = True
    while k < n:
        t = tokens[k]
        if t.kind == "punct":
            if t.text in ("{", "}", ";"):
                stmt_start = True
                k += 1
                continue
            if t.text == "(":
                # for/if/while heads introduce declarations too.
                prev = tokens[k - 1] if k > 0 else None
                if prev is not None and prev.kind == "id" \
                        and prev.text in _CTRL_PARENS:
                    stmt_start = True
                    k += 1
                    continue
            k += 1
            stmt_start = False
            continue
        if not stmt_start or t.kind != "id":
            k += 1
            stmt_start = False
            continue
        # Try to parse a declaration starting at k.
        j = k
        saw_type = False
        is_ptr = False
        last_id = None
        init_root_local = False
        while j < n:
            tj = tokens[j]
            if tj.kind == "id":
                if last_id is not None:
                    saw_type = True
                last_id = tj.text
                j += 1
                continue
            if tj.kind == "punct":
                if tj.text == "::":
                    j += 1
                    last_id = None  # qualifier fragment, not the name
                    saw_type = True
                    continue
                if tj.text == "<":
                    # Skip balanced template args (best effort).
                    depth = 1
                    j += 1
                    while j < n and depth:
                        if tokens[j].text == "<":
                            depth += 1
                        elif tokens[j].text == ">":
                            depth -= 1
                        elif tokens[j].text in (";", "{"):
                            break
                        j += 1
                    saw_type = True
                    continue
                if tj.text in ("*",):
                    is_ptr = True
                    j += 1
                    continue
                if tj.text in ("&", "&&"):
                    is_ptr = True  # references alias — treat as ptr
                    j += 1
                    continue
                if tj.text == "[" and last_id is None:
                    # Structured binding: auto [a, b] = ...
                    close = j
                    depth = 0
                    while close < n:
                        if tokens[close].text == "[":
                            depth += 1
                        elif tokens[close].text == "]":
                            depth -= 1
                            if depth == 0:
                                break
                        close += 1
                    for q in range(j + 1, close):
                        if tokens[q].kind == "id":
                            locals_[tokens[q].text] = "value"
                    j = close + 1
                    last_id = "\x00bound"
                    continue
                break
            break
        if last_id is None or last_id == "\x00bound" or not saw_type:
            k += 1
            stmt_start = False
            continue
        tj = tokens[j] if j < n else None
        if tj is None or tj.kind != "punct" or tj.text not in (
                "=", ";", "{", "[", "(", ",", ":"):
            k += 1
            stmt_start = False
            continue
        first = tokens[k].text
        if first in _KEYWORDS_NOT_CALLS or _is_macro_like(first) \
                and tj.text == "(":
            k += 1
            stmt_start = False
            continue
        kind = "ptr" if is_ptr else "value"
        if tj.text == "[":
            kind = "value"  # local array storage
        if tj.text == "=" and is_ptr:
            # Pointer initialized from a local? Then it stays private.
            q = j + 1
            while q < n and tokens[q].kind == "punct" \
                    and tokens[q].text in ("&", "*", "("):
                q += 1
            if q < n and tokens[q].kind == "id" \
                    and tokens[q].text in locals_:
                init_root_local = True
        if init_root_local:
            kind = locals_.get("", kind) or kind
            kind = "value"
        locals_[last_id] = kind
        # Multi-declarator lists: a, b, c — pick up further names.
        while j < n and tokens[j].text == ",":
            j += 1
            nxt = tokens[j] if j < n else None
            if nxt is not None and nxt.kind == "id":
                locals_[nxt.text] = kind
                j += 1
            else:
                break
        # Resume AT the terminator so ';' re-arms stmt_start in the
        # main loop (k = j + 1 would silently swallow it and the next
        # declaration would be missed).
        k = j
        stmt_start = False
    return locals_


class Checker:
    """Applies TM1-TM4 to the checked surface of a Project."""

    def __init__(self, project, infer=True, trusted=("src/tm/",),
                 check_paths=None):
        self.project = project
        self.infer = infer
        self.trusted = tuple(trusted)
        self.check_paths = set(check_paths) if check_paths else None
        self.diags = []
        self._memo = {}
        self._in_progress = set()

    # -- helpers -------------------------------------------------------

    def _is_trusted(self, path):
        p = path.replace("\\", "/")
        return any(t in p for t in self.trusted)

    def _checkable(self, sf):
        if self._is_trusted(sf.path):
            return False
        if self.check_paths is not None and sf.path not in self.check_paths:
            return False
        return True

    def _waived_lines(self, sf, names=("tm-captured", "tm-pure-local")):
        out = set()
        for m in sf.markers:
            if m.name in names:
                out.update((m.line, m.line + 1, m.line + 2))
        return out

    def _annotation_of(self, name):
        anns = self.project.annotation_index.get(name)
        if not anns:
            return None
        if len(anns) == 1:
            return next(iter(anns))
        # Conflicting annotations across overloads: pick the weakest
        # (callable) so explicit-atomic callers still get a TM2.
        for a in ("unsafe", "callable", "safe", "pure"):
            if a in anns:
                return a
        return None

    def _visible_body(self, name):
        for sf, fn in self.project.bodies.get(name, ()):
            if not self._is_trusted(sf.path):
                return sf, fn
        if self.project.bodies.get(name):
            return None, "trusted"
        return None, None

    def _skip_ranges(self, sf, lo, hi):
        """Sub-ranges of [lo, hi) checked elsewhere: nested regions
        and handler bodies."""
        out = []
        for r in sf.regions:
            if lo < r.body[0] and r.body[1] <= hi:
                out.append(r.body)
        for h in sf.handlers:
            if lo <= h.body[0] and h.body[1] <= hi:
                out.append(h.body)
        return out

    def _report(self, sf, line, rule, msg, waived):
        if line in waived:
            return
        self.diags.append(Diagnostic(sf.path, line, rule, msg))

    # -- entry points --------------------------------------------------

    def run(self):
        for sf in self.project.files:
            if not self._checkable(sf):
                continue
            for region in sf.regions:
                self._check_region(sf, region)
            for h in sf.handlers:
                self._check_handler(sf, h)
            for fn in sf.functions:
                if fn.annotation == "safe":
                    self._check_body(sf, fn.body, "atomic",
                                     seed=fn.params,
                                     what=f"TM_SAFE {fn.name}")
                elif fn.annotation == "callable":
                    self._check_body(sf, fn.body, "relaxed",
                                     seed=fn.params,
                                     what=f"TM_CALLABLE {fn.name}")
                elif fn.annotation == "pure":
                    self._check_body(sf, fn.body, "pure",
                                     seed=fn.params,
                                     what=f"TM_PURE {fn.name}")
        return self.diags

    def _check_region(self, sf, region):
        mode = {"atomic": "atomic", "relaxed": "relaxed"}.get(
            region.kind, "unknown")
        encl = None
        for fn in sf.functions:
            if fn.body[0] <= region.body[0] and region.body[1] <= fn.body[1]:
                encl = fn
                break
        seed = list(region.params) + list(region.outer_params)
        if encl is not None:
            seed += list(
                collect_locals(sf.tokens, encl.body[0], encl.body[1],
                               seed=encl.params).keys())
        self._check_body(sf, region.body, mode, seed=seed,
                         what=f"{region.entry} body")

    def _check_handler(self, sf, h):
        waived = self._waived_lines(sf)
        tokens = sf.tokens
        lo, hi = h.body
        txnames = set(h.txdesc_names)
        for k in range(lo, min(hi, len(tokens))):
            t = tokens[k]
            if t.kind != "id":
                continue
            nxt = tokens[k + 1] if k + 1 < len(tokens) else None
            is_call = nxt is not None and nxt.kind == "punct" \
                and nxt.text == "("
            if t.text in TM_API and is_call:
                self._report(
                    sf, t.line, "TM4",
                    f"{h.which} handler calls tm API '{t.text}': "
                    "handlers run outside the transaction and must be "
                    "TM_PURE-clean", waived)
            elif t.text in txnames:
                self._report(
                    sf, t.line, "TM4",
                    f"{h.which} handler uses TxDesc '{t.text}': the "
                    "descriptor is dead by the time handlers run",
                    waived)

    # -- body scanner --------------------------------------------------

    def _check_body(self, sf, body, mode, seed=(), what=""):
        tokens = sf.tokens
        lo, hi = body
        hi = min(hi, len(tokens))
        if lo >= hi:
            return
        waived = self._waived_lines(sf)
        if mode == "pure":
            # TM_PURE bodies are trusted, not descended into: the only
            # thing forbidden inside is use of the transactional API
            # (a pure function must be meaningful outside any txn).
            for k in range(lo, hi):
                t = tokens[k]
                if t.kind == "id" and t.text in TM_API \
                        and k + 1 < hi and tokens[k + 1].kind == "punct" \
                        and tokens[k + 1].text == "(":
                    self._report(
                        sf, t.line, "TM2",
                        f"TM_PURE body ({what}) calls tm API "
                        f"'{t.text}': pure functions must be "
                        "meaningful outside any transaction", waived)
            return
        locals_ = collect_locals(tokens, lo, hi, seed=seed)
        skips = self._skip_ranges(sf, lo, hi)
        scopes = [_Scope()]

        def skipped(idx):
            return any(a <= idx < b for a, b in skips)

        k = lo
        while k < hi:
            if skipped(k):
                k += 1
                continue
            t = tokens[k]
            if t.kind == "punct":
                if t.text == "{":
                    scopes.append(_Scope(serial=scopes[-1].serial))
                elif t.text == "}":
                    if len(scopes) > 1:
                        scopes.pop()
                elif t.text in ASSIGN_OPS:
                    self._check_assignment(sf, tokens, k, lo, locals_,
                                           mode, scopes[-1].serial,
                                           waived)
                elif t.text in ("++", "--"):
                    self._check_incdec(sf, tokens, k, lo, hi, locals_,
                                       mode, scopes[-1].serial, waived)
                k += 1
                continue
            if t.kind != "id":
                k += 1
                continue
            nxt = tokens[k + 1] if k + 1 < hi else None
            if t.text == "unsafeOp" and nxt is not None \
                    and nxt.text == "(":
                scopes[-1].serial = True
                k = match_paren(tokens, k + 1) + 1
                continue
            if t.text in ("new", "delete"):
                self._irrevocable(sf, t.line, mode, scopes[-1].serial,
                                  f"raw '{t.text}' (use tm_alloc.h / "
                                  "TxDesc allocation)", waived)
                k += 1
                continue
            if nxt is not None and nxt.kind == "punct" \
                    and nxt.text == "(":
                self._check_call(sf, tokens, k, mode, locals_,
                                 scopes[-1].serial, waived, what)
            k += 1

    # -- writes --------------------------------------------------------

    def _lhs_root(self, tokens, eq_idx, lo):
        """Walk the LHS expression ending just before tokens[eq_idx].

        Returns (root_name_or_None, form) with form in
        {'plain','dot','arrow','index','deref','call','none'}.
        """
        k = eq_idx - 1
        form = "plain"
        root = None
        guard = 0
        while k >= lo and guard < 64:
            guard += 1
            t = tokens[k]
            if t.kind == "punct" and t.text == "]":
                depth = 0
                while k >= lo:
                    if tokens[k].text == "]":
                        depth += 1
                    elif tokens[k].text == "[":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                if form == "plain":
                    form = "index"
                k -= 1
                continue
            if t.kind == "punct" and t.text == ")":
                depth = 0
                while k >= lo:
                    if tokens[k].text == ")":
                        depth += 1
                    elif tokens[k].text == "(":
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                form = "call"
                k -= 1
                continue
            if t.kind == "id":
                root = t.text
                prev = tokens[k - 1] if k - 1 >= lo else None
                if prev is not None and prev.kind == "punct":
                    if prev.text == ".":
                        if form == "plain":
                            form = "dot"
                        k -= 2
                        continue
                    if prev.text == "->":
                        form = "arrow"
                        k -= 2
                        continue
                    if prev.text == "::":
                        k -= 2
                        continue
                    if prev.text in ("*", "&", "&&"):
                        # Walk the whole declarator/deref chain: what
                        # precedes it decides. `Item **p = ...` is a
                        # declaration; `**pp = v` is a deref write.
                        q = k - 1
                        while q >= lo and tokens[q].kind == "punct" \
                                and tokens[q].text in ("*", "&", "&&"):
                            q -= 1
                        before = tokens[q] if q >= lo else None
                        if before is None or before.kind != "id" \
                                and not (before.kind == "punct"
                                         and before.text in (">", "::")):
                            form = "deref"
                return root, form
            if t.kind == "punct" and t.text == "*":
                form = "deref"
                k -= 1
                continue
            break
        return root, form if root is not None else "none"

    def _check_assignment(self, sf, tokens, eq_idx, lo, locals_, mode,
                          serial, waived):
        prev = tokens[eq_idx - 1] if eq_idx > lo else None
        if prev is None or not (
                prev.kind == "id"
                or (prev.kind == "punct" and prev.text in (")", "]"))):
            return
        root, form = self._lhs_root(tokens, eq_idx, lo)
        if root is None or form in ("none", "call"):
            return
        line = tokens[eq_idx].line
        kind = locals_.get(root)
        if form == "deref" or form == "arrow":
            if serial:
                return
            # Writing through any pointer bypasses instrumentation —
            # captured-memory writes carry a tm-captured waiver.
            self._raw_write(sf, line, mode,
                            f"write through pointer '{root}' "
                            f"({form}) bypasses TxDesc instrumentation",
                            waived)
            return
        if kind == "value":
            return  # private local / parameter
        if kind == "ptr" and form in ("index",):
            if serial:
                return
            self._raw_write(sf, line, mode,
                            f"indexed write through pointer '{root}' "
                            "bypasses TxDesc instrumentation", waived)
            return
        if kind is None:
            if serial:
                return
            if _is_macro_like(root) or root in ("errno",):
                return
            self._raw_write(sf, line, mode,
                            f"write to non-local '{root}' bypasses "
                            "TxDesc instrumentation", waived)

    def _check_incdec(self, sf, tokens, op_idx, lo, hi, locals_, mode,
                      serial, waived):
        # Postfix: LHS ends right before op. Prefix: operand follows.
        prev = tokens[op_idx - 1] if op_idx > lo else None
        nxt = tokens[op_idx + 1] if op_idx + 1 < hi else None
        root = form = None
        if prev is not None and (prev.kind == "id" or
                                 (prev.kind == "punct"
                                  and prev.text in (")", "]"))):
            root, form = self._lhs_root(tokens, op_idx, lo)
        elif nxt is not None and nxt.kind == "id":
            root, form = nxt.text, "plain"
            j = op_idx + 2
            while j < hi and tokens[j].kind == "punct" \
                    and tokens[j].text in (".", "->", "::"):
                if tokens[j].text == "->":
                    form = "arrow"
                j += 2
        if root is None or serial:
            return
        kind = locals_.get(root)
        line = tokens[op_idx].line
        if form in ("deref", "arrow"):
            self._raw_write(sf, line, mode,
                            f"increment through pointer '{root}' "
                            "bypasses TxDesc instrumentation", waived)
        elif kind is None and form == "plain" \
                and not _is_macro_like(root):
            self._raw_write(sf, line, mode,
                            f"increment of non-local '{root}' bypasses "
                            "TxDesc instrumentation", waived)

    def _raw_write(self, sf, line, mode, msg, waived):
        if mode == "relaxed":
            # Relaxed bodies still need instrumentation for isolation,
            # but TM_CALLABLE code is allowed branch-staged raw paths;
            # those sit behind unsafeOp (serial) or carry waivers.
            self._report(sf, line, "TM1", msg, waived)
        else:
            self._report(sf, line, "TM1", msg, waived)

    # -- calls ---------------------------------------------------------

    def _irrevocable(self, sf, line, mode, serial, msg, waived):
        if mode == "relaxed" or serial:
            return
        self._report(
            sf, line, "TM3",
            msg + " is irrevocable: legal only in a relaxed "
            "transaction or after an unsafeOp() in-flight switch",
            waived)

    def _args_all_local(self, tokens, open_idx, locals_):
        close = match_paren(tokens, open_idx)
        for k in range(open_idx + 1, close):
            t = tokens[k]
            if t.kind == "id":
                if t.text in locals_ or _is_macro_like(t.text) \
                        or _is_type_like(t.text) or t.text in (
                            "sizeof", "std", "nullptr", "true", "false"):
                    continue
                nxt = tokens[k + 1] if k + 1 < len(tokens) else None
                if nxt is not None and nxt.kind == "punct" \
                        and nxt.text == "::":
                    continue
                return False
        return True

    def _check_call(self, sf, tokens, name_idx, mode, locals_, serial,
                    waived, what):
        name = tokens[name_idx].text
        line = tokens[name_idx].line
        open_idx = name_idx + 1
        prev = tokens[name_idx - 1] if name_idx > 0 else None
        is_member = prev is not None and prev.kind == "punct" \
            and prev.text in (".", "->")
        receiver = None
        if is_member and name_idx >= 2 \
                and tokens[name_idx - 2].kind == "id":
            receiver = tokens[name_idx - 2].text

        if name in _KEYWORDS_NOT_CALLS:
            return
        if name in RAW_ESCAPES:
            self._report(
                sf, line, "TM1",
                f"'{name}' is a tm/raw.h escape hatch: checked "
                "transaction bodies must use TxDesc instrumentation",
                waived)
            return
        if name in TM_API or (receiver is not None
                              and receiver in ("tm", "strict")):
            if name in TM_API:
                return
        if is_member:
            if name in MUTEX_METHODS:
                self._irrevocable(sf, line, mode, serial,
                                  f"mutex operation '.{name}()'", waived)
                return
            if name in ATOMIC_RMW_METHODS:
                self._irrevocable(sf, line, mode, serial,
                                  f"atomic RMW '.{name}()'", waived)
                return
            if name in TX_METHODS:
                return
            ann = self._annotation_of(name)
            if ann in ("safe", "pure"):
                return
            if ann == "callable":
                if mode == "atomic":
                    self._report(
                        sf, line, "TM2",
                        f"TM_CALLABLE '{name}' called from an "
                        "explicitly atomic body: atomic code may only "
                        "call TM_SAFE / TM_PURE functions", waived)
                return
            if ann == "unsafe":
                self._irrevocable(sf, line, mode, serial,
                                  f"TM_UNSAFE call '{name}'", waived)
                return
            if name in PURE_ALWAYS:
                return
            # Unresolvable member call (template context, std type):
            # inferred callable-safe unless inference is disabled —
            # the RuntimeCfg::inferCallableSafety analogue.
            if not self.infer and mode in ("atomic", "unknown"):
                self._report(
                    sf, line, "TM2",
                    f"member call '{name}' cannot be resolved and "
                    "safety inference is disabled (--no-infer)", waived)
            return

        # Free (possibly qualified) call.
        if name in IRREVOCABLE_CALLS and name not in LOCAL_OK_FNS:
            self._irrevocable(sf, line, mode, serial,
                              f"call to '{name}'", waived)
            return
        ann = self._annotation_of(name)
        if ann in ("safe", "pure"):
            return
        if ann == "callable":
            if mode == "atomic":
                self._report(
                    sf, line, "TM2",
                    f"TM_CALLABLE '{name}' called from an explicitly "
                    "atomic body: atomic code may only call TM_SAFE / "
                    "TM_PURE functions", waived)
            return
        if ann == "unsafe":
            self._irrevocable(sf, line, mode, serial,
                              f"TM_UNSAFE call '{name}'", waived)
            return
        if name in LOCAL_OK_FNS:
            if self._args_all_local(tokens, open_idx, locals_):
                return
            if mode == "relaxed" or serial:
                return
            self._report(
                sf, line, "TM1",
                f"'{name}' on possibly-shared memory bypasses TxDesc "
                "instrumentation (private stack copies are exempt)",
                waived)
            return
        if name in PURE_ALWAYS or _is_macro_like(name) \
                or _is_type_like(name):
            return
        if name in locals_:
            return  # callable object / template parameter
        # Unannotated with a visible body: close over it the way the
        # compiler's safety inference would.
        bsf, bfn = self._visible_body(name)
        if bsf is not None:
            sub = self._closure_check(bsf, bfn, mode)
            if sub:
                d = sub[0]
                self._report(
                    sf, line, "TM2",
                    f"call to unannotated '{name}' whose body is not "
                    f"transaction-safe ({d.file}:{d.line}: {d.msg})",
                    waived)
            return
        if bfn == "trusted":
            return  # body lives in the runtime's trusted core
        if mode == "atomic" or (mode == "unknown" and not self.infer):
            self._report(
                sf, line, "TM2",
                f"call to '{name}' does not resolve to a TM_SAFE / "
                "TM_PURE function and no body is visible to infer "
                "safety from", waived)

    def _closure_check(self, sf, fn, mode):
        key = (sf.path, fn.name, fn.body[0], mode)
        if key in self._memo:
            return self._memo[key]
        if key in self._in_progress:
            return []
        self._in_progress.add(key)
        saved = self.diags
        self.diags = []
        try:
            self._check_body(sf, fn.body, mode, seed=fn.params,
                             what=f"closure of {fn.name}")
            result = self.diags
        finally:
            self.diags = saved
            self._in_progress.discard(key)
        self._memo[key] = result
        return result
