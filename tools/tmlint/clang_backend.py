"""Optional libclang backend for tmlint.

When a clang Python binding (`clang.cindex`) and a matching libclang
shared object are present, tmlint upgrades its annotation extraction
from token-level macro matching to AST-accurate `annotate` attributes:
the TM_* macros expand to `__attribute__((annotate("tmemc::tm_*")))`
under Clang (common/compiler.h), and this backend walks every function
declaration in each TU collecting them — including attributes that
reach a declaration through macros, templates, or using-declarations
the fallback tokenizer cannot see.

The container this repo builds in ships no clang binding, so the
backend is import-gated: `available()` decides, the driver reports
which backend ran, and the token backend remains the checked path in
CI. The rule engine itself is shared — libclang only refines the
annotation index (and, when compile_commands.json is supplied, uses
the real compile flags so platform headers parse cleanly).
"""

from __future__ import annotations

import json
import os

_ANNOT_TO_NAME = {
    "tmemc::tm_safe": "safe",
    "tmemc::tm_callable": "callable",
    "tmemc::tm_pure": "pure",
    "tmemc::tm_unsafe": "unsafe",
}


def available():
    """True when a usable clang.cindex + libclang pair is importable."""
    try:
        import clang.cindex as ci  # noqa: F401
    except Exception:
        return False
    try:
        ci.Index.create()
    except Exception:
        return False
    return True


def _compile_args(compile_commands, path):
    if not compile_commands or not os.path.exists(compile_commands):
        return ["-std=c++20", "-xc++"]
    try:
        with open(compile_commands, "r", encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, ValueError):
        return ["-std=c++20", "-xc++"]
    want = os.path.abspath(path)
    for entry in db:
        file_ = os.path.join(entry.get("directory", ""),
                             entry.get("file", ""))
        if os.path.abspath(file_) == want:
            args = entry.get("command", "").split()[1:]
            # Strip output-related flags; keep -I/-D/-std.
            keep, skip_next = [], False
            for a in args:
                if skip_next:
                    skip_next = False
                    continue
                if a in ("-o", "-c"):
                    skip_next = a == "-o"
                    continue
                keep.append(a)
            return keep
    return ["-std=c++20", "-xc++"]


def annotation_index(paths, compile_commands=None):
    """{function name -> set of annotation names} via libclang.

    Raises ImportError if the binding is unavailable; call available()
    first.
    """
    import clang.cindex as ci

    index = ci.Index.create()
    out = {}
    fn_kinds = (
        ci.CursorKind.FUNCTION_DECL,
        ci.CursorKind.CXX_METHOD,
        ci.CursorKind.FUNCTION_TEMPLATE,
        ci.CursorKind.CONSTRUCTOR,
        ci.CursorKind.CONVERSION_FUNCTION,
    )
    for path in paths:
        args = _compile_args(compile_commands, path)
        try:
            tu = index.parse(path, args=args)
        except ci.TranslationUnitLoadError:
            continue

        def walk(cur):
            if cur.kind in fn_kinds:
                for child in cur.get_children():
                    if child.kind == ci.CursorKind.ANNOTATE_ATTR:
                        ann = _ANNOT_TO_NAME.get(child.spelling)
                        if ann:
                            out.setdefault(cur.spelling, set()).add(ann)
            for child in cur.get_children():
                walk(child)

        walk(tu.cursor)
    return out
