"""atomlint rule engine: AL1-AL5 over the atommodel inventory.

Rule families (docs/architecture.md section 14 has the protocol
catalogue):

  AL1  unannotated atomic — a std::atomic declaration with no
       `// atom-protocol:` marker, a marker naming an unknown
       protocol, a protocol missing its required argument
       (relaxed-ok needs a reason, guarded-by needs a lock), a
       conflict (same name bound to two protocols), or a dangling
       marker that binds no declaration.
  AL2  access order weaker than the declared protocol's minimum for
       that access class (load / store / RMW). Every AL2 is a
       candidate forbidden outcome; --emit-litmus turns each into a
       litmus-test skeleton.
  AL3  excess ordering, warn-tier perf lint: an implicit seq_cst
       default (no memory_order argument, or an operator-form access)
       on a variable whose protocol does not require seq_cst, or an
       explicit order stronger than relaxed on a relaxed-counter.
  AL4  atomic RMW inside a checked TM region (tm::run atomic body) —
       composes with tmlint TM3: an RMW is an irrevocable
       side-effect a speculative transaction cannot roll back.
  AL5  blocking-protocol violation — a guarded-by(<lock>) variable
       accessed outside a scope holding the named lock, or a mutex
       acquired inside a function marked `// atom-nonblocking:`.

Waivers: `// atom-allow: <reason>` covers its own line plus the two
following lines and waives AL2/AL3/AL4/AL5 there (mirrors tmlint's
tm-captured scope). AL1 is never waivable — annotate the variable.

Protocol minima are (load_min, store_min, rmw_min). An RMW order is
split into its load and store sides; `rmw_min` names the sides the
RMW must provide (acquire -> load side, release -> store side,
acq_rel -> both).
"""

from __future__ import annotations

import os
import sys
from collections import namedtuple

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                 "tmlint"))

import tmmodel  # noqa: E402

Diagnostic = namedtuple("Diagnostic", ["file", "line", "rule", "msg"])

# protocol -> (load_min, store_min, rmw_min). None = no RMW/... expected
# but legal at any order (checked only against the other minima).
PROTOCOLS = {
    # Monotonic statistics counter: no ordering carried, everything
    # relaxed; anything stronger is paid-for-nothing (AL3).
    "relaxed-counter": ("relaxed", "relaxed", "relaxed"),
    # Arm/disarm gate read on every operation: relaxed fast-path load
    # is the point; arming stores publish configuration and must be
    # release. A config consumer must re-read the latch with acquire
    # before trusting config written before arm (fault.cc idiom).
    "armed-latch": ("relaxed", "release", "release"),
    # Classic message-passing pair: release store publishes, acquire
    # load consumes. RMWs publish (release side required).
    "release-acquire-pair": ("acquire", "release", "release"),
    # Lock/version words: acquiring CAS needs the load side (acquire);
    # releasing store needs release; an RMW is either a lock (acquire
    # side) or an unlock (release side) — relaxed is always wrong.
    # seqlock / rw-lock are the same shape under different names.
    "orec-lock": ("acquire", "release", "acq_or_rel"),
    "seqlock": ("acquire", "release", "acq_or_rel"),
    "rw-lock": ("acquire", "release", "acq_or_rel"),
    # Total order required; implicit seq_cst default is fine here.
    "seq-cst-required": ("seq_cst", "seq_cst", "seq_cst"),
    # Externally synchronized (a lock, a fence, single-threaded
    # phase): any order legal, but the marker must say why.
    "relaxed-ok": ("relaxed", "relaxed", "relaxed"),
    # Accesses legal only under the named lock (AL5, not AL2).
    "guarded-by": ("relaxed", "relaxed", "relaxed"),
}

_PROTOCOLS_NEEDING_ARG = {"relaxed-ok", "guarded-by"}

# Ranks along the load-capable and store-capable chains.
_LOAD_RANK = {"relaxed": 0, "consume": 1, "acquire": 2, "seq_cst": 3}
_STORE_RANK = {"relaxed": 0, "release": 1, "seq_cst": 2}

# RMW order -> (load side, store side).
_RMW_SIDES = {
    "relaxed": ("relaxed", "relaxed"),
    "consume": ("consume", "relaxed"),
    "acquire": ("acquire", "relaxed"),
    "release": ("relaxed", "release"),
    "acq_rel": ("acquire", "release"),
    "seq_cst": ("seq_cst", "seq_cst"),
}


def _effective(order):
    return "seq_cst" if order == "seq_cst_default" else order


def load_satisfies(order, minimum):
    order = _effective(order)
    return _LOAD_RANK.get(order, -1) >= _LOAD_RANK[minimum]


def store_satisfies(order, minimum):
    order = _effective(order)
    return _STORE_RANK.get(order, -1) >= _STORE_RANK[minimum]


def rmw_satisfies(order, minimum):
    ld, st = _RMW_SIDES[_effective(order)]
    if minimum == "acq_or_rel":
        return (ld, st) != ("relaxed", "relaxed")
    need_ld, need_st = _RMW_SIDES[minimum]
    return load_satisfies(ld, need_ld) and store_satisfies(st, need_st)


def access_satisfies(access, minima):
    load_min, store_min, rmw_min = minima
    if access.cls == "load":
        return load_satisfies(access.order, load_min)
    if access.cls == "store":
        return store_satisfies(access.order, store_min)
    return rmw_satisfies(access.order, rmw_min)


def _minimum_for(access, minima):
    return {"load": minima[0], "store": minima[1],
            "rmw": minima[2]}[access.cls]


class Checker:
    def __init__(self, project, check_paths=None):
        self.project = project
        self.check_paths = set(check_paths) if check_paths else None
        self.diags = []
        # AL2 findings with context, for the litmus generator:
        # (Access, var_protocol, minimum).
        self.al2_findings = []

    def _checked(self, path):
        return self.check_paths is None or path in self.check_paths

    def _emit(self, file, line, rule, msg, waived):
        if not self._checked(file):
            return
        if rule != "AL1" and line in waived:
            return
        self.diags.append(Diagnostic(file, line, rule, msg))

    def run(self):
        tm_regions = self._tm_atomic_regions()
        for af in self.project.files:
            waived = _waived_lines(af)
            self._check_decls(af, waived)
            self._check_accesses(af, waived,
                                 tm_regions.get(af.path, []))
            self._check_guarded_by(af, waived)
            self._check_nonblocking(af, waived)
        for path, line, proto in self.project.dangling_markers:
            if self._checked(path):
                self.diags.append(Diagnostic(
                    path, line, "AL1",
                    f"atom-protocol marker '{proto}' binds no atomic "
                    "declaration on this line or the next two"))
        return self.diags

    # -- AL1 ----------------------------------------------------------

    def _check_decls(self, af, waived):
        for d in af.decls:
            if not d.protocol:
                kind = "type alias" if d.is_alias else "variable"
                self._emit(
                    af.path, d.line, "AL1",
                    f"atomic {kind} '{d.name}' has no atom-protocol "
                    "annotation (see docs/architecture.md section 14 "
                    "for the catalogue)", waived)
                continue
            if d.protocol not in PROTOCOLS:
                self._emit(
                    af.path, d.line, "AL1",
                    f"'{d.name}': unknown protocol '{d.protocol}' "
                    f"(known: {', '.join(sorted(PROTOCOLS))})", waived)
                continue
            if d.protocol in _PROTOCOLS_NEEDING_ARG \
                    and not d.protocol_arg:
                what = "a reason" if d.protocol == "relaxed-ok" \
                    else "a lock name"
                self._emit(
                    af.path, d.line, "AL1",
                    f"'{d.name}': protocol '{d.protocol}' requires "
                    f"{what}, e.g. {d.protocol}(...)", waived)
        for decl, other in self.project.conflicts:
            if decl.file == af.path:
                self._emit(
                    af.path, decl.line, "AL1",
                    f"'{decl.name}' bound to protocol "
                    f"'{decl.protocol}' here but '{other}' elsewhere",
                    waived)

    # -- AL2 / AL3 / AL4 ---------------------------------------------

    def _check_accesses(self, af, waived, atomic_ranges):
        bindings = self.project.bindings
        for a in af.accesses:
            proto = bindings.get(a.recv)
            if proto is None or proto not in PROTOCOLS:
                continue  # AL1 already fired on the declaration
            minima = PROTOCOLS[proto]
            if proto == "guarded-by":
                continue  # AL5 path
            if not access_satisfies(a, minima):
                need = _minimum_for(a, minima)
                msg = (f"'{a.recv}' ({proto}): {a.cls} is "
                       f"{_effective(a.order)}, protocol requires "
                       f">= {need}")
                self._emit(af.path, a.line, "AL2", msg, waived)
                if self._checked(af.path) and a.line not in waived:
                    self.al2_findings.append((a, proto, need))
            else:
                self._check_al3(af, a, proto, waived)
            if a.cls == "rmw":
                for lo, hi in atomic_ranges:
                    if lo <= a.line <= hi:
                        self._emit(
                            af.path, a.line, "AL4",
                            f"atomic RMW on '{a.recv}' inside a "
                            "checked TM region — an irrevocable "
                            "side-effect the transaction cannot roll "
                            "back (cf. tmlint TM3)", waived)
                        break

    def _check_al3(self, af, a, proto, waived):
        if proto == "seq-cst-required":
            return
        if a.order == "seq_cst_default":
            how = "operator-form access (implicit seq_cst)" \
                if not a.explicit_call else \
                "no memory_order argument (seq_cst by default)"
            self._emit(
                af.path, a.line, "AL3",
                f"'{a.recv}' ({proto}): {how}; spell the intended "
                "order explicitly", waived)
            return
        if proto == "relaxed-counter" \
                and _effective(a.order) != "relaxed":
            self._emit(
                af.path, a.line, "AL3",
                f"'{a.recv}' (relaxed-counter): {a.cls} is "
                f"{_effective(a.order)} but the protocol carries no "
                "ordering — pay for relaxed only", waived)

    def _tm_atomic_regions(self):
        """path -> [(lo_line, hi_line)] of checked (atomic) tm::run
        bodies, from the tmlint source model."""
        ranges = {}
        proj = tmmodel.build_project(
            [af.path for af in self.project.files])
        for sf in proj.files:
            spans = []
            for r in sf.regions:
                if r.kind != "atomic":
                    continue
                lo, hi = r.body
                if lo >= len(sf.tokens):
                    continue
                hi = min(hi, len(sf.tokens) - 1)
                spans.append((sf.tokens[lo].line, sf.tokens[hi].line))
            if spans:
                ranges[sf.path] = spans
        return ranges

    # -- AL5: guarded-by ---------------------------------------------

    def _check_guarded_by(self, af, waived):
        guarded = {
            name: self.project.binding_args.get(name, "")
            for name, proto in self.project.bindings.items()
            if proto == "guarded-by"
        }
        if not guarded:
            return
        held = _lock_intervals(af)
        for a in af.accesses:
            lock = guarded.get(a.recv)
            if lock is None:
                continue
            want = lock.split(".")[-1].split("->")[-1]
            ok = any(m == want and lo <= a.tok_idx <= hi
                     for m, lo, hi in held)
            if not ok:
                self._emit(
                    af.path, a.line, "AL5",
                    f"'{a.recv}' is guarded-by({lock}) but accessed "
                    "without the lock held in this scope", waived)

    # -- AL5: atom-nonblocking ---------------------------------------

    def _check_nonblocking(self, af, waived):
        tokens = af.tokens
        for m in af.markers:
            if m.name != "atom-nonblocking":
                continue
            open_idx = None
            for k, t in enumerate(tokens):
                if t.line >= m.line and t.kind == "punct" \
                        and t.text == "{":
                    open_idx = k
                    break
            if open_idx is None:
                continue
            from tmlexer import match_brace
            close_idx = match_brace(tokens, open_idx)
            for ls in af.locks:
                if open_idx <= ls.tok_idx <= close_idx:
                    self._emit(
                        af.path, ls.line, "AL5",
                        f"mutex '{ls.mutex}' acquired inside a "
                        "function marked atom-nonblocking "
                        f"({m.arg or 'no reason given'})", waived)


def _waived_lines(af):
    """Lines covered by atom-allow markers: marker line + 2 following
    (a standalone comment line can cover a two-line statement)."""
    waived = set()
    for m in af.markers:
        if m.name == "atom-allow":
            waived.update(range(m.line, m.line + 3))
    return waived


def _lock_intervals(af):
    """[(mutex, lo_tok, hi_tok)] token intervals during which a lock
    is held in this file: RAII guards hold to the end of their
    enclosing block; explicit .lock() holds to the next .unlock() on
    the same receiver, else to the end of the enclosing block."""
    from tmlexer import match_brace
    tokens = af.tokens
    # Enclosing-block end for each token index, via a brace stack.
    ends = {}
    stack = []
    for k, t in enumerate(tokens):
        if t.kind == "punct":
            if t.text == "{":
                stack.append(match_brace(tokens, k))
            elif t.text == "}":
                if stack:
                    stack.pop()
        ends[k] = stack[-1] if stack else len(tokens) - 1
    out = []
    unlocks = [
        (k, _recv_before(tokens, k))
        for k, t in enumerate(tokens)
        if t.kind == "id" and t.text == "unlock" and k > 0
        and tokens[k - 1].kind == "punct"
        and tokens[k - 1].text in (".", "->")
    ]
    for ls in af.locks:
        hi = ends.get(ls.tok_idx, len(tokens) - 1)
        if ls.kind == "call":
            for uk, urecv in unlocks:
                if uk > ls.tok_idx and urecv == ls.mutex and uk < hi:
                    hi = uk
                    break
        out.append((ls.mutex, ls.tok_idx, hi))
    return out


def _recv_before(tokens, method_idx):
    from atommodel import _receiver_of
    return _receiver_of(tokens, method_idx - 1)
