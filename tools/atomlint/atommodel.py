"""Source model for atomlint: the atomics inventory.

Builds, from the shared tmlexer token stream, an inventory of every
std::atomic declaration, every atomic access (load / store / RMW /
CAS, member-call or operator form), every std::atomic_thread_fence,
and every std::mutex declaration and lock site under the checked
tree. Protocol annotations (`// atom-protocol: ...` markers) are bound
to declarations here; the rule layer (atomrules.py) checks accesses
against them.

Like tmmodel, the model is approximate but conservative for the code
shapes this repository uses: clang-format enforced, atomics accessed
through explicit .load()/.store()/RMW member calls (operator forms are
still detected and flagged — they spell seq_cst implicitly), and one
declaration per marker.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass, field

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                 "tmlint"))

from tmlexer import match_paren, tokenize  # noqa: E402

# Atomic member-call spellings, classified by access class.
LOAD_METHODS = {"load"}
STORE_METHODS = {"store"}
RMW_METHODS = {
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "exchange", "compare_exchange_weak", "compare_exchange_strong",
}
ALL_METHODS = LOAD_METHODS | STORE_METHODS | RMW_METHODS

ORDER_NAMES = {
    "memory_order_relaxed": "relaxed",
    "memory_order_consume": "consume",
    "memory_order_acquire": "acquire",
    "memory_order_release": "release",
    "memory_order_acq_rel": "acq_rel",
    "memory_order_seq_cst": "seq_cst",
}

LOCK_GUARDS = {"lock_guard", "unique_lock", "scoped_lock",
               "shared_lock"}

_DECL_KEYWORDS = {
    "static", "extern", "inline", "mutable", "thread_local", "const",
    "constexpr", "alignas", "volatile",
}


@dataclass
class AtomicDecl:
    """One textual declaration of a std::atomic variable (or an alias
    of std::atomic, when is_alias)."""
    name: str
    file: str
    line: int
    is_alias: bool = False          # `using X = std::atomic<...>`
    protocol: str = ""              # bound protocol name, '' if none
    protocol_arg: str = ""          # guarded-by lock / reason text
    marker_line: int = 0


@dataclass
class Access:
    """One atomic access site."""
    recv: str                       # receiver identifier
    cls: str                        # 'load' | 'store' | 'rmw'
    order: str                      # parsed order or 'seq_cst_default'
    explicit_call: bool             # member call vs operator form
    file: str = ""
    line: int = 0
    tok_idx: int = 0


@dataclass
class FenceSite:
    order: str
    file: str = ""
    line: int = 0


@dataclass
class MutexDecl:
    name: str
    file: str = ""
    line: int = 0


@dataclass
class LockSite:
    """A mutex acquisition: an RAII guard or a .lock() call."""
    mutex: str                      # mutex identifier being locked
    kind: str                       # 'guard' | 'call'
    file: str = ""
    line: int = 0
    tok_idx: int = 0


@dataclass
class AtomFile:
    path: str
    tokens: list = field(default_factory=list)
    markers: list = field(default_factory=list)
    decls: list = field(default_factory=list)
    accesses: list = field(default_factory=list)
    fences: list = field(default_factory=list)
    mutexes: list = field(default_factory=list)
    locks: list = field(default_factory=list)
    # Lines covered by recognized atomic declarations, so operator-form
    # detection does not misread `std::atomic<bool> x{false};` parts.
    decl_lines: set = field(default_factory=set)


@dataclass
class AtomProject:
    files: list = field(default_factory=list)
    # variable name -> protocol ('' while unresolved)
    bindings: dict = field(default_factory=dict)
    # variable name -> guarded-by lock / relaxed-ok reason text
    binding_args: dict = field(default_factory=dict)
    # alias type name -> protocol (e.g. OrecWord -> orec-lock)
    type_bindings: dict = field(default_factory=dict)
    type_binding_args: dict = field(default_factory=dict)
    mutex_names: set = field(default_factory=set)
    conflicts: list = field(default_factory=list)  # (decl, other_proto)
    dangling_markers: list = field(default_factory=list)


def _is_atomic_head(tokens, k):
    """tokens[k] is an `atomic` id opening a template: atomic<...>."""
    t = tokens[k]
    if t.kind != "id" or t.text != "atomic":
        return False
    nxt = tokens[k + 1] if k + 1 < len(tokens) else None
    return nxt is not None and nxt.kind == "punct" and nxt.text == "<"


def _match_angle(tokens, open_idx):
    """Index just past the '>' matching tokens[open_idx] == '<'."""
    depth = 0
    k = open_idx
    n = len(tokens)
    while k < n:
        t = tokens[k]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text in (">", ">>"):
                depth -= 2 if t.text == ">>" else 1
                if depth <= 0:
                    return k + 1
            elif t.text in (";", "{"):
                return k  # malformed; bail at statement boundary
        k += 1
    return n


def _statement_bounds(tokens, k):
    """Token range [lo, hi) of the statement containing index k:
    back to the previous ';'/'{'/'}' and forward to the next ';'
    (balanced through parens/braces/angles)."""
    lo = k
    while lo > 0:
        t = tokens[lo - 1]
        if t.kind == "punct" and t.text in (";", "{", "}"):
            break
        lo -= 1
    hi = k
    n = len(tokens)
    depth = 0
    while hi < n:
        t = tokens[hi]
        if t.kind == "punct":
            if t.text in ("(", "{", "["):
                depth += 1
            elif t.text in (")", "}", "]"):
                if depth == 0 and t.text == ")":
                    break  # inside a parameter list; stop early
                depth -= 1
            elif t.text == ";" and depth == 0:
                break
        hi += 1
    return lo, hi


def _declared_name(tokens, lo, hi, after_idx):
    """Best-effort declared variable name of the declaration statement
    [lo, hi): the id at group-depth 0 after `after_idx` that is
    followed by an initializer / terminator / array bound."""
    depth = 0
    k = after_idx
    while k < hi:
        t = tokens[k]
        if t.kind == "punct":
            if t.text in ("(", "{", "["):
                depth += 1
            elif t.text in (")", "}", "]"):
                depth -= 1
            elif t.text == "<":
                k = _match_angle(tokens, k)
                continue
            k += 1
            continue
        if t.kind == "id" and depth == 0 \
                and t.text not in _DECL_KEYWORDS:
            nxt = tokens[k + 1] if k + 1 < hi else None
            if nxt is not None and nxt.kind == "punct" and nxt.text in (
                    "{", "=", ";", "[", ","):
                return t.text, t.line
        k += 1
    # Declaration ends at hi (e.g. `extern std::atomic<bool> x;` where
    # hi sits on the ';'): the last id before hi is the name.
    for k in range(hi - 1, after_idx - 1, -1):
        if tokens[k].kind == "id" and tokens[k].text not in _DECL_KEYWORDS:
            return tokens[k].text, tokens[k].line
    return None, 0


def _scan_atomic_decls(af):
    tokens = af.tokens
    n = len(tokens)
    seen_stmts = set()
    for k in range(n):
        if not _is_atomic_head(tokens, k):
            continue
        lo, hi = _statement_bounds(tokens, k)
        if (lo, hi) in seen_stmts:
            continue  # one decl statement, one inventory entry
        seen_stmts.add((lo, hi))
        # `using X = std::atomic<...>;` binds the TYPE name.
        first = tokens[lo]
        if first.kind == "id" and first.text in ("using", "typedef"):
            if first.text == "using" and lo + 1 < n \
                    and tokens[lo + 1].kind == "id":
                af.decls.append(AtomicDecl(
                    name=tokens[lo + 1].text, file=af.path,
                    line=tokens[lo + 1].line, is_alias=True))
                for ln in range(first.line, tokens[k].line + 1):
                    af.decl_lines.add(ln)
            continue
        close = _match_angle(tokens, k + 1)
        name, line = _declared_name(tokens, lo, hi, close)
        if name is None:
            continue
        # Reference/pointer parameters (`std::atomic<int> &x` inside a
        # function signature) are uses, not storage declarations; the
        # early ')' break in _statement_bounds already drops most.
        af.decls.append(AtomicDecl(name=name, file=af.path, line=line))
        for ln in range(tokens[lo].line, tokens[min(hi, n - 1)].line + 1):
            af.decl_lines.add(ln)


def _receiver_of(tokens, dot_idx):
    """Identifier receiving a member access ending at tokens[dot_idx]
    ('.' or '->'): walks back over one balanced [..] index chain."""
    k = dot_idx - 1
    guard = 0
    while k >= 0 and guard < 32:
        guard += 1
        t = tokens[k]
        if t.kind == "punct" and t.text == "]":
            depth = 0
            while k >= 0:
                if tokens[k].text == "]":
                    depth += 1
                elif tokens[k].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            k -= 1
            continue
        if t.kind == "id":
            return t.text
        return None
    return None


def _call_orders(tokens, open_idx):
    """Memory orders named inside the call parens, in argument order."""
    close = match_paren(tokens, open_idx)
    orders = []
    k = open_idx + 1
    while k < close:
        t = tokens[k]
        if t.kind == "id" and t.text in ORDER_NAMES:
            orders.append(ORDER_NAMES[t.text])
        elif t.kind == "id" and t.text == "memory_order" \
                and k + 2 < close and tokens[k + 1].text == "::":
            short = tokens[k + 2].text
            if "memory_order_" + short in ORDER_NAMES:
                orders.append(short)
            k += 2
        k += 1
    return orders, close


def _scan_accesses(af, known_names, op_names):
    """Member-call accesses on known receivers + operator-form accesses
    on atomic variable names declared in this file (operator forms are
    not matched cross-file: generic names bound through type aliases —
    `o`, `w` — would false-positive all over the tree)."""
    tokens = af.tokens
    n = len(tokens)
    k = 0
    while k < n:
        t = tokens[k]
        if t.kind != "id":
            k += 1
            continue
        nxt = tokens[k + 1] if k + 1 < n else None
        prev = tokens[k - 1] if k > 0 else None
        is_member = prev is not None and prev.kind == "punct" \
            and prev.text in (".", "->")
        if is_member and t.text in ALL_METHODS and nxt is not None \
                and nxt.kind == "punct" and nxt.text == "(":
            recv = _receiver_of(tokens, k - 1)
            if recv is not None and recv in known_names:
                orders, close = _call_orders(tokens, k + 1)
                if t.text in LOAD_METHODS:
                    cls = "load"
                elif t.text in STORE_METHODS:
                    cls = "store"
                else:
                    cls = "rmw"
                # CAS: the first named order is the success order.
                order = orders[0] if orders else "seq_cst_default"
                af.accesses.append(Access(
                    recv=recv, cls=cls, order=order, explicit_call=True,
                    file=af.path, line=t.line, tok_idx=k))
                k = close + 1
                continue
            k += 1
            continue
        # Operator-form access on a known atomic variable: implicit
        # seq_cst. Only declarations from this file are matched, and
        # declaration lines are excluded.
        if not is_member and t.text in op_names \
                and t.line not in af.decl_lines \
                and (nxt is None or nxt.text not in (".", "->", "::")) \
                and (prev is None or prev.kind != "id") \
                and (prev is None or prev.text not in
                     (".", "->", "::", "&", "<", ">")):
            cls = None
            if nxt is not None and nxt.kind == "punct":
                if nxt.text == "=":
                    cls = "store"
                elif nxt.text in ("++", "--", "+=", "-=", "&=", "|=",
                                  "^="):
                    cls = "rmw"
            if cls is None and prev is not None and prev.kind == "punct" \
                    and prev.text in ("++", "--"):
                cls = "rmw"
            if cls is not None:
                af.accesses.append(Access(
                    recv=t.text, cls=cls, order="seq_cst_default",
                    explicit_call=False, file=af.path, line=t.line,
                    tok_idx=k))
        k += 1


def _scan_fences_mutexes_locks(af):
    tokens = af.tokens
    n = len(tokens)
    for k, t in enumerate(tokens):
        if t.kind != "id":
            continue
        nxt = tokens[k + 1] if k + 1 < n else None
        if t.text == "atomic_thread_fence" and nxt is not None \
                and nxt.text == "(":
            orders, _ = _call_orders(tokens, k + 1)
            af.fences.append(FenceSite(
                order=orders[0] if orders else "seq_cst_default",
                file=af.path, line=t.line))
            continue
        if t.text in ("mutex", "shared_mutex", "recursive_mutex") \
                and nxt is not None and nxt.kind == "id":
            # `std::mutex name;` (the id after the type is the name).
            af.mutexes.append(MutexDecl(
                name=nxt.text, file=af.path, line=nxt.line))
            continue
        if t.text in LOCK_GUARDS:
            # lock_guard<...> NAME(mutexExpr) — the last id inside the
            # constructor parens is the mutex being acquired.
            j = k + 1
            if j < n and tokens[j].kind == "punct" and tokens[j].text == "<":
                j = _match_angle(tokens, j)
            if j < n and tokens[j].kind == "id":
                j += 1
            if j < n and tokens[j].kind == "punct" and tokens[j].text == "(":
                close = match_paren(tokens, j)
                mutex = None
                for q in range(close - 1, j, -1):
                    if tokens[q].kind == "id":
                        mutex = tokens[q].text
                        break
                if mutex is not None:
                    af.locks.append(LockSite(
                        mutex=mutex, kind="guard", file=af.path,
                        line=t.line, tok_idx=k))
            continue
        if t.text in ("lock", "try_lock") and nxt is not None \
                and nxt.text == "(" and k > 0 \
                and tokens[k - 1].kind == "punct" \
                and tokens[k - 1].text in (".", "->"):
            recv = _receiver_of(tokens, k - 1)
            if recv is not None:
                af.locks.append(LockSite(
                    mutex=recv, kind="call", file=af.path, line=t.line,
                    tok_idx=k))


def parse_file(path, text=None):
    if text is None:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    tokens, markers = tokenize(text)
    af = AtomFile(path=path, tokens=tokens, markers=markers)
    _scan_atomic_decls(af)
    _scan_fences_mutexes_locks(af)
    return af


_PROTO_ARG_RE = re.compile(
    r"([A-Za-z0-9_-]+)\s*(?:\(([^)]*)\)?)?\s*(.*)", re.S)


def _parse_protocol_arg(arg):
    """Split an atom-protocol marker arg into (protocol, paren_arg,
    reason): `guarded-by(node.mu) health state` ->
    ('guarded-by', 'node.mu', 'health state'). A paren arg left open
    (the comment continues on the next line, which the marker regex
    cannot see) still captures the rest of the line as the arg."""
    m = _PROTO_ARG_RE.match(arg.strip())
    if m is None:
        return arg.strip(), "", ""
    return m.group(1), (m.group(2) or "").strip(), m.group(3).strip()


def _bind_markers(proj, af):
    """Bind each atom-protocol marker to the declaration whose name
    line falls in [marker.line, marker.line + 2]."""
    for m in af.markers:
        if m.name != "atom-protocol":
            continue
        proto, paren, reason = _parse_protocol_arg(m.arg)
        target = None
        for d in af.decls:
            if m.line <= d.line <= m.line + 2 and d.marker_line == 0:
                target = d
                break
        if target is None:
            proj.dangling_markers.append(
                (af.path, m.line, proto or m.arg.strip()))
            continue
        target.protocol = proto
        target.protocol_arg = paren or reason
        target.marker_line = m.line
        table = proj.type_bindings if target.is_alias else proj.bindings
        args = proj.type_binding_args if target.is_alias \
            else proj.binding_args
        existing = table.get(target.name)
        if existing is not None and existing != proto:
            proj.conflicts.append((target, existing))
        else:
            table[target.name] = proto
            args[target.name] = target.protocol_arg


def _scan_typed_decls(proj, af):
    """Declarations whose type names an annotated alias (OrecWord &o,
    OrecWord *orec, unique_ptr<OrecWord[]> table_) bind the declared
    name to the alias's protocol."""
    tokens = af.tokens
    n = len(tokens)
    for k, t in enumerate(tokens):
        if t.kind != "id" or t.text not in proj.type_bindings:
            continue
        prev = tokens[k - 1] if k > 0 else None
        if prev is not None and prev.kind == "punct" \
                and prev.text in (".", "->"):
            continue
        # Skip the alias definition itself (`using OrecWord = ...`).
        lo, hi = _statement_bounds(tokens, k)
        if tokens[lo].kind == "id" and tokens[lo].text in ("using",
                                                           "typedef"):
            continue
        name, _ = _declared_name(tokens, lo, hi, k + 1)
        if name is None or name == t.text:
            continue
        proto = proj.type_bindings[t.text]
        existing = proj.bindings.get(name)
        if existing is None:
            proj.bindings[name] = proto
            proj.binding_args[name] = proj.type_binding_args.get(
                t.text, "")


def build_project(paths, texts=None):
    proj = AtomProject()
    for p in paths:
        af = parse_file(p, None if texts is None else texts.get(p))
        proj.files.append(af)
    for af in proj.files:
        _bind_markers(proj, af)
    for af in proj.files:
        _scan_typed_decls(proj, af)
    for af in proj.files:
        for md in af.mutexes:
            proj.mutex_names.add(md.name)
    known = set(proj.bindings)
    # Unannotated declarations still get their accesses inventoried so
    # --dump-inventory shows them; AL1 fires on the declaration.
    for af in proj.files:
        for d in af.decls:
            if not d.is_alias:
                known.add(d.name)
    for af in proj.files:
        op_names = {d.name for d in af.decls if not d.is_alias}
        _scan_accesses(af, known, op_names)
    return proj
