#!/usr/bin/env python3
"""atomlint: whole-tree atomics-protocol checking for tmemc.

PR 8 took the STM below seq_cst; the RA algorithm's correctness now
rests on hand-reasoned release/acquire pairings that nothing
machine-checks. atomlint restores that check as a protocol lint: every
std::atomic in src/ declares its ordering protocol with an
`// atom-protocol:` annotation, and atomlint inventories every atomic
access, fence, CAS, and mutex site and enforces the declared protocol
(AL1-AL5; see atomrules.py and docs/architecture.md section 14).

It is a sibling of tools/tmlint and shares its token front end
(tmlexer.py); the clang backend refinement (clang_backend.py) applies
to tmlint's annotation index, not to the atomics inventory, so
atomlint is ctok-only by design.

Exit status: 0 clean, 1 diagnostics (AL1/AL2/AL4/AL5, or AL3 under
--werror, or selftest mismatch), 2 usage.

Usage:
  atomlint.py --src src                        lint the tree
  atomlint.py --src src --werror               promote AL3 warnings
  atomlint.py --selftest-fixtures tests/atomlint/fixtures
  atomlint.py --src src --json report.json     machine-readable report
  atomlint.py --src src --emit-litmus DIR      AL2 -> litmus skeletons
  atomlint.py --src src --dump-inventory       list every atomic site
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import atommodel
import atomrules
import litmus_gen

SOURCE_EXTS = (".h", ".hh", ".hpp", ".cc", ".cpp", ".cxx")

WARN_RULES = {"AL3"}


def find_sources(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in ("build", ".git") and not d.startswith("build-"))
        for f in sorted(filenames):
            if f.endswith(SOURCE_EXTS):
                out.append(os.path.join(dirpath, f))
    return out


def relpath(path, base):
    try:
        return os.path.relpath(path, base)
    except ValueError:
        return path


def dump_inventory(project, base):
    for af in sorted(project.files, key=lambda f: f.path):
        for d in af.decls:
            kind = "alias" if d.is_alias else "var"
            proto = d.protocol or "<unannotated>"
            arg = f"({d.protocol_arg})" if d.protocol_arg else ""
            print(f"{relpath(af.path, base)}:{d.line}: {kind} "
                  f"{d.name} -> {proto}{arg}")
        for a in sorted(af.accesses, key=lambda a: a.line):
            form = "call" if a.explicit_call else "op"
            print(f"{relpath(af.path, base)}:{a.line}:   {a.cls:<5} "
                  f"{a.recv} @ {a.order} [{form}]")
        for fe in af.fences:
            print(f"{relpath(af.path, base)}:{fe.line}:   fence "
                  f"@ {fe.order}")
        for ls in af.locks:
            print(f"{relpath(af.path, base)}:{ls.line}:   lock  "
                  f"{ls.mutex} [{ls.kind}]")


def lint_tree(opts):
    src_files = find_sources(opts.src)
    if not src_files:
        print(f"atomlint: no sources under {opts.src}",
              file=sys.stderr)
        return 2
    project = atommodel.build_project(src_files)
    base = os.getcwd()
    if opts.dump_inventory:
        dump_inventory(project, base)
        return 0
    checker = atomrules.Checker(project)
    diags = sorted(checker.run(), key=lambda d: (d.file, d.line, d.rule))
    errors = 0
    warnings = 0
    for d in diags:
        tier = "warning" if d.rule in WARN_RULES and not opts.werror \
            else "error"
        if tier == "error":
            errors += 1
        else:
            warnings += 1
        print(f"{relpath(d.file, base)}:{d.line}: [{d.rule}] {d.msg}")
    summary = {
        "files_checked": len(src_files),
        "atomics": sum(len(af.decls) for af in project.files),
        "accesses": sum(len(af.accesses) for af in project.files),
        "errors": errors,
        "warnings": warnings,
        "diagnostics": [
            {"file": relpath(d.file, base), "line": d.line,
             "rule": d.rule, "message": d.msg}
            for d in diags
        ],
    }
    if opts.json:
        with open(opts.json, "w", encoding="utf-8") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
    if opts.emit_litmus:
        written = litmus_gen.emit(checker.al2_findings,
                                  opts.emit_litmus)
        for p in written:
            print(f"atomlint: wrote {relpath(p, base)}")
        print(f"atomlint: {len(written)} litmus skeleton(s) emitted")
    print(f"atomlint: {errors} error(s), {warnings} warning(s) across "
          f"{len(src_files)} file(s), "
          f"{summary['atomics']} atomic decl(s), "
          f"{summary['accesses']} access(es)")
    return 1 if errors else 0


def expected_from_markers(af):
    """Fixture expectations from `// atomlint-expect: ...` markers."""
    expected = set()
    saw_none = False
    for m in af.markers:
        if m.name != "atomlint-expect":
            continue
        if m.arg.strip().lower() == "none":
            saw_none = True
            continue
        for rule in m.arg.split():
            expected.add((m.line, rule.strip()))
    return expected, saw_none


def selftest(opts):
    fixture_files = find_sources(opts.selftest_fixtures)
    if not fixture_files:
        print(f"atomlint: no fixtures under {opts.selftest_fixtures}",
              file=sys.stderr)
        return 2
    failures = 0
    for fixture in fixture_files:
        # Fixtures are self-contained translation units: each declares
        # its own atomics, protocols, and (for AL4) tm::run shapes.
        project = atommodel.build_project([fixture])
        checker = atomrules.Checker(project, check_paths=[fixture])
        diags = checker.run()
        af = next(f for f in project.files if f.path == fixture)
        expected, saw_none = expected_from_markers(af)
        got = {(d.line, d.rule) for d in diags}
        name = os.path.basename(fixture)
        if not expected and not saw_none:
            print(f"FAIL {name}: fixture declares no atomlint-expect "
                  "markers (add `// atomlint-expect: none` if clean)")
            failures += 1
            continue
        if got == expected:
            label = "none" if saw_none and not expected else ", ".join(
                sorted(f"{r}@{ln}" for ln, r in expected))
            print(f"ok   {name}: {label}")
            continue
        failures += 1
        print(f"FAIL {name}:")
        for ln, rule in sorted(expected - got):
            print(f"  missing expected {rule} at line {ln}")
        for ln, rule in sorted(got - expected):
            msg = next(d.msg for d in diags
                       if (d.line, d.rule) == (ln, rule))
            print(f"  unexpected {rule} at line {ln}: {msg}")
    total = len(fixture_files)
    print(f"atomlint selftest: {total - failures}/{total} fixtures ok")
    return 1 if failures else 0


def main(argv=None):
    ap = argparse.ArgumentParser(prog="atomlint.py",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("--src", default="src",
                    help="source tree to lint (default: src)")
    ap.add_argument("--json", default=None,
                    help="write a JSON report to this path")
    ap.add_argument("--werror", action="store_true",
                    help="treat AL3 warnings as errors (CI mode)")
    ap.add_argument("--emit-litmus", default=None, metavar="DIR",
                    help="write a litmus-test skeleton per AL2 "
                         "finding into DIR")
    ap.add_argument("--dump-inventory", action="store_true",
                    help="print the atomics inventory and exit")
    ap.add_argument("--selftest-fixtures", default=None,
                    help="run the fixture selftest over this "
                         "directory instead of linting --src")
    opts = ap.parse_args(argv)
    if opts.selftest_fixtures:
        return selftest(opts)
    return lint_tree(opts)


if __name__ == "__main__":
    sys.exit(main())
