#!/bin/bash
# Run every figure/table/micro benchmark and write one combined log,
# per-bench JSON row files (results/<bench>.json, tmemc-bench-v1),
# plus a per-bench pass/fail summary at the end. Exits nonzero if any
# bench failed, so CI can gate on it.
#
# Usage: results/run_all.sh [OPS] [TRIALS]
#        results/run_all.sh --rebaseline
#
# --rebaseline runs only the CI perf-gate pair (bench_fig4 --quick and
# bench_net) and refreshes results/baseline.json from their JSON; run
# it on the runner class the gate will compare on, then commit the
# baseline together with the change that moved the numbers.
set -euo pipefail

# Resolve the repo root from this script's location instead of
# hard-coding a checkout path.
ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$ROOT"

BENCH_DIR=build/bench

if [[ ${1:-} == --rebaseline ]]; then
    "$BENCH_DIR/bench_fig4" --quick --trials 3 --threads 1,4 \
        --json results/gate_fig4.json
    "$BENCH_DIR/bench_net" --ops 3000 --trials 3 --threads 1,4 \
        --json results/gate_net.json
    # The I/O-backend comparison pair and the invisible-reader rows
    # gate too. io_uring rows stay OUT of the baseline on purpose:
    # not every runner kernel can produce them, and a baseline row
    # the runner cannot reproduce fails the gate as missing.
    "$BENCH_DIR/bench_net" --branch IP-onCommit --ascii --ops 3000 \
        --trials 3 --threads 1,4 --backend epoll \
        --json results/gate_zc_epoll.json
    "$BENCH_DIR/bench_net" --branch IP-onCommit --ascii --ops 3000 \
        --trials 3 --threads 1,4 --backend writev \
        --json results/gate_zc_writev.json
    "$BENCH_DIR/bench_ro_tx" --trials 3 --threads 1,4 \
        --json results/gate_ro_tx.json
    python3 scripts/perf_gate.py rebaseline --out results/baseline.json \
        results/gate_fig4.json results/gate_net.json \
        results/gate_zc_epoll.json results/gate_zc_writev.json \
        results/gate_ro_tx.json
    exit 0
fi

OPS=${1:-10000}
TRIALS=${2:-2}
OUT=results/bench_default.txt

if [[ ! -d "$BENCH_DIR" ]]; then
    echo "error: $BENCH_DIR not found; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 2
fi

: > "$OUT"
declare -a names=()
declare -a statuses=()

run_bench() {
    # run_bench NAME TIMEOUT CMD...: append output to $OUT, record
    # pass/fail without aborting the sweep (set -e stays active for
    # everything else).
    local name=$1 tmo=$2
    shift 2
    echo "=== $name ===" >> "$OUT"
    local rc=0
    timeout "$tmo" "$@" >> "$OUT" 2>&1 || rc=$?
    names+=("$name")
    if [[ $rc -eq 0 ]]; then
        statuses+=("pass")
    else
        statuses+=("FAIL(rc=$rc)")
    fi
}

for b in fig4 table1 fig6 table2 fig8 table3 fig9 table4 fig10 fig11 \
         lockprof ext_fused ablation_callable; do
    run_bench "bench_$b" 2400 \
        "$BENCH_DIR/bench_$b" --ops "$OPS" --trials "$TRIALS" \
        --json "results/bench_$b.json"
done

# Shard-count scaling sweep (ops/s at shards 1/4/16) and the loopback
# serving gate, both added with the sharded cache.
run_bench bench_shard_scaling 2400 \
    "$BENCH_DIR/bench_shard_scaling" --ops "$OPS" --trials "$TRIALS" \
    --threads 1,4,8,12 --json results/bench_shard_scaling.json
run_bench bench_net 1200 "$BENCH_DIR/bench_net" --ops 5000 \
    --json results/bench_net.json
run_bench bench_net_sharded 1200 \
    "$BENCH_DIR/bench_net" --ops 5000 --shards 16 \
    --json results/bench_net_sharded.json

# The I/O-backend comparison (same branch and mix; only the serving
# backend varies) and the invisible-reader read-only-transaction
# ablation. The io_uring leg is probe-gated so the sweep still
# completes on kernels without the ring.
run_bench bench_net_zc_epoll 1200 \
    "$BENCH_DIR/bench_net" --branch IP-onCommit --ascii --ops 5000 \
    --backend epoll --json results/bench_net_zc_epoll.json
run_bench bench_net_zc_writev 1200 \
    "$BENCH_DIR/bench_net" --branch IP-onCommit --ascii --ops 5000 \
    --backend writev --json results/bench_net_zc_writev.json
if "$BENCH_DIR/bench_net" --probe-io-uring; then
    run_bench bench_net_zc_uring 1200 \
        "$BENCH_DIR/bench_net" --branch IP-onCommit --ascii --ops 5000 \
        --backend io_uring --json results/bench_net_zc_uring.json
fi
run_bench bench_ro_tx 1200 \
    "$BENCH_DIR/bench_ro_tx" --ops "$OPS" --trials "$TRIALS" \
    --threads 1,4,8 --json results/bench_ro_tx.json

# Plain-double min_time: the "0.05s" suffix form needs benchmark >= 1.8.
run_bench bench_micro_tm 1200 \
    "$BENCH_DIR/bench_micro_tm" --benchmark_min_time=0.05
run_bench bench_micro_tmsafe 1200 \
    "$BENCH_DIR/bench_micro_tmsafe" --benchmark_min_time=0.05

echo ALL_BENCHES_DONE >> "$OUT"

failed=0
for st in "${statuses[@]}"; do
    [[ $st == pass ]] || failed=1
done
{
    echo
    echo "=== summary ==="
    for i in "${!names[@]}"; do
        printf '%-24s %s\n' "${names[$i]}" "${statuses[$i]}"
    done
} | tee -a "$OUT"
exit $failed
