#!/bin/bash
cd /root/repo
OPS=${1:-10000}
TRIALS=${2:-2}
OUT=results/bench_default.txt
: > $OUT
for b in fig4 table1 fig6 table2 fig8 table3 fig9 table4 fig10 fig11 lockprof ext_fused ablation_callable; do
  echo "=== bench_$b ===" >> $OUT
  timeout 2400 ./build/bench/bench_$b --ops $OPS --trials $TRIALS >> $OUT 2>&1
done
echo "=== micro ===" >> $OUT
timeout 1200 ./build/bench/bench_micro_tm --benchmark_min_time=0.05s >> $OUT 2>&1
timeout 1200 ./build/bench/bench_micro_tmsafe --benchmark_min_time=0.05s >> $OUT 2>&1
echo ALL_BENCHES_DONE >> $OUT
