/**
 * @file
 * Cluster client implementation. Protocol details live here: requests
 * are ASCII (the framing net::Client already understands), replies
 * are parsed by first token. See cluster.h for the design rationale.
 */

#include "net/cluster.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/fault.h"
#include "common/logging.h"
#include "common/rng.h"
#include "mc/hash.h"
#include "obs/metrics.h"

namespace tmemc::net
{

namespace
{

/** Monotonic milliseconds for deadlines and probe spacing. */
std::uint64_t
nowMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Pooled connections kept per node; extras are dropped on release. */
constexpr std::size_t kMaxIdlePerNode = 8;

/** "set"/"add" request: <verb> <key> 0 0 <bytes>\r\n<value>\r\n */
std::string
storeRequest(const char *verb, const std::string &key,
             const std::string &value)
{
    std::string req = verb;
    req += ' ';
    req += key;
    req += " 0 0 ";
    req += std::to_string(value.size());
    req += "\r\n";
    req += value;
    req += "\r\n";
    return req;
}

} // namespace

Cluster::Cluster(ClusterCfg cfg)
    : cfg_(std::move(cfg))
{
    if (cfg_.nodes.empty())
        panic("Cluster requires at least one node");
    if (cfg_.replicas == 0)
        cfg_.replicas = 1;
    cfg_.replicas = std::min<unsigned>(
        cfg_.replicas, static_cast<unsigned>(cfg_.nodes.size()));
    if (cfg_.virtualNodes == 0)
        cfg_.virtualNodes = 1;

    nodes_.reserve(cfg_.nodes.size());
    for (std::size_t i = 0; i < cfg_.nodes.size(); ++i) {
        auto node = std::make_unique<Node>();
        node->ep = cfg_.nodes[i];
        node->faultSite = "net.cluster.node." + std::to_string(i);
        nodes_.push_back(std::move(node));
    }

    // Ring points: hash "host:port#v" with the key hash, so placement
    // is a pure function of the node list — any client configured with
    // the same nodes computes the same ring.
    ring_.reserve(cfg_.nodes.size() * cfg_.virtualNodes);
    for (std::size_t i = 0; i < cfg_.nodes.size(); ++i) {
        const std::string base =
            cfg_.nodes[i].host + ":" + std::to_string(cfg_.nodes[i].port);
        for (unsigned v = 0; v < cfg_.virtualNodes; ++v) {
            const std::string point = base + "#" + std::to_string(v);
            ring_.emplace_back(mc::hashKey(point.data(), point.size()),
                               static_cast<std::uint32_t>(i));
        }
    }
    std::sort(ring_.begin(), ring_.end());

    metricsToken_ = obs::MetricsRegistry::get().registerSource(
        "cluster", [this]() {
            const ClusterStats s = stats();
            return std::vector<obs::Counter>{
                {"requests", s.requests},
                {"retries", s.retries},
                {"net_errors", s.net_errors},
                {"ejections", s.ejections},
                {"probes", s.probes},
                {"readmissions", s.readmissions},
                {"failovers", s.failovers},
                {"read_repairs", s.read_repairs},
                {"replica_lag", s.replica_lag},
            };
        });
}

Cluster::~Cluster()
{
    obs::MetricsRegistry::get().unregisterSource(metricsToken_);
}

std::vector<std::size_t>
Cluster::ownersOf(const std::string &key) const
{
    const std::uint32_t h = mc::hashKey(key.data(), key.size());
    std::vector<std::size_t> owners;
    owners.reserve(cfg_.replicas);
    // First ring point clockwise of the key's hash, then walk forward
    // (wrapping) collecting distinct nodes until R owners are found.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(h, std::uint32_t{0}),
        [](const auto &a, const auto &b) { return a.first < b.first; });
    for (std::size_t step = 0;
         step < ring_.size() && owners.size() < cfg_.replicas; ++step) {
        if (it == ring_.end())
            it = ring_.begin();
        const std::size_t idx = it->second;
        if (std::find(owners.begin(), owners.end(), idx) ==
            owners.end())
            owners.push_back(idx);
        ++it;
    }
    return owners;
}

std::size_t
Cluster::primaryOf(const std::string &key) const
{
    return ownersOf(key).front();
}

bool
Cluster::nodeHealthy(std::size_t idx) const
{
    Node &node = *nodes_[idx];
    std::lock_guard<std::mutex> guard(node.mu);
    return !node.ejected;
}

ClusterStats
Cluster::stats() const
{
    ClusterStats s;
    s.requests = stats_.requests.load(std::memory_order_relaxed);
    s.retries = stats_.retries.load(std::memory_order_relaxed);
    s.net_errors = stats_.netErrors.load(std::memory_order_relaxed);
    s.ejections = stats_.ejections.load(std::memory_order_relaxed);
    s.probes = stats_.probes.load(std::memory_order_relaxed);
    s.readmissions =
        stats_.readmissions.load(std::memory_order_relaxed);
    s.failovers = stats_.failovers.load(std::memory_order_relaxed);
    s.read_repairs =
        stats_.readRepairs.load(std::memory_order_relaxed);
    s.replica_lag =
        stats_.replicaLag.load(std::memory_order_relaxed);
    return s;
}

std::unique_ptr<Client>
Cluster::acquire(Node &node)
{
    {
        std::lock_guard<std::mutex> guard(node.mu);
        if (!node.idle.empty()) {
            auto cli = std::move(node.idle.back());
            node.idle.pop_back();
            return cli;
        }
    }
    auto cli = std::make_unique<Client>();
    cli->setRecvTimeout(cfg_.nodeTimeoutMs);
    return cli;
}

void
Cluster::release(Node &node, std::unique_ptr<Client> cli)
{
    if (!cli || !cli->isConnected())
        return;  // Dead connections are not pooled.
    std::lock_guard<std::mutex> guard(node.mu);
    if (node.idle.size() < kMaxIdlePerNode)
        node.idle.push_back(std::move(cli));
}

Cluster::NodeOp
Cluster::nodeRoundTrip(std::size_t idx, const std::string &request,
                       std::string *valueOut)
{
    Node &node = *nodes_[idx];

    // Per-node fault schedule: an errno payload models a partition to
    // this node, a bare delayUs payload a slow node (proceed after the
    // stall — the caller's deadline accounts for the lost time).
    if (fault::enabled()) {
        const fault::Action a = fault::consult(node.faultSite.c_str());
        if (a.fire) {
            fault::maybeDelay(a);
            if (a.errnoValue != 0) {
                stats_.netErrors.fetch_add(1,
                                           std::memory_order_relaxed);
                return NodeOp::NetFail;
            }
        }
    }

    auto cli = acquire(node);
    if (!cli->isConnected() &&
        !cli->connect(node.ep.host, node.ep.port,
                      cfg_.nodeTimeoutMs)) {
        stats_.netErrors.fetch_add(1, std::memory_order_relaxed);
        return NodeOp::NetFail;
    }
    if (!cli->sendAll(request)) {
        // A pooled connection may have died idle (server restart);
        // one immediate re-dial distinguishes that from a down node.
        if (!cli->ensureConnected(cfg_.nodeTimeoutMs) ||
            !cli->sendAll(request)) {
            stats_.netErrors.fetch_add(1, std::memory_order_relaxed);
            return NodeOp::NetFail;
        }
    }
    std::string reply;
    if (!cli->recvAscii(reply)) {
        // Timeout or mid-reply failure: the stream may be desynced
        // (a late reply would be misattributed), so drop the socket.
        cli->close();
        stats_.netErrors.fetch_add(1, std::memory_order_relaxed);
        return NodeOp::NetFail;
    }
    release(node, std::move(cli));

    // Classify the reply by first token.
    if (reply.rfind("STORED", 0) == 0 ||
        reply.rfind("DELETED", 0) == 0 ||
        reply.rfind("VERSION", 0) == 0)
        return NodeOp::Ok;
    if (reply.rfind("NOT_STORED", 0) == 0)
        return NodeOp::NotStored;
    if (reply.rfind("NOT_FOUND", 0) == 0 ||
        reply.rfind("END", 0) == 0)
        return NodeOp::Miss;
    if (reply.rfind("VALUE ", 0) == 0) {
        // VALUE <key> <flags> <bytes>\r\n<data>\r\nEND\r\n
        const std::size_t eol = reply.find("\r\n");
        if (eol == std::string::npos)
            return NodeOp::ProtoError;
        const std::size_t lastSp = reply.rfind(' ', eol);
        if (lastSp == std::string::npos)
            return NodeOp::ProtoError;
        const unsigned long long bytes = std::strtoull(
            reply.c_str() + lastSp + 1, nullptr, 10);
        if (eol + 2 + bytes > reply.size())
            return NodeOp::ProtoError;
        if (valueOut != nullptr)
            valueOut->assign(reply, eol + 2, bytes);
        return NodeOp::Ok;
    }
    return NodeOp::ProtoError;
}

std::uint64_t
Cluster::backoffSleepMs(unsigned attempt)
{
    // Capped exponential window with deterministic jitter: the n-th
    // retry sleeps uniformly in [0, min(base << n, cap)], drawn from
    // a sequence counter so concurrent retries decorrelate without
    // shared PRNG state.
    std::uint64_t window = cfg_.backoffBaseMs;
    for (unsigned i = 0; i < attempt && window < cfg_.backoffCapMs;
         ++i)
        window <<= 1;
    window = std::min<std::uint64_t>(window, cfg_.backoffCapMs);
    if (window == 0)
        return 0;
    XorShift128 rng(cfg_.seed ^
                    (jitterSeq_.fetch_add(1,
                                          std::memory_order_relaxed) +
                     0x9e3779b97f4a7c15ull));
    return rng.nextBounded(window + 1);
}

void
Cluster::recordSuccess(std::size_t idx)
{
    Node &node = *nodes_[idx];
    std::lock_guard<std::mutex> guard(node.mu);
    node.consecutiveFailures = 0;
    if (node.ejected) {
        // A real request got through: that is as good as a probe.
        node.ejected = false;
        stats_.readmissions.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Cluster::recordFailure(std::size_t idx)
{
    Node &node = *nodes_[idx];
    std::lock_guard<std::mutex> guard(node.mu);
    ++node.consecutiveFailures;
    if (!node.ejected &&
        node.consecutiveFailures >= cfg_.ejectAfter) {
        node.ejected = true;
        node.lastProbeMs = nowMs();  // Probes start one interval out.
        stats_.ejections.fetch_add(1, std::memory_order_relaxed);
    }
}

bool
Cluster::maybeProbe(std::size_t idx)
{
    Node &node = *nodes_[idx];
    {
        std::lock_guard<std::mutex> guard(node.mu);
        if (!node.ejected)
            return true;
        const std::uint64_t now = nowMs();
        if (now - node.lastProbeMs < cfg_.probeIntervalMs)
            return false;  // Not due; caller skips the ejected node.
        node.lastProbeMs = now;  // Reserve this probe slot.
    }
    stats_.probes.fetch_add(1, std::memory_order_relaxed);
    if (nodeRoundTrip(idx, "version\r\n", nullptr) == NodeOp::Ok) {
        std::lock_guard<std::mutex> guard(node.mu);
        node.consecutiveFailures = 0;
        if (node.ejected) {
            node.ejected = false;
            stats_.readmissions.fetch_add(1,
                                          std::memory_order_relaxed);
        }
        return true;
    }
    return false;
}

Cluster::NodeOp
Cluster::attemptOp(std::size_t idx, const std::string &request,
                   std::string *valueOut, std::uint64_t deadlineMs)
{
    for (unsigned attempt = 0; attempt <= cfg_.maxRetries; ++attempt) {
        if (nowMs() >= deadlineMs)
            return NodeOp::NetFail;
        if (!nodeHealthy(idx) && !maybeProbe(idx))
            return NodeOp::NetFail;  // Ejected, probe not due/failed.
        const NodeOp st = nodeRoundTrip(idx, request, valueOut);
        if (st != NodeOp::NetFail) {
            recordSuccess(idx);
            return st;
        }
        recordFailure(idx);
        if (attempt < cfg_.maxRetries) {
            stats_.retries.fetch_add(1, std::memory_order_relaxed);
            const std::uint64_t sleepMs = backoffSleepMs(attempt);
            const std::uint64_t now = nowMs();
            if (now + sleepMs >= deadlineMs)
                return NodeOp::NetFail;  // Budget exhausted.
            if (sleepMs > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(sleepMs));
        }
    }
    return NodeOp::NetFail;
}

ClusterResult
Cluster::set(const std::string &key, const std::string &value)
{
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t deadline = nowMs() + cfg_.requestDeadlineMs;
    const std::vector<std::size_t> owners = ownersOf(key);
    const std::string req = storeRequest("set", key, value);

    // Write-through fan-out: an ack promises at least one persisted
    // copy. Both-copy acks are the steady state; a single-copy ack is
    // legal (that copy survives any single-node kill) and counted.
    std::size_t okCount = 0;
    bool primaryOk = false;
    for (std::size_t i = 0; i < owners.size(); ++i) {
        if (attemptOp(owners[i], req, nullptr, deadline) ==
            NodeOp::Ok) {
            ++okCount;
            if (i == 0)
                primaryOk = true;
        }
    }
    ClusterResult res;
    if (okCount == 0) {
        res.status = ClusterStatus::NetFail;
        return res;
    }
    res.status = ClusterStatus::Ok;
    res.degraded = okCount < owners.size();
    if (res.degraded)
        stats_.replicaLag.fetch_add(1, std::memory_order_relaxed);
    if (!primaryOk)
        stats_.failovers.fetch_add(1, std::memory_order_relaxed);
    return res;
}

ClusterResult
Cluster::get(const std::string &key)
{
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t deadline = nowMs() + cfg_.requestDeadlineMs;
    const std::vector<std::size_t> owners = ownersOf(key);
    const std::string req = "get " + key + "\r\n";

    ClusterResult res;
    std::string primaryVal;
    const NodeOp pSt =
        attemptOp(owners[0], req, &primaryVal, deadline);
    if (pSt == NodeOp::Ok) {
        res.status = ClusterStatus::Ok;
        res.value = std::move(primaryVal);
        return res;
    }
    if (owners.size() < 2) {
        res.status = pSt == NodeOp::Miss ? ClusterStatus::Miss
                                         : ClusterStatus::NetFail;
        return res;
    }

    // Primary unreachable (failover) or empty (possibly a restarted
    // node that lost its memory): consult the replica before
    // reporting a miss.
    if (pSt == NodeOp::NetFail)
        stats_.failovers.fetch_add(1, std::memory_order_relaxed);
    std::string replicaVal;
    const NodeOp rSt =
        attemptOp(owners[1], req, &replicaVal, deadline);
    if (rSt == NodeOp::Ok) {
        if (pSt == NodeOp::Miss) {
            // Repair with add, never set: if the primary has gained a
            // (newer) value since our miss, the repair must lose.
            const std::string repair =
                storeRequest("add", key, replicaVal);
            if (attemptOp(owners[0], repair, nullptr, deadline) !=
                NodeOp::NetFail)
                stats_.readRepairs.fetch_add(
                    1, std::memory_order_relaxed);
        }
        res.status = ClusterStatus::Ok;
        res.value = std::move(replicaVal);
        res.fromReplica = true;
        return res;
    }
    if (pSt == NodeOp::Miss || rSt == NodeOp::Miss) {
        res.status = ClusterStatus::Miss;
        return res;
    }
    res.status = pSt == NodeOp::ProtoError || rSt == NodeOp::ProtoError
                     ? ClusterStatus::ProtoError
                     : ClusterStatus::NetFail;
    return res;
}

ClusterResult
Cluster::del(const std::string &key)
{
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t deadline = nowMs() + cfg_.requestDeadlineMs;
    const std::vector<std::size_t> owners = ownersOf(key);
    const std::string req = "delete " + key + "\r\n";

    bool anyOk = false;
    bool anyReached = false;
    for (const std::size_t idx : owners) {
        const NodeOp st = attemptOp(idx, req, nullptr, deadline);
        anyOk = anyOk || st == NodeOp::Ok;
        anyReached = anyReached || st != NodeOp::NetFail;
    }
    ClusterResult res;
    res.status = anyOk         ? ClusterStatus::Ok
                 : anyReached  ? ClusterStatus::Miss
                               : ClusterStatus::NetFail;
    return res;
}

} // namespace tmemc::net
