/**
 * @file
 * Client-side cluster routing with replicated failover — the
 * horizontal-scale counterpart of the single-process server the paper
 * transactionalizes. A net::Cluster fronts N tmemc_server nodes with:
 *
 *   - a consistent-hash ring: each node contributes virtualNodes
 *     points (hash of "host:port#v" with the same multiplicative
 *     key hash the ShardedCache uses, mc/hash.h), keys route to the
 *     first point clockwise, replicas to the next distinct nodes;
 *   - per-node connection pools layered on net::Client, relying on
 *     its close-on-error + ensureConnected() contract to survive
 *     server restarts;
 *   - per-request deadlines with capped exponential backoff + jitter
 *     between retries — the cluster-level analogue of the TM
 *     contention manager: progress policy is explicit, not ad-hoc
 *     (cf. "Why TM Should Not Be Obstruction-Free");
 *   - node health: ejectAfter consecutive network failures eject a
 *     node; while ejected it only sees rate-limited probation probes
 *     (a "version" round trip at most every probeIntervalMs), and a
 *     successful probe re-admits it;
 *   - R=2 write-through replication: a set fans out to primary and
 *     ring successor and is acknowledged when at least one copy
 *     persisted (both-copy acks are the common case; single-copy
 *     acks are counted as replica_lag). Reads serve from the
 *     primary and fail over to the replica on network failure; a
 *     primary MISS is double-checked against the replica so a
 *     restarted-empty primary cannot silently lose data, and a
 *     replica hit repairs the primary.
 *
 * Read-repair deliberately uses `add` (store-if-absent), not `set`:
 * a repair racing a fresh client write must never clobber the newer
 * value — if the primary already holds something, that something is
 * at least as new as the replica's copy, and the repair must lose.
 * This makes repaired histories linearizable for set/get workloads;
 * delete introduces a resurrection window (a repair can re-add a key
 * deleted between the replica read and the repair), which is why the
 * chaos workload sticks to set/get.
 *
 * Fault injection: before every network attempt on node i the client
 * consults site "net.cluster.node.<i>" — an errno payload simulates a
 * partition to that node, a delayUs payload a slow node (the attempt
 * proceeds after the stall, but the request deadline keeps counting).
 * Connect-level faults come via net.sys.connect under net::Client.
 *
 * Counters are registered with the process MetricsRegistry under the
 * "cluster" prefix, so they appear in the JSON export and the ASCII
 * `stats cluster` render of any server sharing the process (the test
 * harness runs servers in-process and uses exactly that).
 */

#ifndef TMEMC_NET_CLUSTER_H
#define TMEMC_NET_CLUSTER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/client.h"

namespace tmemc::net
{

/** One cluster member's endpoint. */
struct ClusterNode
{
    std::string host;
    std::uint16_t port = 0;
};

/** Cluster client configuration. */
struct ClusterCfg
{
    std::vector<ClusterNode> nodes;
    unsigned replicas = 2;         //!< Copies per key (<= nodes).
    unsigned virtualNodes = 64;    //!< Ring points per node.
    std::uint32_t nodeTimeoutMs = 250;  //!< Connect + recv bound per attempt.
    std::uint32_t requestDeadlineMs = 1000;  //!< Whole-op bound incl. retries.
    unsigned maxRetries = 3;       //!< Extra attempts per node per op.
    std::uint32_t backoffBaseMs = 2;   //!< First retry sleep.
    std::uint32_t backoffCapMs = 50;   //!< Backoff ceiling.
    unsigned ejectAfter = 3;       //!< Consecutive net failures to eject.
    std::uint32_t probeIntervalMs = 100;  //!< Min gap between probes.
    std::uint64_t seed = 1;        //!< Backoff jitter seed.
};

/** Outcome of one cluster operation. */
enum class ClusterStatus : std::uint8_t
{
    Ok,         //!< Acknowledged (set/del) or hit (get).
    Miss,       //!< Key absent on every reachable owner.
    NetFail,    //!< No owner reachable within the deadline.
    ProtoError, //!< A node answered with an unexpected reply.
};

/** Result of one cluster operation. */
struct ClusterResult
{
    ClusterStatus status = ClusterStatus::NetFail;
    std::string value;        //!< get hit payload.
    bool fromReplica = false; //!< get served by a non-primary owner.
    bool degraded = false;    //!< Write acked by fewer than R copies.
};

/** Monotonic counters; see the "cluster" metrics source. */
struct ClusterStats
{
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;
    std::uint64_t net_errors = 0;
    std::uint64_t ejections = 0;
    std::uint64_t probes = 0;
    std::uint64_t readmissions = 0;
    std::uint64_t failovers = 0;
    std::uint64_t read_repairs = 0;
    std::uint64_t replica_lag = 0;
};

/** Replicating, health-tracking cluster client. Thread-safe. */
class Cluster
{
  public:
    explicit Cluster(ClusterCfg cfg);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Store @p value under @p key on every reachable owner. */
    ClusterResult set(const std::string &key, const std::string &value);

    /** Fetch @p key (primary first, replica failover + read-repair). */
    ClusterResult get(const std::string &key);

    /** Delete @p key from every reachable owner. */
    ClusterResult del(const std::string &key);

    /** @name Test introspection */
    ///@{
    /** Node index owning @p key's primary copy. */
    std::size_t primaryOf(const std::string &key) const;
    /** All owner node indices for @p key, primary first. */
    std::vector<std::size_t> ownersOf(const std::string &key) const;
    /** False while node @p idx is ejected. */
    bool nodeHealthy(std::size_t idx) const;
    /** Counter snapshot. */
    ClusterStats stats() const;
    /** Number of configured nodes. */
    std::size_t nodeCount() const { return nodes_.size(); }
    ///@}

  private:
    /** Per-attempt outcome on one node. */
    enum class NodeOp : std::uint8_t
    {
        Ok,         //!< STORED / DELETED / VALUE hit / VERSION.
        Miss,       //!< END with no VALUE / NOT_FOUND.
        NotStored,  //!< add lost to an existing value (fine).
        NetFail,    //!< Connect/send/recv failure or injected fault.
        ProtoError, //!< Unparseable or error reply.
    };

    struct Node
    {
        ClusterNode ep;
        std::string faultSite;  //!< "net.cluster.node.<idx>".
        std::mutex mu;
        std::vector<std::unique_ptr<Client>> idle;
        unsigned consecutiveFailures = 0;
        bool ejected = false;
        std::uint64_t lastProbeMs = 0;
    };

    std::unique_ptr<Client> acquire(Node &node);
    void release(Node &node, std::unique_ptr<Client> cli);

    /** One framed request/response on @p idx, no retry. */
    NodeOp nodeRoundTrip(std::size_t idx, const std::string &request,
                         std::string *valueOut);
    /** Retry loop around nodeRoundTrip: backoff, deadline, health. */
    NodeOp attemptOp(std::size_t idx, const std::string &request,
                     std::string *valueOut, std::uint64_t deadlineMs);
    /** Probe an ejected node if one is due; true if re-admitted. */
    bool maybeProbe(std::size_t idx);

    void recordSuccess(std::size_t idx);
    void recordFailure(std::size_t idx);
    std::uint64_t backoffSleepMs(unsigned attempt);

    ClusterCfg cfg_;
    std::vector<std::unique_ptr<Node>> nodes_;
    /** Sorted ring: (hash point, node index). */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ring_;
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> jitterSeq_{0};
    std::uint64_t metricsToken_ = 0;

    struct AtomicStats
    {
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> requests{0};
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> retries{0};
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> netErrors{0};
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> ejections{0};
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> probes{0};
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> readmissions{0};
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> failovers{0};
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> readRepairs{0};
        // atom-protocol: relaxed-counter
        std::atomic<std::uint64_t> replicaLag{0};
    };
    AtomicStats stats_;
};

} // namespace tmemc::net

#endif // TMEMC_NET_CLUSTER_H
