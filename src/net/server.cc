/**
 * @file
 * Server implementation: socket setup, accept loop, worker fan-out.
 */

#include "net/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mc/binary_protocol.h"
#include "mc/protocol.h"

namespace tmemc::net
{

namespace
{

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace

Server::Server(mc::CacheIface &cache, ServerCfg cfg)
    : cache_(cache), cfg_(std::move(cfg))
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        return false;
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
        stop();
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, cfg_.backlog) != 0 ||
        !setNonBlocking(listenFd_)) {
        stop();
        return false;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &blen) != 0) {
        stop();
        return false;
    }
    port_ = ntohs(bound.sin_port);

    ExecFn exec = [this](std::uint32_t worker, bool binary,
                         const std::string &frame) {
        return binary ? mc::binaryExecute(cache_, worker, frame)
                      : mc::protocolExecute(cache_, worker, frame);
    };
    for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
        loops_.push_back(std::make_unique<EventLoop>(w, exec));
        if (!loops_.back()->start()) {
            stop();
            return false;
        }
    }
    stopping_.store(false, std::memory_order_release);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::stop()
{
    stopping_.store(true, std::memory_order_release);
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (auto &loop : loops_) {
        loop->stop();
        servedFinal_.fetch_add(loop->requestsServed(),
                               std::memory_order_relaxed);
    }
    loops_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

std::uint64_t
Server::requestsServed() const
{
    std::uint64_t total = servedFinal_.load(std::memory_order_relaxed);
    for (const auto &loop : loops_)
        total += loop->requestsServed();
    return total;
}

std::size_t
Server::openConnections() const
{
    std::size_t total = 0;
    for (const auto &loop : loops_)
        total += loop->openConnections();
    return total;
}

void
Server::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 100);
        if (pr <= 0) {
            if (pr < 0 && errno != EINTR)
                break;
            continue;
        }
        for (;;) {
            const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)
                    break;
                // EMFILE/ENFILE: shed load and keep listening.
                break;
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            accepted_.fetch_add(1, std::memory_order_relaxed);
            loops_[rr_ % loops_.size()]->adopt(fd);
            ++rr_;
        }
    }
}

} // namespace tmemc::net
