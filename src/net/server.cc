/**
 * @file
 * Server implementation: socket setup, accept loop, worker fan-out,
 * overload shedding, and the stats splice.
 */

#include "net/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mc/binary_protocol.h"
#include "mc/protocol.h"
#include "net/sys.h"
#include "obs/metrics.h"
#include "obs/tail.h"

namespace tmemc::net
{

namespace
{

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** How long a rejected socket may linger before being forced shut. */
constexpr std::chrono::milliseconds kRejectLinger{250};

constexpr char kTooManyConns[] = "SERVER_ERROR too many connections\r\n";

/** ASCII OOM replies all share this prefix (store + realloc paths). */
constexpr char kAsciiOomPrefix[] = "SERVER_ERROR out of memory";

/** Did this reply report an out-of-memory failure? */
bool
replyIsOom(bool binary, const std::string &reply)
{
    if (binary) {
        // One response header per request frame; status lives at
        // bytes 6..7 (network order).
        return reply.size() >= mc::kBinHeaderSize &&
               static_cast<std::uint8_t>(reply[0]) ==
                   static_cast<std::uint8_t>(mc::BinMagic::Response) &&
               static_cast<std::uint8_t>(reply[6]) == 0x00 &&
               static_cast<std::uint8_t>(reply[7]) ==
                   (static_cast<std::uint16_t>(
                        mc::BinStatus::OutOfMemory) &
                    0xff);
    }
    return reply.compare(0, sizeof(kAsciiOomPrefix) - 1,
                         kAsciiOomPrefix) == 0;
}

/** Is this ASCII frame a `stats` command (bare or with args)? */
bool
frameIsStats(const std::string &frame)
{
    return frame.compare(0, 5, "stats") == 0;
}

/** Is this ASCII frame the `metrics` admin command? */
bool
frameIsMetrics(const std::string &frame)
{
    return frame == "metrics\r\n" || frame == "metrics\n";
}

/** Is this ASCII frame the `tail` admin command? */
bool
frameIsTail(const std::string &frame)
{
    return frame == "tail\r\n" || frame == "tail\n";
}

} // namespace

Server::Server(mc::CacheIface &cache, ServerCfg cfg)
    : cache_(cache), cfg_(std::move(cfg))
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
}

Server::~Server()
{
    // Unregister first: once this returns, no snapshot can be running
    // the "net" source, so the teardown below cannot race with it.
    if (metricsToken_ != 0) {
        obs::MetricsRegistry::get().unregisterSource(metricsToken_);
        metricsToken_ = 0;
    }
    stop();
}

bool
Server::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        return false;
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(cfg_.port);
    if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
        stop();
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, cfg_.backlog) != 0 ||
        !setNonBlocking(listenFd_)) {
        stop();
        return false;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                      &blen) != 0) {
        stop();
        return false;
    }
    port_ = ntohs(bound.sin_port);

    // The pinned (zero-copy) GET path needs both halves: a gather
    // backend, so value segments reach writev un-copied, and a branch
    // whose items can be pinned (refcounts + non-transactional value
    // bytes — pinnedGetSupported()). Everything else — stores, binary
    // protocol, unsupported branches — takes the legacy string path.
    const bool allow_pinned = cfg_.ioBackend != IoBackend::Epoll &&
                              cache_.pinnedGetSupported();
    ExecFn exec = [this, allow_pinned](std::uint32_t worker, bool binary,
                                       const std::string &frame,
                                       mc::Reply &out) {
        if (!binary && frameIsMetrics(frame)) {
            // Admin command: the whole metrics snapshot as one JSON
            // line. Served here, not in protocol.cc, so it exists
            // only where a server (and its net counters) exists.
            out.append(obs::MetricsRegistry::get().snapshot().toJson() +
                       "\r\nEND\r\n");
            return;
        }
        if (!binary && frameIsTail(frame)) {
            // The tail tracer's merged reservoir as one
            // tmemc-tail-v1 JSON line — the same document
            // --tail-json writes at exit, fetchable live.
            out.append(obs::tail::tailToJson() + "\r\nEND\r\n");
            return;
        }
        if (allow_pinned && !binary &&
            mc::protocolExecutePinned(cache_, worker, frame, out))
            return;
        std::string reply =
            binary ? mc::binaryExecute(cache_, worker, frame)
                   : mc::protocolExecute(cache_, worker, frame);
        if (replyIsOom(binary, reply))
            counters_.oomErrors.fetch_add(1, std::memory_order_relaxed);
        if (!binary && frameIsStats(frame) && reply.size() >= 5 &&
            reply.compare(reply.size() - 5, 5, "END\r\n") == 0) {
            // Splice the server-level STAT lines in front of the
            // cache's trailing END so clients see one stats block.
            reply.insert(reply.size() - 5, statsLines());
        }
        out.append(std::move(reply));
    };
    for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
        loops_.push_back(std::make_unique<EventLoop>(
            w, exec, cfg_.limits, cfg_.idleTimeoutMs, counters_,
            cfg_.ioBackend));
        if (!loops_.back()->start()) {
            stop();
            return false;
        }
    }
    // Every loop ran the same probe, so they all landed on the same
    // effective backend; report loop 0's.
    effectiveBackend_ = loops_[0]->backend();
    // The source stays registered across stop() — the counters and
    // servedFinal_ stay valid after teardown, so a metrics dump taken
    // after drain() still carries the final net totals. It is dropped
    // in the destructor, behind the unregister barrier.
    if (metricsToken_ == 0) {
        metricsToken_ = obs::MetricsRegistry::get().registerSource(
            "net", [this] {
                const NetStats s = netStats();
                return std::vector<obs::Counter>{
                    {"curr_connections", s.currConnections},
                    {"total_connections", s.totalConnections},
                    {"rejected_connections", s.rejectedConnections},
                    {"idle_kicks", s.idleKicks},
                    {"backpressure_closes", s.backpressureCloses},
                    {"oom_errors", s.oomErrors},
                    {"accept_failures", s.acceptFailures},
                    {"requests_served", requestsServed()},
                };
            });
    }
    stopping_.store(false, std::memory_order_release);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::stop()
{
    stopping_.store(true, std::memory_order_release);
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (auto &loop : loops_) {
        loop->stop();
        servedFinal_.fetch_add(loop->requestsServed(),
                               std::memory_order_relaxed);
    }
    loops_.clear();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

bool
Server::drain(std::uint32_t deadline_ms)
{
    // Phase 1: no new connections. Joining the accept thread also
    // retires any lingering rejected sockets (sweepRejected(force)).
    stopping_.store(true, std::memory_order_release);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);  // Late connectors get a refusal, not a hang.
        listenFd_ = -1;
    }

    // Phase 2: let every loop flush what it owes.
    for (auto &loop : loops_)
        loop->beginDrain();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    bool drained = false;
    for (;;) {
        if (openConnections() == 0) {
            drained = true;
            break;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    // Phase 3: tear down (forces whatever the deadline cut off).
    stop();
    return drained;
}

std::uint64_t
Server::requestsServed() const
{
    std::uint64_t total = servedFinal_.load(std::memory_order_relaxed);
    for (const auto &loop : loops_)
        total += loop->requestsServed();
    return total;
}

std::size_t
Server::openConnections() const
{
    std::size_t total = 0;
    for (const auto &loop : loops_)
        total += loop->openConnections();
    return total;
}

NetStats
Server::netStats() const
{
    NetStats s;
    s.currConnections =
        counters_.currConnections.load(std::memory_order_relaxed);
    s.totalConnections =
        counters_.totalConnections.load(std::memory_order_relaxed);
    s.rejectedConnections =
        counters_.rejectedConnections.load(std::memory_order_relaxed);
    s.idleKicks = counters_.idleKicks.load(std::memory_order_relaxed);
    s.backpressureCloses =
        counters_.backpressureCloses.load(std::memory_order_relaxed);
    s.oomErrors = counters_.oomErrors.load(std::memory_order_relaxed);
    s.acceptFailures =
        counters_.acceptFailures.load(std::memory_order_relaxed);
    return s;
}

std::string
Server::statsLines() const
{
    const NetStats s = netStats();
    char buf[512];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "STAT io_backend %s\r\n"
        "STAT curr_connections %llu\r\n"
        "STAT total_connections %llu\r\n"
        "STAT rejected_connections %llu\r\n"
        "STAT idle_kicks %llu\r\n"
        "STAT backpressure_closes %llu\r\n"
        "STAT oom_errors %llu\r\n"
        "STAT accept_failures %llu\r\n",
        ioBackendName(effectiveBackend_),
        static_cast<unsigned long long>(s.currConnections),
        static_cast<unsigned long long>(s.totalConnections),
        static_cast<unsigned long long>(s.rejectedConnections),
        static_cast<unsigned long long>(s.idleKicks),
        static_cast<unsigned long long>(s.backpressureCloses),
        static_cast<unsigned long long>(s.oomErrors),
        static_cast<unsigned long long>(s.acceptFailures));
    return n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                 : std::string();
}

void
Server::rejectConn(int fd)
{
    // Best-effort single write: the socket buffer of a fresh
    // connection always has room for one short error line.
    [[maybe_unused]] ssize_t n =
        ::send(fd, kTooManyConns, sizeof(kTooManyConns) - 1,
               MSG_NOSIGNAL);
    // Half-close so the client reads the error then a clean FIN; a
    // straight close() while its request bytes sit unread would RST
    // and can destroy the error in the peer's receive buffer.
    ::shutdown(fd, SHUT_WR);
    rejected_.push_back(
        {fd, std::chrono::steady_clock::now() + kRejectLinger});
    counters_.rejectedConnections.fetch_add(1, std::memory_order_relaxed);
}

void
Server::sweepRejected(bool force)
{
    auto it = rejected_.begin();
    const auto now = std::chrono::steady_clock::now();
    while (it != rejected_.end()) {
        bool done = force || now >= it->deadline;
        if (!done) {
            // Drain and detect the peer's FIN without blocking.
            char scratch[1024];
            const ssize_t n =
                ::recv(it->fd, scratch, sizeof(scratch), MSG_DONTWAIT);
            done = n == 0 ||
                   (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                    errno != EINTR);
        }
        if (done) {
            ::close(it->fd);
            it = rejected_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 50);
        sweepRejected(false);
        if (pr <= 0) {
            if (pr < 0 && errno != EINTR)
                break;
            continue;
        }
        for (;;) {
            const int fd = sys::acceptConn(
                listenFd_, SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK ||
                    errno == EINTR)
                    break;
                // EMFILE/ENFILE and kin: count, shed, keep listening.
                counters_.acceptFailures.fetch_add(
                    1, std::memory_order_relaxed);
                break;
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            if (cfg_.maxConns != 0 &&
                counters_.currConnections.load(
                    std::memory_order_relaxed) >= cfg_.maxConns) {
                // Accept-pause: reject this client politely and stop
                // pulling from the backlog until the next poll tick.
                rejectConn(fd);
                break;
            }
            counters_.totalConnections.fetch_add(
                1, std::memory_order_relaxed);
            loops_[rr_ % loops_.size()]->adopt(fd);
            ++rr_;
        }
    }
    sweepRejected(true);
}

} // namespace tmemc::net
