/**
 * @file
 * Event-loop implementation (epoll, level-triggered).
 */

#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "common/logging.h"
#include "tm/api.h"

namespace tmemc::net
{

EventLoop::EventLoop(std::uint32_t worker_id, ExecFn exec)
    : worker_(worker_id), exec_(std::move(exec))
{
}

EventLoop::~EventLoop()
{
    stop();
}

bool
EventLoop::start()
{
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0)
        return false;
    wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakefd_ < 0) {
        ::close(epfd_);
        epfd_ = -1;
        return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakefd_;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
        ::close(wakefd_);
        ::close(epfd_);
        wakefd_ = epfd_ = -1;
        return false;
    }
    thread_ = std::thread([this] { run(); });
    return true;
}

void
EventLoop::stop()
{
    if (!thread_.joinable())
        return;
    stopping_.store(true, std::memory_order_release);
    wakeup();
    thread_.join();
    conns_.clear();
    open_.store(0, std::memory_order_relaxed);
    {
        // Sockets handed over but never adopted still need closing.
        std::lock_guard<std::mutex> guard(pendingMu_);
        for (int fd : pending_)
            ::close(fd);
        pending_.clear();
    }
    if (wakefd_ >= 0)
        ::close(wakefd_);
    if (epfd_ >= 0)
        ::close(epfd_);
    wakefd_ = epfd_ = -1;
}

void
EventLoop::adopt(int fd)
{
    {
        std::lock_guard<std::mutex> guard(pendingMu_);
        pending_.push_back(fd);
    }
    wakeup();
}

void
EventLoop::wakeup()
{
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore EAGAIN.
    [[maybe_unused]] ssize_t n = ::write(wakefd_, &one, sizeof(one));
}

void
EventLoop::adoptPending()
{
    std::vector<int> batch;
    {
        std::lock_guard<std::mutex> guard(pendingMu_);
        batch.swap(pending_);
    }
    for (int fd : batch) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conns_.emplace(fd,
                       std::make_unique<Conn>(fd, nextConnId_++));
        open_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
EventLoop::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    served_.fetch_add(it->second->requestsServed(),
                      std::memory_order_relaxed);
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    conns_.erase(it);  // Conn destructor closes the fd.
    open_.fetch_sub(1, std::memory_order_relaxed);
}

void
EventLoop::updateInterest(Conn &c)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (c.wantsWrite() ? EPOLLOUT : 0u);
    ev.data.fd = c.fd();
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, c.fd(), &ev);
}

void
EventLoop::run()
{
    // Register with the TM runtime before any traffic, so the
    // thread's descriptor exists for the whole serving lifetime
    // rather than materializing inside the first transaction.
    tm::myDesc();

    epoll_event events[64];
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(
            epfd_, events, static_cast<int>(std::size(events)), 100);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        adoptPending();
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wakefd_) {
                std::uint64_t drain;
                [[maybe_unused]] ssize_t r =
                    ::read(wakefd_, &drain, sizeof(drain));
                adoptPending();
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            Conn &c = *it->second;
            bool alive = true;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                // Let a readable-but-hung-up socket drain its final
                // bytes; a pure error closes immediately.
                alive = (events[i].events & EPOLLIN) != 0;
            }
            if (alive && (events[i].events & EPOLLIN))
                alive = c.onReadable(worker_, exec_);
            if (alive && (events[i].events & EPOLLOUT))
                alive = c.onWritable();
            if (!alive) {
                closeConn(fd);
                continue;
            }
            updateInterest(c);
        }
    }
    // Drain on exit so lingering clients see clean closes.
    for (auto &kv : conns_)
        served_.fetch_add(kv.second->requestsServed(),
                          std::memory_order_relaxed);
    conns_.clear();
}

} // namespace tmemc::net
