/**
 * @file
 * Event-loop implementation (epoll, level-triggered).
 */

#include "net/event_loop.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "common/logging.h"
#include "net/sys.h"
#include "tm/api.h"

namespace tmemc::net
{

EventLoop::EventLoop(std::uint32_t worker_id, ExecFn exec, ConnLimits limits,
                     std::uint32_t idle_timeout_ms, NetCounters &counters)
    : worker_(worker_id), exec_(std::move(exec)), limits_(limits),
      idleTimeoutMs_(idle_timeout_ms), counters_(counters)
{
}

EventLoop::~EventLoop()
{
    stop();
}

bool
EventLoop::start()
{
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0)
        return false;
    wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakefd_ < 0) {
        ::close(epfd_);
        epfd_ = -1;
        return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakefd_;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
        ::close(wakefd_);
        ::close(epfd_);
        wakefd_ = epfd_ = -1;
        return false;
    }
    thread_ = std::thread([this] { run(); });
    return true;
}

void
EventLoop::stop()
{
    if (!thread_.joinable())
        return;
    stopping_.store(true, std::memory_order_release);
    wakeup();
    thread_.join();
    conns_.clear();
    open_.store(0, std::memory_order_relaxed);
    {
        // Sockets handed over but never adopted still need closing.
        std::lock_guard<std::mutex> guard(pendingMu_);
        for (int fd : pending_)
            ::close(fd);
        pending_.clear();
    }
    if (wakefd_ >= 0)
        ::close(wakefd_);
    if (epfd_ >= 0)
        ::close(epfd_);
    wakefd_ = epfd_ = -1;
}

void
EventLoop::adopt(int fd)
{
    {
        std::lock_guard<std::mutex> guard(pendingMu_);
        pending_.push_back(fd);
    }
    wakeup();
}

void
EventLoop::beginDrain()
{
    draining_.store(true, std::memory_order_release);
    wakeup();
}

void
EventLoop::wakeup()
{
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore EAGAIN.
    [[maybe_unused]] ssize_t n = ::write(wakefd_, &one, sizeof(one));
}

void
EventLoop::adoptPending()
{
    std::vector<int> batch;
    {
        std::lock_guard<std::mutex> guard(pendingMu_);
        batch.swap(pending_);
    }
    for (int fd : batch) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        conns_.emplace(
            fd, std::make_unique<Conn>(fd, nextConnId_++, limits_));
        open_.fetch_add(1, std::memory_order_relaxed);
        counters_.currConnections.fetch_add(1, std::memory_order_relaxed);
    }
}

void
EventLoop::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    served_.fetch_add(it->second->requestsServed(),
                      std::memory_order_relaxed);
    if (it->second->closeReason() == CloseReason::Backpressure)
        counters_.backpressureCloses.fetch_add(1,
                                               std::memory_order_relaxed);
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    conns_.erase(it);  // Conn destructor closes the fd.
    open_.fetch_sub(1, std::memory_order_relaxed);
    counters_.currConnections.fetch_sub(1, std::memory_order_relaxed);
}

void
EventLoop::reapIdle()
{
    if (idleTimeoutMs_ == 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    const auto deadline = std::chrono::milliseconds(idleTimeoutMs_);
    std::vector<int> expired;
    for (const auto &kv : conns_)
        if (now - kv.second->lastActivity() >= deadline)
            expired.push_back(kv.first);
    for (int fd : expired) {
        closeConn(fd);
        counters_.idleKicks.fetch_add(1, std::memory_order_relaxed);
    }
}

void
EventLoop::retireDrained()
{
    std::vector<int> done;
    for (const auto &kv : conns_)
        if (!kv.second->wantsWrite())
            done.push_back(kv.first);
    for (int fd : done)
        closeConn(fd);
}

void
EventLoop::updateInterest(Conn &c)
{
    epoll_event ev{};
    ev.events = (c.wantsRead() ? EPOLLIN : 0u) |
                (c.wantsWrite() ? EPOLLOUT : 0u);
    ev.data.fd = c.fd();
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, c.fd(), &ev);
}

void
EventLoop::run()
{
    // Register with the TM runtime before any traffic, so the
    // thread's descriptor exists for the whole serving lifetime
    // rather than materializing inside the first transaction.
    tm::myDesc();

    // The epoll timeout doubles as the idle-reaper tick: short enough
    // that a connection overstays its deadline by at most ~25%.
    int timeout_ms = 100;
    if (idleTimeoutMs_ > 0)
        timeout_ms = std::clamp(static_cast<int>(idleTimeoutMs_ / 4), 1,
                                timeout_ms);

    epoll_event events[64];
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = sys::epollWait(
            epfd_, events, static_cast<int>(std::size(events)), timeout_ms);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        adoptPending();
        const bool draining = draining_.load(std::memory_order_acquire);
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == wakefd_) {
                std::uint64_t drain;
                [[maybe_unused]] ssize_t r =
                    ::read(wakefd_, &drain, sizeof(drain));
                adoptPending();
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            Conn &c = *it->second;
            bool alive = true;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                // Let a readable-but-hung-up socket drain its final
                // bytes; a pure error closes immediately.
                alive = (events[i].events & EPOLLIN) != 0;
            }
            if (draining) {
                // No new requests; just push queued replies out.
                if (alive && (events[i].events & EPOLLOUT))
                    alive = c.flushOnly();
            } else {
                if (alive && (events[i].events & EPOLLIN))
                    alive = c.onReadable(worker_, exec_);
                if (alive && (events[i].events & EPOLLOUT))
                    alive = c.onWritable(worker_, exec_);
            }
            if (!alive) {
                closeConn(fd);
                continue;
            }
            updateInterest(c);
        }
        if (draining) {
            retireDrained();
            if (conns_.empty()) {
                std::lock_guard<std::mutex> guard(pendingMu_);
                if (pending_.empty())
                    break;  // Nothing owed; let stop() join us.
            }
        } else {
            reapIdle();
        }
    }
    // Drain on exit so lingering clients see clean closes.
    for (auto &kv : conns_)
        served_.fetch_add(kv.second->requestsServed(),
                          std::memory_order_relaxed);
    counters_.currConnections.fetch_sub(conns_.size(),
                                        std::memory_order_relaxed);
    conns_.clear();
    open_.store(0, std::memory_order_relaxed);
}

} // namespace tmemc::net
