/**
 * @file
 * Event-loop implementation over the pluggable readiness backends
 * (level-triggered contract; see io_backend.h).
 */

#include "net/event_loop.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sys/eventfd.h>
#include <unistd.h>

#include "common/logging.h"
#include "net/sys.h"
#include "tm/api.h"

namespace tmemc::net
{

EventLoop::EventLoop(std::uint32_t worker_id, ExecFn exec, ConnLimits limits,
                     std::uint32_t idle_timeout_ms, NetCounters &counters,
                     IoBackend backend)
    : worker_(worker_id), exec_(std::move(exec)), limits_(limits),
      idleTimeoutMs_(idle_timeout_ms), counters_(counters),
      requested_(backend)
{
}

EventLoop::~EventLoop()
{
    stop();
}

bool
EventLoop::start()
{
    poller_ = makePoller(requested_, effective_);
    if (poller_ == nullptr)
        return false;
    wakefd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wakefd_ < 0) {
        poller_.reset();
        return false;
    }
    if (!poller_->add(wakefd_, true, false)) {
        ::close(wakefd_);
        wakefd_ = -1;
        poller_.reset();
        return false;
    }
    thread_ = std::thread([this] { run(); });
    return true;
}

void
EventLoop::stop()
{
    if (!thread_.joinable())
        return;
    stopping_.store(true, std::memory_order_release);
    wakeup();
    thread_.join();
    conns_.clear();
    open_.store(0, std::memory_order_relaxed);
    {
        // Sockets handed over but never adopted still need closing.
        std::lock_guard<std::mutex> guard(pendingMu_);
        for (int fd : pending_)
            ::close(fd);
        pending_.clear();
    }
    if (wakefd_ >= 0)
        ::close(wakefd_);
    wakefd_ = -1;
    poller_.reset();
}

void
EventLoop::adopt(int fd)
{
    {
        std::lock_guard<std::mutex> guard(pendingMu_);
        pending_.push_back(fd);
    }
    wakeup();
}

void
EventLoop::beginDrain()
{
    draining_.store(true, std::memory_order_release);
    wakeup();
}

void
EventLoop::wakeup()
{
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; ignore EAGAIN.
    [[maybe_unused]] ssize_t n = ::write(wakefd_, &one, sizeof(one));
}

void
EventLoop::adoptPending()
{
    // Connections on the zero-copy backends (anything but the seed
    // epoll) queue pinned reply segments and flush them with writev.
    const bool gather = effective_ != IoBackend::Epoll;
    std::vector<int> batch;
    {
        std::lock_guard<std::mutex> guard(pendingMu_);
        batch.swap(pending_);
    }
    for (int fd : batch) {
        if (!poller_->add(fd, true, false)) {
            ::close(fd);
            continue;
        }
        conns_.emplace(fd, std::make_unique<Conn>(fd, nextConnId_++,
                                                  limits_, gather));
        open_.fetch_add(1, std::memory_order_relaxed);
        counters_.currConnections.fetch_add(1, std::memory_order_relaxed);
    }
}

void
EventLoop::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    served_.fetch_add(it->second->requestsServed(),
                      std::memory_order_relaxed);
    if (it->second->closeReason() == CloseReason::Backpressure)
        counters_.backpressureCloses.fetch_add(1,
                                               std::memory_order_relaxed);
    poller_->remove(fd);
    conns_.erase(it);  // Conn destructor closes the fd.
    open_.fetch_sub(1, std::memory_order_relaxed);
    counters_.currConnections.fetch_sub(1, std::memory_order_relaxed);
}

void
EventLoop::reapIdle()
{
    if (idleTimeoutMs_ == 0)
        return;
    const auto now = std::chrono::steady_clock::now();
    const auto deadline = std::chrono::milliseconds(idleTimeoutMs_);
    std::vector<int> expired;
    for (const auto &kv : conns_)
        if (now - kv.second->lastActivity() >= deadline)
            expired.push_back(kv.first);
    for (int fd : expired) {
        closeConn(fd);
        counters_.idleKicks.fetch_add(1, std::memory_order_relaxed);
    }
}

void
EventLoop::retireDrained()
{
    std::vector<int> done;
    for (const auto &kv : conns_)
        if (!kv.second->wantsWrite())
            done.push_back(kv.first);
    for (int fd : done)
        closeConn(fd);
}

void
EventLoop::updateInterest(Conn &c)
{
    poller_->update(c.fd(), c.wantsRead(), c.wantsWrite());
    // A flush that ran out of kernel buffer (or hit a transient
    // EAGAIN) leaves queued bytes behind; make sure the next wait()
    // reports the fd again even on pollers whose delivered events are
    // consumed-on-report (io_uring multishot).
    if (c.wantsWrite())
        poller_->rearm(c.fd());
}

void
EventLoop::run()
{
    // Register with the TM runtime before any traffic, so the
    // thread's descriptor exists for the whole serving lifetime
    // rather than materializing inside the first transaction.
    tm::myDesc();

    // The wait timeout doubles as the idle-reaper tick: short enough
    // that a connection overstays its deadline by at most ~25%.
    int timeout_ms = 100;
    if (idleTimeoutMs_ > 0)
        timeout_ms = std::clamp(static_cast<int>(idleTimeoutMs_ / 4), 1,
                                timeout_ms);

    PollEvent events[64];
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = poller_->wait(
            events, static_cast<int>(std::size(events)), timeout_ms);
        if (n < 0)
            break;
        adoptPending();
        const bool draining = draining_.load(std::memory_order_acquire);
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].fd;
            if (fd == wakefd_) {
                std::uint64_t drain;
                [[maybe_unused]] ssize_t r =
                    ::read(wakefd_, &drain, sizeof(drain));
                adoptPending();
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            Conn &c = *it->second;
            bool alive = true;
            if (events[i].hangup || events[i].error) {
                // Let a readable-but-hung-up socket drain its final
                // bytes; a pure error closes immediately.
                alive = events[i].readable;
            }
            if (draining) {
                // No new requests; just push queued replies out.
                if (alive && events[i].writable)
                    alive = c.flushOnly();
            } else {
                if (alive && events[i].readable)
                    alive = c.onReadable(worker_, exec_);
                if (alive && events[i].writable)
                    alive = c.onWritable(worker_, exec_);
            }
            if (!alive) {
                closeConn(fd);
                continue;
            }
            updateInterest(c);
        }
        if (draining) {
            retireDrained();
            if (conns_.empty()) {
                std::lock_guard<std::mutex> guard(pendingMu_);
                if (pending_.empty())
                    break;  // Nothing owed; let stop() join us.
            }
        } else {
            reapIdle();
        }
    }
    // Drain on exit so lingering clients see clean closes.
    for (auto &kv : conns_)
        served_.fetch_add(kv.second->requestsServed(),
                          std::memory_order_relaxed);
    counters_.currConnections.fetch_sub(conns_.size(),
                                        std::memory_order_relaxed);
    conns_.clear();
    open_.store(0, std::memory_order_relaxed);
}

} // namespace tmemc::net
