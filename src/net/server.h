/**
 * @file
 * The TCP front end: a listening socket, an accept thread, and N
 * worker event loops serving the memcached protocols over any cache
 * branch.
 *
 * Layout mirrors memcached: the dispatcher (here: the accept thread)
 * accepts connections and assigns them round-robin to worker threads;
 * each worker runs an event loop and executes requests against the
 * shared cache under its own worker tid. Both protocols are served on
 * the same port, distinguished per frame by the binary magic byte.
 *
 * Overload resilience (all knobs in ServerCfg):
 *  - maxConns: past the limit the listener still accepts, writes
 *    "SERVER_ERROR too many connections\r\n", half-closes, and parks
 *    the socket on a short linger list so the client reads the error
 *    instead of an RST (memcached's conn-limit behaviour), then
 *    pauses the accept burst;
 *  - idleTimeoutMs / ConnLimits: enforced by the event loops;
 *  - drain(): graceful shutdown — stop accepting, flush every queued
 *    reply, bounded by a deadline.
 * Every shed path increments a NetCounters field; the counters are
 * served as server-level STAT lines spliced into ASCII `stats`
 * replies and snapshotted via netStats(). While the server runs they
 * are also registered with obs::MetricsRegistry under the "net_"
 * prefix, and the ASCII admin command `metrics` returns the whole
 * registry snapshot as one JSON line followed by END.
 *
 * The server borrows the cache — benchmarks build a cache for a
 * specific branch (makeCache) and inspect its statistics after the
 * run. The cache must have been built for at least `workers` worker
 * threads, because loop i issues cache calls with tid i.
 */

#ifndef TMEMC_NET_SERVER_H
#define TMEMC_NET_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mc/cache_iface.h"
#include "net/event_loop.h"

namespace tmemc::net
{

/** Server knobs. */
struct ServerCfg
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  //!< 0 = ephemeral; read back via port().
    std::uint32_t workers = 4;
    int backlog = 1024;
    /** Open-connection ceiling; 0 = unlimited. Beyond it new clients
     *  get a polite SERVER_ERROR and a lingering close. */
    std::uint32_t maxConns = 0;
    /** Reap connections idle this long; 0 = never. */
    std::uint32_t idleTimeoutMs = 0;
    /** Per-connection byte budgets (defaults in ConnLimits). */
    ConnLimits limits{};
    /**
     * I/O backend (see io_backend.h). Epoll is the seed copy path;
     * Writev/IoUring serve ASCII GET hits zero-copy (value bytes
     * pinned in the slab, shipped by gather write). IoUring falls
     * back to Writev at start() when the kernel refuses;
     * ioBackend() reports the effective choice.
     */
    IoBackend ioBackend = IoBackend::Epoll;
};

/** Plain snapshot of the resilience counters (see NetCounters). */
struct NetStats
{
    std::uint64_t currConnections = 0;
    std::uint64_t totalConnections = 0;
    std::uint64_t rejectedConnections = 0;
    std::uint64_t idleKicks = 0;
    std::uint64_t backpressureCloses = 0;
    std::uint64_t oomErrors = 0;
    std::uint64_t acceptFailures = 0;
};

/** Multi-threaded epoll TCP server over one cache instance. */
class Server
{
  public:
    Server(mc::CacheIface &cache, ServerCfg cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, spawn the worker loops and the accept thread.
     * @return false (with the socket layer cleaned up) on any setup
     *         failure, e.g. the port being taken.
     */
    bool start();

    /** Stop accepting, close every connection, join all threads. */
    void stop();

    /**
     * Graceful shutdown: stop accepting, let every loop flush its
     * queued replies and retire connections as they empty, then tear
     * down. Blocks for at most @p deadline_ms before forcing the
     * remaining connections closed.
     * @return true if every connection drained before the deadline.
     */
    bool drain(std::uint32_t deadline_ms);

    /** Bound port (useful with cfg.port == 0). */
    std::uint16_t port() const { return port_; }

    /** Effective I/O backend (post io_uring fallback); valid after
     *  start(). Also served as `STAT io_backend <name>`. */
    IoBackend ioBackend() const { return effectiveBackend_; }

    /** Connections accepted since start(). */
    std::uint64_t accepted() const
    {
        return counters_.totalConnections.load(std::memory_order_relaxed);
    }

    /** Requests executed across all loops (closed + live conns). */
    std::uint64_t requestsServed() const;

    /** Open connections across all loops. */
    std::size_t openConnections() const;

    /** Snapshot of the resilience counters. */
    NetStats netStats() const;

  private:
    void acceptLoop();
    /** Accept-then-reject one over-limit client (lingering close). */
    void rejectConn(int fd);
    /** Retire parked rejects whose peer closed or deadline passed. */
    void sweepRejected(bool force);
    /** Server-level STAT lines for the ASCII `stats` reply. */
    std::string statsLines() const;

    mc::CacheIface &cache_;
    ServerCfg cfg_;
    IoBackend effectiveBackend_ = IoBackend::Epoll;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    // atom-protocol: release-acquire-pair
    std::atomic<bool> stopping_{false};
    NetCounters counters_;
    /** Metrics-registry token for the "net" counter source; 0 when
     *  not registered. Registered in start(), dropped only in the
     *  destructor so post-drain metrics dumps keep the net totals. */
    std::uint64_t metricsToken_ = 0;
    /** Requests served by loops already torn down in stop(). */
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> servedFinal_{0};
    std::vector<std::unique_ptr<EventLoop>> loops_;
    std::uint64_t rr_ = 0;  //!< Round-robin cursor (accept thread only).

    /** Rejected socket lingering until peer EOF or deadline. */
    struct Rejected
    {
        int fd;
        std::chrono::steady_clock::time_point deadline;
    };
    std::vector<Rejected> rejected_;  //!< Accept thread only.
};

} // namespace tmemc::net

#endif // TMEMC_NET_SERVER_H
