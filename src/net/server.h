/**
 * @file
 * The TCP front end: a listening socket, an accept thread, and N
 * worker event loops serving the memcached protocols over any cache
 * branch.
 *
 * Layout mirrors memcached: the dispatcher (here: the accept thread)
 * accepts connections and assigns them round-robin to worker threads;
 * each worker runs an event loop and executes requests against the
 * shared cache under its own worker tid. Both protocols are served on
 * the same port, distinguished per frame by the binary magic byte.
 *
 * The server borrows the cache — benchmarks build a cache for a
 * specific branch (makeCache) and inspect its statistics after the
 * run. The cache must have been built for at least `workers` worker
 * threads, because loop i issues cache calls with tid i.
 */

#ifndef TMEMC_NET_SERVER_H
#define TMEMC_NET_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mc/cache_iface.h"
#include "net/event_loop.h"

namespace tmemc::net
{

/** Server knobs. */
struct ServerCfg
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  //!< 0 = ephemeral; read back via port().
    std::uint32_t workers = 4;
    int backlog = 1024;
};

/** Multi-threaded epoll TCP server over one cache instance. */
class Server
{
  public:
    Server(mc::CacheIface &cache, ServerCfg cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, spawn the worker loops and the accept thread.
     * @return false (with the socket layer cleaned up) on any setup
     *         failure, e.g. the port being taken.
     */
    bool start();

    /** Stop accepting, close every connection, join all threads. */
    void stop();

    /** Bound port (useful with cfg.port == 0). */
    std::uint16_t port() const { return port_; }

    /** Connections accepted since start(). */
    std::uint64_t accepted() const
    {
        return accepted_.load(std::memory_order_relaxed);
    }

    /** Requests executed across all loops (closed + live conns). */
    std::uint64_t requestsServed() const;

    /** Open connections across all loops. */
    std::size_t openConnections() const;

  private:
    void acceptLoop();

    mc::CacheIface &cache_;
    ServerCfg cfg_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> accepted_{0};
    /** Requests served by loops already torn down in stop(). */
    std::atomic<std::uint64_t> servedFinal_{0};
    std::vector<std::unique_ptr<EventLoop>> loops_;
    std::uint64_t rr_ = 0;  //!< Round-robin cursor (accept thread only).
};

} // namespace tmemc::net

#endif // TMEMC_NET_SERVER_H
