/**
 * @file
 * Readiness-backend implementations.
 *
 * EpollPoller is the seed event machinery extracted behind the Poller
 * interface (its epoll_wait still runs through the net.epoll_wait
 * fault site). UringPoller drives the same level-style contract with
 * IORING_OP_POLL_ADD — multishot when the kernel accepts it, one-shot
 * with immediate re-arm otherwise — using raw syscalls and mmapped
 * rings so no external liburing is needed. Blocking happens by
 * poll(2)-ing the ring fd itself (readable exactly when completions
 * are pending), which gives the same timeout semantics as epoll_wait
 * without queueing timeout SQEs.
 */

#include "net/io_backend.h"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/epoll.h>
#include <unistd.h>
#include <unordered_map>

#include "common/logging.h"
#include "net/sys.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define TMEMC_HAS_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#else
#define TMEMC_HAS_IO_URING 0
#endif

namespace tmemc::net
{

const char *
ioBackendName(IoBackend b)
{
    switch (b) {
      case IoBackend::Epoll:
        return "epoll";
      case IoBackend::Writev:
        return "writev";
      case IoBackend::IoUring:
        return "io_uring";
    }
    return "?";
}

bool
parseIoBackend(const std::string &s, IoBackend &out)
{
    if (s == "epoll") {
        out = IoBackend::Epoll;
        return true;
    }
    if (s == "writev") {
        out = IoBackend::Writev;
        return true;
    }
    if (s == "io_uring" || s == "uring" || s == "io-uring") {
        out = IoBackend::IoUring;
        return true;
    }
    return false;
}

namespace
{

// ----------------------------------------------------------------------
// Epoll backend (the seed machinery, behind the interface)
// ----------------------------------------------------------------------

class EpollPoller final : public Poller
{
  public:
    static std::unique_ptr<EpollPoller>
    create()
    {
        const int fd = ::epoll_create1(EPOLL_CLOEXEC);
        if (fd < 0)
            return nullptr;
        return std::unique_ptr<EpollPoller>(new EpollPoller(fd));
    }

    ~EpollPoller() override { ::close(epfd_); }

    const char *name() const override { return "epoll"; }

    bool
    add(int fd, bool want_read, bool want_write) override
    {
        epoll_event ev{};
        ev.events = mask(want_read, want_write);
        ev.data.fd = fd;
        return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
    }

    void
    update(int fd, bool want_read, bool want_write) override
    {
        epoll_event ev{};
        ev.events = mask(want_read, want_write);
        ev.data.fd = fd;
        ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
    }

    void
    remove(int fd) override
    {
        ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }

    int
    wait(PollEvent *out, int cap, int timeout_ms) override
    {
        epoll_event events[64];
        const int want = cap < 64 ? cap : 64;
        const int n = sys::epollWait(epfd_, events, want, timeout_ms);
        if (n < 0)
            return errno == EINTR ? 0 : -1;
        for (int i = 0; i < n; ++i) {
            out[i].fd = events[i].data.fd;
            out[i].readable = (events[i].events & EPOLLIN) != 0;
            out[i].writable = (events[i].events & EPOLLOUT) != 0;
            out[i].hangup = (events[i].events & EPOLLHUP) != 0;
            out[i].error = (events[i].events & EPOLLERR) != 0;
        }
        return n;
    }

  private:
    explicit EpollPoller(int fd) : epfd_(fd) {}

    static std::uint32_t
    mask(bool r, bool w)
    {
        return (r ? EPOLLIN : 0u) | (w ? EPOLLOUT : 0u);
    }

    int epfd_;
};

// ----------------------------------------------------------------------
// io_uring backend (raw syscalls; no liburing dependency)
// ----------------------------------------------------------------------

#if TMEMC_HAS_IO_URING

#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif
// Older uapi headers predate multishot poll; the wire values are ABI.
#ifndef IORING_POLL_ADD_MULTI
#define IORING_POLL_ADD_MULTI (1U << 0)
#endif
#ifndef IORING_CQE_F_MORE
#define IORING_CQE_F_MORE (1U << 1)
#endif

int
uringSetup(unsigned entries, io_uring_params *p)
{
    return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int
uringEnter(int fd, unsigned to_submit, unsigned min_complete,
           unsigned flags)
{
    return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                      min_complete, flags, nullptr, 0));
}

class UringPoller final : public Poller
{
  public:
    static std::unique_ptr<UringPoller>
    create()
    {
        auto p = std::unique_ptr<UringPoller>(new UringPoller());
        if (!p->init())
            return nullptr;
        return p;
    }

    ~UringPoller() override
    {
        if (sqes_ != MAP_FAILED)
            ::munmap(sqes_, sqesSize_);
        if (cqRing_ != MAP_FAILED && cqRing_ != sqRing_)
            ::munmap(cqRing_, cqRingSize_);
        if (sqRing_ != MAP_FAILED)
            ::munmap(sqRing_, sqRingSize_);
        if (ringFd_ >= 0)
            ::close(ringFd_);
    }

    const char *name() const override { return "io_uring"; }

    bool
    add(int fd, bool want_read, bool want_write) override
    {
        FdState &st = fds_[fd];
        st.mask = pollMask(want_read, want_write);
        st.gen = nextGen();
        st.armed = false;
        if (!armPoll(fd, st)) {
            fds_.erase(fd);
            return false;
        }
        return flushSubmit();
    }

    void
    update(int fd, bool want_read, bool want_write) override
    {
        auto it = fds_.find(fd);
        if (it == fds_.end())
            return;
        FdState &st = it->second;
        const std::uint16_t want = pollMask(want_read, want_write);
        if (st.mask == want && st.armed)
            return;  // Interest unchanged and the poll is live.
        if (st.armed)
            cancelPoll(fd, st.gen);
        st.mask = want;
        st.gen = nextGen();
        st.armed = false;
        armPoll(fd, st);
        flushSubmit();
    }

    void
    rearm(int fd) override
    {
        // The caller still has un-consumed work (pending flush) and
        // needs the next wait() to report this fd if it is ready
        // right now. A multishot poll that already delivered won't
        // post again without a socket wakeup, so supersede it with a
        // fresh POLL_ADD: the kernel completes it immediately when
        // the fd is currently ready, and parks it otherwise — either
        // way the level-triggered contract holds.
        auto it = fds_.find(fd);
        if (it == fds_.end())
            return;
        FdState &st = it->second;
        if (st.armed)
            cancelPoll(fd, st.gen);
        st.gen = nextGen();
        st.armed = false;
        armPoll(fd, st);
        flushSubmit();
    }

    void
    remove(int fd) override
    {
        auto it = fds_.find(fd);
        if (it == fds_.end())
            return;
        if (it->second.armed)
            cancelPoll(fd, it->second.gen);
        fds_.erase(it);
        flushSubmit();
    }

    int
    wait(PollEvent *out, int cap, int timeout_ms) override
    {
        const int n = reap(out, cap);
        if (n != 0)
            return n;
        // Completions pending? The ring fd polls readable exactly
        // then, so an ordinary poll(2) supplies the timeout.
        pollfd pfd{ringFd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, timeout_ms);
        if (pr < 0)
            return errno == EINTR ? 0 : -1;
        if (pr == 0)
            return 0;
        return reap(out, cap);
    }

  private:
    struct FdState
    {
        std::uint16_t mask = 0;
        std::uint32_t gen = 0;  //!< 24-bit; stamps user_data.
        bool armed = false;     //!< A POLL_ADD for gen is in flight.
    };

    static constexpr std::uint64_t kTagPoll = 1;
    static constexpr std::uint64_t kTagCancel = 2;

    UringPoller() = default;

    static std::uint16_t
    pollMask(bool r, bool w)
    {
        return static_cast<std::uint16_t>((r ? POLLIN : 0) |
                                          (w ? POLLOUT : 0));
    }

    static std::uint64_t
    packUserData(std::uint64_t tag, std::uint32_t gen, int fd)
    {
        return (tag << 56) |
               (static_cast<std::uint64_t>(gen & 0xffffffu) << 32) |
               static_cast<std::uint32_t>(fd);
    }

    std::uint32_t nextGen() { return ++genCounter_ & 0xffffffu; }

    bool
    init()
    {
        io_uring_params p{};
        ringFd_ = uringSetup(256, &p);
        if (ringFd_ < 0)
            return false;
        sqRingSize_ = p.sq_off.array + p.sq_entries * sizeof(__u32);
        cqRingSize_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
        bool single_mmap = false;
#ifdef IORING_FEAT_SINGLE_MMAP
        single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
        if (single_mmap && cqRingSize_ > sqRingSize_)
            sqRingSize_ = cqRingSize_;
#endif
        sqRing_ = ::mmap(nullptr, sqRingSize_, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_POPULATE, ringFd_,
                         IORING_OFF_SQ_RING);
        if (sqRing_ == MAP_FAILED)
            return false;
        cqRing_ = single_mmap
                      ? sqRing_
                      : ::mmap(nullptr, cqRingSize_,
                               PROT_READ | PROT_WRITE,
                               MAP_SHARED | MAP_POPULATE, ringFd_,
                               IORING_OFF_CQ_RING);
        if (cqRing_ == MAP_FAILED)
            return false;
        sqesSize_ = p.sq_entries * sizeof(io_uring_sqe);
        sqes_ = ::mmap(nullptr, sqesSize_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ringFd_,
                       IORING_OFF_SQES);
        if (sqes_ == MAP_FAILED)
            return false;

        auto sqPtr = [&](std::size_t off) {
            return static_cast<char *>(sqRing_) + off;
        };
        auto cqPtr = [&](std::size_t off) {
            return static_cast<char *>(cqRing_) + off;
        };
        sqKhead_ = reinterpret_cast<unsigned *>(sqPtr(p.sq_off.head));
        sqKtail_ = reinterpret_cast<unsigned *>(sqPtr(p.sq_off.tail));
        sqMask_ = *reinterpret_cast<unsigned *>(sqPtr(p.sq_off.ring_mask));
        sqArray_ = reinterpret_cast<unsigned *>(sqPtr(p.sq_off.array));
        sqEntries_ = p.sq_entries;
        cqKhead_ = reinterpret_cast<unsigned *>(cqPtr(p.cq_off.head));
        cqKtail_ = reinterpret_cast<unsigned *>(cqPtr(p.cq_off.tail));
        cqMask_ = *reinterpret_cast<unsigned *>(cqPtr(p.cq_off.ring_mask));
        cqes_ = reinterpret_cast<io_uring_cqe *>(cqPtr(p.cq_off.cqes));
        sqTail_ = *sqKtail_;
        return true;
    }

    io_uring_sqe *
    getSqe()
    {
        const unsigned head =
            __atomic_load_n(sqKhead_, __ATOMIC_ACQUIRE);
        if (sqTail_ - head >= sqEntries_) {
            // Ring full: push what we have so the kernel drains it.
            if (!flushSubmit())
                return nullptr;
        }
        io_uring_sqe *sqe = &static_cast<io_uring_sqe *>(sqes_)[sqTail_ &
                                                                sqMask_];
        std::memset(sqe, 0, sizeof(*sqe));
        sqArray_[sqTail_ & sqMask_] = sqTail_ & sqMask_;
        ++sqTail_;
        __atomic_store_n(sqKtail_, sqTail_, __ATOMIC_RELEASE);
        ++pendingSubmit_;
        return sqe;
    }

    bool
    flushSubmit()
    {
        for (int tries = 0; pendingSubmit_ > 0 && tries < 1000;
             ++tries) {
            const int r = uringEnter(ringFd_, pendingSubmit_, 0, 0);
            if (r < 0) {
                if (errno == EINTR || errno == EAGAIN || errno == EBUSY)
                    continue;
                return false;
            }
            pendingSubmit_ -= static_cast<unsigned>(r);
        }
        return pendingSubmit_ == 0;
    }

    bool
    armPoll(int fd, FdState &st)
    {
        if (st.mask == 0) {
            st.armed = false;
            return true;  // Nothing wanted; re-armed on next update.
        }
        io_uring_sqe *sqe = getSqe();
        if (sqe == nullptr)
            return false;
        sqe->opcode = IORING_OP_POLL_ADD;
        sqe->fd = fd;
        sqe->poll_events = st.mask;
        if (multishot_)
            sqe->len = IORING_POLL_ADD_MULTI;
        sqe->user_data = packUserData(kTagPoll, st.gen, fd);
        st.armed = true;
        return true;
    }

    void
    cancelPoll(int fd, std::uint32_t gen)
    {
        io_uring_sqe *sqe = getSqe();
        if (sqe == nullptr)
            return;
        sqe->opcode = IORING_OP_POLL_REMOVE;
        sqe->addr = packUserData(kTagPoll, gen, fd);
        sqe->user_data = packUserData(kTagCancel, gen, fd);
    }

    int
    reap(PollEvent *out, int cap)
    {
        int n = 0;
        unsigned head = *cqKhead_;
        const unsigned tail =
            __atomic_load_n(cqKtail_, __ATOMIC_ACQUIRE);
        while (head != tail && n < cap) {
            const io_uring_cqe &cqe = cqes_[head & cqMask_];
            const std::uint64_t tag = cqe.user_data >> 56;
            const int fd = static_cast<int>(
                static_cast<std::uint32_t>(cqe.user_data));
            const std::uint32_t gen =
                static_cast<std::uint32_t>(cqe.user_data >> 32) &
                0xffffffu;
            ++head;
            if (tag != kTagPoll)
                continue;  // Cancel acknowledgements.
            auto it = fds_.find(fd);
            if (it == fds_.end() || it->second.gen != gen)
                continue;  // Removed or superseded poll; stale cqe.
            FdState &st = it->second;
            if (cqe.res == -EINVAL && multishot_) {
                // Kernel predates IORING_POLL_ADD_MULTI: drop to
                // one-shot re-arm for every poll from here on.
                multishot_ = false;
                st.armed = false;
                armPoll(fd, st);
                continue;
            }
            if (cqe.res < 0) {
                st.armed = false;  // -ECANCELED and kin.
                continue;
            }
            const auto revents = static_cast<unsigned>(cqe.res);
            const bool more =
                multishot_ && (cqe.flags & IORING_CQE_F_MORE) != 0;
            if (!more) {
                // One-shot (or a terminated multishot): re-arm now so
                // the contract stays level-triggered.
                st.armed = false;
                armPoll(fd, st);
            }
            out[n].fd = fd;
            out[n].readable = (revents & POLLIN) != 0;
            out[n].writable = (revents & POLLOUT) != 0;
            out[n].hangup = (revents & POLLHUP) != 0;
            out[n].error = (revents & POLLERR) != 0;
            ++n;
        }
        __atomic_store_n(cqKhead_, head, __ATOMIC_RELEASE);
        flushSubmit();  // Push any re-arms queued above.
        return n;
    }

    int ringFd_ = -1;
    void *sqRing_ = MAP_FAILED;
    void *cqRing_ = MAP_FAILED;
    void *sqes_ = MAP_FAILED;
    std::size_t sqRingSize_ = 0;
    std::size_t cqRingSize_ = 0;
    std::size_t sqesSize_ = 0;
    unsigned *sqKhead_ = nullptr;
    unsigned *sqKtail_ = nullptr;
    unsigned *sqArray_ = nullptr;
    unsigned sqMask_ = 0;
    unsigned sqEntries_ = 0;
    unsigned sqTail_ = 0;
    unsigned *cqKhead_ = nullptr;
    unsigned *cqKtail_ = nullptr;
    unsigned cqMask_ = 0;
    io_uring_cqe *cqes_ = nullptr;
    unsigned pendingSubmit_ = 0;
    bool multishot_ = true;  //!< Until the kernel says -EINVAL.
    std::uint32_t genCounter_ = 0;
    std::unordered_map<int, FdState> fds_;
};

#endif // TMEMC_HAS_IO_URING

} // namespace

bool
ioUringSupported()
{
#if TMEMC_HAS_IO_URING
    io_uring_params p{};
    const int fd = uringSetup(4, &p);
    if (fd < 0)
        return false;
    ::close(fd);
    return true;
#else
    return false;
#endif
}

std::unique_ptr<Poller>
makePoller(IoBackend requested, IoBackend &effective)
{
    effective = requested;
    if (requested == IoBackend::IoUring) {
#if TMEMC_HAS_IO_URING
        auto uring = UringPoller::create();
        if (uring != nullptr)
            return uring;
        warn("io_uring unavailable (errno %d): falling back to the "
             "writev backend",
             errno);
#else
        warn("built without <linux/io_uring.h>: falling back to the "
             "writev backend");
#endif
        // Same zero-copy write path, epoll readiness.
        effective = IoBackend::Writev;
    }
    return EpollPoller::create();
}

} // namespace tmemc::net
