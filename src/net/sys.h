/**
 * @file
 * Injectable syscall wrappers for the network layer.
 *
 * Every socket syscall the server's data path issues goes through
 * these shims so that tests can create adverse schedules on demand:
 * an accept(2) that hits EMFILE, a write(2) that only takes one byte,
 * an epoll_wait(2) that spuriously times out. Each wrapper consults a
 * fault-injection site (common/fault.h) before touching the kernel:
 *
 *   net.accept       fail with policy errno (default EMFILE)
 *   net.read         fail with errno, or short-read via byteCap
 *   net.write        fail with errno, or short-write via byteCap
 *   net.sys.writev   fail with errno, or truncate the gather (byteCap)
 *   net.epoll_wait   fail with errno, or report zero events
 *   net.sys.connect  fail with errno (default ECONNREFUSED)
 *
 * Sites that model a slow peer honour the policy's delayUs payload
 * (fault::maybeDelay) before interpreting errno/byteCap, so one armed
 * policy expresses "stall 50ms then refuse" — the shape the cluster
 * client's deadline and ejection logic is tested against.
 *
 * When no site is armed (production), each wrapper is the raw syscall
 * behind one relaxed atomic load.
 *
 * Every wrapper is annotated TM_UNSAFE: a syscall is irrevocable, so
 * reaching one from an atomic transaction is a static error (tmlint
 * rule TM3) — the paper's GCC build rejected exactly these sites until
 * they were moved out of transactions or into relaxed ones.
 */

#ifndef TMEMC_NET_SYS_H
#define TMEMC_NET_SYS_H

#include <algorithm>
#include <cerrno>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "common/compiler.h"
#include "common/fault.h"

namespace tmemc::net::sys
{

TM_UNSAFE inline int
acceptConn(int listen_fd, int flags)
{
    if (fault::enabled()) {
        const fault::Action a = fault::consult("net.accept");
        if (a.fire) {
            errno = a.errnoValue != 0 ? a.errnoValue : EMFILE;
            return -1;
        }
    }
    return ::accept4(listen_fd, nullptr, nullptr, flags);
}

TM_UNSAFE inline int
connectFd(int fd, const struct sockaddr *addr, socklen_t len)
{
    if (fault::enabled()) {
        const fault::Action a = fault::consult("net.sys.connect");
        if (a.fire) {
            fault::maybeDelay(a);
            errno = a.errnoValue != 0 ? a.errnoValue : ECONNREFUSED;
            return -1;
        }
    }
    return ::connect(fd, addr, len);
}

TM_UNSAFE inline ssize_t
readFd(int fd, void *buf, std::size_t count)
{
    if (fault::enabled()) {
        const fault::Action a = fault::consult("net.read");
        if (a.fire) {
            fault::maybeDelay(a);
            if (a.errnoValue != 0) {
                errno = a.errnoValue;
                return -1;
            }
            if (a.byteCap != 0 && a.byteCap < count)
                count = a.byteCap;
        }
    }
    return ::read(fd, buf, count);
}

TM_UNSAFE inline ssize_t
writeFd(int fd, const void *buf, std::size_t count)
{
    if (fault::enabled()) {
        const fault::Action a = fault::consult("net.write");
        if (a.fire) {
            fault::maybeDelay(a);
            if (a.errnoValue != 0) {
                errno = a.errnoValue;
                return -1;
            }
            if (a.byteCap != 0 && a.byteCap < count)
                count = a.byteCap;
        }
    }
    return ::write(fd, buf, count);
}

/** Most iovecs one gather write submits (also the fault-trim bound). */
constexpr int kMaxWriteIov = 64;

TM_UNSAFE inline ssize_t
writevFd(int fd, const struct iovec *iov, int iovcnt)
{
    if (fault::enabled()) {
        const fault::Action a = fault::consult("net.sys.writev");
        if (a.fire) {
            fault::maybeDelay(a);
            if (a.errnoValue != 0) {
                errno = a.errnoValue;
                return -1;
            }
            if (a.byteCap != 0) {
                // Simulate a short gather write: trim the iov list to
                // byteCap total bytes, possibly splitting one entry.
                struct iovec trimmed[kMaxWriteIov];
                std::size_t budget = a.byteCap;
                int n = 0;
                for (; n < iovcnt && n < kMaxWriteIov && budget > 0;
                     ++n) {
                    trimmed[n] = iov[n];
                    if (trimmed[n].iov_len > budget)
                        trimmed[n].iov_len = budget;
                    budget -= trimmed[n].iov_len;
                }
                if (n == 0)
                    return 0;
                return ::writev(fd, trimmed, n);
            }
        }
    }
    return ::writev(fd, iov, iovcnt);
}

TM_UNSAFE inline int
epollWait(int epfd, epoll_event *events, int maxevents, int timeout_ms)
{
    if (fault::enabled()) {
        const fault::Action a = fault::consult("net.epoll_wait");
        if (a.fire) {
            if (a.errnoValue != 0) {
                errno = a.errnoValue;
                return -1;
            }
            return 0;  // Simulated timeout with no ready events.
        }
    }
    return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}

} // namespace tmemc::net::sys

#endif // TMEMC_NET_SYS_H
