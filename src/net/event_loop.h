/**
 * @file
 * One worker event loop: a readiness backend (epoll or io_uring, see
 * io_backend.h), an eventfd wakeup, and the set of connections
 * assigned to this worker.
 *
 * This is the libevent worker thread of memcached's threads.c. The
 * listener hands accepted sockets over through adopt() (the analogue
 * of the notify-pipe CQ_ITEM push); the loop thread registers them
 * with its epoll set and from then on owns them exclusively — no
 * other thread ever touches a Conn, so connection state needs no
 * locking.
 *
 * Overload duties (all enforced here, where the connections live):
 *  - idle reaping: the epoll_wait timeout doubles as the idle clock —
 *    each wakeup sweeps connections whose lastActivity() is older
 *    than the configured deadline (memcached's idle-timeout reaper);
 *  - backpressure: epoll interest follows Conn::wantsRead(), so a
 *    connection over its write-buffer soft cap stops being polled
 *    for input until the client drains it;
 *  - graceful drain: beginDrain() stops request intake, flushes
 *    every queued reply, and retires connections as they empty, so
 *    the loop thread exits on its own once nothing is owed.
 *
 * TM contract: the loop thread registers itself with the TM runtime
 * (tm::myDesc()) before serving traffic, and every transaction a
 * request needs begins and commits on this thread, inside the exec
 * callback. The loop's worker id doubles as the cache worker tid, so
 * a cache built for N workers pairs with exactly N event loops.
 */

#ifndef TMEMC_NET_EVENT_LOOP_H
#define TMEMC_NET_EVENT_LOOP_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/conn.h"
#include "net/io_backend.h"

namespace tmemc::net
{

/**
 * Server-wide resilience counters, shared by the accept thread and
 * every event loop; each maps to a STAT line in the ASCII `stats`
 * reply (see Server::statsText).
 */
struct NetCounters
{
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> currConnections{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> totalConnections{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> rejectedConnections{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> idleKicks{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> backpressureCloses{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> oomErrors{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> acceptFailures{0};
};

/** One epoll worker; owns every connection assigned to it. */
class EventLoop
{
  public:
    /**
     * @param worker_id  Cache/TM worker tid this loop serves as.
     * @param exec       Request executor (shared by all loops).
     * @param limits     Per-connection byte budgets.
     * @param idle_timeout_ms  Reap connections idle this long
     *                         (0: never).
     * @param counters   Server-wide resilience counters.
     * @param backend    Requested I/O backend; IoUring falls back to
     *                   Writev when the kernel refuses (backend()
     *                   reports what actually runs, after start()).
     */
    EventLoop(std::uint32_t worker_id, ExecFn exec, ConnLimits limits,
              std::uint32_t idle_timeout_ms, NetCounters &counters,
              IoBackend backend = IoBackend::Epoll);
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** Spawn the loop thread. @return false if epoll setup failed. */
    bool start();

    /** Ask the thread to exit, join it, and close all connections. */
    void stop();

    /**
     * Transfer ownership of an accepted (already nonblocking) socket
     * to this loop. Thread-safe; called from the listener.
     */
    void adopt(int fd);

    /**
     * Stop executing new requests, flush queued replies, and close
     * connections as they empty; the loop thread exits by itself once
     * none remain. Join via stop() (idempotent) after the deadline.
     */
    void beginDrain();

    std::uint32_t workerId() const { return worker_; }

    /** Effective backend (post-fallback); valid after start(). */
    IoBackend backend() const { return effective_; }

    /** Requests served across all connections ever owned here. */
    std::uint64_t requestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

    /** Currently open connections (for tests and stats). */
    std::size_t openConnections() const
    {
        return open_.load(std::memory_order_relaxed);
    }

  private:
    void run();
    void wakeup();
    void adoptPending();
    void closeConn(int fd);
    /** Close every idle-deadline-expired connection. */
    void reapIdle();
    /** Drain mode: retire connections whose replies are all out. */
    void retireDrained();
    /** Re-arm poll interest according to wantsRead()/wantsWrite(). */
    void updateInterest(Conn &c);

    std::uint32_t worker_;
    ExecFn exec_;
    ConnLimits limits_;
    std::uint32_t idleTimeoutMs_;
    NetCounters &counters_;
    IoBackend requested_;
    IoBackend effective_ = IoBackend::Epoll;
    std::unique_ptr<Poller> poller_;
    int wakefd_ = -1;
    std::thread thread_;
    // atom-protocol: release-acquire-pair
    std::atomic<bool> stopping_{false};
    // atom-protocol: release-acquire-pair
    std::atomic<bool> draining_{false};

    std::mutex pendingMu_;
    std::vector<int> pending_;

    std::unordered_map<int, std::unique_ptr<Conn>> conns_;
    std::uint64_t nextConnId_ = 1;
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> served_{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::size_t> open_{0};
};

} // namespace tmemc::net

#endif // TMEMC_NET_EVENT_LOOP_H
