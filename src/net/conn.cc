/**
 * @file
 * Connection state machine implementation.
 */

#include "net/conn.h"

#include <cerrno>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "mc/binary_protocol.h"
#include "net/sys.h"
#include "obs/hist.h"
#include "obs/metrics.h"

namespace tmemc::net
{

Conn::Conn(int fd, std::uint64_t id, const ConnLimits &limits,
           bool gather_writes)
    : fd_(fd), id_(id), limits_(limits), gather_(gather_writes),
      lastActivity_(std::chrono::steady_clock::now())
{
}

Conn::~Conn()
{
    // A connection dying with replies queued still finalizes its
    // traced requests: the flush span ends where the socket did.
    finishTailPending(true);
    // Segment destructors release any still-queued pins before the
    // socket goes; order does not matter, but the release must happen
    // on whatever thread destroys the Conn (loop thread normally,
    // EventLoop::stop()'s caller during teardown) — releasePinned
    // runs its own transaction and any registered thread may.
    outq_.clear();
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Conn::onReadable(std::uint32_t worker, const ExecFn &exec)
{
    char chunk[16 * 1024];
    lastActivity_ = std::chrono::steady_clock::now();
    if (draining_)
        return discardInput();

    bool saw_eof = false;
    for (;;) {
        const ssize_t n = sys::readFd(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            rbuf_.append(chunk, static_cast<std::size_t>(n));
            if (rbuf_.size() > limits_.rbufCap) {
                // Unframeable flood; drop the client.
                closeReason_ = CloseReason::Peer;
                return false;
            }
            continue;
        }
        if (n == 0) {
            saw_eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeReason_ = CloseReason::Peer;
        return false;  // ECONNRESET and friends.
    }

    if (!pump(worker, exec))
        return false;
    if (saw_eof) {
        // A client that half-closed after pipelining still gets its
        // replies if the kernel buffer takes them; anything the
        // nonblocking flush could not place is forfeit, as in
        // memcached's conn_closing.
        closeReason_ = CloseReason::Peer;
        return false;
    }
    if (closing_)
        return beginLingeringClose();
    return true;
}

bool
Conn::onWritable(std::uint32_t worker, const ExecFn &exec)
{
    lastActivity_ = std::chrono::steady_clock::now();
    if (!flush())
        return false;
    finishTailPending();
    if (draining_)
        return true;
    if (!pump(worker, exec))
        return false;
    if (closing_ && !wantsWrite())
        return beginLingeringClose();
    return true;
}

bool
Conn::pump(std::uint32_t worker, const ExecFn &exec)
{
    // Alternate execute-and-flush until a fixed point: drainFrames
    // pauses at the soft cap, but when flush() then empties the
    // backlog into the socket there will be no EPOLLOUT (nothing
    // pending) and no EPOLLIN (the bytes are already in rbuf_), so
    // any executable frames still buffered must be driven here, now.
    // The rbuf_-shrank progress test makes the loop terminate: a
    // pass that consumed nothing (incomplete frame, or still over
    // the soft cap after a partial flush) cannot repeat forever.
    for (;;) {
        const std::size_t before = rbuf_.size();
        if (!closing_ && !drainFrames(worker, exec))
            closing_ = true;
        if (!flush())
            return false;
        finishTailPending();
        if (pendingWrite() > limits_.wbufHardCap) {
            // The backlog outgrew what any client that stopped
            // reading deserves; cut it loose.
            closeReason_ = CloseReason::Backpressure;
            return false;
        }
        if (closing_ || rbuf_.empty() || !wantsRead() ||
            rbuf_.size() == before)
            return true;
    }
}

bool
Conn::flushOnly()
{
    lastActivity_ = std::chrono::steady_clock::now();
    const bool ok = flush();
    finishTailPending();
    return ok;
}

void
Conn::finishTailPending(bool force)
{
    if (tailPending_.empty())
        return;
    if (!force && pending_ != 0)
        return;  // Replies still queued: the flush wait continues.
    const std::uint64_t now = obs::nowNanos();
    for (obs::tail::PendingTrace &p : tailPending_)
        obs::tail::finishRequest(std::move(p), now);
    tailPending_.clear();
}

bool
Conn::beginLingeringClose()
{
    if (wantsWrite())
        return true;  // Keep EPOLLOUT armed until the reply is out.
    if (!draining_) {
        // Half-close so the peer reads the reply then a clean FIN;
        // closing with unread client bytes would RST and can destroy
        // the reply in the peer's receive buffer. Input is discarded
        // until the peer's own FIN arrives.
        ::shutdown(fd_, SHUT_WR);
        draining_ = true;
    }
    return true;
}

bool
Conn::discardInput()
{
    char chunk[16 * 1024];
    for (;;) {
        const ssize_t n = sys::readFd(fd_, chunk, sizeof(chunk));
        if (n > 0)
            continue;
        if (n == 0) {
            closeReason_ = CloseReason::Peer;
            return false;  // Peer finished; now the close is clean.
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        closeReason_ = CloseReason::Peer;
        return false;
    }
}

void
Conn::queueOwned(const char *data, std::size_t n)
{
    if (n == 0)
        return;
    // Coalesce into the trailing owned segment (appending is safe
    // even when the segment is partially written — off indexes into
    // the string, which only grows).
    if (outq_.empty() || outq_.back().pinned())
        outq_.emplace_back();
    outq_.back().owned.append(data, n);
    pending_ += n;
}

void
Conn::enqueue(mc::Reply &&reply)
{
    for (mc::Reply::Seg &seg : reply.takeSegments()) {
        if (!seg.pinned()) {
            queueOwned(seg.owned.data(), seg.owned.size());
            continue;
        }
        pending_ += seg.size();
        outq_.push_back(std::move(seg));
    }
}

bool
Conn::drainFrames(std::uint32_t worker, const ExecFn &exec)
{
    std::size_t off = 0;
    bool ok = true;
    // Consecutive binary quiet-get frames (GetQ/GetKQ) are collected
    // and handed to exec() as one concatenated request: binaryExecute
    // turns the run into a single getMulti, so a sharded cache visits
    // each touched shard once instead of once per key.
    std::string quietRun;
    std::uint64_t quietFrames = 0;
    std::uint64_t quietT0 = 0;
    // Per-command latency: framed request handed to exec() until its
    // reply segments are queued. A batched quiet-get run counts as one
    // command — that is the unit of work the executor sees. The same
    // unit is one tail-tracer request: the trace opens with a parse
    // span back-dated to @p parse_t0 (the stamp taken before framing)
    // and stays pending until the reply's last byte leaves the
    // out-queue (finishTailPending closes the flush span).
    auto timedExec = [&](bool binary, const std::string &frame,
                         std::uint64_t parse_t0) {
        const std::uint64_t t0 = obs::nowNanos();
        const std::uint64_t rid = obs::tail::beginRequest(
            worker, binary, parse_t0 != 0 ? parse_t0 : t0);
        mc::Reply reply;
        exec(worker, binary, frame, reply);
        enqueue(std::move(reply));
        obs::hist(obs::HistKind::Command).record(obs::nowNanos() - t0);
        if (rid != 0) {
            if (obs::tail::PendingTrace p = obs::tail::endRequest())
                tailPending_.push_back(std::move(p));
        }
    };
    auto flushQuietRun = [&]() {
        if (quietFrames == 0)
            return;
        timedExec(true, quietRun, quietT0);
        served_ += quietFrames;
        quietRun.clear();
        quietFrames = 0;
        quietT0 = 0;
    };
    while (off < rbuf_.size()) {
        // Soft-cap check inside the burst too: a pipelined batch
        // stops executing once replies back up, leaving the rest of
        // the batch buffered until the client drains us.
        if (pendingWrite() >= limits_.wbufSoftCap)
            break;
        // Stamped before framing so the parse span covers the carve;
        // disarmed, this is one relaxed load and no clock read.
        const std::uint64_t parse_t0 =
            obs::tail::tailArmed() ? obs::nowNanos() : 0;
        const bool binary =
            static_cast<std::uint8_t>(rbuf_[off]) ==
            static_cast<std::uint8_t>(mc::BinMagic::Request);
        const mc::FrameResult fr =
            binary ? mc::binaryTryFrame(
                         reinterpret_cast<const std::uint8_t *>(
                             rbuf_.data() + off),
                         rbuf_.size() - off)
                   : mc::protocolTryFrame(rbuf_.data() + off,
                                          rbuf_.size() - off);
        if (fr.status == mc::FrameStatus::NeedMore)
            break;
        if (fr.status == mc::FrameStatus::Error) {
            // Text clients get the CLIENT_ERROR line; a corrupt
            // binary stream cannot be re-synchronized, so it just
            // closes.
            if (!binary && fr.error != nullptr)
                queueOwned(fr.error, std::char_traits<char>::length(
                                         fr.error));
            ok = false;
            break;
        }
        const std::string frame = rbuf_.substr(off, fr.frameLen);
        if (binary && mc::binIsQuietGet(frame.data(), frame.size())) {
            if (quietFrames == 0)
                quietT0 = parse_t0;
            quietRun += frame;
            ++quietFrames;
            off += fr.frameLen;
            continue;
        }
        // Any non-quiet frame terminates the run; its reply must
        // follow the run's hit replies, so flush the batch first.
        flushQuietRun();
        if (!binary && (frame == "quit\r\n" || frame == "quit\n")) {
            // memcached's quit: close without a reply.
            off += fr.frameLen;
            ok = false;
            break;
        }
        timedExec(binary, frame, parse_t0);
        ++served_;
        off += fr.frameLen;
    }
    // Runs also end at the buffer edge (NeedMore / soft cap / error):
    // quiet gets never wait for a terminator, they are batched only
    // opportunistically within one drain pass.
    flushQuietRun();
    if (off == rbuf_.size())
        rbuf_.clear();
    else if (off > 0)
        rbuf_.erase(0, off);
    return ok;
}

void
Conn::consumeOut(std::size_t n)
{
    while (n > 0 && !outq_.empty()) {
        mc::Reply::Seg &front = outq_.front();
        const std::size_t rem = front.size() - front.off;
        const std::size_t take = rem < n ? rem : n;
        front.off += take;
        pending_ -= take;
        n -= take;
        if (front.off == front.size())
            outq_.pop_front();  // Seg destructor releases its pin.
    }
}

bool
Conn::flush()
{
    while (!outq_.empty()) {
        // Retire already-empty segments (zero-length values) so the
        // syscall below always has bytes to move.
        while (!outq_.empty() &&
               outq_.front().off == outq_.front().size())
            outq_.pop_front();
        if (outq_.empty())
            break;

        ssize_t n;
        if (gather_) {
            // One gather write over the whole queue: reply headers
            // from owned segments, values straight from the slab.
            struct iovec iov[sys::kMaxWriteIov];
            int cnt = 0;
            for (const mc::Reply::Seg &seg : outq_) {
                if (cnt == sys::kMaxWriteIov)
                    break;
                iov[cnt].iov_base = const_cast<char *>(seg.data()) +
                                    seg.off;
                iov[cnt].iov_len = seg.size() - seg.off;
                ++cnt;
            }
            n = sys::writevFd(fd_, iov, cnt);
        } else {
            const mc::Reply::Seg &front = outq_.front();
            n = sys::writeFd(fd_, front.data() + front.off,
                             front.size() - front.off);
        }
        if (n > 0) {
            consumeOut(static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;  // Event loop will re-arm EPOLLOUT.
        if (n < 0 && errno == EINTR)
            continue;
        if (n == 0)
            return true;  // Nothing accepted; wait for EPOLLOUT.
        closeReason_ = CloseReason::Peer;
        return false;  // EPIPE etc.: peer is gone.
    }
    return true;
}

} // namespace tmemc::net
