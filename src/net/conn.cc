/**
 * @file
 * Connection state machine implementation.
 */

#include "net/conn.h"

#include <cerrno>
#include <sys/socket.h>
#include <unistd.h>

#include "mc/binary_protocol.h"
#include "mc/protocol.h"

namespace tmemc::net
{

namespace
{

/** Hard ceiling on buffered unparsed bytes (slowloris guard). */
constexpr std::size_t kMaxReadBuffer =
    tmemc::mc::kMaxBodyBytes + tmemc::mc::kMaxCommandLine + 2;

} // namespace

Conn::Conn(int fd, std::uint64_t id) : fd_(fd), id_(id) {}

Conn::~Conn()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
Conn::onReadable(std::uint32_t worker, const ExecFn &exec)
{
    char chunk[16 * 1024];
    if (draining_)
        return discardInput();

    bool saw_eof = false;
    for (;;) {
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            rbuf_.append(chunk, static_cast<std::size_t>(n));
            if (rbuf_.size() > kMaxReadBuffer)
                return false;  // Unframeable flood; drop the client.
            continue;
        }
        if (n == 0) {
            saw_eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        return false;  // ECONNRESET and friends.
    }

    if (!drainFrames(worker, exec))
        closing_ = true;

    if (!flush())
        return false;
    if (saw_eof) {
        // A client that half-closed after pipelining still gets its
        // replies if the kernel buffer takes them; anything the
        // nonblocking flush could not place is forfeit, as in
        // memcached's conn_closing.
        return false;
    }
    if (closing_)
        return beginLingeringClose();
    return true;
}

bool
Conn::onWritable()
{
    if (!flush())
        return false;
    if (closing_ && !wantsWrite())
        return beginLingeringClose();
    return true;
}

bool
Conn::beginLingeringClose()
{
    if (wantsWrite())
        return true;  // Keep EPOLLOUT armed until the reply is out.
    if (!draining_) {
        // Half-close so the peer reads the reply then a clean FIN;
        // closing with unread client bytes would RST and can destroy
        // the reply in the peer's receive buffer. Input is discarded
        // until the peer's own FIN arrives.
        ::shutdown(fd_, SHUT_WR);
        draining_ = true;
    }
    return true;
}

bool
Conn::discardInput()
{
    char chunk[16 * 1024];
    for (;;) {
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0)
            continue;
        if (n == 0)
            return false;  // Peer finished; now the close is clean.
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        if (errno == EINTR)
            continue;
        return false;
    }
}

bool
Conn::drainFrames(std::uint32_t worker, const ExecFn &exec)
{
    std::size_t off = 0;
    bool ok = true;
    while (off < rbuf_.size()) {
        const bool binary =
            static_cast<std::uint8_t>(rbuf_[off]) ==
            static_cast<std::uint8_t>(mc::BinMagic::Request);
        const mc::FrameResult fr =
            binary ? mc::binaryTryFrame(
                         reinterpret_cast<const std::uint8_t *>(
                             rbuf_.data() + off),
                         rbuf_.size() - off)
                   : mc::protocolTryFrame(rbuf_.data() + off,
                                          rbuf_.size() - off);
        if (fr.status == mc::FrameStatus::NeedMore)
            break;
        if (fr.status == mc::FrameStatus::Error) {
            // Text clients get the CLIENT_ERROR line; a corrupt
            // binary stream cannot be re-synchronized, so it just
            // closes.
            if (!binary && fr.error != nullptr)
                wbuf_.append(fr.error);
            ok = false;
            break;
        }
        const std::string frame = rbuf_.substr(off, fr.frameLen);
        if (!binary && (frame == "quit\r\n" || frame == "quit\n")) {
            // memcached's quit: close without a reply.
            off += fr.frameLen;
            ok = false;
            break;
        }
        wbuf_ += exec(worker, binary, frame);
        ++served_;
        off += fr.frameLen;
    }
    if (off == rbuf_.size())
        rbuf_.clear();
    else if (off > 0)
        rbuf_.erase(0, off);
    return ok;
}

bool
Conn::flush()
{
    while (woff_ < wbuf_.size()) {
        const ssize_t n =
            ::write(fd_, wbuf_.data() + woff_, wbuf_.size() - woff_);
        if (n > 0) {
            woff_ += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;  // Event loop will re-arm EPOLLOUT.
        if (n < 0 && errno == EINTR)
            continue;
        return false;  // EPIPE etc.: peer is gone.
    }
    wbuf_.clear();
    woff_ = 0;
    return true;
}

} // namespace tmemc::net
