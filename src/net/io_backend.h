/**
 * @file
 * Pluggable readiness backends for the event loops.
 *
 * The paper's topology keeps the network stack on-machine so it can
 * measure what the stack costs next to TM; this interface lets the
 * same experiment vary the stack itself:
 *
 *  - Epoll:   the seed backend — level-triggered epoll, one write(2)
 *             per flush, every reply copied into the write buffer.
 *  - Writev:  epoll readiness, but replies are segment lists and the
 *             flush is one gather writev(2) — GET hits pin the item
 *             in the slab and ship its bytes zero-copy.
 *  - IoUring: the same zero-copy write path with readiness driven by
 *             an io_uring poll set (multishot when the kernel has it,
 *             one-shot re-arm otherwise). Selected at runtime and
 *             falls back to Writev when io_uring_setup is denied
 *             (old kernel, seccomp, RLIMIT_MEMLOCK) — the server
 *             still starts, reporting the effective backend.
 *
 * A Poller owns kernel-side readiness state only; connection
 * ownership and all socket I/O stay in the EventLoop/Conn layer, so
 * every backend shares one data path and one test suite.
 */

#ifndef TMEMC_NET_IO_BACKEND_H
#define TMEMC_NET_IO_BACKEND_H

#include <cstdint>
#include <memory>
#include <string>

namespace tmemc::net
{

/** Which readiness/write machinery the event loops run on. */
enum class IoBackend : std::uint8_t
{
    Epoll,    //!< epoll + copying write() flush (the seed behaviour).
    Writev,   //!< epoll + zero-copy gather writev() flush.
    IoUring,  //!< io_uring poll + zero-copy gather flush.
};

/** Stable lowercase name ("epoll", "writev", "io_uring"). */
const char *ioBackendName(IoBackend b);

/** Parse a --io-backend value; accepts the names above ("uring" too). */
bool parseIoBackend(const std::string &s, IoBackend &out);

/**
 * Runtime capability probe: can this process create an io_uring?
 * False on pre-5.1 kernels, seccomp filters that deny the syscalls,
 * and builds without <linux/io_uring.h>.
 */
bool ioUringSupported();

/** One readiness report from Poller::wait. */
struct PollEvent
{
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
    bool error = false;
};

/**
 * Level-triggered readiness set. Not thread-safe: add/update/remove/
 * wait are all loop-thread calls (add may also run once before the
 * loop thread starts, during EventLoop::start()).
 */
class Poller
{
  public:
    virtual ~Poller() = default;

    virtual const char *name() const = 0;

    /** Register @p fd. @return false on kernel refusal (caller closes). */
    virtual bool add(int fd, bool want_read, bool want_write) = 0;

    /** Change interest for a registered fd. */
    virtual void update(int fd, bool want_read, bool want_write) = 0;

    /** Drop a registered fd (before it is closed). */
    virtual void remove(int fd) = 0;

    /**
     * Re-assert readiness for a registered fd whose handler left work
     * un-consumed (e.g. a flush that ended with bytes still queued).
     * Level-triggered epoll re-reports on its own, so the default is
     * a no-op; io_uring's multishot poll only posts on socket
     * *wakeups* — an fd that stays ready with no new event would
     * never re-report — so its override arms a fresh poll, which
     * completes immediately if the fd is ready right now.
     */
    virtual void rearm(int fd) { (void)fd; }

    /**
     * Block up to @p timeout_ms for readiness.
     * @return number of events written to @p out, 0 on timeout,
     *         -1 on error (errno set; EINTR is handled internally).
     */
    virtual int wait(PollEvent *out, int cap, int timeout_ms) = 0;
};

/**
 * Build the poller for @p requested and report what actually runs in
 * @p effective: IoUring degrades to Writev when the kernel refuses,
 * everything else is served as asked. @return nullptr only when even
 * epoll cannot be created.
 */
std::unique_ptr<Poller> makePoller(IoBackend requested,
                                   IoBackend &effective);

} // namespace tmemc::net

#endif // TMEMC_NET_IO_BACKEND_H
