/**
 * @file
 * One TCP connection: nonblocking fd, incremental read buffer, a
 * segmented reply queue, and streaming protocol framing.
 *
 * memcached's conn state machine (conn_read -> conn_parse_cmd ->
 * conn_nread -> conn_write) collapses here into two reactive entry
 * points driven by the owning event loop: onReadable() drains the
 * socket, carves complete requests out of the read buffer with the
 * mc framing hooks (protocolTryFrame / binaryTryFrame), executes
 * them, and queues replies; onWritable() flushes the reply queue.
 *
 * Replies are mc::Reply segment lists. On the seed epoll backend the
 * executor only produces owned segments, consecutive owned segments
 * coalesce, and the flush is the classic copy-and-write(2) loop. On
 * the gather backends (writev / io_uring) a GET hit's value rides as
 * a *pinned* segment — a pointer into the slab chunk held live by the
 * item refcount — and flush() hands header + value + CRLF to one
 * writev(2), so the value bytes are never copied into a reply buffer.
 * A pinned segment releases its reference the moment its last byte is
 * accepted by the kernel, or when the connection dies with the
 * segment still queued.
 *
 * Protocol selection follows memcached's sniffing rule: a frame whose
 * first byte is the binary request magic (0x80) is binary, anything
 * else is ASCII. Detection happens only at frame boundaries, so
 * binary value bytes can never be misread as a protocol switch.
 *
 * Overload behaviour is bounded on both sides (ConnLimits):
 *  - the read buffer caps unframeable input (slowloris guard);
 *  - pendingWrite() — which counts owned AND pinned bytes, so the
 *    zero-copy path cannot dodge the caps — has a soft cap (stop
 *    polling EPOLLIN; TCP backpressure reaches the slow reader) and
 *    a hard cap (close: a reply burst no sane client leaves unread);
 *  - lastActivity() feeds the loop's idle reaper.
 *
 * Parsing and reply formatting happen entirely on these private
 * buffers before any lock or transaction is taken — the same
 * private-then-shared discipline the paper relies on for htons and
 * friends (Section 3.4).
 */

#ifndef TMEMC_NET_CONN_H
#define TMEMC_NET_CONN_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "mc/protocol.h"
#include "mc/reply.h"
#include "obs/tail.h"

namespace tmemc::net
{

/**
 * Execute one complete request frame on worker thread @p worker,
 * appending the wire reply to @p out (owned and/or pinned segments).
 * @p binary distinguishes the two protocols.
 */
using ExecFn =
    std::function<void(std::uint32_t worker, bool binary,
                       const std::string &frame, mc::Reply &out)>;

/** Per-connection byte budgets (shared, immutable per server). */
struct ConnLimits
{
    /** Max buffered unparsed request bytes before the client is
     *  dropped; also the request-size guard for both protocols. */
    std::size_t rbufCap = mc::kMaxBodyBytes + mc::kMaxCommandLine + 2;
    /** Pending-reply bytes above which the conn stops reading. */
    std::size_t wbufSoftCap = 256 * 1024;
    /** Pending-reply bytes above which the conn is closed. */
    std::size_t wbufHardCap = 8 * 1024 * 1024 + 512 * 1024;
};

/** Why a connection asked to be closed (for the loop's counters). */
enum class CloseReason : std::uint8_t
{
    None,          //!< Still alive.
    Peer,          //!< EOF, reset, protocol error, quit.
    Backpressure,  //!< Write backlog exceeded the hard cap.
};

/** A connected client socket owned by one event loop. */
class Conn
{
  public:
    /**
     * Takes ownership of @p fd (closed on destruction).
     * @param gather_writes  Flush via writev over the whole segment
     *        queue (the zero-copy backends); false uses the seed
     *        one-segment-at-a-time write(2) loop.
     */
    Conn(int fd, std::uint64_t id, const ConnLimits &limits,
         bool gather_writes);
    ~Conn();

    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd() const { return fd_; }
    std::uint64_t id() const { return id_; }

    /**
     * Drain the socket, execute every complete buffered request
     * (pipelining: one read may yield many frames; a frame may also
     * arrive over many reads), queue replies, and start flushing.
     * @return false when the connection is finished (EOF, fatal
     *         socket error, or a framing error whose reply has been
     *         flushed) and should be destroyed.
     */
    bool onReadable(std::uint32_t worker, const ExecFn &exec);

    /**
     * Continue flushing after EPOLLOUT; once the backlog falls below
     * the soft cap, resume executing any requests that were already
     * buffered when backpressure paused the batch (no new EPOLLIN is
     * coming for bytes we already hold).
     * @return false when done-for.
     */
    bool onWritable(std::uint32_t worker, const ExecFn &exec);

    /**
     * Drain-mode write path: push queued replies out without
     * executing anything new. @return false on socket death.
     */
    bool flushOnly();

    /** True while the reply queue holds unsent segments. */
    bool wantsWrite() const { return !outq_.empty(); }

    /** False while pending replies exceed the soft cap: the loop
     *  must stop polling EPOLLIN until the client drains us. */
    bool wantsRead() const { return pendingWrite() < limits_.wbufSoftCap; }

    /** Unflushed reply bytes — owned and pinned alike, so the
     *  zero-copy path is subject to the same caps as the copy path. */
    std::size_t pendingWrite() const { return pending_; }

    /** Why the last onReadable/onWritable returned false. */
    CloseReason closeReason() const { return closeReason_; }

    /** Last moment the socket made forward progress. */
    std::chrono::steady_clock::time_point lastActivity() const
    {
        return lastActivity_;
    }

    /** Requests executed on this connection (served-response count). */
    std::uint64_t requestsServed() const { return served_; }

  private:
    /**
     * Execute-and-flush until a fixed point: no more complete frames,
     * the soft cap is holding, or the connection must close (returns
     * false — closeReason() says why).
     */
    bool pump(std::uint32_t worker, const ExecFn &exec);

    /** Execute buffered complete frames; false on fatal frame error. */
    bool drainFrames(std::uint32_t worker, const ExecFn &exec);

    /** Flush the segment queue until EAGAIN or empty.
     *  @return false on socket error. */
    bool flush();

    /** Move a reply's segments onto the out-queue (coalescing owned
     *  runs) and account their bytes. */
    void enqueue(mc::Reply &&reply);

    /** Queue owned bytes (error lines and the like). */
    void queueOwned(const char *data, std::size_t n);

    /** Retire @p n written bytes off the queue front, releasing pins
     *  whose segments completed. */
    void consumeOut(std::size_t n);

    /**
     * Once the goodbye reply is flushed, half-close the socket
     * (shutdown SHUT_WR) and discard input until the peer's FIN —
     * memcached's lingering close, which keeps the error reply from
     * being destroyed by an RST.
     */
    bool beginLingeringClose();

    /** Drain-and-discard mode reads. @return false at peer EOF. */
    bool discardInput();

    /**
     * Close the flush span of every traced request whose reply has
     * fully left the out-queue and offer the traces to the tail
     * reservoir. Called after every flush; a partial flush leaves the
     * traces pending so EPOLLOUT wait time lands in the flush span.
     * @p force finalizes regardless (connection teardown).
     */
    void finishTailPending(bool force = false);

    int fd_;
    std::uint64_t id_;
    const ConnLimits &limits_;
    bool gather_;
    std::string rbuf_;
    /** Reply queue; front segment may be partially written (its off).
     *  Segment destructors release pins, so clearing the queue — or
     *  destroying the Conn with replies still queued — cannot leak an
     *  item reference. */
    std::deque<mc::Reply::Seg> outq_;
    std::size_t pending_ = 0;  //!< Unwritten bytes across outq_.
    /** Traced requests (tail tracer armed) whose replies are still
     *  flushing; empty whenever the tracer is disarmed. */
    std::vector<obs::tail::PendingTrace> tailPending_;
    std::uint64_t served_ = 0;
    std::chrono::steady_clock::time_point lastActivity_;
    CloseReason closeReason_ = CloseReason::None;
    bool closing_ = false;   //!< Flush remaining bytes, then FIN.
    bool draining_ = false;  //!< FIN sent; discarding input to EOF.
};

} // namespace tmemc::net

#endif // TMEMC_NET_CONN_H
