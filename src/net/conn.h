/**
 * @file
 * One TCP connection: nonblocking fd, incremental read/write buffers,
 * and streaming protocol framing.
 *
 * memcached's conn state machine (conn_read -> conn_parse_cmd ->
 * conn_nread -> conn_write) collapses here into two reactive entry
 * points driven by the owning event loop: onReadable() drains the
 * socket, carves complete requests out of the read buffer with the
 * mc framing hooks (protocolTryFrame / binaryTryFrame), executes
 * them, and queues replies; onWritable() flushes the write buffer.
 *
 * Protocol selection follows memcached's sniffing rule: a frame whose
 * first byte is the binary request magic (0x80) is binary, anything
 * else is ASCII. Detection happens only at frame boundaries, so
 * binary value bytes can never be misread as a protocol switch.
 *
 * Overload behaviour is bounded on both sides (ConnLimits):
 *  - the read buffer caps unframeable input (slowloris guard);
 *  - the write buffer has a soft cap — once pending replies exceed
 *    it, wantsRead() goes false, the loop stops polling EPOLLIN, and
 *    TCP backpressure reaches the client that is not reading — and a
 *    hard cap, past which the connection is closed (a reply burst no
 *    sane client would leave unread);
 *  - lastActivity() feeds the loop's idle reaper.
 *
 * Parsing and reply formatting happen entirely on these private
 * buffers before any lock or transaction is taken — the same
 * private-then-shared discipline the paper relies on for htons and
 * friends (Section 3.4).
 */

#ifndef TMEMC_NET_CONN_H
#define TMEMC_NET_CONN_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "mc/protocol.h"

namespace tmemc::net
{

/**
 * Execute one complete request frame on worker thread @p worker and
 * return the wire reply. @p binary distinguishes the two protocols.
 */
using ExecFn = std::function<std::string(
    std::uint32_t worker, bool binary, const std::string &frame)>;

/** Per-connection byte budgets (shared, immutable per server). */
struct ConnLimits
{
    /** Max buffered unparsed request bytes before the client is
     *  dropped; also the request-size guard for both protocols. */
    std::size_t rbufCap = mc::kMaxBodyBytes + mc::kMaxCommandLine + 2;
    /** Pending-reply bytes above which the conn stops reading. */
    std::size_t wbufSoftCap = 256 * 1024;
    /** Pending-reply bytes above which the conn is closed. */
    std::size_t wbufHardCap = 8 * 1024 * 1024 + 512 * 1024;
};

/** Why a connection asked to be closed (for the loop's counters). */
enum class CloseReason : std::uint8_t
{
    None,          //!< Still alive.
    Peer,          //!< EOF, reset, protocol error, quit.
    Backpressure,  //!< Write buffer exceeded the hard cap.
};

/** A connected client socket owned by one event loop. */
class Conn
{
  public:
    /** Takes ownership of @p fd (closed on destruction). */
    Conn(int fd, std::uint64_t id, const ConnLimits &limits);
    ~Conn();

    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd() const { return fd_; }
    std::uint64_t id() const { return id_; }

    /**
     * Drain the socket, execute every complete buffered request
     * (pipelining: one read may yield many frames; a frame may also
     * arrive over many reads), queue replies, and start flushing.
     * @return false when the connection is finished (EOF, fatal
     *         socket error, or a framing error whose reply has been
     *         flushed) and should be destroyed.
     */
    bool onReadable(std::uint32_t worker, const ExecFn &exec);

    /**
     * Continue flushing after EPOLLOUT; once the backlog falls below
     * the soft cap, resume executing any requests that were already
     * buffered when backpressure paused the batch (no new EPOLLIN is
     * coming for bytes we already hold).
     * @return false when done-for.
     */
    bool onWritable(std::uint32_t worker, const ExecFn &exec);

    /**
     * Drain-mode write path: push queued replies out without
     * executing anything new. @return false on socket death.
     */
    bool flushOnly();

    /** True while the write buffer holds unsent bytes. */
    bool wantsWrite() const { return woff_ < wbuf_.size(); }

    /** False while pending replies exceed the soft cap: the loop
     *  must stop polling EPOLLIN until the client drains us. */
    bool wantsRead() const { return pendingWrite() < limits_.wbufSoftCap; }

    /** Unflushed reply bytes. */
    std::size_t pendingWrite() const { return wbuf_.size() - woff_; }

    /** Why the last onReadable/onWritable returned false. */
    CloseReason closeReason() const { return closeReason_; }

    /** Last moment the socket made forward progress. */
    std::chrono::steady_clock::time_point lastActivity() const
    {
        return lastActivity_;
    }

    /** Requests executed on this connection (served-response count). */
    std::uint64_t requestsServed() const { return served_; }

  private:
    /**
     * Execute-and-flush until a fixed point: no more complete frames,
     * the soft cap is holding, or the connection must close (returns
     * false — closeReason() says why).
     */
    bool pump(std::uint32_t worker, const ExecFn &exec);

    /** Execute buffered complete frames; false on fatal frame error. */
    bool drainFrames(std::uint32_t worker, const ExecFn &exec);

    /** write() until EAGAIN or empty. @return false on socket error. */
    bool flush();

    /**
     * Once the goodbye reply is flushed, half-close the socket
     * (shutdown SHUT_WR) and discard input until the peer's FIN —
     * memcached's lingering close, which keeps the error reply from
     * being destroyed by an RST.
     */
    bool beginLingeringClose();

    /** Drain-and-discard mode reads. @return false at peer EOF. */
    bool discardInput();

    int fd_;
    std::uint64_t id_;
    const ConnLimits &limits_;
    std::string rbuf_;
    std::string wbuf_;
    std::size_t woff_ = 0;
    std::uint64_t served_ = 0;
    std::chrono::steady_clock::time_point lastActivity_;
    CloseReason closeReason_ = CloseReason::None;
    bool closing_ = false;   //!< Flush remaining bytes, then FIN.
    bool draining_ = false;  //!< FIN sent; discarding input to EOF.
};

} // namespace tmemc::net

#endif // TMEMC_NET_CONN_H
