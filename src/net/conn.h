/**
 * @file
 * One TCP connection: nonblocking fd, incremental read/write buffers,
 * and streaming protocol framing.
 *
 * memcached's conn state machine (conn_read -> conn_parse_cmd ->
 * conn_nread -> conn_write) collapses here into two reactive entry
 * points driven by the owning event loop: onReadable() drains the
 * socket, carves complete requests out of the read buffer with the
 * mc framing hooks (protocolTryFrame / binaryTryFrame), executes
 * them, and queues replies; onWritable() flushes the write buffer.
 *
 * Protocol selection follows memcached's sniffing rule: a frame whose
 * first byte is the binary request magic (0x80) is binary, anything
 * else is ASCII. Detection happens only at frame boundaries, so
 * binary value bytes can never be misread as a protocol switch.
 *
 * Parsing and reply formatting happen entirely on these private
 * buffers before any lock or transaction is taken — the same
 * private-then-shared discipline the paper relies on for htons and
 * friends (Section 3.4).
 */

#ifndef TMEMC_NET_CONN_H
#define TMEMC_NET_CONN_H

#include <cstdint>
#include <functional>
#include <string>

namespace tmemc::net
{

/**
 * Execute one complete request frame on worker thread @p worker and
 * return the wire reply. @p binary distinguishes the two protocols.
 */
using ExecFn = std::function<std::string(
    std::uint32_t worker, bool binary, const std::string &frame)>;

/** A connected client socket owned by one event loop. */
class Conn
{
  public:
    /** Takes ownership of @p fd (closed on destruction). */
    Conn(int fd, std::uint64_t id);
    ~Conn();

    Conn(const Conn &) = delete;
    Conn &operator=(const Conn &) = delete;

    int fd() const { return fd_; }
    std::uint64_t id() const { return id_; }

    /**
     * Drain the socket, execute every complete buffered request
     * (pipelining: one read may yield many frames; a frame may also
     * arrive over many reads), queue replies, and start flushing.
     * @return false when the connection is finished (EOF, fatal
     *         socket error, or a framing error whose reply has been
     *         flushed) and should be destroyed.
     */
    bool onReadable(std::uint32_t worker, const ExecFn &exec);

    /** Continue flushing after EPOLLOUT. @return false when done-for. */
    bool onWritable();

    /** True while the write buffer holds unsent bytes. */
    bool wantsWrite() const { return woff_ < wbuf_.size(); }

    /** Requests executed on this connection (served-response count). */
    std::uint64_t requestsServed() const { return served_; }

  private:
    /** Execute buffered complete frames; false on fatal frame error. */
    bool drainFrames(std::uint32_t worker, const ExecFn &exec);

    /** write() until EAGAIN or empty. @return false on socket error. */
    bool flush();

    /**
     * Once the goodbye reply is flushed, half-close the socket
     * (shutdown SHUT_WR) and discard input until the peer's FIN —
     * memcached's lingering close, which keeps the error reply from
     * being destroyed by an RST.
     */
    bool beginLingeringClose();

    /** Drain-and-discard mode reads. @return false at peer EOF. */
    bool discardInput();

    int fd_;
    std::uint64_t id_;
    std::string rbuf_;
    std::string wbuf_;
    std::size_t woff_ = 0;
    std::uint64_t served_ = 0;
    bool closing_ = false;   //!< Flush remaining bytes, then FIN.
    bool draining_ = false;  //!< FIN sent; discarding input to EOF.
};

} // namespace tmemc::net

#endif // TMEMC_NET_CONN_H
