/**
 * @file
 * Blocking TCP client for the memcached protocols — the socket-backed
 * counterpart of driving CacheIface in-process. Used by the memslap
 * network mode, bench_net, and the server tests.
 *
 * The client frames *responses*: ASCII replies have no length prefix,
 * so recvAscii() recognizes every reply shape the server produces
 * (VALUE...END blocks, STAT...END blocks, single lines); binary
 * replies are framed by their 24-byte header. asciiResponseTryFrame
 * is exposed for the streaming tests.
 */

#ifndef TMEMC_NET_CLIENT_H
#define TMEMC_NET_CLIENT_H

#include <cstdint>
#include <string>

#include "mc/protocol.h"

namespace tmemc::net
{

/**
 * Scan @p len bytes for one complete ASCII response. Same contract
 * as mc::protocolTryFrame: non-consuming, NeedMore on a prefix.
 */
mc::FrameResult asciiResponseTryFrame(const char *data, std::size_t len);

/** Blocking memcached client over one TCP connection. */
class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /**
     * Connect to host:port. With @p timeout_ms > 0 the connect is
     * attempted nonblocking and abandoned after the deadline (an
     * unresponsive server fails fast instead of hanging the caller
     * for the kernel's SYN-retry minutes). 0 = blocking connect.
     * @return false on failure or timeout.
     */
    bool connect(const std::string &host, std::uint16_t port,
                 std::uint32_t timeout_ms = 0);

    /**
     * Re-dial the last connect()ed endpoint if the socket is dead.
     * A server restart used to leave the client erroring forever:
     * fill()/sendAll() reported failure but kept the defunct fd, so
     * every later call failed on it. Both now close the socket on
     * EOF/error, and callers (the cluster pool, retry loops) call
     * ensureConnected() before each request to transparently pick up
     * a restarted server. @return true when a live socket exists.
     */
    bool ensureConnected(std::uint32_t timeout_ms = 0);

    /**
     * Bound every subsequent recv by @p ms (SO_RCVTIMEO); recv*
     * calls return false when the server goes quiet that long.
     * 0 disables the bound. Survives reconnects; applies immediately
     * when already connected.
     */
    void setRecvTimeout(std::uint32_t ms);

    bool isConnected() const { return fd_ >= 0; }
    void close();

    /** Send all of @p bytes. @return false on socket error. */
    bool sendAll(const std::string &bytes);

    /** Receive one complete ASCII response. @return false on EOF/error. */
    bool recvAscii(std::string &out);

    /** Receive one complete binary response frame. */
    bool recvBinary(std::string &out);

    /** Convenience: send an ASCII request, return its reply ("" on error). */
    std::string roundTripAscii(const std::string &request);

    /** Convenience: send a binary request frame, return the response. */
    std::string roundTripBinary(const std::string &frame);

  private:
    /** Read once into the buffer. @return false on EOF or error. */
    bool fill();

    /** Apply recvTimeoutMs_ to the live socket. */
    void applyRecvTimeout();

    int fd_ = -1;
    std::string buf_;
    std::uint32_t recvTimeoutMs_ = 0;
    std::string host_;          //!< Last endpoint, for ensureConnected.
    std::uint16_t port_ = 0;
    bool haveEndpoint_ = false;
};

} // namespace tmemc::net

#endif // TMEMC_NET_CLIENT_H
