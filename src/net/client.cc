/**
 * @file
 * Blocking client implementation.
 */

#include "net/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#include <utility>

#include "mc/binary_protocol.h"
#include "net/sys.h"

namespace tmemc::net
{

namespace
{

/** Find "\r\n" and return the offset one past it, or npos. */
std::size_t
lineEnd(const char *data, std::size_t len, std::size_t from)
{
    for (std::size_t i = from; i + 1 < len; ++i) {
        if (data[i] == '\r' && data[i + 1] == '\n')
            return i + 2;
    }
    return std::string::npos;
}

bool
startsWith(const char *data, std::size_t len, std::size_t at,
           const char *prefix)
{
    const std::size_t n = std::strlen(prefix);
    return len - at >= n && std::memcmp(data + at, prefix, n) == 0;
}

} // namespace

mc::FrameResult
asciiResponseTryFrame(const char *data, std::size_t len)
{
    mc::FrameResult r;
    if (len == 0)
        return r;

    // get/gets replies: zero or more VALUE blocks, then "END\r\n".
    // A bare miss is the END line alone, which the single-line case
    // below would also accept — handle the VALUE shape first.
    if (startsWith(data, len, 0, "VALUE ")) {
        std::size_t pos = 0;
        while (true) {
            if (startsWith(data, len, pos, "VALUE ")) {
                const std::size_t hdr_end = lineEnd(data, len, pos);
                if (hdr_end == std::string::npos)
                    return r;  // NeedMore.
                // Header: VALUE <key> <flags> <bytes> [cas]
                const char *p = data + pos;
                const char *limit = data + hdr_end;
                int field = 0;
                unsigned long long bytes = 0;
                while (p < limit && field < 4) {
                    while (p < limit && *p == ' ')
                        ++p;
                    const char *tok = p;
                    while (p < limit && *p != ' ' && *p != '\r')
                        ++p;
                    if (field == 3)
                        bytes = std::strtoull(
                            std::string(tok, p).c_str(), nullptr, 10);
                    ++field;
                }
                if (field < 4) {
                    r.status = mc::FrameStatus::Error;
                    r.error = "malformed VALUE header";
                    return r;
                }
                const std::size_t next = hdr_end + bytes + 2;
                if (next > len)
                    return r;  // NeedMore.
                pos = next;
                continue;
            }
            if (startsWith(data, len, pos, "END\r\n")) {
                r.status = mc::FrameStatus::Ready;
                r.frameLen = pos + 5;
                return r;
            }
            if (len - pos < 5)
                return r;  // Could still become END\r\n.
            r.status = mc::FrameStatus::Error;
            r.error = "unexpected data after VALUE block";
            return r;
        }
    }

    // stats reply: STAT lines until "END\r\n".
    if (startsWith(data, len, 0, "STAT ")) {
        std::size_t pos = 0;
        while (true) {
            if (startsWith(data, len, pos, "END\r\n")) {
                r.status = mc::FrameStatus::Ready;
                r.frameLen = pos + 5;
                return r;
            }
            const std::size_t eol = lineEnd(data, len, pos);
            if (eol == std::string::npos)
                return r;  // NeedMore.
            pos = eol;
        }
    }

    // Everything else is a single line.
    const std::size_t eol = lineEnd(data, len, 0);
    if (eol == std::string::npos)
        return r;  // NeedMore.
    r.status = mc::FrameStatus::Ready;
    r.frameLen = eol;
    return r;
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)),
      recvTimeoutMs_(other.recvTimeoutMs_),
      host_(std::move(other.host_)), port_(other.port_),
      haveEndpoint_(other.haveEndpoint_)
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buf_ = std::move(other.buf_);
        recvTimeoutMs_ = other.recvTimeoutMs_;
        host_ = std::move(other.host_);
        port_ = other.port_;
        haveEndpoint_ = other.haveEndpoint_;
    }
    return *this;
}

bool
Client::connect(const std::string &host, std::uint16_t port,
                std::uint32_t timeout_ms)
{
    close();
    host_ = host;
    port_ = port;
    haveEndpoint_ = true;
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        return false;
    }
    if (timeout_ms == 0) {
        if (sys::connectFd(fd_, reinterpret_cast<sockaddr *>(&addr),
                           sizeof(addr)) != 0) {
            close();
            return false;
        }
    } else {
        // Deadline-bounded connect: go nonblocking for the handshake,
        // poll for writability, then restore blocking mode.
        const int flags = ::fcntl(fd_, F_GETFL, 0);
        if (flags < 0 ||
            ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
            close();
            return false;
        }
        const int rc = sys::connectFd(
            fd_, reinterpret_cast<sockaddr *>(&addr), sizeof(addr));
        if (rc != 0) {
            if (errno != EINPROGRESS) {
                close();
                return false;
            }
            pollfd pfd{fd_, POLLOUT, 0};
            if (::poll(&pfd, 1, static_cast<int>(timeout_ms)) <= 0) {
                close();  // Timeout or poll failure.
                return false;
            }
            int err = 0;
            socklen_t elen = sizeof(err);
            if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &elen) !=
                    0 ||
                err != 0) {
                close();
                return false;
            }
        }
        if (::fcntl(fd_, F_SETFL, flags) != 0) {
            close();
            return false;
        }
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    applyRecvTimeout();
    return true;
}

bool
Client::ensureConnected(std::uint32_t timeout_ms)
{
    if (fd_ >= 0)
        return true;
    if (!haveEndpoint_)
        return false;
    return connect(host_, port_, timeout_ms);
}

void
Client::setRecvTimeout(std::uint32_t ms)
{
    recvTimeoutMs_ = ms;
    if (fd_ >= 0)
        applyRecvTimeout();
}

void
Client::applyRecvTimeout()
{
    timeval tv{};
    tv.tv_sec = recvTimeoutMs_ / 1000;
    tv.tv_usec =
        static_cast<suseconds_t>((recvTimeoutMs_ % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

bool
Client::sendAll(const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd_, bytes.data() + off, bytes.size() - off,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close();  // Dead socket: let ensureConnected re-dial.
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
Client::fill()
{
    char chunk[16 * 1024];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            return true;
        }
        if (n == 0) {
            close();  // Peer closed; ensureConnected re-dials.
            return false;
        }
        if (errno == EINTR)
            continue;
        // A recv timeout (SO_RCVTIMEO) is not proof the peer died, so
        // the fd survives it — but callers that give up mid-reply must
        // close() themselves, because a late reply would desync the
        // framing (the cluster pool does exactly that). Hard errors
        // mean the connection is gone: drop it so the next
        // ensureConnected() re-dials instead of erroring forever.
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            close();
        return false;
    }
}

bool
Client::recvAscii(std::string &out)
{
    for (;;) {
        const mc::FrameResult fr =
            asciiResponseTryFrame(buf_.data(), buf_.size());
        if (fr.status == mc::FrameStatus::Ready) {
            out = buf_.substr(0, fr.frameLen);
            buf_.erase(0, fr.frameLen);
            return true;
        }
        if (fr.status == mc::FrameStatus::Error)
            return false;
        if (!fill())
            return false;
    }
}

bool
Client::recvBinary(std::string &out)
{
    // Response frames carry the response magic, which binaryTryFrame
    // (a request scanner) rejects — frame by header length directly.
    for (;;) {
        if (buf_.size() >= mc::kBinHeaderSize) {
            mc::BinHeader h;
            if (!mc::binDecodeHeader(
                    reinterpret_cast<const std::uint8_t *>(buf_.data()),
                    h))
                return false;
            const std::size_t want = mc::kBinHeaderSize + h.bodyLength;
            if (buf_.size() >= want) {
                out = buf_.substr(0, want);
                buf_.erase(0, want);
                return true;
            }
        }
        if (!fill())
            return false;
    }
}

std::string
Client::roundTripAscii(const std::string &request)
{
    std::string reply;
    if (!sendAll(request) || !recvAscii(reply))
        return "";
    return reply;
}

std::string
Client::roundTripBinary(const std::string &frame)
{
    std::string reply;
    if (!sendAll(frame) || !recvBinary(reply))
        return "";
    return reply;
}

} // namespace tmemc::net
