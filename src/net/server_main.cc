/**
 * @file
 * tmemc_server: run the TM cache behind the TCP front end, the
 * memcached-shaped deployment of this reproduction.
 *
 * Usage: tmemc_server [--branch NAME] [--port N] [--workers N]
 *                     [--shards N] [--mem MB] [--max-conns N]
 *                     [--idle-timeout MS] [--drain-ms MS]
 *                     [--io-backend epoll|writev|io_uring]
 *                     [--metrics-json PATH] [--trace] [--verbose]
 *                     [--tail] [--tail-k N] [--tail-json PATH]
 *                     [--slow-shard IDX:DELAY_US[:EVERY_N]]
 *
 * Serves both protocols on one port until SIGINT/SIGTERM, then drains
 * gracefully (flushes queued replies) for --drain-ms before exiting.
 * --metrics-json writes the final obs::MetricsRegistry snapshot (the
 * same JSON the `metrics` admin command serves) to PATH after the
 * drain; --trace arms the flight recorder, whose ring is dumped to
 * stderr on panic/fatal.
 * --tail arms the per-request tail tracer (obs/tail.h): the K slowest
 * requests (--tail-k, default 32 per thread) keep their full
 * parse→flush span chains, served live via `stats tail` or the `tail`
 * admin command and written as tmemc-tail-v1 JSON to --tail-json PATH
 * after the drain (either flag arms the tracer). --slow-shard arms
 * the mc.shard<IDX>.op fault site with a DELAY_US stall every EVERY_N
 * ops (default 1) — the injected slow shard the tail soak blames.
 * Try:
 *   ./build/src/net/tmemc_server --branch IT-onCommit --port 11211 &
 *   printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 11211
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/fault.h"
#include "mc/cache_iface.h"
#include "mc/sharded_cache.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "tm/api.h"

namespace
{

// atom-protocol: relaxed-ok(signal-to-main stop flag; the poll loop
// only needs eventual visibility, no data is published through it)
std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tmemc;

    std::string branch = "IT-onCommit";
    std::uint16_t port = 11211;
    std::uint32_t workers = 4;
    std::uint32_t shards = 1;
    std::size_t mem_mb = 64;
    std::uint32_t max_conns = 0;
    std::uint32_t idle_timeout_ms = 0;
    std::uint32_t drain_ms = 2000;
    net::IoBackend io_backend = net::IoBackend::Epoll;
    std::string metrics_json;
    bool trace = false;
    bool tail = false;
    std::size_t tail_k = 0;  // 0: obs::tail::kDefaultTailK.
    std::string tail_json;
    std::string slow_shard;
    int verbose = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--branch")
            branch = next();
        else if (a == "--port")
            port = static_cast<std::uint16_t>(std::atoi(next()));
        else if (a == "--workers")
            workers = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--shards")
            shards = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--mem")
            mem_mb = static_cast<std::size_t>(std::atoi(next()));
        else if (a == "--max-conns")
            max_conns = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--idle-timeout")
            idle_timeout_ms =
                static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--drain-ms")
            drain_ms = static_cast<std::uint32_t>(std::atoi(next()));
        else if (a == "--io-backend") {
            const std::string v = next();
            if (!net::parseIoBackend(v, io_backend)) {
                std::fprintf(stderr,
                             "unknown --io-backend '%s' (want epoll, "
                             "writev, or io_uring)\n",
                             v.c_str());
                return 2;
            }
        } else if (a == "--metrics-json")
            metrics_json = next();
        else if (a == "--trace")
            trace = true;
        else if (a == "--tail")
            tail = true;
        else if (a == "--tail-k")
            tail_k = static_cast<std::size_t>(std::atoi(next()));
        else if (a == "--tail-json") {
            tail_json = next();
            tail = true;
        } else if (a == "--slow-shard")
            slow_shard = next();
        else if (a == "--verbose")
            verbose = 1;
        else {
            std::fprintf(stderr,
                         "usage: %s [--branch NAME] [--port N] "
                         "[--workers N] [--shards N] [--mem MB] "
                         "[--max-conns N] [--idle-timeout MS] "
                         "[--drain-ms MS] "
                         "[--io-backend epoll|writev|io_uring] "
                         "[--metrics-json PATH] "
                         "[--trace] [--verbose] "
                         "[--tail] [--tail-k N] [--tail-json PATH] "
                         "[--slow-shard IDX:DELAY_US[:EVERY_N]]\n",
                         argv[0]);
            return 2;
        }
    }

    // IT-RA expects the release-acquire STM; every other branch gets
    // the GCC-default configuration. Must precede cache creation.
    tm::Runtime::get().configure(mc::runtimeCfgFor(branch));
    if (trace)
        obs::armTrace();
    if (tail) {
        obs::tail::armTail(tail_k != 0 ? tail_k
                                       : obs::tail::kDefaultTailK);
        obs::tail::setTailLabel(
            branch,
            tm::algoKindName(tm::Runtime::get().cfg().algo));
    }
    if (!slow_shard.empty()) {
        unsigned idx = 0;
        unsigned long long delay_us = 0;
        unsigned long long every_n = 1;
        const int got = std::sscanf(slow_shard.c_str(), "%u:%llu:%llu",
                                    &idx, &delay_us, &every_n);
        if (got < 2 || delay_us == 0 || every_n == 0) {
            std::fprintf(stderr,
                         "bad --slow-shard '%s' (want "
                         "IDX:DELAY_US[:EVERY_N])\n",
                         slow_shard.c_str());
            return 2;
        }
        if (idx >= shards) {
            std::fprintf(stderr,
                         "--slow-shard index %u out of range "
                         "(--shards %u)\n",
                         idx, shards);
            return 2;
        }
        fault::Policy policy;
        policy.trigger = fault::Trigger::EveryNth;
        policy.n = every_n;
        policy.delayUs = delay_us;
        fault::arm(mc::shardFaultSite(idx), policy);
    }

    mc::Settings settings;
    settings.maxBytes = mem_mb * 1024 * 1024;
    settings.verbose = verbose;
    auto cache = mc::makeShardedCache(branch, settings, workers, shards);
    if (cache == nullptr) {
        std::fprintf(stderr, "unknown branch '%s' (or --shards 0)\n",
                     branch.c_str());
        return 1;
    }

    net::ServerCfg cfg;
    cfg.port = port;
    cfg.workers = workers;
    cfg.maxConns = max_conns;
    cfg.idleTimeoutMs = idle_timeout_ms;
    cfg.ioBackend = io_backend;
    net::Server server(*cache, cfg);
    if (!server.start()) {
        std::fprintf(stderr, "failed to bind 127.0.0.1:%u\n",
                     static_cast<unsigned>(port));
        return 1;
    }
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::printf("tmemc_server: branch=%s workers=%u shards=%u "
                "io_backend=%s listening on 127.0.0.1:%u\n",
                cache->branchName(), workers, cache->shardCount(),
                net::ioBackendName(server.ioBackend()),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    while (!g_stop.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const bool drained = server.drain(drain_ms);
    // Written after the drain so the command/cache-op/tx histograms
    // and the net totals cover every request that was served.
    if (!metrics_json.empty() &&
        !obs::MetricsRegistry::get().writeJsonFile(metrics_json)) {
        std::fprintf(stderr, "tmemc_server: cannot write %s\n",
                     metrics_json.c_str());
    }
    if (!tail_json.empty() &&
        !obs::tail::writeTailJsonFile(tail_json)) {
        std::fprintf(stderr, "tmemc_server: cannot write %s\n",
                     tail_json.c_str());
    }
    std::printf("tmemc_server: %llu connections, %llu requests%s\n",
                static_cast<unsigned long long>(server.accepted()),
                static_cast<unsigned long long>(server.requestsServed()),
                drained ? "" : " (drain deadline hit)");
    return 0;
}
