/**
 * @file
 * Flight recorder: a fixed-capacity per-thread ring of TM and fault
 * events, dumped on demand or on crash.
 *
 * The paper's authors "manually diagnosed the causes of aborts and
 * serialization" by hacking execinfo into GCC's TM runtime (Section
 * 6); the per-site counters in tm/stats.h answer *how often*, this
 * ring answers *in what order* — the last few thousand begin / abort /
 * serial-switch / commit / fault-site events per thread, timestamped,
 * so a wedged or crashed run leaves a readable tail of what the
 * runtime was doing.
 *
 * Cost model mirrors common/fault.h: while the recorder is disarmed
 * (the default; arm with tmemc_server --trace or obs::armTrace()),
 * every trace point is one relaxed load of a global flag and a
 * predictable branch. Armed recording appends under the ring's own
 * mutex — per-thread, so uncontended except while a dump is folding
 * the rings — which keeps concurrent dump() exact and race-free.
 *
 * Rings outlive their threads: the registry keeps shared ownership,
 * so a post-mortem dump still shows events from exited workers. On
 * panic()/fatal() the crash hook installed by armTrace() dumps every
 * ring to stderr before the process dies.
 */

#ifndef TMEMC_OBS_TRACE_H
#define TMEMC_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace tmemc::obs
{

/** What happened (one record per event). */
enum class TraceEvent : std::uint8_t
{
    TxBegin,         //!< Top-level transaction attempt began.
    TxCommit,        //!< Top-level transaction committed.
    TxAbort,         //!< Attempt rolled back (conflict or CM).
    TxSerialSwitch,  //!< unsafeOp() forced an in-flight switch.
    FaultSiteHit,    //!< An armed fault-injection site was consulted.
};

/** Printable name for @p ev. */
const char *traceEventName(TraceEvent ev);

/** One flight-recorder record. */
struct TraceRecord
{
    std::uint64_t tsc;   //!< Monotonic ns stamp (nowNanos()).
    const char *site;    //!< Static site/attr name; never owned.
    std::uint32_t shard; //!< Shard id where known, else 0.
    TraceEvent event;
};

/** Records kept per thread before the ring wraps. */
constexpr std::size_t kTraceCapacity = 4096;

namespace detail
{

// atom-protocol: armed-latch
extern std::atomic<bool> g_traceArmed;

/** Slow path: append to this thread's ring (registers it on first
 *  use). Only reached while armed. */
void traceRecordSlow(TraceEvent ev, const char *site,
                     std::uint32_t shard);

} // namespace detail

/** One relaxed load: is the flight recorder armed? */
inline bool
traceArmed()
{
    return detail::g_traceArmed.load(std::memory_order_relaxed);
}

/**
 * Trace point: no-op (one load + branch) while disarmed, ring append
 * while armed. @p site must be a static string (TxnAttr name, fault
 * site literal); the ring stores the pointer, not a copy.
 */
inline void
traceRecord(TraceEvent ev, const char *site, std::uint32_t shard = 0)
{
    if (traceArmed())
        detail::traceRecordSlow(ev, site, shard);
}

/** Arm the recorder and install the crash-dump hook. */
void armTrace();

/** Disarm; rings keep their contents for a later dump. */
void disarmTrace();

/** Discard every ring's contents (test isolation). */
void resetTrace();

/**
 * Render every ring, one "t=<ns> thread=<n> <event> site=<name>
 * shard=<s>" line per record in per-thread ring order, oldest
 * surviving record first.
 */
std::string dumpTrace();

/** Total records currently held across all rings. */
std::uint64_t traceRecordCount();

} // namespace tmemc::obs

#endif // TMEMC_OBS_TRACE_H
