/**
 * @file
 * Tail-tracer implementation: the thread-local request builder, the
 * per-thread top-K reservoirs, the registry that keeps them alive
 * past thread exit, and the ASCII / tmemc-tail-v1 renders.
 */

#include "obs/tail.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "obs/hist.h"

namespace tmemc::obs::tail
{

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Parse:
        return "parse";
      case SpanKind::Exec:
        return "exec";
      case SpanKind::Tx:
        return "tx";
      case SpanKind::Flush:
        return "flush";
    }
    return "?";
}

const char *
txOutcomeName(TxOutcome outcome, bool serial)
{
    switch (outcome) {
      case TxOutcome::None:
        return "open";
      case TxOutcome::Commit:
        return serial ? "serial-commit" : "commit";
      case TxOutcome::Abort:
        return "abort";
      case TxOutcome::Switch:
        return "serial-switch";
      case TxOutcome::Promote:
        return "ro-promote";
      case TxOutcome::Retry:
        return "retry";
    }
    return "?";
}

namespace
{

/**
 * One thread's reservoir: a min-heap (by total latency) of the K
 * slowest finished requests this thread served. minNs caches the
 * heap minimum once the reservoir is full, so the common case — a
 * request faster than everything kept — is rejected with one relaxed
 * load and no lock. 0 means "not full yet: always take the lock".
 */
struct Reservoir
{
    std::mutex mu;
    // atom-protocol: relaxed-ok(lock-free fast-reject floor only; a
    // stale read just means taking mu, the exact value lives under mu)
    std::atomic<std::uint64_t> minNs{0};
    std::vector<PendingTrace> keep;
};

struct Registry
{
    std::mutex mu;
    std::vector<std::shared_ptr<Reservoir>> reservoirs;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

Reservoir &
myReservoir()
{
    thread_local std::shared_ptr<Reservoir> res = [] {
        auto r = std::make_shared<Reservoir>();
        Registry &reg = registry();
        std::lock_guard<std::mutex> guard(reg.mu);
        reg.reservoirs.push_back(r);
        return r;
    }();
    return *res;
}

/** Heap order: smallest total latency at the front, so the cheapest
 *  kept trace is the one a slower newcomer evicts. */
bool
slowerThan(const PendingTrace &a, const PendingTrace &b)
{
    return a->totalNs() > b->totalNs();
}

// atom-protocol: relaxed-counter
std::atomic<std::uint64_t> g_nextId{1};
// atom-protocol: relaxed-counter
std::atomic<std::uint64_t> g_considered{0};
// atom-protocol: relaxed-ok(config written before g_tailArmed's
// release store; readers acquire the latch in beginRequestSlow)
std::atomic<std::size_t> g_tailK{kDefaultTailK};

std::mutex g_labelMu;
std::string g_branchLabel;
std::string g_algoLabel;

/** The request currently being recorded on this thread, plus the
 *  indices of its open exec / tx spans. Only the owning thread ever
 *  touches it, so recording takes no lock. */
struct Builder
{
    PendingTrace cur;
    std::ptrdiff_t execIdx = -1;
    std::ptrdiff_t txIdx = -1;
    std::uint32_t curShard = 0;

    void
    reset()
    {
        cur.reset();
        execIdx = -1;
        txIdx = -1;
        curShard = 0;
    }
};

thread_local Builder tlsBuilder;

std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; s != nullptr && *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

namespace detail
{

// atom-protocol: armed-latch
std::atomic<bool> g_tailArmed{false};

std::uint64_t
beginRequestSlow(std::uint32_t worker, bool binary,
                 std::uint64_t parse_t0)
{
    // Acquire re-read of the latch: synchronizes with armTail()'s
    // release store, so the g_tailK/reservoir configuration written
    // before arming is visible to everything this request does. The
    // caller's relaxed fast-path gate proves nothing about that.
    if (!g_tailArmed.load(std::memory_order_acquire))
        return 0;
    Builder &b = tlsBuilder;
    // A stale in-flight trace (arm/disarm raced a request) is dropped;
    // requests on one thread never overlap otherwise.
    b.reset();
    const std::uint64_t now = nowNanos();
    if (parse_t0 == 0 || parse_t0 > now)
        parse_t0 = now;
    auto trace = std::make_shared<RequestTrace>();
    trace->id = g_nextId.fetch_add(1, std::memory_order_relaxed);
    trace->worker = worker;
    trace->binary = binary;
    trace->startNs = parse_t0;
    Span parse;
    parse.kind = SpanKind::Parse;
    parse.t0 = parse_t0;
    parse.t1 = now;
    trace->spans.push_back(parse);
    Span exec;
    exec.kind = SpanKind::Exec;
    exec.t0 = now;
    trace->spans.push_back(exec);
    b.execIdx = 1;
    b.cur = std::move(trace);
    g_considered.fetch_add(1, std::memory_order_relaxed);
    return b.cur->id;
}

void
noteShardSlow(std::uint32_t shard)
{
    Builder &b = tlsBuilder;
    if (b.cur == nullptr)
        return;
    b.curShard = shard;
    b.cur->shard = shard;
}

void
noteTxBeginSlow(const char *site, bool serial, std::uint32_t attempt)
{
    Builder &b = tlsBuilder;
    if (b.cur == nullptr)
        return;
    if (b.cur->spans.size() >= kMaxTailSpans) {
        b.cur->overflow = true;
        b.txIdx = -1;
        return;
    }
    Span s;
    s.kind = SpanKind::Tx;
    s.t0 = nowNanos();
    s.site = site;
    s.serial = serial;
    s.attempt = attempt;
    s.shard = b.curShard;
    b.txIdx = static_cast<std::ptrdiff_t>(b.cur->spans.size());
    b.cur->spans.push_back(s);
}

void
noteTxCauseSlow(const char *cause)
{
    Builder &b = tlsBuilder;
    if (b.cur == nullptr || b.txIdx < 0)
        return;
    b.cur->spans[static_cast<std::size_t>(b.txIdx)].cause = cause;
}

void
noteTxEndSlow(TxOutcome outcome, bool serial)
{
    Builder &b = tlsBuilder;
    if (b.cur == nullptr || b.txIdx < 0)
        return;
    Span &s = b.cur->spans[static_cast<std::size_t>(b.txIdx)];
    s.t1 = nowNanos();
    s.outcome = outcome;
    s.serial = s.serial || serial;
    s.shard = b.curShard;
    if (s.cause == nullptr) {
        switch (outcome) {
          case TxOutcome::Abort:
            s.cause = "conflict";
            break;
          case TxOutcome::Switch:
            s.cause = "unsafe-op";
            break;
          case TxOutcome::Promote:
            s.cause = "ro-promotion";
            break;
          case TxOutcome::Retry:
            s.cause = "tm::retry";
            break;
          case TxOutcome::Commit:
          case TxOutcome::None:
            break;
        }
    }
    b.txIdx = -1;
}

PendingTrace
endRequestSlow()
{
    Builder &b = tlsBuilder;
    if (b.cur == nullptr)
        return nullptr;
    const std::uint64_t now = nowNanos();
    // An attempt still open here means the tracer was toggled
    // mid-transaction; leave the span open rather than invent an end.
    b.txIdx = -1;
    if (b.execIdx >= 0) {
        Span &e = b.cur->spans[static_cast<std::size_t>(b.execIdx)];
        e.t1 = now;
        e.shard = b.curShard;
    }
    if (b.cur->spans.size() < kMaxTailSpans) {
        Span f;
        f.kind = SpanKind::Flush;
        f.t0 = now;
        f.shard = b.curShard;
        b.cur->spans.push_back(f);
    } else {
        b.cur->overflow = true;
    }
    PendingTrace out = std::move(b.cur);
    b.reset();
    return out;
}

void
offerTrace(PendingTrace trace)
{
    if (trace == nullptr)
        return;
    const std::size_t k = g_tailK.load(std::memory_order_relaxed);
    if (k == 0)
        return;
    Reservoir &r = myReservoir();
    const std::uint64_t total = trace->totalNs();
    const std::uint64_t floor = r.minNs.load(std::memory_order_relaxed);
    if (floor != 0 && total <= floor)
        return;  // Faster than everything kept: no lock taken.
    std::lock_guard<std::mutex> guard(r.mu);
    r.keep.push_back(std::move(trace));
    std::push_heap(r.keep.begin(), r.keep.end(), slowerThan);
    while (r.keep.size() > k) {
        std::pop_heap(r.keep.begin(), r.keep.end(), slowerThan);
        r.keep.pop_back();
    }
    r.minNs.store(r.keep.size() >= k ? r.keep.front()->totalNs() : 0,
                  std::memory_order_relaxed);
}

} // namespace detail

void
finishRequest(PendingTrace trace, std::uint64_t end_ns)
{
    if (trace == nullptr)
        return;
    if (end_ns < trace->startNs)
        end_ns = trace->startNs;
    trace->endNs = end_ns;
    if (!trace->spans.empty()) {
        Span &last = trace->spans.back();
        if (last.kind == SpanKind::Flush && last.t1 == 0)
            last.t1 = end_ns;
    }
    detail::offerTrace(std::move(trace));
}

void
armTail(std::size_t k)
{
    g_tailK.store(k == 0 ? kDefaultTailK : k,
                  std::memory_order_relaxed);
    resetTail();
    // Release publishes the K/reservoir configuration written above:
    // a worker that acquires the latch in beginRequestSlow() must see
    // it (armed-latch protocol; was relaxed — a worker could trace
    // against the previous arm's K).
    detail::g_tailArmed.store(true, std::memory_order_release);
}

void
disarmTail()
{
    detail::g_tailArmed.store(false, std::memory_order_release);
}

void
resetTail()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.mu);
    for (auto &r : reg.reservoirs) {
        std::lock_guard<std::mutex> rg(r->mu);
        r->keep.clear();
        r->minNs.store(0, std::memory_order_relaxed);
    }
    g_considered.store(0, std::memory_order_relaxed);
}

std::size_t
tailK()
{
    return g_tailK.load(std::memory_order_relaxed);
}

std::uint64_t
tailConsidered()
{
    return g_considered.load(std::memory_order_relaxed);
}

void
setTailLabel(const std::string &branch, const std::string &algo)
{
    std::lock_guard<std::mutex> guard(g_labelMu);
    g_branchLabel = branch;
    g_algoLabel = algo;
}

std::vector<std::shared_ptr<const RequestTrace>>
snapshotTail()
{
    // Copy the reservoir list under the registry lock, then fold each
    // under its own lock, exactly like the flight recorder's dump.
    std::vector<std::shared_ptr<Reservoir>> reservoirs;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> guard(reg.mu);
        reservoirs = reg.reservoirs;
    }
    std::vector<std::shared_ptr<const RequestTrace>> all;
    for (auto &r : reservoirs) {
        std::lock_guard<std::mutex> guard(r->mu);
        all.insert(all.end(), r->keep.begin(), r->keep.end());
    }
    std::sort(all.begin(), all.end(),
              [](const auto &a, const auto &b) {
                  if (a->totalNs() != b->totalNs())
                      return a->totalNs() > b->totalNs();
                  return a->id < b->id;
              });
    const std::size_t k = g_tailK.load(std::memory_order_relaxed);
    if (all.size() > k)
        all.resize(k);
    return all;
}

namespace
{

std::uint64_t
spanDurNs(const Span &s)
{
    return s.t1 > s.t0 ? s.t1 - s.t0 : 0;
}

void
appendSpanAscii(std::ostringstream &os, const Span &s)
{
    char buf[192];
    if (s.kind == SpanKind::Tx) {
        std::snprintf(buf, sizeof(buf), "tx%u:%s:%s:%s:s%u:%llu",
                      s.attempt, txOutcomeName(s.outcome, s.serial),
                      s.cause != nullptr ? s.cause : "-",
                      s.site != nullptr ? s.site : "-", s.shard,
                      static_cast<unsigned long long>(spanDurNs(s) /
                                                      1000));
    } else {
        std::snprintf(buf, sizeof(buf), "%s:s%u:%llu",
                      spanKindName(s.kind), s.shard,
                      static_cast<unsigned long long>(spanDurNs(s) /
                                                      1000));
    }
    os << buf;
}

} // namespace

std::string
tailAsciiRows()
{
    const auto traces = snapshotTail();
    std::ostringstream os;
    os << "STAT tail_armed " << (tailArmed() ? 1 : 0) << "\r\n"
       << "STAT tail_k " << tailK() << "\r\n"
       << "STAT tail_considered " << tailConsidered() << "\r\n"
       << "STAT tail_kept " << traces.size() << "\r\n";
    std::size_t rank = 0;
    for (const auto &t : traces) {
        char head[160];
        std::snprintf(head, sizeof(head),
                      "STAT tail%zu id=%llu worker=%u shard=%u "
                      "binary=%d total_us=%llu spans=",
                      rank, static_cast<unsigned long long>(t->id),
                      t->worker, t->shard, t->binary ? 1 : 0,
                      static_cast<unsigned long long>(t->totalNs() /
                                                      1000));
        os << head;
        for (std::size_t i = 0; i < t->spans.size(); ++i) {
            if (i != 0)
                os << ';';
            appendSpanAscii(os, t->spans[i]);
        }
        if (t->overflow)
            os << ";...";
        os << "\r\n";
        ++rank;
    }
    return os.str();
}

std::string
tailToJson()
{
    const auto traces = snapshotTail();
    std::string branch;
    std::string algo;
    {
        std::lock_guard<std::mutex> guard(g_labelMu);
        branch = g_branchLabel;
        algo = g_algoLabel;
    }
    std::ostringstream os;
    os << "{\"schema\":\"tmemc-tail-v1\""
       << ",\"branch\":\"" << jsonEscape(branch.c_str()) << "\""
       << ",\"algo\":\"" << jsonEscape(algo.c_str()) << "\""
       << ",\"armed\":" << (tailArmed() ? "true" : "false")
       << ",\"k\":" << tailK()
       << ",\"considered\":" << tailConsidered()
       << ",\"kept\":" << traces.size() << ",\"requests\":[";
    bool first_req = true;
    for (const auto &t : traces) {
        if (!first_req)
            os << ',';
        first_req = false;
        os << "{\"id\":" << t->id << ",\"worker\":" << t->worker
           << ",\"shard\":" << t->shard
           << ",\"binary\":" << (t->binary ? "true" : "false")
           << ",\"start_ns\":" << t->startNs
           << ",\"total_ns\":" << t->totalNs()
           << ",\"overflow\":" << (t->overflow ? "true" : "false")
           << ",\"spans\":[";
        bool first_span = true;
        for (const Span &s : t->spans) {
            if (!first_span)
                os << ',';
            first_span = false;
            // t0 is trace-relative so timelines read from zero.
            const std::uint64_t rel =
                s.t0 > t->startNs ? s.t0 - t->startNs : 0;
            os << "{\"kind\":\"" << spanKindName(s.kind) << "\""
               << ",\"shard\":" << s.shard << ",\"t0_ns\":" << rel
               << ",\"dur_ns\":" << spanDurNs(s);
            if (s.kind == SpanKind::Tx) {
                os << ",\"attempt\":" << s.attempt
                   << ",\"outcome\":\""
                   << txOutcomeName(s.outcome, s.serial) << "\""
                   << ",\"serial\":" << (s.serial ? "true" : "false")
                   << ",\"site\":\""
                   << jsonEscape(s.site != nullptr ? s.site : "") << "\""
                   << ",\"cause\":\""
                   << jsonEscape(s.cause != nullptr ? s.cause : "")
                   << "\"";
            }
            os << '}';
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

bool
writeTailJsonFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string text = tailToJson();
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
        std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
}

} // namespace tmemc::obs::tail
