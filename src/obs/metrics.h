/**
 * @file
 * MetricsRegistry: every counter and latency distribution in the
 * process behind one snapshot API, rendered three ways — ASCII
 * `stats latency` / `stats tm` rows for memcached-style clients, a
 * JSON document for machines (the CI perf gate diffs it), and the
 * `metrics` admin command over TCP.
 *
 * Layering: this library depends only on src/common. Subsystems that
 * own counters (the TM runtime's ThreadStats, the net layer's
 * NetCounters, a cache's slab/LRU/assoc stats) register a *source* —
 * a closure returning name/value pairs — rather than this registry
 * knowing their types. Histograms are the opposite: a fixed, enum-
 * indexed set owned here, so the hot paths that record into them
 * (net/conn.cc per command, mc/sharded_cache.cc per cache op,
 * tm/runtime.cc per transaction) reach them with one array index and
 * no hashing.
 */

#ifndef TMEMC_OBS_METRICS_H
#define TMEMC_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/hist.h"

namespace tmemc::obs
{

/** The process's latency histograms, by instrumentation layer. */
enum class HistKind : unsigned
{
    Command,     //!< One wire request, framed to reply (net/conn.cc).
    CacheOp,     //!< One cache operation (mc/sharded_cache.cc).
    Tx,          //!< One top-level transaction, begin to commit.
    TxSerial,    //!< Serial-mode portion of serialized transactions.
    TxAttempts,  //!< Attempts per committed transaction. Recorded as
                 //!< attempts*1000 so the microsecond-named quantile
                 //!< fields read directly as attempt counts.
};

constexpr unsigned kHistKinds = 5;

/** Wire names for the histograms (JSON keys / STAT row prefixes). */
const char *histKindName(HistKind k);

/** One named counter contributed by a source. */
struct Counter
{
    std::string name;
    std::uint64_t value;
};

/** A counter source: snapshots a subsystem's counters on demand. */
using SourceFn = std::function<std::vector<Counter>()>;

/** Everything the registry knows at one instant. */
struct MetricsSnapshot
{
    /** Counters, source-prefixed ("tm_commits", "net_curr_conns"). */
    std::vector<Counter> counters;
    /** One summary per HistKind, indexed by the enum. */
    HistSummary hists[kHistKinds];

    /** Render as one JSON document (schema in docs/architecture.md §8). */
    std::string toJson() const;
    /** STAT rows for the ASCII `stats latency` reply. */
    std::string asciiLatencyRows() const;
    /** STAT rows for the ASCII `stats tm` reply. */
    std::string asciiTmRows() const;
    /** STAT rows for the ASCII `stats cluster` reply: every counter a
     *  net::Cluster living in this process registered ("cluster_"
     *  prefix); empty when the process hosts no cluster client. */
    std::string asciiClusterRows() const;
};

/** Process-wide metrics aggregation point. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &get();

    /** The histogram for @p k (valid for the process lifetime). */
    Histogram &histogram(HistKind k) { return hists_[unsigned(k)]; }

    /**
     * Register a counter source under @p prefix; every counter it
     * returns is exposed as "<prefix>_<name>". The callback runs with
     * the registry lock held (so unregisterSource is a barrier) and
     * therefore must not call back into the registry; taking its own
     * subsystem's locks is fine. @return a token for unregisterSource
     * (sources whose subsystem outlives the process, like the TM
     * runtime, never bother).
     */
    std::uint64_t registerSource(std::string prefix, SourceFn fn);
    /** Remove a source. On return the callback is guaranteed to not
     *  be running and will never run again. */
    void unregisterSource(std::uint64_t token);

    /** Snapshot every source and histogram. */
    MetricsSnapshot snapshot() const;

    /** Zero the histograms (between benchmark phases). */
    void resetHistograms();

    /** snapshot().toJson() written to @p path; false on I/O error. */
    bool writeJsonFile(const std::string &path) const;

  private:
    MetricsRegistry() = default;

    struct Source
    {
        std::uint64_t token;
        std::string prefix;
        SourceFn fn;
    };

    mutable std::mutex mu_;
    std::vector<Source> sources_;
    std::uint64_t nextToken_ = 1;
    Histogram hists_[kHistKinds];
};

/** Shorthand for the hot paths: obs::hist(HistKind::Tx).record(ns). */
inline Histogram &
hist(HistKind k)
{
    return MetricsRegistry::get().histogram(k);
}

} // namespace tmemc::obs

#endif // TMEMC_OBS_METRICS_H
