/**
 * @file
 * Lock-free log-bucketed latency histogram (HDR-style).
 *
 * The paper's figures report wall-clock for fixed work; a production
 * cache also needs *distributions* — a p999 regression is invisible
 * in a mean. This histogram keeps log-linear buckets (octaves split
 * into 2^kSubBits linear sub-buckets, ~3% relative error) so the full
 * nanosecond-to-minutes range fits in a few KB per recorder.
 *
 * Hot-path cost is one relaxed fetch_add on a bucket counter plus the
 * shift/clz to find the bucket — no locks, no allocation. Recorders
 * are striped: each thread hashes to its own cache-line-padded stripe
 * so concurrent record() calls do not bounce a shared line (the same
 * padding discipline as the orec table, common/padded.h).
 *
 * Snapshots fold the stripes into a plain HistCounts value; counts
 * from different histograms/threads merge by bucket-wise addition,
 * which is associative — the property tests/obs/test_hist.cc checks —
 * so per-thread, per-shard, and per-process views all come from the
 * same merge.
 */

#ifndef TMEMC_OBS_HIST_H
#define TMEMC_OBS_HIST_H

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/compiler.h"

namespace tmemc::obs
{

/** Sub-bucket resolution: 2^5 = 32 linear buckets per octave. */
constexpr unsigned kSubBits = 5;
constexpr unsigned kSubBuckets = 1u << kSubBits;

/** Values clamp here (~137 s in ns); keeps the table small. */
constexpr std::uint64_t kMaxTrackable = (std::uint64_t{1} << 37) - 1;

/** Total buckets: one linear block for [0, 32) plus one block per
 *  octave up to the clamp. */
constexpr unsigned kNumBuckets = (37 - kSubBits + 1) * kSubBuckets;

/** Map a value to its bucket index (monotonic in the value). */
inline unsigned
bucketOf(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<unsigned>(v);  // Exact below one octave.
    if (v > kMaxTrackable)
        v = kMaxTrackable;
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    const unsigned sub =
        static_cast<unsigned>((v >> shift) - kSubBuckets);
    return (shift + 1) * kSubBuckets + sub;
}

/** Lowest value that maps to bucket @p idx. */
inline std::uint64_t
bucketLow(unsigned idx)
{
    if (idx < kSubBuckets)
        return idx;
    const unsigned shift = idx / kSubBuckets - 1;
    const unsigned sub = idx % kSubBuckets;
    return (std::uint64_t{kSubBuckets} + sub) << shift;
}

/** Representative (midpoint) value for bucket @p idx. */
inline std::uint64_t
bucketMid(unsigned idx)
{
    if (idx < kSubBuckets)
        return idx;
    const unsigned shift = idx / kSubBuckets - 1;
    return bucketLow(idx) + (std::uint64_t{1} << shift) / 2;
}

/** Percentile summary of one histogram (times in microseconds). */
struct HistSummary
{
    std::uint64_t count = 0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double maxUs = 0.0;
};

/**
 * Plain (non-atomic) bucket counts: the snapshot/merge value type.
 * add() is bucket-wise addition, hence commutative and associative.
 */
struct HistCounts
{
    std::array<std::uint64_t, kNumBuckets> buckets{};
    std::uint64_t count = 0;

    void
    add(const HistCounts &o)
    {
        for (unsigned i = 0; i < kNumBuckets; ++i)
            buckets[i] += o.buckets[i];
        count += o.count;
    }

    /** Value (ns) at quantile @p q in [0, 1], from bucket midpoints. */
    std::uint64_t
    quantile(double q) const
    {
        if (count == 0)
            return 0;
        const double want_d = q * static_cast<double>(count);
        std::uint64_t want = static_cast<std::uint64_t>(want_d);
        if (want >= count)
            want = count - 1;
        std::uint64_t seen = 0;
        for (unsigned i = 0; i < kNumBuckets; ++i) {
            seen += buckets[i];
            if (seen > want)
                return bucketMid(i);
        }
        return bucketMid(kNumBuckets - 1);
    }

    /** Midpoint of the highest occupied bucket (ns). */
    std::uint64_t
    maxValue() const
    {
        for (unsigned i = kNumBuckets; i-- > 0;) {
            if (buckets[i] != 0)
                return bucketMid(i);
        }
        return 0;
    }

    HistSummary
    summary() const
    {
        constexpr double kNsPerUs = 1000.0;
        HistSummary s;
        s.count = count;
        s.p50Us = static_cast<double>(quantile(0.50)) / kNsPerUs;
        s.p95Us = static_cast<double>(quantile(0.95)) / kNsPerUs;
        s.p99Us = static_cast<double>(quantile(0.99)) / kNsPerUs;
        s.p999Us = static_cast<double>(quantile(0.999)) / kNsPerUs;
        s.maxUs = static_cast<double>(maxValue()) / kNsPerUs;
        return s;
    }
};

/**
 * Concurrent recorder: kStripes cache-line-padded atomic bucket
 * arrays; each thread records into the stripe its registration index
 * hashes to. snapshot() may run concurrently with record() — it folds
 * relaxed loads, so it sees some consistent-enough recent state, never
 * tearing a counter.
 */
class Histogram
{
  public:
    static constexpr unsigned kStripes = 8;

    Histogram() : stripes_(new Stripe[kStripes]) {}

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one sample (nanoseconds). Relaxed increment + shift. */
    TMEMC_ALWAYS_INLINE void
    record(std::uint64_t ns)
    {
        stripes_[stripeIndex()].buckets[bucketOf(ns)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Fold all stripes into a plain value (concurrent-safe). */
    HistCounts
    snapshot() const
    {
        HistCounts out;
        for (unsigned s = 0; s < kStripes; ++s) {
            for (unsigned i = 0; i < kNumBuckets; ++i) {
                const std::uint64_t v = stripes_[s].buckets[i].load(
                    std::memory_order_relaxed);
                out.buckets[i] += v;
                out.count += v;
            }
        }
        return out;
    }

    /** Zero every bucket (between benchmark phases; not linearizable
     *  against concurrent record(), same contract as tm resetStats). */
    void
    reset()
    {
        for (unsigned s = 0; s < kStripes; ++s) {
            for (unsigned i = 0; i < kNumBuckets; ++i)
                stripes_[s].buckets[i].store(0,
                                             std::memory_order_relaxed);
        }
    }

  private:
    struct alignas(cachelineBytes) Stripe
    {
        // atom-protocol: relaxed-counter
        std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    };

    static unsigned
    stripeIndex()
    {
        // One registration per thread; the counter spreads threads
        // round-robin across stripes, so the common case is a
        // single-writer stripe.
        // atom-protocol: relaxed-counter
        static std::atomic<unsigned> next{0};
        thread_local unsigned mine =
            next.fetch_add(1, std::memory_order_relaxed) % kStripes;
        return mine;
    }

    std::unique_ptr<Stripe[]> stripes_;
};

/** Monotonic nanosecond clock for latency measurement. */
inline std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace tmemc::obs

#endif // TMEMC_OBS_HIST_H
