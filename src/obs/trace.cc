/**
 * @file
 * Flight-recorder implementation: per-thread rings, the registry that
 * keeps them alive past thread exit, and the crash-dump hook.
 */

#include "obs/trace.h"

#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "obs/hist.h"

namespace tmemc::obs
{

const char *
traceEventName(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::TxBegin:
        return "tx_begin";
      case TraceEvent::TxCommit:
        return "tx_commit";
      case TraceEvent::TxAbort:
        return "tx_abort";
      case TraceEvent::TxSerialSwitch:
        return "tx_serial_switch";
      case TraceEvent::FaultSiteHit:
        return "fault_site_hit";
    }
    return "?";
}

namespace
{

/** One thread's ring. The mutex is per-ring: the owning thread takes
 *  it on every armed append, a dump takes it while folding — so
 *  recording stays uncontended except during the dump itself. */
struct Ring
{
    std::mutex mu;
    std::uint64_t threadIndex = 0;
    std::uint64_t written = 0;  //!< Monotonic; slot = written % cap.
    std::vector<TraceRecord> recs{kTraceCapacity};
};

struct Registry
{
    std::mutex mu;
    std::vector<std::shared_ptr<Ring>> rings;
    std::uint64_t nextThread = 0;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

std::shared_ptr<Ring> &
myRing()
{
    thread_local std::shared_ptr<Ring> ring = [] {
        auto r = std::make_shared<Ring>();
        Registry &reg = registry();
        std::lock_guard<std::mutex> guard(reg.mu);
        r->threadIndex = reg.nextThread++;
        reg.rings.push_back(r);
        return r;
    }();
    return ring;
}

/** Crash hook: dump to stderr on panic()/fatal() while armed. */
void
crashDump()
{
    const std::string text = dumpTrace();
    std::fputs("--- obs flight recorder ---\n", stderr);
    std::fputs(text.c_str(), stderr);
    std::fputs("--- end flight recorder ---\n", stderr);
}

/** Fault-site hook target (common/fault.h knows nothing of obs). */
void
faultHit(const char *site)
{
    traceRecord(TraceEvent::FaultSiteHit, site);
}

} // namespace

namespace detail
{

// atom-protocol: armed-latch
std::atomic<bool> g_traceArmed{false};

void
traceRecordSlow(TraceEvent ev, const char *site, std::uint32_t shard)
{
    Ring &ring = *myRing();
    std::lock_guard<std::mutex> guard(ring.mu);
    TraceRecord &slot = ring.recs[ring.written % kTraceCapacity];
    slot.tsc = nowNanos();
    slot.site = site;
    slot.shard = shard;
    slot.event = ev;
    ++ring.written;
}

} // namespace detail

void
armTrace()
{
    setCrashHook(&crashDump);
    fault::setHitHook(&faultHit);
    // Release: the hooks installed above (their own release stores)
    // plus any future arm-time config must be published before the
    // latch reads true (armed-latch protocol).
    detail::g_traceArmed.store(true, std::memory_order_release);
}

void
disarmTrace()
{
    detail::g_traceArmed.store(false, std::memory_order_release);
}

void
resetTrace()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.mu);
    for (auto &ring : reg.rings) {
        std::lock_guard<std::mutex> rg(ring->mu);
        ring->written = 0;
    }
}

std::string
dumpTrace()
{
    // Copy the ring list under the registry lock, then fold each ring
    // under its own lock; a concurrently-recording thread blocks only
    // for its own ring's fold.
    std::vector<std::shared_ptr<Ring>> rings;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> guard(reg.mu);
        rings = reg.rings;
    }
    std::ostringstream os;
    for (auto &ring : rings) {
        std::lock_guard<std::mutex> guard(ring->mu);
        const std::uint64_t n = ring->written;
        const std::uint64_t first =
            n > kTraceCapacity ? n - kTraceCapacity : 0;
        if (n > kTraceCapacity) {
            os << "thread " << ring->threadIndex << ": "
               << (n - kTraceCapacity) << " older records overwritten\n";
        }
        for (std::uint64_t i = first; i < n; ++i) {
            const TraceRecord &r = ring->recs[i % kTraceCapacity];
            char buf[192];
            std::snprintf(buf, sizeof(buf),
                          "t=%llu thread=%llu %s site=%s shard=%u\n",
                          static_cast<unsigned long long>(r.tsc),
                          static_cast<unsigned long long>(
                              ring->threadIndex),
                          traceEventName(r.event),
                          r.site != nullptr ? r.site : "?", r.shard);
            os << buf;
        }
    }
    return os.str();
}

std::uint64_t
traceRecordCount()
{
    std::vector<std::shared_ptr<Ring>> rings;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> guard(reg.mu);
        rings = reg.rings;
    }
    std::uint64_t total = 0;
    for (auto &ring : rings) {
        std::lock_guard<std::mutex> guard(ring->mu);
        total += std::min<std::uint64_t>(ring->written, kTraceCapacity);
    }
    return total;
}

} // namespace tmemc::obs
