/**
 * @file
 * Per-request tail-latency tracer: request-scoped span chains kept
 * only for the slowest requests, merged on demand.
 *
 * The histograms in obs/metrics.h say *that* p99 regressed; this
 * tracer says *which requests* and *why*. Conn::drainFrames mints a
 * request ID when a frame becomes executable and records a span chain
 * across the whole serving path — parse, execute, every transaction
 * attempt (with its outcome, abort cause, serial mode and shard), and
 * the I/O-backend flush wait until the reply's last byte left the
 * socket queue. Only requests slow enough for the top-K reservoir
 * survive, so the memory cost is K traces per serving thread, not one
 * per request (the llvm14-ldb tail-latency-debugger shape the ROADMAP
 * asks for).
 *
 * Cost model mirrors trace.h / fault.h: while disarmed (the default;
 * arm with tmemc_server --tail or obs::tail::armTail()), every hook is
 * one relaxed load of a global flag and a predictable branch. Armed,
 * the per-request state is a thread-local builder (the serving thread
 * owns the request end to end, so no lock is taken while recording),
 * and the reservoir insert takes a per-thread mutex — uncontended
 * except while a snapshot is folding the reservoirs — *after* a
 * relaxed threshold check rejects requests faster than the thread's
 * current K-th slowest without locking anything.
 *
 * Reservoirs outlive their threads, exactly like the flight-recorder
 * rings: the registry keeps shared ownership, so `stats tail` after a
 * worker exited still shows its slow requests.
 *
 * Transactions run outside a traced request (maintenance threads,
 * benches driving the cache in-process) hit the armed fast path and
 * then find no active builder; they record nothing.
 */

#ifndef TMEMC_OBS_TAIL_H
#define TMEMC_OBS_TAIL_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tmemc::obs::tail
{

/** What one span covers. Exec overlaps the tx attempts it contains;
 *  spans are kept in open order, so the chain reads as a timeline. */
enum class SpanKind : std::uint8_t
{
    Parse,  //!< Frame carved out of the read buffer.
    Exec,   //!< Executor call: dispatch through cache and protocol.
    Tx,     //!< One top-level transaction attempt.
    Flush,  //!< Reply enqueued until its last byte left the out-queue.
};

/** How a Tx span's attempt ended. */
enum class TxOutcome : std::uint8_t
{
    None,      //!< Span still open (disarm mid-request, crash dump).
    Commit,    //!< Attempt committed.
    Abort,     //!< Data conflict (or CM decision) rolled it back.
    Switch,    //!< unsafeOp() forced a serial restart.
    Promote,   //!< Invisible-reader fast path promoted to full path.
    Retry,     //!< tm::retry(): rolled back and waited for a commit.
};

const char *spanKindName(SpanKind kind);
const char *txOutcomeName(TxOutcome outcome, bool serial);

/** One span. Site/cause are static strings (TxnAttr names, literals);
 *  the span stores the pointer, never a copy. */
struct Span
{
    std::uint64_t t0 = 0;        //!< nowNanos() at open.
    std::uint64_t t1 = 0;        //!< nowNanos() at close (0: open).
    const char *site = nullptr;  //!< Tx: attr name.
    const char *cause = nullptr; //!< Tx: abort/switch/promote cause.
    std::uint32_t shard = 0;     //!< Shard routed when the span closed.
    std::uint32_t attempt = 0;   //!< Tx: 1-based attempt number.
    SpanKind kind = SpanKind::Exec;
    TxOutcome outcome = TxOutcome::None;
    bool serial = false;         //!< Tx: ran serial-irrevocable.
};

/** Spans kept per request before the chain stops growing (a retry
 *  storm must not grow one trace without bound). */
constexpr std::size_t kMaxTailSpans = 96;

/** Default reservoir depth per thread (and merged snapshot size). */
constexpr std::size_t kDefaultTailK = 32;

/** One traced request: identity plus its complete span chain. */
struct RequestTrace
{
    std::uint64_t id = 0;       //!< Process-wide mint order, from 1.
    std::uint64_t startNs = 0;  //!< Parse began (nowNanos clock).
    std::uint64_t endNs = 0;    //!< Flush drained (or conn died).
    std::uint32_t worker = 0;   //!< Event-loop worker index.
    std::uint32_t shard = 0;    //!< Last shard the request routed to.
    bool binary = false;        //!< Protocol of the request frame.
    bool overflow = false;      //!< Spans dropped past kMaxTailSpans.
    std::vector<Span> spans;

    std::uint64_t totalNs() const { return endNs - startNs; }
};

/** Handle for a request whose reply is still flushing: the Conn holds
 *  it until the out-queue drains, then finishRequest() closes the
 *  flush span and offers the trace to the reservoir. */
using PendingTrace = std::shared_ptr<RequestTrace>;

namespace detail
{

// atom-protocol: armed-latch
extern std::atomic<bool> g_tailArmed;

std::uint64_t beginRequestSlow(std::uint32_t worker, bool binary,
                               std::uint64_t parse_t0);
void noteShardSlow(std::uint32_t shard);
void noteTxBeginSlow(const char *site, bool serial,
                     std::uint32_t attempt);
void noteTxCauseSlow(const char *cause);
void noteTxEndSlow(TxOutcome outcome, bool serial);
PendingTrace endRequestSlow();

/** Direct reservoir insert, bypassing the builder: the unit tests
 *  drive top-K/merge/wraparound invariants with fabricated traces. */
void offerTrace(PendingTrace trace);

} // namespace detail

/** One relaxed load: is the tail tracer armed? */
inline bool
tailArmed()
{
    return detail::g_tailArmed.load(std::memory_order_relaxed);
}

/**
 * Start tracing a request on this thread. @p parse_t0 is the stamp
 * taken before framing began; the parse span covers [parse_t0, now]
 * and the exec span opens at now. Returns the minted request ID, or 0
 * while disarmed (no state was touched).
 */
inline std::uint64_t
beginRequest(std::uint32_t worker, bool binary, std::uint64_t parse_t0)
{
    if (!tailArmed())
        return 0;
    return detail::beginRequestSlow(worker, binary, parse_t0);
}

/** The request routed to @p shard (stamped into subsequent spans). */
inline void
noteShard(std::uint32_t shard)
{
    if (tailArmed())
        detail::noteShardSlow(shard);
}

/** A top-level transaction attempt began on this thread. */
inline void
noteTxBegin(const char *site, bool serial, std::uint32_t attempt)
{
    if (tailArmed())
        detail::noteTxBeginSlow(site, serial, attempt);
}

/** Why the open attempt is about to end (switch blame, promotion
 *  cause, conflict). @p cause must be a static string. */
inline void
noteTxCause(const char *cause)
{
    if (tailArmed())
        detail::noteTxCauseSlow(cause);
}

/** The open attempt ended. @p serial: it ran serial-irrevocable. */
inline void
noteTxEnd(TxOutcome outcome, bool serial)
{
    if (tailArmed())
        detail::noteTxEndSlow(outcome, serial);
}

/**
 * Execution finished; the reply is queued but not yet on the wire.
 * Closes the exec span, opens the flush span, and detaches the trace
 * from the thread (a new request may begin). Returns null while
 * disarmed or when no request was being traced.
 */
inline PendingTrace
endRequest()
{
    if (!tailArmed())
        return nullptr;
    return detail::endRequestSlow();
}

/**
 * The connection's out-queue drained (or the connection died) at
 * @p end_ns: close the flush span and offer the finished trace to
 * this thread's reservoir. Null @p trace is ignored.
 */
void finishRequest(PendingTrace trace, std::uint64_t end_ns);

/** Arm the tracer with per-thread reservoir depth @p k (also resets
 *  all reservoirs and the considered/kept counters). */
void armTail(std::size_t k = kDefaultTailK);

/** Disarm; reservoirs keep their contents for a later dump. */
void disarmTail();

/** Discard every reservoir's contents and counters (test isolation). */
void resetTail();

/** Reservoir depth currently armed (or last armed). */
std::size_t tailK();

/** Requests traced since the last arm/reset (kept or not). */
std::uint64_t tailConsidered();

/** Label the dumps with the serving branch and TM algorithm (the
 *  process-wide context every span chain shares). */
void setTailLabel(const std::string &branch, const std::string &algo);

/**
 * Merge every thread's reservoir into the K slowest traces overall,
 * slowest first. Traces are immutable once offered, so the returned
 * pointers are safe to render without any lock.
 */
std::vector<std::shared_ptr<const RequestTrace>> snapshotTail();

/**
 * `stats tail` body: STAT tail_armed/tail_k/tail_considered/tail_kept
 * rows, then one "STAT tail<rank> id=... spans=..." row per kept
 * request, slowest first. Span tokens are ';'-joined, each
 * "<kind>:<detail>:s<shard>:<dur_us>" — e.g.
 * "tx1:abort:conflict:mc.assoc.set:s3:412".
 */
std::string tailAsciiRows();

/** The whole snapshot as one tmemc-tail-v1 JSON object. */
std::string tailToJson();

/** Write tailToJson() to @p path. @return false on I/O error. */
bool writeTailJsonFile(const std::string &path);

} // namespace tmemc::obs::tail

#endif // TMEMC_OBS_TAIL_H
