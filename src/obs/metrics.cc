/**
 * @file
 * MetricsRegistry implementation: source registry, snapshot fold, and
 * the three render targets (JSON, `stats latency`, `stats tm`).
 */

#include "obs/metrics.h"

#include <cstdio>

namespace tmemc::obs
{

const char *
histKindName(HistKind k)
{
    switch (k) {
      case HistKind::Command:
        return "cmd";
      case HistKind::CacheOp:
        return "op";
      case HistKind::Tx:
        return "tx";
      case HistKind::TxSerial:
        return "tx_serial";
      case HistKind::TxAttempts:
        return "tx_attempts";
    }
    return "?";
}

MetricsRegistry &
MetricsRegistry::get()
{
    static MetricsRegistry instance;
    return instance;
}

std::uint64_t
MetricsRegistry::registerSource(std::string prefix, SourceFn fn)
{
    std::lock_guard<std::mutex> guard(mu_);
    const std::uint64_t token = nextToken_++;
    sources_.push_back({token, std::move(prefix), std::move(fn)});
    return token;
}

void
MetricsRegistry::unregisterSource(std::uint64_t token)
{
    std::lock_guard<std::mutex> guard(mu_);
    std::erase_if(sources_,
                  [token](const Source &s) { return s.token == token; });
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    // Sources are invoked under mu_ so that unregisterSource() is a
    // real barrier: once it returns, the callback can no longer be
    // running (Server::stop() relies on this before tearing down the
    // loops its source reads). The price is the documented rule that
    // source callbacks must not call back into the registry.
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> guard(mu_);
    for (const Source &src : sources_) {
        for (Counter &c : src.fn()) {
            snap.counters.push_back(
                {src.prefix + "_" + c.name, c.value});
        }
    }
    for (unsigned k = 0; k < kHistKinds; ++k)
        snap.hists[k] = hists_[k].snapshot().summary();
    return snap;
}

void
MetricsRegistry::resetHistograms()
{
    for (unsigned k = 0; k < kHistKinds; ++k)
        hists_[k].reset();
}

bool
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    const std::string text = snapshot().toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

namespace
{

/** Append "\"name\":value" for a double, trimmed to 3 decimals. */
void
jsonNum(std::string &out, const char *name, double v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", name, v);
    out += buf;
}

void
jsonU64(std::string &out, const char *name, std::uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu", name,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
statRow(std::string &out, const char *name, std::uint64_t v)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "STAT %s %llu\r\n", name,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
statRowF(std::string &out, const char *name, double v)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "STAT %s %.3f\r\n", name, v);
    out += buf;
}

/** The five STAT rows one histogram contributes. */
void
statHistRows(std::string &out, const char *prefix, const HistSummary &s)
{
    char name[64];
    std::snprintf(name, sizeof(name), "lat_%s_count", prefix);
    statRow(out, name, s.count);
    const struct
    {
        const char *suffix;
        double v;
    } rows[] = {{"p50_us", s.p50Us},
                {"p95_us", s.p95Us},
                {"p99_us", s.p99Us},
                {"p999_us", s.p999Us},
                {"max_us", s.maxUs}};
    for (const auto &r : rows) {
        std::snprintf(name, sizeof(name), "lat_%s_%s", prefix, r.suffix);
        statRowF(out, name, r.v);
    }
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::string out = "{\"schema\":\"tmemc-metrics-v1\",\"counters\":{";
    bool first = true;
    for (const Counter &c : counters) {
        if (!first)
            out += ",";
        first = false;
        jsonU64(out, c.name.c_str(), c.value);
    }
    out += "},\"latency\":{";
    for (unsigned k = 0; k < kHistKinds; ++k) {
        if (k != 0)
            out += ",";
        out += "\"";
        out += histKindName(static_cast<HistKind>(k));
        out += "\":{";
        const HistSummary &s = hists[k];
        jsonU64(out, "count", s.count);
        out += ",";
        jsonNum(out, "p50_us", s.p50Us);
        out += ",";
        jsonNum(out, "p95_us", s.p95Us);
        out += ",";
        jsonNum(out, "p99_us", s.p99Us);
        out += ",";
        jsonNum(out, "p999_us", s.p999Us);
        out += ",";
        jsonNum(out, "max_us", s.maxUs);
        out += "}";
    }
    out += "}}";
    return out;
}

std::string
MetricsSnapshot::asciiLatencyRows() const
{
    std::string out;
    for (unsigned k = 0; k < kHistKinds; ++k) {
        statHistRows(out, histKindName(static_cast<HistKind>(k)),
                     hists[k]);
    }
    return out;
}

std::string
MetricsSnapshot::asciiClusterRows() const
{
    std::string out;
    for (const Counter &c : counters) {
        if (c.name.rfind("cluster_", 0) == 0)
            statRow(out, c.name.c_str(), c.value);
    }
    return out;
}

std::string
MetricsSnapshot::asciiTmRows() const
{
    std::string out;
    for (const Counter &c : counters) {
        if (c.name.rfind("tm_", 0) == 0)
            statRow(out, c.name.c_str(), c.value);
    }
    const HistKind tmHists[] = {HistKind::Tx, HistKind::TxSerial,
                                HistKind::TxAttempts};
    for (HistKind k : tmHists)
        statHistRows(out, histKindName(k), hists[unsigned(k)]);
    return out;
}

} // namespace tmemc::obs
