/**
 * @file
 * Transaction-safe allocation: the naive realloc from the paper.
 *
 * "We re-implemented realloc in the naive way, by always allocating a
 * new buffer and using memcpy. We were able to optimize this slightly,
 * since the initial size of the input is always known in memcached."
 *
 * The copy reads the old buffer with instrumented loads; the writes to
 * the fresh buffer are uninstrumented because freshly allocated memory
 * is captured (thread-private until published). The old buffer's free
 * is deferred to commit; on abort the new buffer is reclaimed.
 *
 * Allocation audit (enforced by tmlint rule TM3): every malloc /
 * realloc / free reachable from a transaction body flows through this
 * header or tm::txMalloc / tm::txFree — inside TM branches,
 * Ctx::allocRaw/freeRaw delegate to the transactional allocator. The
 * raw std::malloc/std::free calls that remain in the tree are all
 * outside transactional reach: PlainCtx::allocRaw (the uninstrumented
 * baseline branch, which never runs speculatively), cache teardown in
 * ~Cache (single-threaded, after all transactions have drained), and
 * the runtime's own log/descriptor plumbing in src/tm/ (the trusted
 * computing base — the libitm analogue allocates irrevocably by
 * design). Adding a new raw allocation on a transactional path will
 * fail `test_tmlint_tree` with a TM3 diagnostic.
 */

#ifndef TMEMC_TMSAFE_TM_ALLOC_H
#define TMEMC_TMSAFE_TM_ALLOC_H

#include <cstddef>

#include "common/compiler.h"
#include "tm/api.h"

namespace tmemc::tmsafe
{

/**
 * Transaction-safe realloc with a known old size.
 * @param d        Enclosing transaction.
 * @param old_ptr  Shared buffer to grow (may be null: acts as malloc).
 * @param old_size Number of live bytes in @p old_ptr (the memcached
 *                 optimization: the input size is always known).
 * @param new_size Requested size.
 * @return The new (captured) buffer, or nullptr on exhaustion (real
 *         or injected via the "tmsafe.tm_realloc" fault site); the
 *         old buffer is left intact so the caller can fail the
 *         operation without losing data.
 */
TM_SAFE void *tm_realloc(tm::TxDesc &d, void *old_ptr, std::size_t old_size,
                 std::size_t new_size);

} // namespace tmemc::tmsafe

#endif // TMEMC_TMSAFE_TM_ALLOC_H
