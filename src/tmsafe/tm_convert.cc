/**
 * @file
 * Marshaling-based conversion functions.
 */

#include "tmsafe/tm_convert.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "tmsafe/marshal.h"

namespace tmemc::tmsafe
{

namespace
{

/** Stack bound for marshaled numeric strings. */
constexpr std::size_t kNumBuf = 128;

/**
 * Marshal up to @p max_len bytes of @p nptr onto the stack,
 * NUL-terminated. Stops early at the string's own NUL: the transaction
 * must not read shared bytes past the terminator, both for correctness
 * (they may be unmapped) and to keep the read set minimal.
 */
std::size_t
marshalString(tm::TxDesc &d, char *buf, const char *nptr,
              std::size_t max_len)
{
    if (max_len > kNumBuf - 1)
        max_len = kNumBuf - 1;
    std::size_t i = 0;
    for (; i < max_len; ++i) {
        buf[i] = tm::txLoad(d, nptr + i);
        if (buf[i] == '\0')
            return i;
    }
    buf[i] = '\0';
    return i;
}

/**
 * The [[transaction_pure]] wrappers around the libc functions
 * (paper Figure 7: "wrap library function foo inside a pure
 * function"). They receive only private parameters.
 */
long
pure_strtol(const char *in, char **endp, int base)
{
    return std::strtol(in, endp, base);
}

unsigned long long
pure_strtoull(const char *in, char **endp, int base)
{
    return std::strtoull(in, endp, base);
}

} // namespace

int
tm_isspace(int c)
{
    // transaction_pure: touches no shared memory at all.
    return std::isspace(static_cast<unsigned char>(c));
}

long
tm_strtol(tm::TxDesc &d, const char *nptr, std::size_t max_len,
          std::size_t *consumed, int base)
{
    char buf[kNumBuf];
    marshalString(d, buf, nptr, max_len);
    char *end = buf;
    const long v = pure_strtol(buf, &end, base);
    if (consumed != nullptr)
        *consumed = static_cast<std::size_t>(end - buf);
    return v;
}

unsigned long long
tm_strtoull(tm::TxDesc &d, const char *nptr, std::size_t max_len,
            std::size_t *consumed, int base)
{
    char buf[kNumBuf];
    marshalString(d, buf, nptr, max_len);
    char *end = buf;
    const unsigned long long v = pure_strtoull(buf, &end, base);
    if (consumed != nullptr)
        *consumed = static_cast<std::size_t>(end - buf);
    return v;
}

int
tm_atoi(tm::TxDesc &d, const char *nptr, std::size_t max_len)
{
    return static_cast<int>(tm_strtol(d, nptr, max_len, nullptr, 10));
}

} // namespace tmemc::tmsafe
