/**
 * @file
 * Stack-marshaling helpers: the paper's Figure 7 pattern.
 *
 * GCC's TM does not instrument accesses to the stack or to captured
 * memory. The paper exploits that to call unsafe library functions from
 * transactions: shared data is copied ("marshaled") into an on-stack
 * buffer with instrumented reads, the library function — wrapped as
 * transaction_pure — runs on the private copy, and results are
 * marshaled back with instrumented writes.
 *
 * The paper is explicit that this technique is *not* generally safe
 * (buffered-update STMs, libraries that grow side effects, buffer-size
 * guesses, multi-call atomicity). We reproduce it faithfully, caps and
 * all: kMaxMarshalIn/kMaxMarshalOut are the "generous 4KB/8KB" buffers
 * the authors used at the one call site whose bound they could not
 * derive.
 */

#ifndef TMEMC_TMSAFE_MARSHAL_H
#define TMEMC_TMSAFE_MARSHAL_H

#include <cstddef>

#include "common/logging.h"
#include "tm/api.h"

namespace tmemc::tmsafe
{

/** Cap on marshaled input buffers (paper: "a generous 4KB"). */
constexpr std::size_t kMaxMarshalIn = 4096;
/** Cap on marshaled output buffers (paper: "8KB for the output"). */
constexpr std::size_t kMaxMarshalOut = 8192;

/**
 * Marshal @p n bytes of shared memory at @p shared_src into the
 * private (stack or captured) buffer @p priv_dst with instrumented
 * reads. The writes to @p priv_dst are intentionally uninstrumented —
 * that is the point of the pattern, and why it requires a
 * direct-update or captured-memory-aware STM.
 */
TM_SAFE inline void
marshalIn(tm::TxDesc &d, void *priv_dst, const void *shared_src,
          std::size_t n)
{
    if (n > kMaxMarshalIn)
        panic("marshalIn: %zu bytes exceeds the %zu-byte input buffer cap",
              n, kMaxMarshalIn);
    tm::txLoadBytes(d, priv_dst, shared_src, n);
}

/**
 * Marshal @p n bytes of a private buffer back into shared memory at
 * @p shared_dst with instrumented writes.
 */
TM_SAFE inline void
marshalOut(tm::TxDesc &d, void *shared_dst, const void *priv_src,
           std::size_t n)
{
    if (n > kMaxMarshalOut)
        panic("marshalOut: %zu bytes exceeds the %zu-byte output buffer "
              "cap", n, kMaxMarshalOut);
    tm::txStoreBytes(d, shared_dst, priv_src, n);
}

} // namespace tmemc::tmsafe

#endif // TMEMC_TMSAFE_MARSHAL_H
