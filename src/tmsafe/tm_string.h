/**
 * @file
 * Transaction-safe reimplementations of the untyped-memory and string
 * functions the paper lists in Section 3.4: memcmp, memcpy (and
 * memmove), strlen, strncmp, strncpy, and strchr.
 *
 * Per the Draft C++ TM Specification, the transactional and
 * non-transactional clones of a safe function must come from the same
 * source; the paper notes this forced them to "slow down the
 * non-transactional code path by replacing calls to optimized standard
 * library functions with calls to our naive implementations". The
 * naive_* functions below are those shared-source non-transactional
 * clones: same algorithm, no instrumentation, no vectorized assembly.
 */

#ifndef TMEMC_TMSAFE_TM_STRING_H
#define TMEMC_TMSAFE_TM_STRING_H

#include <cstddef>

#include "tm/api.h"

namespace tmemc::tmsafe
{

// ----------------------------------------------------------------------
// Transactional clones (instrumented; require an active transaction)
// ----------------------------------------------------------------------

/** Transaction-safe memcpy. @return dst. */
TM_SAFE void *tm_memcpy(tm::TxDesc &d, void *dst, const void *src, std::size_t n);

/** Transaction-safe memmove (overlap-tolerant). @return dst. */
TM_SAFE void *tm_memmove(tm::TxDesc &d, void *dst, const void *src, std::size_t n);

/** Transaction-safe memcmp. */
TM_SAFE int tm_memcmp(tm::TxDesc &d, const void *a, const void *b, std::size_t n);

/** Transaction-safe memset. @return dst. */
TM_SAFE void *tm_memset(tm::TxDesc &d, void *dst, int c, std::size_t n);

/** Transaction-safe strlen. */
TM_SAFE std::size_t tm_strlen(tm::TxDesc &d, const char *s);

/** Transaction-safe strncmp. */
TM_SAFE int tm_strncmp(tm::TxDesc &d, const char *a, const char *b, std::size_t n);

/** Transaction-safe strncpy (pads with NULs like the libc one). */
TM_SAFE char *tm_strncpy(tm::TxDesc &d, char *dst, const char *src, std::size_t n);

/** Transaction-safe strchr. @return pointer into the shared string. */
TM_SAFE const char *tm_strchr(tm::TxDesc &d, const char *s, int c);

// ----------------------------------------------------------------------
// Non-transactional clones generated "from the same source"
// ----------------------------------------------------------------------

TM_UNSAFE void *naive_memcpy(void *dst, const void *src, std::size_t n);
TM_UNSAFE void *naive_memmove(void *dst, const void *src, std::size_t n);
TM_UNSAFE int naive_memcmp(const void *a, const void *b, std::size_t n);
TM_UNSAFE void *naive_memset(void *dst, int c, std::size_t n);
TM_UNSAFE std::size_t naive_strlen(const char *s);
TM_UNSAFE int naive_strncmp(const char *a, const char *b, std::size_t n);
TM_UNSAFE char *naive_strncpy(char *dst, const char *src, std::size_t n);
TM_UNSAFE const char *naive_strchr(const char *s, int c);

} // namespace tmemc::tmsafe

#endif // TMEMC_TMSAFE_TM_STRING_H
