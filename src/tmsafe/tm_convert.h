/**
 * @file
 * Transaction-safe numeric/character conversion functions: isspace,
 * strtol, strtoull, and atoi (paper Section 3.4, "Safety via
 * Marshaling").
 *
 * These follow the paper's recipe exactly: the input string is
 * marshaled from shared memory onto the stack, a transaction_pure
 * wrapper around the libc function runs on the private copy, and the
 * scalar result is returned with no out-marshaling.
 *
 * Because marshaling needs a bound, callers pass the maximum number of
 * meaningful bytes (max_len); the marshaled copy is NUL-terminated at
 * that bound. memcached call sites always know a bound (key lengths,
 * fixed-width value buffers).
 */

#ifndef TMEMC_TMSAFE_TM_CONVERT_H
#define TMEMC_TMSAFE_TM_CONVERT_H

#include <cstddef>

#include "tm/api.h"

namespace tmemc::tmsafe
{

/** Transaction-pure isspace (no memory access beyond the argument). */
TM_PURE int tm_isspace(int c);

/**
 * Transaction-safe strtol via marshaling.
 * @param d        Enclosing transaction.
 * @param nptr     Shared string to parse.
 * @param max_len  Upper bound on the string's meaningful length.
 * @param consumed If non-null, receives the number of bytes parsed
 *                 (the marshaling analogue of libc's endptr, which
 *                 cannot point into the private copy).
 * @param base     Numeric base, as for libc strtol.
 */
TM_SAFE long tm_strtol(tm::TxDesc &d, const char *nptr, std::size_t max_len,
               std::size_t *consumed, int base);

/** Transaction-safe strtoull via marshaling; see tm_strtol. */
TM_SAFE unsigned long long tm_strtoull(tm::TxDesc &d, const char *nptr,
                               std::size_t max_len, std::size_t *consumed,
                               int base);

/** Transaction-safe atoi via marshaling. */
TM_SAFE int tm_atoi(tm::TxDesc &d, const char *nptr, std::size_t max_len);

} // namespace tmemc::tmsafe

#endif // TMEMC_TMSAFE_TM_CONVERT_H
