/**
 * @file
 * Transaction-safe formatting: snprintf clones and htons.
 *
 * GCC did not support variable arguments in transaction-safe functions,
 * so the paper "manually clone[d] and replace[d] every variable-argument
 * function with a unique version for every combination of parameters
 * that appeared in the program". These are those clones for the
 * signatures memcached needs: rendering an unsigned counter (incr/decr
 * results), a string field, and a key-value stats line.
 *
 * Each clone formats into a stack buffer with a pure snprintf wrapper
 * and marshals the result into the shared destination (paper Figure 7:
 * "snprintf required all its parameters to be marshaled onto the stack,
 * and its output parameter to be marshaled back to shared memory").
 */

#ifndef TMEMC_TMSAFE_TM_FORMAT_H
#define TMEMC_TMSAFE_TM_FORMAT_H

#include <cstddef>
#include <cstdint>

#include "tm/api.h"

namespace tmemc::tmsafe
{

/**
 * snprintf clone for "%llu" (numeric item values).
 * @return Number of characters that would have been written (libc
 *         snprintf contract).
 */
TM_SAFE int tm_snprintf_ull(tm::TxDesc &d, char *dst, std::size_t n,
                    unsigned long long v);

/**
 * snprintf clone for "%s" where the argument is a shared string of at
 * most @p src_max meaningful bytes.
 */
TM_SAFE int tm_snprintf_str(tm::TxDesc &d, char *dst, std::size_t n,
                    const char *src, std::size_t src_max);

/**
 * snprintf clone for the "STAT <name> <value>\r\n" stats-line shape.
 * @p name must be private memory (a literal); the value is a scalar.
 */
TM_SAFE int tm_snprintf_stat(tm::TxDesc &d, char *dst, std::size_t n,
                     const char *name, unsigned long long v);

/** Transaction-pure htons (scalar in, scalar out; paper Section 3.4). */
TM_PURE std::uint16_t tm_htons(std::uint16_t host_val);

/** Transaction-pure ntohs. */
TM_PURE std::uint16_t tm_ntohs(std::uint16_t net_val);

} // namespace tmemc::tmsafe

#endif // TMEMC_TMSAFE_TM_FORMAT_H
