/**
 * @file
 * Implementations of the transaction-safe string/memory functions and
 * their shared-source non-transactional clones.
 *
 * The transactional variants move data in word-sized chunks through
 * txLoadBytes/txStoreBytes, which is precisely the "byte-by-byte stores
 * in memcpy ... read later as words" pattern the paper identifies as a
 * stress case for buffered-update STMs.
 */

#include "tmsafe/tm_string.h"

#include <cstring>

namespace tmemc::tmsafe
{

namespace
{

/** Chunk size for staging shared data through a private buffer. */
constexpr std::size_t kChunk = 64;

} // namespace

// ----------------------------------------------------------------------
// Transactional clones
// ----------------------------------------------------------------------

void *
tm_memcpy(tm::TxDesc &d, void *dst, const void *src, std::size_t n)
{
    auto *out = static_cast<char *>(dst);
    const auto *in = static_cast<const char *>(src);
    char buf[kChunk];
    while (n > 0) {
        const std::size_t len = n < kChunk ? n : kChunk;
        tm::txLoadBytes(d, buf, in, len);
        tm::txStoreBytes(d, out, buf, len);
        in += len;
        out += len;
        n -= len;
    }
    return dst;
}

void *
tm_memmove(tm::TxDesc &d, void *dst, const void *src, std::size_t n)
{
    if (dst == src || n == 0)
        return dst;
    auto *out = static_cast<char *>(dst);
    const auto *in = static_cast<const char *>(src);
    if (out < in || out >= in + n)
        return tm_memcpy(d, dst, src, n);
    // Overlapping with dst above src: copy backwards chunk by chunk.
    char buf[kChunk];
    std::size_t remaining = n;
    while (remaining > 0) {
        const std::size_t len = remaining < kChunk ? remaining : kChunk;
        remaining -= len;
        tm::txLoadBytes(d, buf, in + remaining, len);
        tm::txStoreBytes(d, out + remaining, buf, len);
    }
    return dst;
}

int
tm_memcmp(tm::TxDesc &d, const void *a, const void *b, std::size_t n)
{
    const auto *pa = static_cast<const char *>(a);
    const auto *pb = static_cast<const char *>(b);
    char bufa[kChunk];
    char bufb[kChunk];
    while (n > 0) {
        const std::size_t len = n < kChunk ? n : kChunk;
        tm::txLoadBytes(d, bufa, pa, len);
        tm::txLoadBytes(d, bufb, pb, len);
        const int c = std::memcmp(bufa, bufb, len);
        if (c != 0)
            return c;
        pa += len;
        pb += len;
        n -= len;
    }
    return 0;
}

void *
tm_memset(tm::TxDesc &d, void *dst, int c, std::size_t n)
{
    char buf[kChunk];
    std::memset(buf, c, n < kChunk ? n : kChunk);
    auto *out = static_cast<char *>(dst);
    while (n > 0) {
        const std::size_t len = n < kChunk ? n : kChunk;
        tm::txStoreBytes(d, out, buf, len);
        out += len;
        n -= len;
    }
    return dst;
}

std::size_t
tm_strlen(tm::TxDesc &d, const char *s)
{
    std::size_t len = 0;
    for (;;) {
        const char c = tm::txLoad(d, s + len);
        if (c == '\0')
            return len;
        ++len;
    }
}

int
tm_strncmp(tm::TxDesc &d, const char *a, const char *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const unsigned char ca = tm::txLoad(d, a + i);
        const unsigned char cb = tm::txLoad(d, b + i);
        if (ca != cb)
            return ca < cb ? -1 : 1;
        if (ca == '\0')
            return 0;
    }
    return 0;
}

char *
tm_strncpy(tm::TxDesc &d, char *dst, const char *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i < n; ++i) {
        const char c = tm::txLoad(d, src + i);
        tm::txStore(d, dst + i, c);
        if (c == '\0')
            break;
    }
    for (++i; i < n; ++i)
        tm::txStore(d, dst + i, '\0');
    return dst;
}

const char *
tm_strchr(tm::TxDesc &d, const char *s, int c)
{
    const char target = static_cast<char>(c);
    for (std::size_t i = 0;; ++i) {
        const char cur = tm::txLoad(d, s + i);
        if (cur == target)
            return s + i;
        if (cur == '\0')
            return nullptr;
    }
}

// ----------------------------------------------------------------------
// Non-transactional clones ("same source", no instrumentation, no
// vector assembly — the slowdown the specification imposes)
// ----------------------------------------------------------------------

void *
naive_memcpy(void *dst, const void *src, std::size_t n)
{
    auto *out = static_cast<char *>(dst);
    const auto *in = static_cast<const char *>(src);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = in[i];
    return dst;
}

void *
naive_memmove(void *dst, const void *src, std::size_t n)
{
    auto *out = static_cast<char *>(dst);
    const auto *in = static_cast<const char *>(src);
    if (out < in || out >= in + n) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = in[i];
    } else {
        for (std::size_t i = n; i > 0; --i)
            out[i - 1] = in[i - 1];
    }
    return dst;
}

int
naive_memcmp(const void *a, const void *b, std::size_t n)
{
    const auto *pa = static_cast<const unsigned char *>(a);
    const auto *pb = static_cast<const unsigned char *>(b);
    for (std::size_t i = 0; i < n; ++i) {
        if (pa[i] != pb[i])
            return pa[i] < pb[i] ? -1 : 1;
    }
    return 0;
}

void *
naive_memset(void *dst, int c, std::size_t n)
{
    auto *out = static_cast<unsigned char *>(dst);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<unsigned char>(c);
    return dst;
}

std::size_t
naive_strlen(const char *s)
{
    std::size_t len = 0;
    while (s[len] != '\0')
        ++len;
    return len;
}

int
naive_strncmp(const char *a, const char *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const auto ca = static_cast<unsigned char>(a[i]);
        const auto cb = static_cast<unsigned char>(b[i]);
        if (ca != cb)
            return ca < cb ? -1 : 1;
        if (ca == '\0')
            return 0;
    }
    return 0;
}

char *
naive_strncpy(char *dst, const char *src, std::size_t n)
{
    std::size_t i = 0;
    for (; i < n && src[i] != '\0'; ++i)
        dst[i] = src[i];
    for (; i < n; ++i)
        dst[i] = '\0';
    return dst;
}

const char *
naive_strchr(const char *s, int c)
{
    const char target = static_cast<char>(c);
    for (std::size_t i = 0;; ++i) {
        if (s[i] == target)
            return s + i;
        if (s[i] == '\0')
            return nullptr;
    }
}

} // namespace tmemc::tmsafe
