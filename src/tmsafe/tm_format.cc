/**
 * @file
 * snprintf clones and byte-order helpers.
 */

#include "tmsafe/tm_format.h"

#include <bit>
#include <cstdio>
#include <cstring>

#include "tmsafe/marshal.h"

namespace tmemc::tmsafe
{

namespace
{

/** Stack bound for formatted output (within the marshal-out cap). */
constexpr std::size_t kFmtBuf = 512;

/** Pure wrappers: private parameters only (paper Figure 7). */
int
pure_snprintf_ull(char *out, std::size_t n, unsigned long long v)
{
    return std::snprintf(out, n, "%llu", v);
}

int
pure_snprintf_str(char *out, std::size_t n, const char *s)
{
    return std::snprintf(out, n, "%s", s);
}

int
pure_snprintf_stat(char *out, std::size_t n, const char *name,
                   unsigned long long v)
{
    return std::snprintf(out, n, "STAT %s %llu\r\n", name, v);
}

/** Marshal the formatted private buffer to the shared destination. */
void
emit(tm::TxDesc &d, char *dst, std::size_t n, const char *buf, int len)
{
    if (len < 0)
        return;
    std::size_t copy = static_cast<std::size_t>(len) + 1;  // include NUL
    if (copy > n)
        copy = n;
    if (copy > 0) {
        marshalOut(d, dst, buf, copy);
        if (copy == n && n > 0)
            tm::txStore(d, dst + n - 1, '\0');
    }
}

} // namespace

int
tm_snprintf_ull(tm::TxDesc &d, char *dst, std::size_t n,
                unsigned long long v)
{
    char buf[kFmtBuf];
    const int len = pure_snprintf_ull(buf, sizeof(buf), v);
    emit(d, dst, n, buf, len);
    return len;
}

int
tm_snprintf_str(tm::TxDesc &d, char *dst, std::size_t n, const char *src,
                std::size_t src_max)
{
    // Marshal the shared source string in, then format privately.
    char in[kFmtBuf];
    std::size_t i = 0;
    const std::size_t lim = src_max < kFmtBuf - 1 ? src_max : kFmtBuf - 1;
    for (; i < lim; ++i) {
        in[i] = tm::txLoad(d, src + i);
        if (in[i] == '\0')
            break;
    }
    in[i] = '\0';

    char buf[kFmtBuf];
    const int len = pure_snprintf_str(buf, sizeof(buf), in);
    emit(d, dst, n, buf, len);
    return len;
}

int
tm_snprintf_stat(tm::TxDesc &d, char *dst, std::size_t n, const char *name,
                 unsigned long long v)
{
    char buf[kFmtBuf];
    const int len = pure_snprintf_stat(buf, sizeof(buf), name, v);
    emit(d, dst, n, buf, len);
    return len;
}

std::uint16_t
tm_htons(std::uint16_t host_val)
{
    if constexpr (std::endian::native == std::endian::little)
        return static_cast<std::uint16_t>((host_val << 8) |
                                          (host_val >> 8));
    return host_val;
}

std::uint16_t
tm_ntohs(std::uint16_t net_val)
{
    return tm_htons(net_val);
}

} // namespace tmemc::tmsafe
