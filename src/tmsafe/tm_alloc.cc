/**
 * @file
 * Naive transaction-safe realloc.
 */

#include "tmsafe/tm_alloc.h"

#include <cstring>

#include "common/fault.h"

namespace tmemc::tmsafe
{

void *
tm_realloc(tm::TxDesc &d, void *old_ptr, std::size_t old_size,
           std::size_t new_size)
{
    void *fresh = fault::shouldFail("tmsafe.tm_realloc")
                      ? nullptr
                      : tm::txTryMalloc(d, new_size);
    if (fresh == nullptr)
        return nullptr;  // Old buffer untouched; caller reports OOM.
    if (old_ptr != nullptr && old_size > 0) {
        const std::size_t copy = old_size < new_size ? old_size : new_size;
        // Instrumented reads of the shared old buffer; plain writes to
        // the captured new buffer.
        char chunk[64];
        std::size_t done = 0;
        while (done < copy) {
            const std::size_t len =
                copy - done < sizeof(chunk) ? copy - done : sizeof(chunk);
            tm::txLoadBytes(d, chunk, static_cast<char *>(old_ptr) + done,
                            len);
            std::memcpy(static_cast<char *>(fresh) + done, chunk, len);
            done += len;
        }
        tm::txFree(d, old_ptr);
    }
    return fresh;
}

} // namespace tmemc::tmsafe
