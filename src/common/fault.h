/**
 * @file
 * Deterministic fault injection: named sites, per-site trigger
 * policies, zero overhead when disarmed.
 *
 * The paper's hard-won lessons all live on the messy paths — eviction
 * under memory pressure, I/O inside critical sections, allocation
 * failure at the worst moment. Exercising those paths cannot be left
 * to luck, so production code declares *sites* (a stable string name
 * at each place a failure can be simulated) and tests *arm* them with
 * a trigger policy:
 *
 *   - every-Nth-hit: fires on hit N, 2N, 3N, ... (N=1 fires always);
 *   - seeded probability: fires with probability p from a per-site
 *     deterministic PRNG, so a given seed replays the same schedule;
 *   - one-shot: fires exactly once, optionally after skipping the
 *     first K hits.
 *
 * A policy can carry an *action* payload the site interprets: an
 * errno to fail a syscall wrapper with (see net/sys.h), a byte cap
 * that truncates an I/O request into a short read/write, or a delay
 * in microseconds that stalls the caller before it proceeds — the
 * building block for slow-node and partition schedules in the cluster
 * tests (a partition is a delay long enough to blow the deadline, or
 * an errno like EHOSTUNREACH, depending on what the test models).
 *
 * Cost model: while no site is armed anywhere in the process, every
 * check is one relaxed atomic load of a global flag and a predictable
 * branch — nothing is looked up, nothing is locked. Only once a test
 * arms a site does the slow path (mutex + name lookup) run.
 *
 * Sites are global process state; tests must disarmAll() between
 * cases (see ScopedFault for the RAII form).
 */

#ifndef TMEMC_COMMON_FAULT_H
#define TMEMC_COMMON_FAULT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace tmemc::fault
{

/** How an armed site decides to fire. */
enum class Trigger : std::uint8_t
{
    EveryNth,     //!< Fire on every n-th hit (n == 1: every hit).
    Probability,  //!< Fire with probability p (seeded PRNG).
    OneShot,      //!< Fire once, after skipping skipFirst hits.
};

/** Arming descriptor: trigger policy plus the action payload. */
struct Policy
{
    Trigger trigger = Trigger::OneShot;
    std::uint64_t n = 1;         //!< EveryNth period.
    double probability = 1.0;    //!< Probability trigger.
    std::uint64_t seed = 1;      //!< PRNG seed (Probability).
    std::uint64_t skipFirst = 0; //!< Hits to let pass before firing.
    int errnoValue = 0;          //!< Syscall wrappers: fail with this.
    std::size_t byteCap = 0;     //!< Syscall wrappers: short I/O cap.
    std::uint64_t delayUs = 0;   //!< Stall the caller this long first.
};

/** What a fired (or quiet) site should do. */
struct Action
{
    bool fire = false;
    int errnoValue = 0;
    std::size_t byteCap = 0;
    std::uint64_t delayUs = 0;
};

/** One relaxed load: true while any site is armed process-wide. */
bool enabled();

/** Arm @p site with @p policy (re-arming resets its counters). */
void arm(const std::string &site, const Policy &policy);

/** Disarm @p site; its hit/fire counters remain readable. */
void disarm(const std::string &site);

/** Disarm everything and forget all counters (test teardown). */
void disarmAll();

/**
 * Record a hit on @p site and decide whether it fires. The fast path
 * (nothing armed anywhere) never reaches here — callers must guard
 * with enabled(), which the convenience helpers below do.
 */
Action consultSlow(const char *site);

/** Full consult: action payload for syscall wrappers. */
inline Action
consult(const char *site)
{
    if (!enabled())
        return {};
    return consultSlow(site);
}

/** Boolean consult: for plain should-this-allocation-fail sites. */
inline bool
shouldFail(const char *site)
{
    return enabled() && consultSlow(site).fire;
}

/**
 * Sleep for @p action's delay payload, if any. Sites that support
 * slow-node schedules call this with the consult() result before
 * interpreting errnoValue/byteCap, so a policy can combine "stall
 * 50ms, then fail with ETIMEDOUT". Must only be called from contexts
 * that may block (syscall wrappers, the cluster client) — never from
 * inside a transaction.
 */
void maybeDelay(const Action &action);

/**
 * Observer invoked on every armed-site hit (fired or not), with the
 * site name. The observability layer's flight recorder registers
 * itself here so fault-schedule replays appear interleaved with the
 * TM events they provoke — without this library depending on obs.
 * Pass nullptr to clear. The hook runs outside the registry lock.
 */
using HitHook = void (*)(const char *site);
void setHitHook(HitHook hook);

/** Times @p site was consulted while armed (0 if never armed). */
std::uint64_t hits(const std::string &site);

/** Times @p site actually fired. */
std::uint64_t fires(const std::string &site);

/** RAII arming for tests: arms in the constructor, disarms in the
 *  destructor, so a failing ASSERT cannot leak an armed site into the
 *  next test case. */
class ScopedFault
{
  public:
    ScopedFault(std::string site, const Policy &policy)
        : site_(std::move(site))
    {
        arm(site_, policy);
    }
    ~ScopedFault() { disarm(site_); }

    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;

    std::uint64_t firedCount() const { return fires(site_); }
    std::uint64_t hitCount() const { return hits(site_); }

  private:
    std::string site_;
};

} // namespace tmemc::fault

#endif // TMEMC_COMMON_FAULT_H
