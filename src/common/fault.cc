/**
 * @file
 * Fault-injection registry implementation.
 */

#include "common/fault.h"

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/rng.h"

namespace tmemc::fault
{

namespace
{

struct SiteState
{
    Policy policy;
    XorShift128 rng{1};
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    bool armed = false;
    bool spent = false;  //!< OneShot already fired.
};

struct Registry
{
    std::mutex mu;
    std::unordered_map<std::string, SiteState> sites;
    std::uint64_t armedCount = 0;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** Armed-site count mirrored into an atomic for the fast path. */
// atom-protocol: armed-latch
std::atomic<bool> g_enabled{false};

/** Armed-site hit observer (see setHitHook). */
// atom-protocol: release-acquire-pair
std::atomic<HitHook> g_hitHook{nullptr};

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
arm(const std::string &site, const Policy &policy)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.mu);
    SiteState &s = r.sites[site];
    if (!s.armed)
        ++r.armedCount;
    s.policy = policy;
    s.rng = XorShift128(policy.seed);
    s.hits = 0;
    s.fires = 0;
    s.spent = false;
    s.armed = true;
    g_enabled.store(r.armedCount > 0, std::memory_order_release);
}

void
disarm(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end() || !it->second.armed)
        return;
    it->second.armed = false;
    --r.armedCount;
    g_enabled.store(r.armedCount > 0, std::memory_order_release);
}

void
disarmAll()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.mu);
    r.sites.clear();
    r.armedCount = 0;
    g_enabled.store(false, std::memory_order_release);
}

void
setHitHook(HitHook hook)
{
    g_hitHook.store(hook, std::memory_order_release);
}

Action
consultSlow(const char *site)
{
    Action action{};
    bool hit = false;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> guard(r.mu);
        auto it = r.sites.find(site);
        if (it == r.sites.end() || !it->second.armed)
            return {};
        SiteState &s = it->second;
        ++s.hits;
        hit = true;
        if (s.hits > s.policy.skipFirst) {
            bool fire = false;
            switch (s.policy.trigger) {
              case Trigger::EveryNth: {
                const std::uint64_t n = s.policy.n == 0 ? 1 : s.policy.n;
                fire = (s.hits - s.policy.skipFirst) % n == 0;
                break;
              }
              case Trigger::Probability:
                fire = s.rng.nextDouble() < s.policy.probability;
                break;
              case Trigger::OneShot:
                fire = !s.spent;
                s.spent = s.spent || fire;
                break;
            }
            if (fire) {
                ++s.fires;
                action = {true, s.policy.errnoValue, s.policy.byteCap,
                          s.policy.delayUs};
            }
        }
    }
    // Outside the registry lock: the hook may take other locks (the
    // flight recorder's ring mutex) without ordering against ours.
    if (hit) {
        if (const HitHook hook =
                g_hitHook.load(std::memory_order_acquire))
            hook(site);
    }
    return action;
}

void
maybeDelay(const Action &action)
{
    if (action.fire && action.delayUs > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(action.delayUs));
}

std::uint64_t
hits(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.mu);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t
fires(const std::string &site)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> guard(r.mu);
    auto it = r.sites.find(site);
    return it == r.sites.end() ? 0 : it->second.fires;
}

} // namespace tmemc::fault
