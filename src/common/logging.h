/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * panic() is for internal invariant violations (a tmemc bug); it aborts.
 * fatal() is for unrecoverable user/configuration errors; it exits(1).
 * warn() and inform() report conditions without stopping execution.
 */

#ifndef TMEMC_COMMON_LOGGING_H
#define TMEMC_COMMON_LOGGING_H

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/compiler.h"

namespace tmemc
{

/**
 * Hook run by panic()/fatal() after the message, before the process
 * dies — the obs flight recorder installs its dump here so a crash
 * leaves the event tail on stderr. Must be async-signal-tolerant in
 * spirit: no allocation-heavy work beyond formatting, no retrying.
 */
using CrashHook = void (*)();

namespace detail
{
// atom-protocol: release-acquire-pair
inline std::atomic<CrashHook> g_crashHook{nullptr};
} // namespace detail

/** Install (or clear, with nullptr) the crash-dump hook. */
inline void
setCrashHook(CrashHook hook)
{
    detail::g_crashHook.store(hook, std::memory_order_release);
}

/** Run the crash hook once; recursion from inside the hook is a
 *  no-op (the pointer is swapped out before the call). */
inline void
runCrashHook()
{
    CrashHook hook =
        detail::g_crashHook.exchange(nullptr, std::memory_order_acq_rel);
    if (hook != nullptr)
        hook();
}

/**
 * Print a formatted message to stderr with a severity prefix.
 *
 * @param prefix Severity tag, e.g. "panic".
 * @param fmt    printf-style format string.
 * @param ap     Variadic arguments for @p fmt.
 */
inline void
vreport(const char *prefix, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

/**
 * Report an internal invariant violation and abort.
 *
 * TM_PURE despite the I/O: panic never returns, so there is no state
 * to roll back — the Draft C++ TM Specification treats abort() the
 * same way. Callable from transaction bodies as a diagnostic dead end.
 */
[[noreturn]] TM_PURE inline void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    runCrashHook();
    std::abort();
}

/** Report an unrecoverable configuration error and exit. TM_PURE for
 *  the same no-return reason as panic(). */
[[noreturn]] TM_PURE inline void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    runCrashHook();
    // exit (not abort) so atexit-registered reporters flush; the
    // process is single-threaded-by-fiat once fatal() fires.
    std::exit(1); // NOLINT(concurrency-mt-unsafe)
}

/** Report a suspicious-but-survivable condition. */
inline void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

/** Report an informational status message. */
inline void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace tmemc

#endif // TMEMC_COMMON_LOGGING_H
