/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * panic() is for internal invariant violations (a tmemc bug); it aborts.
 * fatal() is for unrecoverable user/configuration errors; it exits(1).
 * warn() and inform() report conditions without stopping execution.
 */

#ifndef TMEMC_COMMON_LOGGING_H
#define TMEMC_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tmemc
{

/**
 * Print a formatted message to stderr with a severity prefix.
 *
 * @param prefix Severity tag, e.g. "panic".
 * @param fmt    printf-style format string.
 * @param ap     Variadic arguments for @p fmt.
 */
inline void
vreport(const char *prefix, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

/** Report an internal invariant violation and abort. */
[[noreturn]] inline void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

/** Report an unrecoverable configuration error and exit. */
[[noreturn]] inline void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

/** Report a suspicious-but-survivable condition. */
inline void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

/** Report an informational status message. */
inline void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

} // namespace tmemc

#endif // TMEMC_COMMON_LOGGING_H
