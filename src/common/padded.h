/**
 * @file
 * Cache-line padding wrapper for per-thread and per-slot shared metadata.
 *
 * The orec table, per-thread statistics, and the global serialization
 * lock are all hot shared structures; false sharing between adjacent
 * slots would distort exactly the contention effects the paper measures,
 * so every such slot is padded to a cache line.
 */

#ifndef TMEMC_COMMON_PADDED_H
#define TMEMC_COMMON_PADDED_H

#include <cstddef>

#include "common/compiler.h"

namespace tmemc
{

/** Value of type T padded out to at least one full cache line. */
template <typename T>
struct alignas(cachelineBytes) Padded
{
    T value{};

    /** Convenience accessors so Padded<T> reads like a T. */
    T &operator*() { return value; }
    const T &operator*() const { return value; }
    T *operator->() { return &value; }
    const T *operator->() const { return &value; }
};

} // namespace tmemc

#endif // TMEMC_COMMON_PADDED_H
