/**
 * @file
 * Wall-clock timing helpers for the benchmark harness.
 */

#ifndef TMEMC_COMMON_TIMER_H
#define TMEMC_COMMON_TIMER_H

#include <chrono>
#include <cstdint>

namespace tmemc
{

/** Monotonic wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed nanoseconds since construction or the last reset(). */
    std::uint64_t
    elapsedNanos() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace tmemc

#endif // TMEMC_COMMON_TIMER_H
