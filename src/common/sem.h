/**
 * @file
 * Thin RAII wrapper over POSIX semaphores.
 *
 * The paper's Section 3.2 replaces pthread condition variables with
 * semaphores so the associated locks can become transactions; using
 * real sem_t keeps the reproduction's synchronization primitives the
 * same as the original code's.
 */

#ifndef TMEMC_COMMON_SEM_H
#define TMEMC_COMMON_SEM_H

#include <semaphore.h>

#include "common/logging.h"

namespace tmemc
{

/** Counting semaphore backed by sem_t. */
class Semaphore
{
  public:
    explicit Semaphore(unsigned initial = 0)
    {
        if (sem_init(&sem_, 0, initial) != 0)
            fatal("sem_init failed");
    }

    ~Semaphore() { sem_destroy(&sem_); }

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    /** V: wake one waiter (async-signal-safe; usable in handlers). */
    void post() { sem_post(&sem_); }

    /** P: block until a post is available. */
    void
    wait()
    {
        while (sem_wait(&sem_) != 0) {
            // Retry on EINTR.
        }
    }

    /** Non-blocking P. @return true if a post was consumed. */
    bool tryWait() { return sem_trywait(&sem_) == 0; }

  private:
    sem_t sem_;
};

} // namespace tmemc

#endif // TMEMC_COMMON_SEM_H
