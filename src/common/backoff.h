/**
 * @file
 * Spin-wait and exponential-backoff primitives.
 *
 * Both the TM contention managers and the lock-based memcached baseline
 * use these; keeping them shared guarantees the comparison in the
 * benchmarks is not skewed by different pause implementations.
 */

#ifndef TMEMC_COMMON_BACKOFF_H
#define TMEMC_COMMON_BACKOFF_H

#include <cstdint>
#include <thread>

#include "common/compiler.h"

namespace tmemc
{

/** Single CPU relax hint (PAUSE on x86). */
TMEMC_ALWAYS_INLINE void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

/** Spin for roughly @p iters relax iterations. */
inline void
spinFor(std::uint64_t iters)
{
    for (std::uint64_t i = 0; i < iters; ++i)
        cpuRelax();
}

/**
 * Randomized exponential backoff, as used by the Backoff contention
 * manager (Herlihy et al., PODC '03 style). Each call to pause() spins
 * for a uniformly random duration whose ceiling doubles per failure.
 */
class ExpBackoff
{
  public:
    /**
     * @param min_spins Floor of the first pause window.
     * @param max_spins Ceiling the window saturates at.
     * @param seed      Per-thread seed for the window randomization.
     */
    explicit ExpBackoff(std::uint64_t min_spins = 32,
                        std::uint64_t max_spins = 1 << 16,
                        std::uint64_t seed = 0x2545f4914f6cdd1dull)
        : minSpins_(min_spins), maxSpins_(max_spins), window_(min_spins),
          state_(seed | 1)
    {}

    /** Back off for a randomized interval and widen the window. */
    void
    pause()
    {
        // xorshift64 for the jitter; cheap and per-instance.
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        spinFor(state_ % window_ + 1);
        if (window_ < maxSpins_)
            window_ *= 2;
    }

    /** Reset the window after a success. */
    void reset() { window_ = minSpins_; }

  private:
    std::uint64_t minSpins_;
    std::uint64_t maxSpins_;
    std::uint64_t window_;
    std::uint64_t state_;
};

} // namespace tmemc

#endif // TMEMC_COMMON_BACKOFF_H
