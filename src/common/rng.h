/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * The workload driver needs per-thread deterministic streams so that a
 * given (seed, thread, op-index) triple always produces the same request,
 * making benchmark runs and failure reproductions byte-for-byte
 * repeatable. We use xorshift128+ for speed and a precomputed-CDF Zipf
 * sampler for skewed key popularity.
 */

#ifndef TMEMC_COMMON_RNG_H
#define TMEMC_COMMON_RNG_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace tmemc
{

/**
 * xorshift128+ PRNG. Small state, fast, and good enough statistical
 * quality for workload generation (not for cryptography).
 */
class XorShift128
{
  public:
    /** Seed the generator; a zero seed is remapped to a fixed constant. */
    explicit XorShift128(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        if (seed == 0)
            seed = 0x9e3779b97f4a7c15ull;
        // SplitMix64 expansion of the seed into the two state words.
        for (auto *word : {&s0_, &s1_}) {
            seed += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            *word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * (1.0 / (1ull << 53));
    }

  private:
    std::uint64_t s0_ = 0;
    std::uint64_t s1_ = 0;
};

/**
 * Zipf-distributed sampler over [0, n) with exponent theta.
 *
 * Uses an exact inverse-CDF table; construction is O(n), sampling is
 * O(log n). Suitable for the key-popularity skew memslap-style
 * workloads exhibit.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Universe size (number of distinct keys).
     * @param theta Skew; 0 degenerates to uniform, 0.99 is YCSB-like.
     */
    ZipfSampler(std::size_t n, double theta)
        : cdf_(n)
    {
        if (n == 0)
            panic("ZipfSampler requires a non-empty universe");
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf_[i] = sum;
        }
        for (std::size_t i = 0; i < n; ++i)
            cdf_[i] /= sum;
    }

    /** Sample a rank in [0, n); rank 0 is the most popular. */
    std::size_t
    sample(XorShift128 &rng) const
    {
        const double u = rng.nextDouble();
        std::size_t lo = 0;
        std::size_t hi = cdf_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /** Universe size. */
    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace tmemc

#endif // TMEMC_COMMON_RNG_H
