/**
 * @file
 * Compiler portability helpers shared across the tmemc codebase.
 *
 * These mirror the small set of annotations GCC's libitm relies on:
 * branch-prediction hints, forced inlining for instrumentation
 * fast paths, and cache-line geometry.
 */

#ifndef TMEMC_COMMON_COMPILER_H
#define TMEMC_COMMON_COMPILER_H

#include <cstddef>

namespace tmemc
{

/** Cache line size used for padding shared metadata. */
constexpr std::size_t cachelineBytes = 64;

} // namespace tmemc

#if defined(__GNUC__) || defined(__clang__)
#  define TMEMC_LIKELY(x)   __builtin_expect(!!(x), 1)
#  define TMEMC_UNLIKELY(x) __builtin_expect(!!(x), 0)
#  define TMEMC_ALWAYS_INLINE inline __attribute__((always_inline))
#  define TMEMC_NOINLINE __attribute__((noinline))
#else
#  define TMEMC_LIKELY(x)   (x)
#  define TMEMC_UNLIKELY(x) (x)
#  define TMEMC_ALWAYS_INLINE inline
#  define TMEMC_NOINLINE
#endif

// ----------------------------------------------------------------------
// Transaction-safety annotations (checked by tools/tmlint)
// ----------------------------------------------------------------------
//
// The Draft C++ TM Specification conveys function safety through the
// transaction_safe / transaction_callable / transaction_pure keywords,
// and GCC's TM rejects atomic transactions that reach anything else at
// compile time. Our library STM has no compiler support, so the same
// contract is written as annotations and enforced by the external
// checker tools/tmlint/tmlint.py (a ctest entry and a CI job):
//
//   TM_SAFE      transaction_safe: statically free of unsafe
//                operations; every memory access inside goes through
//                TxDesc-based instrumentation. tmlint checks the body
//                and the transitive call closure.
//   TM_CALLABLE  transaction_callable: instrumented, but may contain
//                unsafe operations behind branch-stage guards; legal
//                from relaxed (and branch-configured) transactions.
//   TM_PURE      transaction_pure: uninstrumented and trusted — no
//                shared-state side effects; tmlint does not descend
//                into it but forbids transactional API use inside.
//   TM_UNSAFE    irrevocable-only: performs I/O, a syscall, or another
//                operation that can never be rolled back; calling it
//                inside an atomic transaction is a diagnostic.
//
// Under Clang the annotation is carried into the AST (tmlint's
// libclang backend reads it); under GCC it expands to nothing and the
// fallback token-level backend reads the macro text instead.
#if defined(__clang__)
#  define TMEMC_TM_ANNOTATE(tag) __attribute__((annotate(tag)))
#else
#  define TMEMC_TM_ANNOTATE(tag)
#endif
#define TM_SAFE     TMEMC_TM_ANNOTATE("tmemc::tm_safe")
#define TM_CALLABLE TMEMC_TM_ANNOTATE("tmemc::tm_callable")
#define TM_PURE     TMEMC_TM_ANNOTATE("tmemc::tm_pure")
#define TM_UNSAFE   TMEMC_TM_ANNOTATE("tmemc::tm_unsafe")

#endif // TMEMC_COMMON_COMPILER_H
