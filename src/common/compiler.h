/**
 * @file
 * Compiler portability helpers shared across the tmemc codebase.
 *
 * These mirror the small set of annotations GCC's libitm relies on:
 * branch-prediction hints, forced inlining for instrumentation
 * fast paths, and cache-line geometry.
 */

#ifndef TMEMC_COMMON_COMPILER_H
#define TMEMC_COMMON_COMPILER_H

#include <cstddef>

namespace tmemc
{

/** Cache line size used for padding shared metadata. */
constexpr std::size_t cachelineBytes = 64;

} // namespace tmemc

#if defined(__GNUC__) || defined(__clang__)
#  define TMEMC_LIKELY(x)   __builtin_expect(!!(x), 1)
#  define TMEMC_UNLIKELY(x) __builtin_expect(!!(x), 0)
#  define TMEMC_ALWAYS_INLINE inline __attribute__((always_inline))
#  define TMEMC_NOINLINE __attribute__((noinline))
#else
#  define TMEMC_LIKELY(x)   (x)
#  define TMEMC_UNLIKELY(x) (x)
#  define TMEMC_ALWAYS_INLINE inline
#  define TMEMC_NOINLINE
#endif

#endif // TMEMC_COMMON_COMPILER_H
