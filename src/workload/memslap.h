/**
 * @file
 * memslap-like workload driver.
 *
 * Reproduces the paper's measurement setup: "We ran memslap with
 * parameters --concurrency=x --execute-number=625000 --binary. We
 * varied the concurrency parameter from 1 to 12 and matched memcached
 * runs with the same number of worker threads". Server and client ran
 * on the same machine so network costs would not hide TM latency; we
 * go one step further and drive the cache in-process, which removes
 * the same non-essential layer while exercising identical cache code.
 *
 * memslap v1.0 defaults reproduced here: 9:1 get:set mix, a window of
 * keys preloaded before measurement, fixed-size keys and values, and
 * per-thread deterministic request streams.
 */

#ifndef TMEMC_WORKLOAD_MEMSLAP_H
#define TMEMC_WORKLOAD_MEMSLAP_H

#include <cstdint>
#include <string>
#include <vector>

#include "mc/cache_iface.h"
#include "net/cluster.h"

namespace tmemc::workload
{

/** Workload knobs (memslap option names in comments). */
struct MemslapCfg
{
    std::uint32_t concurrency = 4;        //!< --concurrency
    std::uint64_t executeNumber = 10000;  //!< --execute-number (per thread)
    double setFraction = 0.1;             //!< memslap default 9:1 get:set
    std::size_t keySize = 23;             //!< default key bytes
    std::size_t valueSize = 100;          //!< default value bytes
    std::uint64_t windowSize = 10000;     //!< distinct keys per thread
    double zipfTheta = 0.0;               //!< 0 = uniform (memslap default)
    std::uint64_t seed = 20140301;        //!< ASPLOS'14 vintage
    /** Mix in occasional incr/decr and delete traffic (fractions of
     *  the op budget); memslap does not issue these, so they default
     *  to 0, but the richer mix is useful for stress tests. */
    double arithFraction = 0.0;
    double deleteFraction = 0.0;
    /**
     * Route every operation through the memcached binary protocol
     * (request frames in, response frames out), like memslap
     * --binary. Off by default in the figure harness: the framing
     * cost is identical across branches and only dilutes the TM
     * effects being measured.
     */
    bool binaryProtocol = false;
    /**
     * Network mode: when serverPort is nonzero, every thread opens a
     * TCP connection to serverHost:serverPort and drives the wire
     * protocols instead of the in-process cache — the paper's actual
     * memslap-over-loopback setup. binaryProtocol selects the wire
     * format. The CacheIface argument is ignored in this mode.
     */
    std::string serverHost = "127.0.0.1";
    std::uint16_t serverPort = 0;
    /**
     * Network-mode deadlines: connect attempts and individual recvs
     * are bounded by these, so a wedged or shedding server shows up
     * as lost operations in the result instead of a hung benchmark.
     * 0 disables the respective bound.
     */
    std::uint32_t connectTimeoutMs = 5000;
    std::uint32_t recvTimeoutMs = 10000;
    /**
     * Cluster mode: when non-empty, every thread drives one shared
     * net::Cluster over these "host:port" endpoints instead of a
     * single server (ASCII only; binaryProtocol is ignored). Values
     * carry a per-key sequence number and each thread remembers the
     * newest *acknowledged* sequence per key, so a read observing an
     * older value — or a miss where an acked value must exist — is
     * counted as a lost acknowledged update, both inline and in a
     * final read-back pass. Keys are thread-partitioned (formatKey
     * embeds the thread id), which makes that check sound: each key
     * has exactly one writer issuing sets sequentially. delete/arith
     * fractions are ignored in this mode — read-repair uses add, and
     * deletes would reopen the resurrection window documented in
     * net/cluster.h.
     */
    std::vector<std::string> clusterNodes;
    unsigned clusterReplicas = 2;          //!< --replicas
    std::uint32_t nodeTimeoutMs = 250;     //!< --node-timeout-ms
};

/** Result of one driver run. */
struct MemslapResult
{
    double seconds = 0.0;       //!< Wall time for the measured phase.
    std::uint64_t ops = 0;      //!< Total operations executed.
    std::uint64_t hits = 0;     //!< Get hits.
    std::uint64_t misses = 0;   //!< Get misses.
    std::uint64_t failures = 0; //!< Stores that did not succeed.
    /** Network mode only: requests whose response never arrived
     *  (connection error mid-run). Zero on a healthy run. */
    std::uint64_t lostResponses = 0;
    /** Cluster mode only: acknowledged updates later observed lost
     *  (stale or missing on read). Any nonzero value is a replication
     *  bug — the chaos gate fails on it. */
    std::uint64_t lostAckedUpdates = 0;
    /** Cluster mode only: writes acknowledged with fewer than R
     *  copies (the cluster's replica_lag, scoped to this run). */
    std::uint64_t degradedWrites = 0;
    /** Cluster mode only: the client's counters at the end of the run
     *  (the Cluster itself does not outlive runMemslapCluster, so its
     *  metrics source is gone by the time the caller looks). */
    net::ClusterStats clusterStats;

    double
    opsPerSecond() const
    {
        return seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
    }
};

/**
 * Preload each thread's key window (memslap warms its window before
 * the measured phase), then run `concurrency` threads each executing
 * `executeNumber` operations, and report wall time.
 *
 * When cfg.serverPort is nonzero the run goes over TCP (see
 * MemslapCfg) and @p cache is not touched.
 */
MemslapResult runMemslap(mc::CacheIface &cache, const MemslapCfg &cfg);

/**
 * Network-mode run against a live server; the socket-backed analogue
 * of runMemslap. Requires cfg.serverPort != 0.
 */
MemslapResult runMemslapNet(const MemslapCfg &cfg);

/**
 * Cluster-mode run over net::Cluster with acked-update tracking (see
 * MemslapCfg::clusterNodes). Requires clusterNodes non-empty.
 */
MemslapResult runMemslapCluster(const MemslapCfg &cfg);

/** Generate the deterministic key for (thread, index). */
void formatKey(char *out, std::size_t key_size, std::uint32_t thread,
               std::uint64_t index);

} // namespace tmemc::workload

#endif // TMEMC_WORKLOAD_MEMSLAP_H
