/**
 * @file
 * memslap-like driver implementation.
 */

#include "workload/memslap.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "common/timer.h"
#include "mc/binary_protocol.h"
#include "net/client.h"

namespace tmemc::workload
{

void
formatKey(char *out, std::size_t key_size, std::uint32_t thread,
          std::uint64_t index)
{
    // Fixed-width keys, zero-padded, like memslap's generated keys.
    const int n = std::snprintf(out, key_size + 1, "k%03u-%016llx",
                                thread,
                                static_cast<unsigned long long>(index));
    for (std::size_t i = static_cast<std::size_t>(n); i < key_size; ++i)
        out[i] = 'x';
    out[key_size] = '\0';
}

namespace
{

/** Fill a deterministic printable value. */
void
formatValue(char *out, std::size_t value_size, std::uint32_t thread,
            std::uint64_t index)
{
    for (std::size_t i = 0; i < value_size; ++i) {
        out[i] = static_cast<char>('a' + ((thread + index + i) % 26));
    }
}

/** One network worker's counters. */
struct NetCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t failures = 0;
    std::uint64_t lost = 0;
};

/** Issue one SET over the wire; classify the outcome. */
void
netSet(net::Client &client, bool binary, const std::string &key,
       const char *val, std::size_t vlen, NetCounters &ctr)
{
    if (binary) {
        const std::string reply = client.roundTripBinary(
            mc::binSetRequest(key, std::string(val, vlen)));
        if (reply.empty()) {
            ++ctr.lost;
            return;
        }
        mc::BinResponse r;
        if (mc::binParseResponse(reply, r) == 0 ||
            r.status != mc::BinStatus::Ok)
            ++ctr.failures;
        return;
    }
    std::string req = "set " + key + " 0 0 " + std::to_string(vlen) +
                      "\r\n";
    req.append(val, vlen);
    req.append("\r\n");
    const std::string reply = client.roundTripAscii(req);
    if (reply.empty())
        ++ctr.lost;
    else if (reply != "STORED\r\n")
        ++ctr.failures;
}

/** Issue one GET over the wire; classify the outcome. */
void
netGet(net::Client &client, bool binary, const std::string &key,
       NetCounters &ctr)
{
    if (binary) {
        const std::string reply = client.roundTripBinary(
            mc::binRequest(mc::BinOp::Get, key));
        if (reply.empty()) {
            ++ctr.lost;
            return;
        }
        mc::BinResponse r;
        if (mc::binParseResponse(reply, r) != 0 &&
            r.status == mc::BinStatus::Ok)
            ++ctr.hits;
        else
            ++ctr.misses;
        return;
    }
    const std::string reply =
        client.roundTripAscii("get " + key + "\r\n");
    if (reply.empty())
        ++ctr.lost;
    else if (reply.compare(0, 6, "VALUE ") == 0)
        ++ctr.hits;
    else
        ++ctr.misses;
}

} // namespace

MemslapResult
runMemslapNet(const MemslapCfg &cfg)
{
    const std::uint32_t threads = cfg.concurrency == 0 ? 1
                                                       : cfg.concurrency;

    // ------------------------------------------------------------------
    // Warm phase over the wire (unmeasured).
    // ------------------------------------------------------------------
    std::atomic<std::uint64_t> warm_lost{0};
    {
        std::vector<std::thread> warmers;
        for (std::uint32_t t = 0; t < threads; ++t) {
            warmers.emplace_back([&, t] {
                net::Client client;
                if (!client.connect(cfg.serverHost, cfg.serverPort,
                                    cfg.connectTimeoutMs)) {
                    warm_lost.fetch_add(cfg.windowSize);
                    return;
                }
                client.setRecvTimeout(cfg.recvTimeoutMs);
                std::vector<char> key(cfg.keySize + 1);
                std::vector<char> val(cfg.valueSize);
                NetCounters ctr;
                for (std::uint64_t i = 0; i < cfg.windowSize; ++i) {
                    formatKey(key.data(), cfg.keySize, t, i);
                    formatValue(val.data(), cfg.valueSize, t, i);
                    netSet(client, cfg.binaryProtocol,
                           std::string(key.data(), cfg.keySize),
                           val.data(), cfg.valueSize, ctr);
                }
                warm_lost.fetch_add(ctr.lost);
            });
        }
        for (auto &w : warmers)
            w.join();
    }

    // ------------------------------------------------------------------
    // Measured phase.
    // ------------------------------------------------------------------
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> lost{0};

    WallTimer timer;
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            net::Client client;
            if (!client.connect(cfg.serverHost, cfg.serverPort,
                                cfg.connectTimeoutMs)) {
                lost.fetch_add(cfg.executeNumber);
                return;
            }
            client.setRecvTimeout(cfg.recvTimeoutMs);
            XorShift128 rng(cfg.seed * 1315423911u + t);
            ZipfSampler *zipf = nullptr;
            ZipfSampler zipf_storage(
                cfg.zipfTheta > 0 ? cfg.windowSize : 1,
                cfg.zipfTheta > 0 ? cfg.zipfTheta : 1.0);
            if (cfg.zipfTheta > 0)
                zipf = &zipf_storage;

            std::vector<char> key(cfg.keySize + 1);
            std::vector<char> val(cfg.valueSize);
            NetCounters ctr;
            for (std::uint64_t i = 0; i < cfg.executeNumber; ++i) {
                const std::uint64_t idx =
                    zipf ? zipf->sample(rng)
                         : rng.nextBounded(cfg.windowSize);
                formatKey(key.data(), cfg.keySize, t, idx);
                const std::string k(key.data(), cfg.keySize);
                const double roll = rng.nextDouble();
                if (roll < cfg.setFraction) {
                    formatValue(val.data(), cfg.valueSize, t, idx);
                    netSet(client, cfg.binaryProtocol, k, val.data(),
                           cfg.valueSize, ctr);
                } else if (roll <
                           cfg.setFraction + cfg.deleteFraction) {
                    const std::string reply =
                        cfg.binaryProtocol
                            ? client.roundTripBinary(mc::binRequest(
                                  mc::BinOp::Delete, k))
                            : client.roundTripAscii("delete " + k +
                                                    "\r\n");
                    if (reply.empty())
                        ++ctr.lost;
                } else {
                    netGet(client, cfg.binaryProtocol, k, ctr);
                }
            }
            hits.fetch_add(ctr.hits, std::memory_order_relaxed);
            misses.fetch_add(ctr.misses, std::memory_order_relaxed);
            failures.fetch_add(ctr.failures,
                               std::memory_order_relaxed);
            lost.fetch_add(ctr.lost, std::memory_order_relaxed);
        });
    }
    for (auto &w : workers)
        w.join();

    MemslapResult res;
    res.seconds = timer.elapsedSeconds();
    res.ops = static_cast<std::uint64_t>(threads) * cfg.executeNumber;
    res.hits = hits.load();
    res.misses = misses.load();
    res.failures = failures.load();
    res.lostResponses = lost.load() + warm_lost.load();
    return res;
}

MemslapResult
runMemslap(mc::CacheIface &cache, const MemslapCfg &cfg)
{
    if (cfg.serverPort != 0)
        return runMemslapNet(cfg);
    const std::uint32_t threads = cfg.concurrency == 0 ? 1
                                                       : cfg.concurrency;

    // ------------------------------------------------------------------
    // Warm phase: populate each thread's key window (unmeasured).
    // ------------------------------------------------------------------
    {
        std::vector<std::thread> warmers;
        for (std::uint32_t t = 0; t < threads; ++t) {
            warmers.emplace_back([&, t] {
                std::vector<char> key(cfg.keySize + 1);
                std::vector<char> val(cfg.valueSize);
                for (std::uint64_t i = 0; i < cfg.windowSize; ++i) {
                    formatKey(key.data(), cfg.keySize, t, i);
                    formatValue(val.data(), cfg.valueSize, t, i);
                    cache.store(t, key.data(), cfg.keySize, val.data(),
                                cfg.valueSize);
                }
            });
        }
        for (auto &w : warmers)
            w.join();
    }

    // ------------------------------------------------------------------
    // Measured phase.
    // ------------------------------------------------------------------
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> failures{0};

    WallTimer timer;
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(cfg.seed * 1315423911u + t);
            ZipfSampler *zipf = nullptr;
            ZipfSampler zipf_storage(
                cfg.zipfTheta > 0 ? cfg.windowSize : 1,
                cfg.zipfTheta > 0 ? cfg.zipfTheta : 1.0);
            if (cfg.zipfTheta > 0)
                zipf = &zipf_storage;

            std::vector<char> key(cfg.keySize + 1);
            std::vector<char> val(cfg.valueSize);
            std::vector<char> out(cfg.valueSize + 64);
            std::uint64_t local_hits = 0;
            std::uint64_t local_misses = 0;
            std::uint64_t local_failures = 0;

            for (std::uint64_t i = 0; i < cfg.executeNumber; ++i) {
                const std::uint64_t idx =
                    zipf ? zipf->sample(rng)
                         : rng.nextBounded(cfg.windowSize);
                formatKey(key.data(), cfg.keySize, t, idx);
                const double roll = rng.nextDouble();
                if (cfg.binaryProtocol) {
                    // memslap --binary: frame the op, parse the reply.
                    const std::string k(key.data(), cfg.keySize);
                    std::string reply;
                    if (roll < cfg.setFraction) {
                        formatValue(val.data(), cfg.valueSize, t, idx);
                        reply = mc::binaryExecute(
                            cache, t,
                            mc::binSetRequest(
                                k, std::string(val.data(),
                                               cfg.valueSize)));
                        mc::BinResponse r;
                        if (mc::binParseResponse(reply, r) == 0 ||
                            r.status != mc::BinStatus::Ok)
                            ++local_failures;
                    } else {
                        reply = mc::binaryExecute(
                            cache, t, mc::binRequest(mc::BinOp::Get, k));
                        mc::BinResponse r;
                        if (mc::binParseResponse(reply, r) != 0 &&
                            r.status == mc::BinStatus::Ok)
                            ++local_hits;
                        else
                            ++local_misses;
                    }
                    continue;
                }
                if (roll < cfg.setFraction) {
                    formatValue(val.data(), cfg.valueSize, t, idx);
                    const auto st = cache.store(t, key.data(), cfg.keySize,
                                                val.data(),
                                                cfg.valueSize);
                    if (st != mc::OpStatus::Ok)
                        ++local_failures;
                } else if (roll < cfg.setFraction + cfg.arithFraction) {
                    std::uint64_t v = 0;
                    cache.arith(t, key.data(), cfg.keySize, 1, true, v);
                } else if (roll < cfg.setFraction + cfg.arithFraction +
                                      cfg.deleteFraction) {
                    cache.del(t, key.data(), cfg.keySize);
                } else {
                    const auto r = cache.get(t, key.data(), cfg.keySize,
                                             out.data(), out.size());
                    if (r.status == mc::OpStatus::Ok)
                        ++local_hits;
                    else
                        ++local_misses;
                }
            }
            hits.fetch_add(local_hits, std::memory_order_relaxed);
            misses.fetch_add(local_misses, std::memory_order_relaxed);
            failures.fetch_add(local_failures, std::memory_order_relaxed);
        });
    }
    for (auto &w : workers)
        w.join();

    MemslapResult res;
    res.seconds = timer.elapsedSeconds();
    res.ops = static_cast<std::uint64_t>(threads) * cfg.executeNumber;
    res.hits = hits.load();
    res.misses = misses.load();
    res.failures = failures.load();
    return res;
}

} // namespace tmemc::workload
